//! ACE Table 5-1 workload: extraction time on chip proxies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ace_chips");
    g.sample_size(10);
    for name in ["cherry", "dchip", "testram"] {
        let spec = ace_workloads::chips::paper_chip(name).unwrap().scaled(0.1);
        let chip = ace_workloads::chips::generate_chip(&spec);
        let lib = ace_layout::Library::from_cif_text(&chip.cif).unwrap();
        g.throughput(Throughput::Elements(chip.boxes));
        g.bench_with_input(BenchmarkId::from_parameter(name), &lib, |b, lib| {
            b.iter(|| {
                ace_core::extract_library(lib, "chip", ace_core::ExtractOptions::new())
                    .netlist
                    .device_count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
