//! ACE §4 worst case: the N×N transistor mesh (quadratic devices
//! from linear boxes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ace_mesh_worst_case");
    g.sample_size(10);
    for n in [8u32, 16, 32, 64] {
        let cif = ace_workloads::mesh::mesh_cif(n);
        let lib = ace_layout::Library::from_cif_text(&cif).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &lib, |b, lib| {
            b.iter(|| {
                ace_core::extract_library(lib, "mesh", ace_core::ExtractOptions::new())
                    .netlist
                    .device_count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
