//! ACE §4 linearity: BHH random chips of growing N.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ace_scaling_bhh");
    g.sample_size(10);
    for n in [4_000u64, 16_000, 64_000] {
        let cif = ace_workloads::bhh::bhh_cif(&ace_workloads::bhh::BhhParams::paper(n, 7));
        let lib = ace_layout::Library::from_cif_text(&cif).unwrap();
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::from_parameter(n), &lib, |b, lib| {
            b.iter(|| {
                ace_core::extract_library(lib, "bhh", ace_core::ExtractOptions::new())
                    .netlist
                    .device_count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
