//! §4 ablation: insertion sort vs bin sort for step 2.a
//! ("the term containing N^{3/2} can be made linear by bin-sort …
//! but c₁ is so small that it has not been necessary").

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let spec = ace_workloads::chips::paper_chip("dchip")
        .unwrap()
        .scaled(0.1);
    let chip = ace_workloads::chips::generate_chip(&spec);
    let lib = ace_layout::Library::from_cif_text(&chip.cif).unwrap();
    let mut g = c.benchmark_group("ace_sorting");
    g.sample_size(10);
    g.bench_function("insertion_sort", |b| {
        b.iter(|| {
            ace_core::extract_library(
                &lib,
                "chip",
                ace_core::ExtractOptions::new().with_sort(ace_core::SortStrategy::Insertion),
            )
            .netlist
            .device_count()
        })
    });
    g.bench_function("bin_sort", |b| {
        b.iter(|| {
            ace_core::extract_library(
                &lib,
                "chip",
                ace_core::ExtractOptions::new().with_sort(ace_core::SortStrategy::Bin),
            )
            .netlist
            .device_count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
