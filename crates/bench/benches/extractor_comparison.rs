//! ACE Table 5-2 workload: the edge-based extractor vs the
//! run-encoded raster (Partlist) and full-grid raster (Cifplot)
//! baselines, on the same chip.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let spec = ace_workloads::chips::paper_chip("cherry")
        .unwrap()
        .scaled(0.25);
    let chip = ace_workloads::chips::generate_chip(&spec);
    let lib = ace_layout::Library::from_cif_text(&chip.cif).unwrap();
    let flat = ace_layout::FlatLayout::from_library(&lib);
    let mut g = c.benchmark_group("extractor_comparison");
    g.sample_size(10);
    g.bench_function("ace_edge_based", |b| {
        b.iter(|| {
            ace_core::extract_library(&lib, "chip", ace_core::ExtractOptions::new())
                .netlist
                .device_count()
        })
    });
    g.bench_function("partlist_run_encoded", |b| {
        b.iter(|| {
            ace_raster::extract_partlist(&flat, "chip", ace_geom::LAMBDA)
                .netlist
                .device_count()
        })
    });
    g.bench_function("cifplot_full_grid", |b| {
        b.iter(|| {
            ace_raster::extract_cifplot(&flat, "chip", ace_geom::LAMBDA)
                .netlist
                .device_count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
