//! §4 ablation: the lazy front-end (expand symbols only at the
//! scanline) vs eagerly flattening and sorting everything.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let spec = ace_workloads::chips::paper_chip("testram")
        .unwrap()
        .scaled(0.1);
    let chip = ace_workloads::chips::generate_chip(&spec);
    let lib = ace_layout::Library::from_cif_text(&chip.cif).unwrap();
    let mut g = c.benchmark_group("frontend_lazy_vs_eager");
    g.sample_size(10);
    g.bench_function("lazy", |b| {
        b.iter(|| {
            let mut feed = ace_layout::LazyFeed::new(&lib);
            ace_core::extract_feed(&mut feed, "chip", ace_core::ExtractOptions::new())
                .netlist
                .device_count()
        })
    });
    g.bench_function("eager", |b| {
        b.iter(|| {
            let mut feed = ace_layout::EagerFeed::new(&lib);
            ace_core::extract_feed(&mut feed, "chip", ace_core::ExtractOptions::new())
                .netlist
                .device_count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
