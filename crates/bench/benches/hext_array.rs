//! HEXT Table 4-1 workload: square arrays, hierarchical vs flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("hext_array");
    g.sample_size(10);
    for s in [3u32, 4, 5] {
        let cells = ace_workloads::array::square_array_cells(s);
        let cif = ace_workloads::array::square_array_cif(s);
        let lib = ace_layout::Library::from_cif_text(&cif).unwrap();
        g.bench_with_input(BenchmarkId::new("hext", cells), &lib, |b, lib| {
            b.iter(|| {
                ace_hext::extract_hierarchical(lib, "array")
                    .hier
                    .instantiated_device_count()
            })
        });
        g.bench_with_input(BenchmarkId::new("flat", cells), &lib, |b, lib| {
            b.iter(|| {
                ace_core::extract_library(lib, "array", ace_core::ExtractOptions::new())
                    .netlist
                    .device_count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
