//! HEXT Tables 5-1/5-2 workload: hierarchical vs flat extraction on
//! a regular (testram) and an irregular (schip2) chip proxy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("hext_chips");
    g.sample_size(10);
    for name in ["testram", "schip2"] {
        let spec = ace_workloads::chips::paper_chip(name).unwrap().scaled(0.1);
        let chip = ace_workloads::chips::generate_chip(&spec);
        let lib = ace_layout::Library::from_cif_text(&chip.cif).unwrap();
        g.bench_with_input(BenchmarkId::new("hext", name), &lib, |b, lib| {
            b.iter(|| {
                ace_hext::extract_hierarchical(lib, "chip")
                    .hier
                    .instantiated_device_count()
            })
        });
        g.bench_with_input(BenchmarkId::new("flat", name), &lib, |b, lib| {
            b.iter(|| {
                ace_core::extract_library(lib, "chip", ace_core::ExtractOptions::new())
                    .netlist
                    .device_count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
