//! Hot-path ablation for the active-list batch insert: the sweep
//! hands each stop's new geometry to [`IntervalMap::merge_sorted`],
//! which does one backward in-place merge with no temporary buffer.
//! The alternative — inserting entries one at a time — shifts the
//! tail of the SoA columns once per entry, O(n) each, which is
//! exactly the per-stop cost the flat-sweep overhaul removed.

use criterion::{criterion_group, criterion_main, Criterion};

use ace_geom::{Interval, IntervalMap};

/// A warm active list of `n` intervals plus `batch` new entries per
/// simulated stop, mimicking a wide strip taking a row of new boxes.
fn base_and_batches(n: i64, batch: i64) -> (IntervalMap<i64>, Vec<Vec<(Interval, i64)>>) {
    let mut map = IntervalMap::new();
    for i in 0..n {
        map.insert(Interval::new(4 * i, 4 * i + 3), i);
    }
    let batches = (0..16)
        .map(|stop| {
            (0..batch)
                .map(|i| {
                    let lo = 4 * (i * n / batch) + stop;
                    (Interval::new(lo, lo + 2), -i)
                })
                .collect()
        })
        .collect();
    (map, batches)
}

fn bench(c: &mut Criterion) {
    let (base, batches) = base_and_batches(2048, 64);
    let mut g = c.benchmark_group("interval_merge");
    g.sample_size(20);
    g.bench_function("merge_sorted", |b| {
        b.iter(|| {
            let mut map = base.clone();
            for batch in &batches {
                map.merge_sorted(batch);
            }
            map.len()
        })
    });
    g.bench_function("insert_per_entry", |b| {
        b.iter(|| {
            let mut map = base.clone();
            for batch in &batches {
                for &(iv, v) in batch {
                    map.insert(iv, v);
                }
            }
            map.len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
