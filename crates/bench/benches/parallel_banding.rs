//! Band-parallel extraction vs the sequential sweep on the mesh
//! workload, across thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_banding");
    g.sample_size(10);
    let n = 96u32;
    let cif = ace_workloads::mesh::mesh_cif(n);
    let lib = ace_layout::Library::from_cif_text(&cif).unwrap();
    let flat = ace_layout::FlatLayout::from_library(&lib);
    g.throughput(Throughput::Elements(flat.boxes().len() as u64));

    g.bench_function(BenchmarkId::new("flat", n), |b| {
        b.iter(|| {
            ace_core::extract_flat(flat.clone(), "mesh", ace_core::ExtractOptions::new())
                .expect("flat extraction")
                .netlist
                .device_count()
        })
    });
    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new(format!("parallel_k{threads}"), n),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    ace_core::extract_flat(
                        flat.clone(),
                        "mesh",
                        ace_core::ExtractOptions::new().with_threads(threads),
                    )
                    .expect("banded extraction")
                    .netlist
                    .device_count()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
