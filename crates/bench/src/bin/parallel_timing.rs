//! Records flat-vs-parallel wall time on the mesh workload into
//! `BENCH_parallel.json`.
//!
//! Usage:
//!
//! ```text
//! parallel_timing [--mesh-n <n>] [--repeat <r>] [--out <path>]
//! ```
//!
//! Each configuration is timed `repeat` times and the best run is
//! kept. Thread counts swept: the sequential sweep, the detected
//! parallelism, and 2/4/8 forced band counts (on a single-core host
//! the forced counts measure pure banding + stitching overhead).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use ace_core::{extract_flat, ExtractOptions};
use ace_layout::{FlatLayout, Library};

fn best_of<T, F: FnMut() -> T>(repeat: u32, mut f: F) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeat {
        let t = Instant::now();
        last = Some(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best * 1e3, last.expect("repeat >= 1"))
}

fn main() -> ExitCode {
    let mut mesh_n: u32 = 128;
    let mut repeat: u32 = 5;
    let mut out = String::from("BENCH_parallel.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--mesh-n" => mesh_n = take("--mesh-n").parse().expect("integer"),
            "--repeat" => repeat = take("--repeat").parse().expect("integer"),
            "--out" => out = take("--out"),
            "--help" | "-h" => {
                println!("usage: parallel_timing [--mesh-n <n>] [--repeat <r>] [--out <path>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cif = ace_workloads::mesh::mesh_cif(mesh_n);
    let lib = Library::from_cif_text(&cif).expect("mesh CIF parses");
    let flat = FlatLayout::from_library(&lib);
    let boxes = flat.boxes().len();

    let (flat_ms, flat_devices) = best_of(repeat, || {
        extract_flat(flat.clone(), "mesh", ExtractOptions::new())
            .expect("mesh extracts")
            .netlist
            .device_count()
    });
    println!("mesh n={mesh_n} ({boxes} boxes, {flat_devices} devices)");
    println!("  flat            {flat_ms:8.3} ms");

    let mut sweep: Vec<u32> = vec![2, 4, 8];
    if cores > 1 && !sweep.contains(&(cores as u32)) {
        sweep.push(cores as u32);
        sweep.sort_unstable();
    }
    let mut runs = String::new();
    for &k in &sweep {
        let (ms, (devices, bands)) = best_of(repeat, || {
            let r = extract_flat(
                flat.clone(),
                "mesh",
                ExtractOptions::new().with_threads(k as usize),
            )
            .expect("mesh extracts");
            (r.netlist.device_count(), r.report.threads)
        });
        assert_eq!(devices, flat_devices, "parallel K={k} device count differs");
        let speedup = flat_ms / ms;
        println!("  parallel K={k:<3} {ms:8.3} ms  ({speedup:.2}x, {bands} bands)");
        if !runs.is_empty() {
            runs.push(',');
        }
        write!(
            runs,
            "\n    {{\"threads\": {k}, \"bands\": {bands}, \
             \"wall_ms\": {ms:.3}, \"speedup\": {speedup:.3}}}"
        )
        .unwrap();
    }

    let json = format!(
        "{{\n  \"workload\": \"mesh\",\n  \"mesh_n\": {mesh_n},\n  \"boxes\": {boxes},\n  \
         \"devices\": {flat_devices},\n  \"host_cores\": {cores},\n  \"repeat\": {repeat},\n  \
         \"flat_wall_ms\": {flat_ms:.3},\n  \"parallel\": [{runs}\n  ]\n}}\n"
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
