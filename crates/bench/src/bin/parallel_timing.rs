//! Records flat-vs-parallel wall time on the mesh workload into
//! `BENCH_parallel.json`, or — with `--incremental` — full-vs-
//! incremental re-extraction wall time on a paper-chip proxy into
//! `BENCH_incremental.json`.
//!
//! Usage:
//!
//! ```text
//! parallel_timing [--mesh-n <n>] [--repeat <r>] [--out <path>]
//! parallel_timing --smoke
//! parallel_timing --incremental [--chip <name>] [--scale <f>]
//!                 [--bands <b>] [--edit-fraction <f>]
//!                 [--repeat <r>] [--out <path>] [--force]
//! ```
//!
//! Each configuration is timed `repeat` times and the best run is
//! kept. The parallel mode sweeps the sequential sweep, then each
//! worker count (2/4/8 plus the detected parallelism) with twice as
//! many bands as workers, so the work-stealing scheduler is actually
//! exercised. Every row records boxes/sec — the headline throughput —
//! and the `host_cores` the numbers were measured on, because a
//! speedup quoted without the core count is not an honest number.
//!
//! `--smoke` is the CI gate: a small, fast configuration that asserts
//! the banded path is not slower than the flat sweep (only when the
//! host has more than one core — on a 1-core host banding cannot win
//! and the assertion is skipped), and writes no file.
//!
//! Results from a beefier host are not silently clobbered: when the
//! output file already records a `host_cores` larger than this
//! machine's, the run refuses to overwrite it (`--force` overrides).

use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

use ace_core::{extract_flat, CircuitExtractor, ExtractOptions, IncrementalExtractor};
use ace_layout::{FlatLayout, LayoutDiff, Library};
use ace_workloads::chips::{generate_chip, paper_chip};
use ace_workloads::edits::localized_edit_fraction;

fn best_of<T, F: FnMut() -> T>(repeat: u32, mut f: F) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..repeat {
        let t = Instant::now();
        last = Some(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best * 1e3, last.expect("repeat >= 1"))
}

/// Refuses to overwrite `out` when it records more host cores than
/// this machine has: a rerun on a smaller box would replace better
/// numbers with worse ones and look like a regression.
fn guard_host_cores(out: &str, cores: usize, force: bool) -> Result<(), String> {
    let Ok(existing) = std::fs::read_to_string(out) else {
        return Ok(());
    };
    let Some(recorded) = existing
        .split("\"host_cores\":")
        .nth(1)
        .and_then(|rest| {
            rest.trim_start()
                .split(|c: char| !c.is_ascii_digit())
                .next()
        })
        .and_then(|digits| digits.parse::<usize>().ok())
    else {
        return Ok(());
    };
    if recorded > cores && !force {
        return Err(format!(
            "{out} was recorded on a {recorded}-core host but this one has {cores}; \
             refusing to overwrite (pass --force or use --out)"
        ));
    }
    Ok(())
}

struct Cli {
    mesh_n: u32,
    repeat: u32,
    out: Option<String>,
    incremental: bool,
    smoke: bool,
    chip: String,
    scale: f64,
    bands: usize,
    edit_fraction: f64,
    force: bool,
}

fn main() -> ExitCode {
    let mut cli = Cli {
        mesh_n: 128,
        repeat: 5,
        out: None,
        incremental: false,
        smoke: false,
        chip: String::from("scheme81"),
        scale: 1.0,
        bands: 64,
        edit_fraction: 0.01,
        force: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--mesh-n" => cli.mesh_n = take("--mesh-n").parse().expect("integer"),
            "--repeat" => cli.repeat = take("--repeat").parse().expect("integer"),
            "--out" => cli.out = Some(take("--out")),
            "--incremental" => cli.incremental = true,
            "--smoke" => cli.smoke = true,
            "--chip" => cli.chip = take("--chip"),
            "--scale" => cli.scale = take("--scale").parse().expect("number"),
            "--bands" => cli.bands = take("--bands").parse().expect("integer"),
            "--edit-fraction" => {
                cli.edit_fraction = take("--edit-fraction").parse().expect("number")
            }
            "--force" => cli.force = true,
            "--help" | "-h" => {
                println!(
                    "usage: parallel_timing [--mesh-n <n>] [--repeat <r>] [--out <path>]\n\
                     \x20      parallel_timing --smoke\n\
                     \x20      parallel_timing --incremental [--chip <name>] [--scale <f>]\n\
                     \x20                      [--bands <b>] [--edit-fraction <f>]\n\
                     \x20                      [--repeat <r>] [--out <path>] [--force]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cli.incremental {
        run_incremental(&cli, cores)
    } else {
        run_parallel(&cli, cores)
    }
}

/// Boxes swept per wall-clock second — the headline throughput.
fn boxes_per_sec(boxes: usize, wall_ms: f64) -> f64 {
    boxes as f64 / (wall_ms / 1e3)
}

fn run_parallel(cli: &Cli, cores: usize) -> ExitCode {
    // Smoke mode is the CI gate: small mesh, quick repeats, no file.
    let (mesh_n, repeat) = if cli.smoke {
        (48, 2)
    } else {
        (cli.mesh_n, cli.repeat)
    };
    let out = cli
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_parallel.json".into());
    if !cli.smoke {
        if let Err(msg) = guard_host_cores(&out, cores, cli.force) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    let cif = ace_workloads::mesh::mesh_cif(mesh_n);
    let lib = Library::from_cif_text(&cif).expect("mesh CIF parses");
    let flat = FlatLayout::from_library(&lib);
    let boxes = flat.boxes().len();

    let (flat_ms, flat_devices) = best_of(repeat, || {
        extract_flat(flat.clone(), "mesh", ExtractOptions::new())
            .expect("mesh extracts")
            .netlist
            .device_count()
    });
    let flat_bps = boxes_per_sec(boxes, flat_ms);
    println!("mesh n={mesh_n} ({boxes} boxes, {flat_devices} devices) on {cores} host cores");
    println!("  flat            {flat_ms:8.3} ms  ({flat_bps:10.0} boxes/s)");

    let mut sweep: Vec<u32> = vec![2, 4, 8];
    if cores > 1 && !sweep.contains(&(cores as u32)) {
        sweep.push(cores as u32);
        sweep.sort_unstable();
    }
    if cli.smoke {
        sweep = vec![if cores > 1 { cores.min(4) as u32 } else { 2 }];
    }
    let mut best_banded = f64::INFINITY;
    let mut runs = String::new();
    for &k in &sweep {
        // Twice as many bands as workers so the steal path is live:
        // with bands == workers every worker owns exactly its chunk
        // and nothing is ever stolen.
        let (ms, (devices, threads, bands, stolen)) = best_of(repeat, || {
            let r = extract_flat(
                flat.clone(),
                "mesh",
                ExtractOptions::new()
                    .with_threads(k as usize)
                    .with_bands(2 * k as usize),
            )
            .expect("mesh extracts");
            (
                r.netlist.device_count(),
                r.report.threads,
                r.report.bands,
                r.report.bands_stolen,
            )
        });
        assert_eq!(devices, flat_devices, "parallel K={k} device count differs");
        let speedup = flat_ms / ms;
        let bps = boxes_per_sec(boxes, ms);
        best_banded = best_banded.min(ms);
        println!(
            "  parallel K={k:<3} {ms:8.3} ms  ({bps:10.0} boxes/s, {speedup:.2}x, \
             {threads} workers / {bands} bands, {stolen} stolen)"
        );
        if !runs.is_empty() {
            runs.push(',');
        }
        write!(
            runs,
            "\n    {{\"threads\": {threads}, \"bands\": {bands}, \"wall_ms\": {ms:.3}, \
             \"boxes_per_sec\": {bps:.0}, \"speedup\": {speedup:.3}, \
             \"bands_stolen\": {stolen}}}"
        )
        .unwrap();
    }

    if cli.smoke {
        // Banding on one core is pure overhead; the assertion would
        // only measure scheduler tax, so it is honest to skip it.
        if cores > 1 {
            let ratio = flat_ms / best_banded;
            assert!(
                ratio >= 1.0,
                "smoke: banded sweep is slower than flat ({best_banded:.3} ms vs \
                 {flat_ms:.3} ms, {ratio:.2}x) on a {cores}-core host"
            );
            println!("smoke OK: banded {:.2}x flat on {cores} cores", ratio);
        } else {
            println!("smoke OK: 1-core host, speedup assertion skipped");
        }
        return ExitCode::SUCCESS;
    }

    let json = format!(
        "{{\n  \"workload\": \"mesh\",\n  \"host_cores\": {cores},\n  \"mesh_n\": {mesh_n},\n  \
         \"boxes\": {boxes},\n  \"devices\": {flat_devices},\n  \"repeat\": {repeat},\n  \
         \"flat\": {{\"wall_ms\": {flat_ms:.3}, \"boxes_per_sec\": {flat_bps:.0}}},\n  \
         \"parallel\": [{runs}\n  ]\n}}\n"
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}

fn run_incremental(cli: &Cli, cores: usize) -> ExitCode {
    let out = cli
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_incremental.json".into());
    if let Err(msg) = guard_host_cores(&out, cores, cli.force) {
        eprintln!("{msg}");
        return ExitCode::FAILURE;
    }
    let Some(spec) = paper_chip(&cli.chip) else {
        eprintln!("unknown chip '{}' (see ace_workloads::chips)", cli.chip);
        return ExitCode::FAILURE;
    };
    let spec = spec.scaled(cli.scale);
    let chip = generate_chip(&spec);
    let lib = Library::from_cif_text(&chip.cif).expect("chip CIF parses");
    let flat = FlatLayout::from_library(&lib);
    let boxes = flat.boxes().len();
    println!(
        "{} scale {} ({} boxes, {} devices), {} bands, {:.2}% edit",
        spec.name,
        cli.scale,
        boxes,
        chip.devices,
        cli.bands,
        cli.edit_fraction * 100.0
    );

    // The localized editing-session diff, and its inverse so the
    // timing loop can restore the pre-edit layout between repeats.
    let diff = localized_edit_fraction(&flat, cli.edit_fraction, 0xED17);
    let mut edited = flat.clone();
    diff.apply_to(&mut edited).expect("edit applies");
    let inverse = LayoutDiff::between(&edited, &flat);
    let edit_ops = diff.len();

    // Baseline: a from-scratch flat extraction of the edited layout.
    let (full_ms, full_devices) = best_of(cli.repeat, || {
        extract_flat(edited.clone(), "chip", ExtractOptions::new())
            .expect("chip extracts")
            .netlist
            .device_count()
    });
    println!("  full re-extract         {full_ms:10.3} ms");

    // Warm the incremental cache on the pre-edit layout, then time
    // apply+extract per repeat, restoring (untimed) in between.
    let mut inc = IncrementalExtractor::new(flat, cli.bands);
    let warm = inc.extract("chip").expect("warm extraction");
    assert_eq!(
        warm.netlist.device_count(),
        chip.devices as usize,
        "incremental warm-up device count differs from the generator's"
    );
    let mut inc_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..cli.repeat {
        let t = Instant::now();
        inc.apply(&diff).expect("edit applies");
        let r = inc.extract("chip").expect("incremental re-extract");
        inc_ms = inc_ms.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(r);
        inc.apply(&inverse).expect("inverse applies");
        inc.extract("chip").expect("restore extraction");
    }
    let last = last.expect("repeat >= 1");
    assert_eq!(
        last.netlist.device_count(),
        full_devices,
        "incremental and full disagree on the edited layout"
    );
    let reused = last.report.bands_reused;
    let reswept = last.report.bands_reswept;
    let cache_kib = last.report.cache_bytes / 1024;
    let speedup = full_ms / inc_ms;
    println!(
        "  incremental re-extract  {inc_ms:10.3} ms  ({speedup:.2}x, \
         {reused} bands reused, {reswept} re-swept, cache ~{cache_kib} KiB)"
    );
    let json = format!(
        "{{\n  \"workload\": \"incremental\",\n  \"chip\": \"{}\",\n  \"scale\": {},\n  \
         \"boxes\": {boxes},\n  \"devices\": {full_devices},\n  \"host_cores\": {cores},\n  \
         \"repeat\": {},\n  \"bands\": {},\n  \"edit_fraction\": {},\n  \
         \"edit_ops\": {edit_ops},\n  \"full_wall_ms\": {full_ms:.3},\n  \
         \"incremental_wall_ms\": {inc_ms:.3},\n  \"speedup\": {speedup:.3},\n  \
         \"bands_reused\": {reused},\n  \"bands_reswept\": {reswept},\n  \
         \"cache_kib\": {cache_kib}\n}}\n",
        spec.name, cli.scale, cli.repeat, cli.bands, cli.edit_fraction
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}");
    ExitCode::SUCCESS
}
