//! Regenerates the tables and figures of the ACE and HEXT papers.
//!
//! Usage:
//!
//! ```text
//! repro [--experiment <id>] [--scale <f>] [--list]
//! ```
//!
//! `--scale 1.0` (the default) runs the papers' full chip sizes;
//! smaller values shrink the synthetic chips proportionally for quick
//! runs. `--list` prints the experiment ids.

use std::process::ExitCode;

use ace_bench::{run_all, run_experiment, Experiment};

fn main() -> ExitCode {
    let mut experiment: Option<String> = None;
    let mut scale = 1.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--experiment" | "-e" => {
                experiment = args.next();
                if experiment.is_none() {
                    eprintln!("--experiment needs an id");
                    return ExitCode::FAILURE;
                }
            }
            "--scale" | "-s" => {
                let Some(v) = args.next().and_then(|s| s.parse().ok()) else {
                    eprintln!("--scale needs a number");
                    return ExitCode::FAILURE;
                };
                scale = v;
            }
            "--list" | "-l" => {
                for e in Experiment::ALL {
                    println!("{}", e.id());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: repro [--experiment <id>] [--scale <f>] [--list]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument '{other}' (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    if !(0.0..=1.0).contains(&scale) || scale <= 0.0 {
        eprintln!("scale must be in (0, 1]");
        return ExitCode::FAILURE;
    }

    match experiment {
        Some(id) => match Experiment::from_id(&id) {
            Some(e) => {
                print!("{}", run_experiment(e, scale));
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment '{id}' (try --list)");
                ExitCode::FAILURE
            }
        },
        None => {
            print!("{}", run_all(scale));
            ExitCode::SUCCESS
        }
    }
}
