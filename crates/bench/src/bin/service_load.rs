//! `service_load` — load generator for the `aced` extraction service.
//!
//! Drives N concurrent clients against a daemon (an external one via
//! `--socket`/`--tcp`, otherwise an in-process daemon on an ephemeral
//! TCP port), each running its own session through a fixed request
//! mix (extract, edit-diff, lint, query-net), and records throughput
//! and latency percentiles into `BENCH_service.json`:
//!
//! ```text
//! service_load [--clients N] [--requests R] [--mesh-n N]
//!              [--socket PATH | --tcp ADDR] [--out path]
//! service_load --smoke [--socket PATH | --tcp ADDR]
//! ```
//!
//! `--smoke` is the CI gate: 4 clients, a short mix, and every wire
//! answer checked against the in-process extraction oracle — the
//! daemon must not just stay up under concurrency, it must return
//! *the same circuits* the library computes directly. Writes no file.
//!
//! `queue-full` responses are not failures: the generator honors the
//! daemon's `retry_after_ms` hint and retries, counting how often it
//! was pushed back — that number is part of the result, because a
//! service that meets its latency targets by shedding load should
//! say so.

use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ace_core::{CircuitExtractor, ExtractOptions, IncrementalExtractor, NullProbe};
use ace_layout::{FlatLayout, LayoutDiff, Library};
use ace_lint::{lint_extraction, LintConfig};
use ace_service::{Client, ClientError, Daemon, ErrorCode, ServiceConfig};
use ace_wirelist::{write_wirelist, WirelistOptions};
use ace_workloads::mesh::{mesh_cif, MESH_LINE, MESH_PITCH};

const BANDS: usize = 4;

struct Args {
    clients: usize,
    requests: usize,
    mesh_n: u32,
    socket: Option<String>,
    tcp: Option<String>,
    out: String,
    smoke: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: service_load [--clients N] [--requests R] [--mesh-n N]\n\
         \x20                   [--socket PATH | --tcp ADDR] [--out path]\n\
         \x20      service_load --smoke [--socket PATH | --tcp ADDR]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 4,
        requests: 50,
        mesh_n: 8,
        socket: None,
        tcp: None,
        out: "BENCH_service.json".to_string(),
        smoke: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--clients" => args.clients = value().parse().unwrap_or_else(|_| usage()),
            "--requests" => args.requests = value().parse().unwrap_or_else(|_| usage()),
            "--mesh-n" => args.mesh_n = value().parse().unwrap_or_else(|_| usage()),
            "--socket" => args.socket = Some(value()),
            "--tcp" => args.tcp = Some(value()),
            "--out" => args.out = value(),
            "--smoke" => args.smoke = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.smoke {
        args.clients = 4;
        args.requests = 3;
        args.mesh_n = 6;
    }
    args
}

/// How each client reaches the daemon.
#[derive(Clone)]
enum Endpoint {
    Unix(String),
    Tcp(String),
}

impl Endpoint {
    fn connect(&self) -> Result<Client, ClientError> {
        match self {
            Endpoint::Unix(path) => Ok(Client::connect_unix(path.as_ref())?),
            Endpoint::Tcp(addr) => Ok(Client::connect_tcp(addr)?),
        }
    }
}

/// One request's latency sample.
struct Sample {
    op: &'static str,
    ns: u64,
}

/// Issues `call` with queue-full retries, timing only the successful
/// attempt (the daemon's pushback delay is counted separately).
fn timed<T>(
    op: &'static str,
    samples: &mut Vec<Sample>,
    retries: &AtomicU64,
    mut call: impl FnMut() -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    loop {
        let t = Instant::now();
        match call() {
            Ok(value) => {
                samples.push(Sample {
                    op,
                    ns: t.elapsed().as_nanos() as u64,
                });
                return Ok(value);
            }
            Err(ClientError::Service(e)) if e.code == ErrorCode::QueueFull => {
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(
                    e.retry_after_ms.unwrap_or(10).max(1) as u64
                ));
            }
            Err(other) => return Err(other),
        }
    }
}

/// The edit every client oscillates: a poly stub glued to the bottom
/// row's left end. Adding it dirties only the bottom band; removing
/// it restores the original circuit, so extraction results stay
/// comparable across iterations.
fn stub_diff(add: bool) -> LayoutDiff {
    let mut diff = LayoutDiff::new();
    let rect = ace_geom::Rect::new(-2 * MESH_PITCH, 0, -MESH_PITCH, MESH_LINE);
    if add {
        diff.add_box(ace_geom::Layer::Poly, rect);
    } else {
        diff.remove_box(ace_geom::Layer::Poly, rect);
    }
    diff
}

/// What the oracle says the daemon must answer.
struct Oracle {
    clean_wirelist: String,
    stubbed_wirelist: String,
    lint_rendered: Vec<String>,
}

fn build_oracle(cif: &str) -> Oracle {
    let lib = Library::from_cif_text(cif).expect("oracle parses");
    let flat = FlatLayout::from_library(&lib);
    let mut ex = IncrementalExtractor::new(flat, BANDS);
    let mut extraction = ex.extract("aced").expect("oracle extracts");
    let clean_wirelist = write_wirelist(&extraction.netlist, WirelistOptions::new());
    let lint_rendered =
        lint_extraction(&mut extraction, ex.layout(), &LintConfig::new(), &NullProbe)
            .iter()
            .map(|d| d.render())
            .collect();
    ex.apply(&stub_diff(true)).expect("oracle applies stub");
    let stubbed = ex.extract("aced").expect("oracle re-extracts");
    Oracle {
        clean_wirelist,
        stubbed_wirelist: write_wirelist(&stubbed.netlist, WirelistOptions::new()),
        lint_rendered,
    }
}

/// One client's life: open a private session, then cycle the mix.
/// In smoke mode every answer is checked against the oracle.
fn run_client(
    id: usize,
    endpoint: Endpoint,
    cif: Arc<String>,
    oracle: Option<Arc<Oracle>>,
    requests: usize,
    retries: Arc<AtomicU64>,
) -> Result<Vec<Sample>, String> {
    let fail = |stage: &str, e: ClientError| format!("client {id}: {stage}: {e}");
    let mut client = endpoint.connect().map_err(|e| fail("connect", e))?;
    let session = format!("load-{id}");
    let mut samples = Vec::new();
    timed("open", &mut samples, &retries, || {
        client.open(&session, &cif, BANDS, ExtractOptions::new())
    })
    .map_err(|e| fail("open", e))?;

    let mut stub_present = false;
    for _ in 0..requests {
        let extract = timed("extract", &mut samples, &retries, || {
            client.extract(&session)
        })
        .map_err(|e| fail("extract", e))?;
        let edited = timed("edit-diff", &mut samples, &retries, || {
            client.edit_diff(&session, &stub_diff(!stub_present))
        })
        .map_err(|e| fail("edit-diff", e))?;
        stub_present = !stub_present;
        let lint = timed("lint", &mut samples, &retries, || {
            client.lint(&session, &LintConfig::new())
        })
        .map_err(|e| fail("lint", e))?;
        let _ = timed("query-net", &mut samples, &retries, || {
            client.query_net(&session, "VDD")
        })
        .map_err(|e| fail("query-net", e))?;

        if let Some(oracle) = &oracle {
            // `stub_present` already reflects this round's edit; the
            // extract above ran *before* it, on the opposite state.
            let want_extract = if stub_present {
                &oracle.clean_wirelist
            } else {
                &oracle.stubbed_wirelist
            };
            if extract.wirelist != *want_extract {
                return Err(format!("client {id}: extract drifted from oracle"));
            }
            let want_edit = if stub_present {
                &oracle.stubbed_wirelist
            } else {
                &oracle.clean_wirelist
            };
            if edited.wirelist != *want_edit {
                return Err(format!("client {id}: edit-diff drifted from oracle"));
            }
            let rendered: Vec<String> = lint.0.iter().map(|d| d.rendered.clone()).collect();
            if !stub_present && rendered != oracle.lint_rendered {
                return Err(format!("client {id}: lint drifted from oracle"));
            }
        }
    }
    timed("close", &mut samples, &retries, || client.close(&session))
        .map_err(|e| fail("close", e))?;
    Ok(samples)
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[rank] as f64 / 1e6
}

fn main() -> ExitCode {
    let args = parse_args();
    let cif = Arc::new(mesh_cif(args.mesh_n));

    // External daemon, or an in-process one for self-contained runs.
    let (endpoint, local) = match (&args.socket, &args.tcp) {
        (Some(path), _) => (Endpoint::Unix(path.clone()), None),
        (None, Some(addr)) => (Endpoint::Tcp(addr.clone()), None),
        (None, None) => {
            let daemon = Daemon::new(ServiceConfig::default());
            let addr = match daemon.serve_tcp("127.0.0.1:0") {
                Ok(addr) => addr,
                Err(e) => {
                    eprintln!("service_load: cannot start in-process daemon: {e}");
                    return ExitCode::FAILURE;
                }
            };
            (Endpoint::Tcp(addr.to_string()), Some(daemon))
        }
    };

    let oracle = args.smoke.then(|| Arc::new(build_oracle(&cif)));
    let retries = Arc::new(AtomicU64::new(0));
    let wall = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|id| {
            let endpoint = endpoint.clone();
            let cif = Arc::clone(&cif);
            let oracle = oracle.clone();
            let retries = Arc::clone(&retries);
            std::thread::spawn(move || {
                run_client(id, endpoint, cif, oracle, args.requests, retries)
            })
        })
        .collect();

    let mut samples: Vec<Sample> = Vec::new();
    let mut failures = Vec::new();
    for handle in handles {
        match handle.join().expect("client thread") {
            Ok(mut s) => samples.append(&mut s),
            Err(e) => failures.push(e),
        }
    }
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    if let Some(daemon) = local {
        daemon.join();
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("service_load: {f}");
        }
        return ExitCode::FAILURE;
    }

    let retries = retries.load(Ordering::Relaxed);
    if args.smoke {
        println!(
            "service_load smoke: OK ({} clients x {} rounds, {} requests, \
             {} queue-full retries, every answer matched the in-process oracle)",
            args.clients,
            args.requests,
            samples.len(),
            retries
        );
        return ExitCode::SUCCESS;
    }

    // Aggregate: overall throughput + per-op percentiles.
    let mut all_ns: Vec<u64> = samples.iter().map(|s| s.ns).collect();
    all_ns.sort_unstable();
    let total = samples.len();
    let rps = total as f64 / (wall_ms / 1e3);

    let ops = ["open", "extract", "edit-diff", "lint", "query-net", "close"];
    let mut op_rows = String::new();
    for (i, op) in ops.iter().enumerate() {
        let mut ns: Vec<u64> = samples
            .iter()
            .filter(|s| s.op == *op)
            .map(|s| s.ns)
            .collect();
        ns.sort_unstable();
        let _ = writeln!(
            op_rows,
            "    {{\"op\": \"{}\", \"count\": {}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}",
            op,
            ns.len(),
            percentile_ms(&ns, 0.50),
            percentile_ms(&ns, 0.99),
            if i + 1 < ops.len() { "," } else { "" }
        );
    }
    let json = format!(
        "{{\n  \"workload\": \"mesh\",\n  \"mesh_n\": {},\n  \"host_cores\": {},\n  \
         \"clients\": {},\n  \"requests_per_client\": {},\n  \"total_requests\": {},\n  \
         \"wall_ms\": {:.3},\n  \"requests_per_sec\": {:.1},\n  \
         \"queue_full_retries\": {},\n  \
         \"latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}},\n  \"ops\": [\n{}  ]\n}}\n",
        args.mesh_n,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        args.clients,
        args.requests,
        total,
        wall_ms,
        rps,
        retries,
        percentile_ms(&all_ns, 0.50),
        percentile_ms(&all_ns, 0.99),
        op_rows
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("service_load: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    print!("{json}");
    eprintln!("service_load: wrote {}", args.out);
    ExitCode::SUCCESS
}
