//! Experiment runners: one per table/figure of the two papers.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use ace_core::{extract_library, ExtractOptions, Phase};
use ace_hext::extract_hierarchical;
use ace_layout::{FlatLayout, Library};
use ace_raster::{extract_cifplot, extract_partlist};
use ace_workloads::array::{square_array_cells, square_array_cif};
use ace_workloads::bhh::{bhh_cif, BhhParams};
use ace_workloads::chips::{generate_chip, paper_chip, ChipSpec, GeneratedChip};
use ace_workloads::mesh::mesh_cif;

use crate::paper;
use crate::paper::mmss;

/// The reproducible experiments, one per paper table/figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// ACE Table 5-1: performance and linearity over seven chips.
    AceTable51,
    /// ACE Table 5-2: ACE vs Partlist vs Cifplot.
    AceTable52,
    /// §5 time distribution over the extraction phases.
    AceTimeDistribution,
    /// §4 expected-linear-time sweep over the BHH model.
    AceLinearity,
    /// §4 worst case: the N×N transistor mesh.
    AceWorstCase,
    /// §4 expected space: O(√N) scanline state, O(N) total.
    AceSpace,
    /// HEXT Table 4-1: square arrays, O(√N) vs O(N).
    HextTable41,
    /// HEXT Table 5-1: HEXT vs flat ACE on six chips.
    HextTable51,
    /// HEXT Table 5-2: back-end analysis (compose share).
    HextTable52,
}

impl Experiment {
    /// All experiments in paper order.
    pub const ALL: [Experiment; 9] = [
        Experiment::AceTable51,
        Experiment::AceTable52,
        Experiment::AceTimeDistribution,
        Experiment::AceLinearity,
        Experiment::AceWorstCase,
        Experiment::AceSpace,
        Experiment::HextTable41,
        Experiment::HextTable51,
        Experiment::HextTable52,
    ];

    /// Command-line identifier.
    pub fn id(self) -> &'static str {
        match self {
            Experiment::AceTable51 => "ace-table-5-1",
            Experiment::AceTable52 => "ace-table-5-2",
            Experiment::AceTimeDistribution => "ace-time-distribution",
            Experiment::AceLinearity => "ace-linearity",
            Experiment::AceWorstCase => "ace-worst-case",
            Experiment::AceSpace => "ace-space",
            Experiment::HextTable41 => "hext-table-4-1",
            Experiment::HextTable51 => "hext-table-5-1",
            Experiment::HextTable52 => "hext-table-5-2",
        }
    }

    /// Parses a command-line identifier.
    pub fn from_id(id: &str) -> Option<Experiment> {
        Experiment::ALL.into_iter().find(|e| e.id() == id)
    }
}

/// Runs one experiment at the given chip scale (1.0 = the paper's
/// full sizes) and returns its report as text.
pub fn run_experiment(experiment: Experiment, scale: f64) -> String {
    match experiment {
        Experiment::AceTable51 => ace_table_5_1(scale),
        Experiment::AceTable52 => ace_table_5_2(scale),
        Experiment::AceTimeDistribution => ace_time_distribution(scale),
        Experiment::AceLinearity => ace_linearity(scale),
        Experiment::AceWorstCase => ace_worst_case(scale),
        Experiment::AceSpace => ace_space(scale),
        Experiment::HextTable41 => hext_table_4_1(scale),
        Experiment::HextTable51 => hext_table_5_1(scale),
        Experiment::HextTable52 => hext_table_5_2(scale),
    }
}

/// Runs every experiment and concatenates the reports.
pub fn run_all(scale: f64) -> String {
    let mut out = String::new();
    for e in Experiment::ALL {
        out.push_str(&run_experiment(e, scale));
        out.push('\n');
    }
    out
}

fn build_chip(spec: &ChipSpec, scale: f64) -> (GeneratedChip, Library) {
    let chip = generate_chip(&spec.scaled(scale));
    let lib = Library::from_cif_text(&chip.cif).expect("generated CIF is valid");
    (chip, lib)
}

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn ace_table_5_1(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## ACE Table 5-1 — performance (chip scale {scale})\n");
    let _ = writeln!(
        out,
        "{:<9} | {:>8} {:>9} {:>8} {:>8} | {:>8} {:>9} {:>9} {:>9} {:>11}",
        "chip", "paper", "paper", "paper", "paper", "meas.", "meas.", "meas.", "meas.", "meas."
    );
    let _ = writeln!(
        out,
        "{:<9} | {:>8} {:>9} {:>8} {:>8} | {:>8} {:>9} {:>9} {:>9} {:>11}",
        "",
        "devices",
        "boxes",
        "time",
        "boxes/s",
        "devices",
        "boxes",
        "time(s)",
        "devs/s",
        "boxes/s"
    );
    let mut rates = Vec::new();
    for row in paper::ACE_TABLE_5_1 {
        let spec = paper_chip(row.name).expect("paper chip");
        let (chip, lib) = build_chip(spec, scale);
        let t0 = Instant::now();
        let r = extract_library(&lib, row.name, ExtractOptions::new()).expect("extracts");
        let dt = secs(t0.elapsed());
        let devs = r.netlist.device_count() as f64;
        rates.push(chip.boxes as f64 / dt);
        let _ = writeln!(
            out,
            "{:<9} | {:>8} {:>9} {:>8} {:>8.0} | {:>8} {:>9} {:>9.3} {:>9.0} {:>11.0}",
            row.name,
            row.devices,
            row.boxes,
            mmss(row.ace_secs as f64),
            row.boxes as f64 / row.ace_secs as f64,
            devs,
            chip.boxes,
            dt,
            devs / dt,
            chip.boxes as f64 / dt,
        );
    }
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = rates.iter().cloned().fold(0.0, f64::max);
    let _ = writeln!(
        out,
        "\nshape check: boxes/s varies by {:.2}x across a {:.0}x size range \
         (paper: {:.2}x) — time is linear in the number of boxes.",
        max / min,
        paper::ACE_TABLE_5_1[6].boxes as f64 / paper::ACE_TABLE_5_1[0].boxes as f64,
        123.37 / 82.84,
    );
    out
}

fn ace_table_5_2(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## ACE Table 5-2 — comparison with Partlist and Cifplot (chip scale {scale})\n"
    );
    let _ = writeln!(
        out,
        "{:<9} | {:>7} {:>9} {:>8} | {:>9} {:>11} {:>10}",
        "chip", "ACE", "Partlist", "Cifplot", "ACE(s)", "Partlist(s)", "Cifplot(s)"
    );
    for row in paper::ACE_TABLE_5_2 {
        let spec = paper_chip(row.name).expect("paper chip");
        let (_chip, lib) = build_chip(spec, scale);
        let flat = FlatLayout::from_library(&lib);

        let t0 = Instant::now();
        let _ = extract_library(&lib, row.name, ExtractOptions::new()).expect("extracts");
        let ace_t = secs(t0.elapsed());

        // The paper did not run Partlist on riscb or Cifplot on
        // testram/riscb ("-"); mirror that.
        let partlist_t = row.partlist_secs.map(|_| {
            let t0 = Instant::now();
            let _ = extract_partlist(&flat, row.name, ace_geom::LAMBDA);
            secs(t0.elapsed())
        });
        let cifplot_t = row.cifplot_secs.map(|_| {
            let t0 = Instant::now();
            let _ = extract_cifplot(&flat, row.name, ace_geom::LAMBDA);
            secs(t0.elapsed())
        });

        let fmt_opt = |v: Option<u32>| v.map_or("-".to_string(), |s| mmss(s as f64));
        let fmt_meas = |v: Option<f64>| v.map_or("-".to_string(), |s| format!("{s:.3}"));
        let _ = writeln!(
            out,
            "{:<9} | {:>7} {:>9} {:>8} | {:>9.3} {:>11} {:>10}",
            row.name,
            mmss(row.ace_secs as f64),
            fmt_opt(row.partlist_secs),
            fmt_opt(row.cifplot_secs),
            ace_t,
            fmt_meas(partlist_t),
            fmt_meas(cifplot_t),
        );
    }
    let _ = writeln!(
        out,
        "\nshape check: ACE < Partlist < Cifplot on every chip, with the gap \
         widening as chips grow (the paper's ordering)."
    );
    out
}

fn ace_time_distribution(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## ACE §5 — coarse distribution of time (riscb proxy, chip scale {scale})\n"
    );
    let spec = paper_chip("riscb").expect("riscb");
    let (_chip, lib) = build_chip(spec, scale);
    let r = extract_library(&lib, "riscb", ExtractOptions::new()).expect("extracts");
    let measured = [
        r.report.phase_percent(Phase::FrontEnd),
        r.report.phase_percent(Phase::Insert),
        r.report.phase_percent(Phase::Devices),
        r.report.phase_percent(Phase::Output),
    ];
    let misc = (100.0 - measured.iter().sum::<f64>()).max(0.0);
    let _ = writeln!(out, "{:<55} {:>7} {:>9}", "phase", "paper", "measured");
    for (i, (label, paper_pct)) in paper::ACE_TIME_DISTRIBUTION.iter().enumerate() {
        let meas = if i < 4 { measured[i] } else { misc };
        let _ = writeln!(out, "{label:<55} {paper_pct:>6.0}% {meas:>8.1}%");
    }
    let _ = writeln!(
        out,
        "\nshape check: parsing/sorting dominates, device computation second, \
         list insertion and output smaller — the paper's ordering."
    );
    out
}

fn ace_linearity(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## ACE §4 — expected linear time on the BHH random model (scale {scale})\n"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>9} {:>10} {:>11} {:>16}",
        "N boxes", "devices", "time(s)", "boxes/s", "time vs prev"
    );
    let mut prev: Option<(u64, f64)> = None;
    for n in [16_000u64, 32_000, 64_000, 128_000, 256_000] {
        let n = ((n as f64 * scale) as u64).max(1_000);
        let cif = bhh_cif(&BhhParams::paper(n, 0xACE));
        let lib = Library::from_cif_text(&cif).expect("valid CIF");
        let t0 = Instant::now();
        let r = extract_library(&lib, "bhh", ExtractOptions::new()).expect("extracts");
        let dt = secs(t0.elapsed());
        let growth = match prev {
            Some((pn, pt)) => format!("{:.2}x for {:.0}x N", dt / pt, n as f64 / pn as f64),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>9} {:>9} {:>10.4} {:>11.0} {:>16}",
            n,
            r.netlist.device_count(),
            dt,
            n as f64 / dt,
            growth
        );
        prev = Some((n, dt));
    }
    let _ = writeln!(
        out,
        "\nshape check: doubling N roughly doubles the time — the observed \
         complexity is linear in the number of boxes."
    );
    out
}

fn ace_worst_case(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## ACE §4 — worst case: N poly lines × N diffusion lines (scale {scale})\n"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>10} {:>10} {:>14}",
        "N", "boxes", "devices", "time(s)", "time vs prev"
    );
    let mut prev: Option<f64> = None;
    for n in [16u32, 32, 64, 128] {
        let n = ((n as f64 * scale.sqrt()) as u32).max(4);
        let cif = mesh_cif(n);
        let lib = Library::from_cif_text(&cif).expect("valid CIF");
        let t0 = Instant::now();
        let r = extract_library(&lib, "mesh", ExtractOptions::new()).expect("extracts");
        let dt = secs(t0.elapsed());
        let growth = match prev {
            Some(pt) => format!("{:.2}x", dt / pt),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>10} {:>10.4} {:>14}",
            n,
            r.report.boxes,
            r.netlist.device_count(),
            dt,
            growth
        );
        prev = Some(dt);
    }
    let _ = writeln!(
        out,
        "\nshape check: 2x more lines → ~4x more transistors and ≥4x the time: \
         quadratic in the box count, as the worst-case analysis predicts."
    );
    out
}

fn ace_space(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## ACE §4 — expected space: scanline state is O(sqrt N) (scale {scale})\n"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>12} {:>14} {:>12} {:>14}",
        "N boxes", "max active", "active/sqrt(N)", "fragments", "fragments/N"
    );
    for n in [16_000u64, 64_000, 256_000] {
        let n = ((n as f64 * scale) as u64).max(1_000);
        let cif = bhh_cif(&BhhParams::paper(n, 0x5face));
        let lib = Library::from_cif_text(&cif).expect("valid CIF");
        let r = extract_library(&lib, "bhh", ExtractOptions::new()).expect("extracts");
        let _ = writeln!(
            out,
            "{:>9} {:>12} {:>14.2} {:>12} {:>14.2}",
            n,
            r.report.max_active,
            r.report.max_active as f64 / (n as f64).sqrt(),
            r.report.fragments,
            r.report.fragments as f64 / n as f64,
        );
    }
    let _ = writeln!(
        out,
        "\nshape check: the active-list high-water mark grows as sqrt(N) (its\n\
         ratio to sqrt(N) stays flat) while total fragment storage grows\n\
         linearly — 'the overall expected space complexity of ACE is O(N)'."
    );
    out
}

fn hext_table_4_1(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## HEXT Table 4-1 — square arrays of identical cells (scale {scale})\n"
    );
    // k = the cost of extracting one cell (the paper's 6.0 s row).
    let k = {
        let lib = Library::from_cif_text(&square_array_cif(0)).expect("valid");
        let t0 = Instant::now();
        let _ = extract_hierarchical(&lib, "cell");
        secs(t0.elapsed())
    };
    let _ = writeln!(
        out,
        "{:>8} | {:>9} {:>9} {:>9} | {:>10} {:>10} {:>10} {:>9}",
        "cells", "paperHEXT", "paper-k", "paperFlat", "HEXT(s)", "HEXT-k(s)", "flat(s)", "speedup"
    );
    let _ = writeln!(out, "{:>8} | measured k = {:.6} s", 1, k);
    let max_side = if scale >= 0.5 { 9 } else { 7 };
    for (i, s) in (5..=max_side).enumerate() {
        let cif = square_array_cif(s);
        let lib = Library::from_cif_text(&cif).expect("valid");
        let t0 = Instant::now();
        let _hext = extract_hierarchical(&lib, "array");
        let hext_t = secs(t0.elapsed());
        let t0 = Instant::now();
        let flat = extract_library(&lib, "array", ExtractOptions::new()).expect("extracts");
        let flat_t = secs(t0.elapsed());
        assert_eq!(flat.netlist.device_count() as u64, square_array_cells(s));
        let paper_row = paper::HEXT_TABLE_4_1.get(i);
        let _ = writeln!(
            out,
            "{:>8} | {:>9} {:>9} {:>9} | {:>10.4} {:>10.4} {:>10.4} {:>8.0}x",
            square_array_cells(s),
            paper_row.map_or("-".into(), |r| format!("{:.1}", r.hext_secs)),
            paper_row.map_or("-".into(), |r| format!("{:.1}", r.hext_minus_k_secs)),
            paper_row
                .and_then(|r| r.flat_secs)
                .map_or("-".into(), |v| format!("{v:.1}")),
            hext_t,
            (hext_t - k).max(0.0),
            flat_t,
            flat_t / hext_t,
        );
    }
    let _ = writeln!(
        out,
        "\nshape check: each 4x increase in cells roughly doubles HEXT-k \
         (the paper's O(sqrt N)); the flat extractor quadruples (O(N))."
    );
    out
}

fn hext_table_5_1(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## HEXT Table 5-1 — HEXT vs flat ACE on the benchmark chips (chip scale {scale})\n"
    );
    let _ = writeln!(
        out,
        "{:<9} | {:>7} {:>7} {:>7} {:>7} | {:>9} {:>9} {:>9} {:>9} {:>8}",
        "chip",
        "pFront",
        "pBack",
        "pTotal",
        "pACE",
        "front(s)",
        "back(s)",
        "total(s)",
        "ACE(s)",
        "ratio"
    );
    for row in paper::HEXT_TABLE_5_1 {
        let spec = paper_chip(row.name).expect("paper chip");
        let (_chip, lib) = build_chip(spec, scale);
        let t0 = Instant::now();
        let hext = extract_hierarchical(&lib, row.name);
        let hext_t = secs(t0.elapsed());
        let t0 = Instant::now();
        let _ = extract_library(&lib, row.name, ExtractOptions::new()).expect("extracts");
        let ace_t = secs(t0.elapsed());
        let _ = writeln!(
            out,
            "{:<9} | {:>7} {:>7} {:>7} {:>7} | {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>8.2}",
            row.name,
            mmss(row.front_secs as f64),
            mmss(row.back_secs as f64),
            mmss(row.total_secs as f64),
            mmss(row.ace_secs as f64),
            secs(hext.report.front_end_time),
            secs(hext.report.back_end_time),
            hext_t,
            ace_t,
            ace_t / hext_t,
        );
    }
    let _ = writeln!(
        out,
        "\nshape check: HEXT wins big on the regular testram, modestly on \
         dchip/riscb, and loses (or nearly so) on the irregular schip2/psc — \
         the paper's pattern. ratio > 1 means HEXT is faster."
    );
    out
}

fn hext_table_5_2(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## HEXT Table 5-2 — back-end analysis (chip scale {scale})\n"
    );
    let _ = writeln!(
        out,
        "{:<9} | {:>6} {:>8} {:>6} | {:>7} {:>9} {:>9} {:>9} {:>7}",
        "chip", "pFlat#", "pComp#", "pComp%", "flat#", "compose#", "back(s)", "comp(s)", "comp%"
    );
    let mut percents = Vec::new();
    for row in paper::HEXT_TABLE_5_2 {
        let spec = paper_chip(row.name).expect("paper chip");
        let (_chip, lib) = build_chip(spec, scale);
        let hext = extract_hierarchical(&lib, row.name);
        percents.push(hext.report.compose_percent());
        let _ = writeln!(
            out,
            "{:<9} | {:>6} {:>8} {:>5}% | {:>7} {:>9} {:>9.3} {:>9.3} {:>6.0}%",
            row.name,
            row.flat_calls,
            row.compose_calls,
            row.compose_percent,
            hext.report.flat_calls,
            hext.report.compose_calls,
            secs(hext.report.back_end_time),
            secs(hext.report.compose_time),
            hext.report.compose_percent(),
        );
    }
    let avg = percents.iter().sum::<f64>() / percents.len() as f64;
    let _ = writeln!(
        out,
        "\nshape check: composing dominates the back-end (measured average \
         {avg:.0}%; the paper reports 72% on average) — 'it is more important \
         to optimize the algorithms for the compose routine than those for \
         the flat extractor.'"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_round_trip() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::from_id(e.id()), Some(e));
        }
        assert_eq!(Experiment::from_id("nope"), None);
    }

    #[test]
    fn tiny_experiments_produce_reports() {
        // Smoke-test the cheap experiments at minuscule scale.
        let t = run_experiment(Experiment::AceWorstCase, 0.02);
        assert!(t.contains("worst case"));
        let t = run_experiment(Experiment::AceTimeDistribution, 0.005);
        assert!(t.contains("distribution"));
    }
}
