//! Benchmark harness for the ACE / HEXT reproduction.
//!
//! Each function in [`experiments`] regenerates one table or figure
//! of the papers' evaluations and returns it as formatted text with
//! the paper's published numbers alongside the measured ones. The
//! `repro` binary drives them; the Criterion benches in `benches/`
//! cover the same workloads for statistically careful timing.
//!
//! Absolute times are of course not comparable with a VAX-11/780 —
//! what must match is the *shape*: linearity of the flat extractor,
//! the O(√N) array behaviour of the hierarchical one, who wins on
//! which chip, and where the time goes.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod paper;

pub use experiments::{run_all, run_experiment, Experiment};
