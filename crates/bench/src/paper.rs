//! The papers' published numbers, for side-by-side reporting.

/// One row of ACE Table 5-1 (performance on seven chips).
#[derive(Debug, Clone, Copy)]
pub struct AceChipRow {
    /// Chip name.
    pub name: &'static str,
    /// Device count.
    pub devices: u64,
    /// Box count.
    pub boxes: u64,
    /// User + system time in seconds on the VAX-11/780.
    pub ace_secs: u32,
}

/// ACE Table 5-1.
pub const ACE_TABLE_5_1: [AceChipRow; 7] = [
    AceChipRow {
        name: "cherry",
        devices: 881,
        boxes: 7_400,
        ace_secs: 65,
    },
    AceChipRow {
        name: "dchip",
        devices: 4_884,
        boxes: 50_700,
        ace_secs: 612,
    },
    AceChipRow {
        name: "schip2",
        devices: 9_473,
        boxes: 109_000,
        ace_secs: 1_092,
    },
    AceChipRow {
        name: "testram",
        devices: 20_480,
        boxes: 196_900,
        ace_secs: 1_596,
    },
    AceChipRow {
        name: "psc",
        devices: 25_521,
        boxes: 251_500,
        ace_secs: 2_474,
    },
    AceChipRow {
        name: "scheme81",
        devices: 32_031,
        boxes: 418_300,
        ace_secs: 4_434,
    },
    AceChipRow {
        name: "riscb",
        devices: 42_084,
        boxes: 533_000,
        ace_secs: 5_532,
    },
];

/// One row of ACE Table 5-2 (comparison with Partlist and Cifplot).
/// `None` marks the paper's "-" entries (the run was not attempted).
#[derive(Debug, Clone, Copy)]
pub struct ComparisonRow {
    /// Chip name.
    pub name: &'static str,
    /// ACE seconds.
    pub ace_secs: u32,
    /// Partlist seconds.
    pub partlist_secs: Option<u32>,
    /// Cifplot seconds.
    pub cifplot_secs: Option<u32>,
}

/// ACE Table 5-2.
pub const ACE_TABLE_5_2: [ComparisonRow; 5] = [
    ComparisonRow {
        name: "cherry",
        ace_secs: 65,
        partlist_secs: Some(170),
        cifplot_secs: Some(285),
    },
    ComparisonRow {
        name: "dchip",
        ace_secs: 612,
        partlist_secs: Some(1_114),
        cifplot_secs: Some(2_781),
    },
    ComparisonRow {
        name: "schip2",
        ace_secs: 1_092,
        partlist_secs: Some(2_106),
        cifplot_secs: Some(5_715),
    },
    ComparisonRow {
        name: "testram",
        ace_secs: 1_596,
        partlist_secs: Some(2_767),
        cifplot_secs: None,
    },
    ComparisonRow {
        name: "riscb",
        ace_secs: 5_803,
        partlist_secs: None,
        cifplot_secs: None,
    },
];

/// §5's coarse time distribution over the extraction algorithm, in
/// percent: parse/sort, enter geometry, compute devices, alloc/io,
/// miscellaneous.
pub const ACE_TIME_DISTRIBUTION: [(&str, f64); 5] = [
    ("parsing, interpreting and sorting the CIF file", 40.0),
    ("entering new geometry into lists", 15.0),
    ("computing devices, nets, etc.", 20.0),
    ("storage allocation, input/output, and initialization", 10.0),
    ("miscellaneous", 15.0),
];

/// One row of HEXT Table 4-1 (square arrays of identical cells).
#[derive(Debug, Clone, Copy)]
pub struct HextArrayRow {
    /// Number of cells.
    pub cells: u64,
    /// HEXT total seconds.
    pub hext_secs: f64,
    /// HEXT minus the single-cell cost k = 6.0 s.
    pub hext_minus_k_secs: f64,
    /// Flat extractor seconds (`None` for the entry the paper left
    /// blank).
    pub flat_secs: Option<f64>,
}

/// HEXT Table 4-1 (k = 6.0 s is the cost of extracting one cell).
pub const HEXT_TABLE_4_1: [HextArrayRow; 5] = [
    HextArrayRow {
        cells: 1_024,
        hext_secs: 7.6,
        hext_minus_k_secs: 1.6,
        flat_secs: Some(25.5),
    },
    HextArrayRow {
        cells: 4_096,
        hext_secs: 9.2,
        hext_minus_k_secs: 3.2,
        flat_secs: Some(103.6),
    },
    HextArrayRow {
        cells: 16_384,
        hext_secs: 12.8,
        hext_minus_k_secs: 6.8,
        flat_secs: Some(410.1),
    },
    HextArrayRow {
        cells: 65_536,
        hext_secs: 18.7,
        hext_minus_k_secs: 12.7,
        flat_secs: Some(1_844.1),
    },
    HextArrayRow {
        cells: 262_144,
        hext_secs: 33.8,
        hext_minus_k_secs: 27.8,
        flat_secs: None,
    },
];

/// One row of HEXT Table 5-1 (performance on real chips).
#[derive(Debug, Clone, Copy)]
pub struct HextChipRow {
    /// Chip name.
    pub name: &'static str,
    /// Device count.
    pub devices: u64,
    /// HEXT front-end seconds.
    pub front_secs: u32,
    /// HEXT back-end seconds.
    pub back_secs: u32,
    /// HEXT total seconds.
    pub total_secs: u32,
    /// Flat ACE seconds.
    pub ace_secs: u32,
}

/// HEXT Table 5-1.
pub const HEXT_TABLE_5_1: [HextChipRow; 6] = [
    HextChipRow {
        name: "cherry",
        devices: 881,
        front_secs: 49,
        back_secs: 72,
        total_secs: 121,
        ace_secs: 65,
    },
    HextChipRow {
        name: "dchip",
        devices: 4_884,
        front_secs: 187,
        back_secs: 237,
        total_secs: 424,
        ace_secs: 612,
    },
    HextChipRow {
        name: "schip2",
        devices: 9_473,
        front_secs: 522,
        back_secs: 1_146,
        total_secs: 1_668,
        ace_secs: 1_092,
    },
    HextChipRow {
        name: "testram",
        devices: 20_480,
        front_secs: 24,
        back_secs: 72,
        total_secs: 96,
        ace_secs: 1_596,
    },
    HextChipRow {
        name: "psc",
        devices: 25_521,
        front_secs: 1_137,
        back_secs: 1_814,
        total_secs: 2_951,
        ace_secs: 2_474,
    },
    HextChipRow {
        name: "riscb",
        devices: 42_084,
        front_secs: 537,
        back_secs: 1_099,
        total_secs: 1_636,
        ace_secs: 5_532,
    },
];

/// One row of HEXT Table 5-2 (back-end analysis).
#[derive(Debug, Clone, Copy)]
pub struct HextBackendRow {
    /// Chip name.
    pub name: &'static str,
    /// Calls to the flat extractor.
    pub flat_calls: u64,
    /// Calls to the compose routine.
    pub compose_calls: u64,
    /// Back-end seconds.
    pub back_secs: u32,
    /// Compose seconds.
    pub compose_secs: u32,
    /// Percent of back-end time composing.
    pub compose_percent: u32,
}

/// HEXT Table 5-2 ("on an average 72% of total time is spent in
/// composing windows").
pub const HEXT_TABLE_5_2: [HextBackendRow; 6] = [
    HextBackendRow {
        name: "cherry",
        flat_calls: 205,
        compose_calls: 463,
        back_secs: 72,
        compose_secs: 34,
        compose_percent: 47,
    },
    HextBackendRow {
        name: "dchip",
        flat_calls: 375,
        compose_calls: 1_886,
        back_secs: 237,
        compose_secs: 157,
        compose_percent: 66,
    },
    HextBackendRow {
        name: "schip2",
        flat_calls: 538,
        compose_calls: 6_409,
        back_secs: 1_146,
        compose_secs: 1_078,
        compose_percent: 94,
    },
    HextBackendRow {
        name: "testram",
        flat_calls: 45,
        compose_calls: 1_089,
        back_secs: 72,
        compose_secs: 62,
        compose_percent: 86,
    },
    HextBackendRow {
        name: "psc",
        flat_calls: 3_756,
        compose_calls: 11_565,
        back_secs: 1_814,
        compose_secs: 1_424,
        compose_percent: 79,
    },
    HextBackendRow {
        name: "riscb",
        flat_calls: 1_499,
        compose_calls: 8_785,
        back_secs: 1_099,
        compose_secs: 663,
        compose_percent: 60,
    },
];

/// Formats seconds as the papers' `m:ss`.
pub fn mmss(secs: f64) -> String {
    let total = secs.round() as u64;
    format!("{}:{:02}", total / 60, total % 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_have_expected_sizes() {
        assert_eq!(ACE_TABLE_5_1.len(), 7);
        assert_eq!(ACE_TABLE_5_2.len(), 5);
        assert_eq!(HEXT_TABLE_4_1.len(), 5);
        assert_eq!(HEXT_TABLE_5_1.len(), 6);
        assert_eq!(HEXT_TABLE_5_2.len(), 6);
    }

    #[test]
    fn paper_rates_are_near_100_boxes_per_second() {
        // "The extractor is capable of analyzing a circuit with 20,000
        // transistors in less than 30 minutes" — about 100 boxes/s.
        for row in ACE_TABLE_5_1 {
            let rate = row.boxes as f64 / row.ace_secs as f64;
            assert!((80.0..130.0).contains(&rate), "{}: {rate}", row.name);
        }
    }

    #[test]
    fn mmss_formats_like_the_paper() {
        assert_eq!(mmss(65.0), "1:05");
        assert_eq!(mmss(1596.0), "26:36");
        assert_eq!(mmss(5.4), "0:05");
    }

    #[test]
    fn hext_array_halving_property_holds_in_paper_data() {
        // "for every four-fold increase in the number of cells, the
        // extraction time in the third column increases only by a
        // factor of two."
        for pair in HEXT_TABLE_4_1.windows(2) {
            let ratio = pair[1].hext_minus_k_secs / pair[0].hext_minus_k_secs;
            assert!((1.5..2.6).contains(&ratio), "ratio {ratio}");
        }
    }
}
