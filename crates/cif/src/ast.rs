use std::collections::BTreeMap;
use std::fmt;

use ace_geom::{Layer, Point, Polygon, Rect, Transform, Wire};

/// Identifier of a CIF symbol (the integer after `DS`).
pub type SymbolId = u32;

/// One geometric shape on a layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// An axis-aligned box (`B` command).
    Box(Rect),
    /// A polygon (`P` command).
    Polygon(Polygon),
    /// A wire (`W` command).
    Wire(Wire),
    /// A round flash (`R` command): radius and center. Instantiation
    /// approximates it by the inscribed octagon.
    RoundFlash {
        /// Flash diameter, as written in the CIF (`R d cx cy`).
        diameter: i64,
        /// Flash center.
        center: Point,
    },
}

impl Shape {
    /// The shape's bounding box (`None` for degenerate polygons/wires).
    pub fn bounding_box(&self) -> Option<Rect> {
        match self {
            Shape::Box(r) => Some(*r),
            Shape::Polygon(p) => p.bounding_box(),
            Shape::Wire(w) => {
                let half = w.width() / 2;
                let mut it = w.path().iter();
                let first = *it.next()?;
                let mut bb = Rect::new(first.x, first.y, first.x, first.y);
                for p in it {
                    bb = Rect::new(
                        bb.x_min.min(p.x),
                        bb.y_min.min(p.y),
                        bb.x_max.max(p.x),
                        bb.y_max.max(p.y),
                    );
                }
                Some(bb.inflate(half))
            }
            Shape::RoundFlash { diameter, center } => {
                let r = diameter / 2;
                Some(Rect::new(
                    center.x - r,
                    center.y - r,
                    center.x + r,
                    center.y + r,
                ))
            }
        }
    }
}

/// One parsed CIF command, with layer state already resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Geometry on a resolved layer.
    Geometry {
        /// The mask layer in effect when the shape was read.
        layer: Layer,
        /// The shape.
        shape: Shape,
    },
    /// A symbol call (`C id transforms…`).
    Call {
        /// Callee symbol id.
        symbol: SymbolId,
        /// Net transform of the call's transform list.
        transform: Transform,
    },
    /// A `94 name x y [layer]` net label.
    Label {
        /// The user-defined signal name.
        name: String,
        /// Label position.
        at: Point,
        /// Optional layer restriction.
        layer: Option<Layer>,
    },
    /// A `9 name` cell-name extension.
    CellName(String),
    /// Any other user extension command, kept verbatim (without the
    /// terminating semicolon).
    UserExtension(String),
}

/// A symbol definition (`DS id a b; … DF;`), with the `a/b` scale
/// factor already applied to all coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolDef {
    /// The symbol's numeric id.
    pub id: SymbolId,
    /// Commands in definition order.
    pub items: Vec<Command>,
}

impl SymbolDef {
    /// The symbol's cell name, if a `9 name` extension was present.
    pub fn cell_name(&self) -> Option<&str> {
        self.items.iter().find_map(|c| match c {
            Command::CellName(n) => Some(n.as_str()),
            _ => None,
        })
    }
}

/// A parsed CIF file.
///
/// Symbol definitions are kept in a map by id; commands outside any
/// definition form the top level (the chip itself).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CifFile {
    symbols: BTreeMap<SymbolId, SymbolDef>,
    top: Vec<Command>,
}

impl CifFile {
    /// Creates an empty file.
    pub fn new() -> Self {
        CifFile::default()
    }

    /// The symbol table.
    pub fn symbols(&self) -> &BTreeMap<SymbolId, SymbolDef> {
        &self.symbols
    }

    /// Looks up a symbol by id.
    pub fn symbol(&self, id: SymbolId) -> Option<&SymbolDef> {
        self.symbols.get(&id)
    }

    /// The top-level command list.
    pub fn top_level(&self) -> &[Command] {
        &self.top
    }

    /// Adds or replaces a symbol definition.
    pub fn insert_symbol(&mut self, def: SymbolDef) {
        self.symbols.insert(def.id, def);
    }

    /// Removes symbols with `id >= min_id` (the `DD` command).
    pub fn delete_symbols_from(&mut self, min_id: SymbolId) {
        self.symbols.retain(|&id, _| id < min_id);
    }

    /// Appends a top-level command.
    pub fn push_top_level(&mut self, cmd: Command) {
        self.top.push(cmd);
    }

    /// Total number of geometry commands, across all symbols and the
    /// top level (before instantiation).
    pub fn geometry_count(&self) -> usize {
        let count = |items: &[Command]| {
            items
                .iter()
                .filter(|c| matches!(c, Command::Geometry { .. }))
                .count()
        };
        self.symbols
            .values()
            .map(|s| count(&s.items))
            .sum::<usize>()
            + count(&self.top)
    }
}

impl fmt::Display for CifFile {
    /// Formats as CIF text (see [`crate::write_cif`]).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::write_cif(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_bounding_boxes() {
        let b = Shape::Box(Rect::new(0, 0, 10, 20));
        assert_eq!(b.bounding_box(), Some(Rect::new(0, 0, 10, 20)));

        let p = Shape::Polygon(Polygon::new(vec![
            Point::new(0, 0),
            Point::new(10, 0),
            Point::new(0, 10),
        ]));
        assert_eq!(p.bounding_box(), Some(Rect::new(0, 0, 10, 10)));

        let w = Shape::Wire(Wire::new(4, vec![Point::new(0, 0), Point::new(10, 0)]));
        assert_eq!(w.bounding_box(), Some(Rect::new(-2, -2, 12, 2)));

        let r = Shape::RoundFlash {
            diameter: 10,
            center: Point::new(5, 5),
        };
        assert_eq!(r.bounding_box(), Some(Rect::new(0, 0, 10, 10)));

        let empty = Shape::Polygon(Polygon::new(vec![]));
        assert_eq!(empty.bounding_box(), None);
    }

    #[test]
    fn file_symbol_management() {
        let mut f = CifFile::new();
        f.insert_symbol(SymbolDef {
            id: 1,
            items: vec![],
        });
        f.insert_symbol(SymbolDef {
            id: 5,
            items: vec![Command::CellName("inv".into())],
        });
        assert_eq!(f.symbols().len(), 2);
        assert_eq!(f.symbol(5).and_then(SymbolDef::cell_name), Some("inv"));
        f.delete_symbols_from(5);
        assert!(f.symbol(5).is_none());
        assert!(f.symbol(1).is_some());
    }

    #[test]
    fn geometry_count_spans_symbols_and_top() {
        let mut f = CifFile::new();
        let geo = Command::Geometry {
            layer: Layer::Poly,
            shape: Shape::Box(Rect::new(0, 0, 1, 1)),
        };
        f.insert_symbol(SymbolDef {
            id: 1,
            items: vec![geo.clone(), geo.clone()],
        });
        f.push_top_level(geo);
        f.push_top_level(Command::Call {
            symbol: 1,
            transform: Transform::identity(),
        });
        assert_eq!(f.geometry_count(), 3);
    }
}
