use std::error::Error;
use std::fmt;

/// Error produced while parsing CIF text.
///
/// Carries the 1-based line number where the problem was found and a
/// human-readable description.
///
/// # Examples
///
/// ```
/// use ace_cif::parse;
///
/// let err = parse("B 10 10;").unwrap_err(); // geometry before any L command
/// assert!(err.to_string().contains("line 1"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCifError {
    line: u32,
    message: String,
}

impl ParseCifError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> Self {
        ParseCifError {
            line,
            message: message.into(),
        }
    }

    /// 1-based line number of the offending command.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// Description of the problem.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseCifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cif parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseCifError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_and_message() {
        let e = ParseCifError::new(42, "unexpected token");
        assert_eq!(e.line(), 42);
        assert_eq!(e.message(), "unexpected token");
        assert_eq!(
            e.to_string(),
            "cif parse error at line 42: unexpected token"
        );
    }
}
