//! Low-level CIF lexical scanner.
//!
//! CIF's lexical rules are unusual and permissive: outside comments,
//! *any* character that is not a digit, an uppercase letter, `-`, `(`,
//! `)` or `;` is blank padding. Comments are parenthesized and nest.
//! Commands are terminated by `;`.

use crate::error::ParseCifError;

/// Scanner over CIF source text.
pub(crate) struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Current 1-based line number.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn line(&self) -> u32 {
        self.line
    }

    pub fn error(&self, message: impl Into<String>) -> ParseCifError {
        ParseCifError::new(self.line, message)
    }

    fn bump(&mut self) -> Option<u8> {
        let c = *self.src.get(self.pos)?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    /// Skips blanks and comments. Significant characters are digits,
    /// uppercase letters, `-`, and `;`.
    pub fn skip_blanks(&mut self) -> Result<(), ParseCifError> {
        loop {
            match self.peek() {
                Some(b'(') => self.skip_comment()?,
                Some(c)
                    if c.is_ascii_digit() || c.is_ascii_uppercase() || c == b'-' || c == b';' =>
                {
                    return Ok(())
                }
                Some(b')') => {
                    return Err(self.error("unmatched ')' outside comment"));
                }
                Some(_) => {
                    self.bump();
                }
                None => return Ok(()),
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), ParseCifError> {
        let open_line = self.line;
        debug_assert_eq!(self.peek(), Some(b'('));
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match self.bump() {
                Some(b'(') => depth += 1,
                Some(b')') => depth -= 1,
                Some(_) => {}
                None => {
                    return Err(ParseCifError::new(
                        open_line,
                        "unterminated comment".to_string(),
                    ))
                }
            }
        }
        Ok(())
    }

    /// `true` when nothing but blanks remain.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn at_end(&mut self) -> Result<bool, ParseCifError> {
        self.skip_blanks()?;
        Ok(self.peek().is_none())
    }

    /// Reads the next command's leading character (a letter or digit),
    /// skipping blanks and empty commands (stray semicolons).
    pub fn next_command_start(&mut self) -> Result<Option<u8>, ParseCifError> {
        loop {
            self.skip_blanks()?;
            match self.peek() {
                Some(b';') => {
                    self.bump(); // empty command
                }
                Some(c) if c.is_ascii_uppercase() || c.is_ascii_digit() => {
                    return Ok(Some(c));
                }
                Some(c) => {
                    return Err(self.error(format!(
                        "unexpected character '{}' at command start",
                        c as char
                    )))
                }
                None => return Ok(None),
            }
        }
    }

    /// Consumes one uppercase letter.
    pub fn take_letter(&mut self) -> Result<u8, ParseCifError> {
        self.skip_blanks()?;
        match self.peek() {
            Some(c) if c.is_ascii_uppercase() => {
                self.bump();
                Ok(c)
            }
            other => Err(self.error(format!(
                "expected a command letter, found {:?}",
                other.map(|c| c as char)
            ))),
        }
    }

    /// Peeks whether an integer (digit or `-`) comes before the next
    /// `;` or letter.
    pub fn peek_integer(&mut self) -> Result<bool, ParseCifError> {
        self.skip_blanks()?;
        Ok(matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'-'))
    }

    /// Peeks whether an uppercase letter comes next.
    pub fn peek_letter(&mut self) -> Result<Option<u8>, ParseCifError> {
        self.skip_blanks()?;
        match self.peek() {
            Some(c) if c.is_ascii_uppercase() => Ok(Some(c)),
            _ => Ok(None),
        }
    }

    /// Reads a signed integer.
    pub fn read_integer(&mut self) -> Result<i64, ParseCifError> {
        self.skip_blanks()?;
        let negative = if self.peek() == Some(b'-') {
            self.bump();
            true
        } else {
            false
        };
        let mut saw_digit = false;
        let mut value: i64 = 0;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                saw_digit = true;
                value = value
                    .checked_mul(10)
                    .and_then(|v| v.checked_add((c - b'0') as i64))
                    .ok_or_else(|| self.error("integer overflow"))?;
                self.bump();
            } else {
                break;
            }
        }
        if !saw_digit {
            return Err(self.error("expected an integer"));
        }
        Ok(if negative { -value } else { value })
    }

    /// Reads a short name of uppercase letters and digits (layer
    /// names, at most 4 characters per the CIF spec — longer names are
    /// accepted and reported by the parser).
    pub fn read_short_name(&mut self) -> Result<String, ParseCifError> {
        self.skip_blanks()?;
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_uppercase() || c.is_ascii_digit() {
                name.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        if name.is_empty() {
            return Err(self.error("expected a name"));
        }
        Ok(name)
    }

    /// Reads a free-form word: consecutive non-space, non-semicolon
    /// printable characters. Used for `94` label names, which may mix
    /// cases and punctuation.
    pub fn read_word(&mut self) -> Result<String, ParseCifError> {
        // Labels use ordinary whitespace separation, not full CIF
        // blank rules (a lowercase name must not be skipped).
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace() || c == b',') {
            self.bump();
        }
        let mut word = String::new();
        while let Some(c) = self.peek() {
            if c == b';' || c.is_ascii_whitespace() {
                break;
            }
            word.push(c as char);
            self.bump();
        }
        if word.is_empty() {
            return Err(self.error("expected a word"));
        }
        Ok(word)
    }

    /// Returns everything up to (not including) the terminating `;`,
    /// trimmed. Consumes the semicolon.
    pub fn read_rest_of_command(&mut self) -> Result<String, ParseCifError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                Some(b';') => {
                    self.bump();
                    return Ok(text.trim().to_string());
                }
                Some(c) => {
                    text.push(c as char);
                    self.bump();
                }
                None => return Err(self.error("unterminated command (missing ';')")),
            }
        }
    }

    /// Consumes the command-terminating semicolon.
    pub fn expect_semicolon(&mut self) -> Result<(), ParseCifError> {
        self.skip_blanks()?;
        match self.peek() {
            Some(b';') => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!(
                "expected ';', found {:?}",
                other.map(|c| c as char)
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_with_padding() {
        let mut lx = Lexer::new("  12,, -7 xyz 0");
        assert_eq!(lx.read_integer().unwrap(), 12);
        assert_eq!(lx.read_integer().unwrap(), -7);
        assert_eq!(lx.read_integer().unwrap(), 0);
    }

    #[test]
    fn comments_are_blanks_and_nest() {
        let mut lx = Lexer::new("(outer (inner) more) 42;");
        assert_eq!(lx.read_integer().unwrap(), 42);
        lx.expect_semicolon().unwrap();
        assert!(lx.at_end().unwrap());
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        let mut lx = Lexer::new("(never closed");
        assert!(lx.skip_blanks().is_err());
    }

    #[test]
    fn unmatched_close_paren_is_an_error() {
        let mut lx = Lexer::new(") B;");
        assert!(lx.skip_blanks().is_err());
    }

    #[test]
    fn line_numbers_advance() {
        let mut lx = Lexer::new("\n\n  99;");
        assert_eq!(lx.read_integer().unwrap(), 99);
        assert_eq!(lx.line(), 3);
    }

    #[test]
    fn command_start_skips_empty_commands() {
        let mut lx = Lexer::new(";;; B 1 2 3 4;");
        assert_eq!(lx.next_command_start().unwrap(), Some(b'B'));
    }

    #[test]
    fn short_name_reading() {
        let mut lx = Lexer::new("  ND;");
        assert_eq!(lx.read_short_name().unwrap(), "ND");
        lx.expect_semicolon().unwrap();
    }

    #[test]
    fn word_reading_preserves_case_and_punctuation() {
        let mut lx = Lexer::new("  Vdd!bus  -120 40;");
        assert_eq!(lx.read_word().unwrap(), "Vdd!bus");
        assert_eq!(lx.read_integer().unwrap(), -120);
        assert_eq!(lx.read_integer().unwrap(), 40);
    }

    #[test]
    fn rest_of_command() {
        let mut lx = Lexer::new("abc def ; next");
        assert_eq!(lx.read_rest_of_command().unwrap(), "abc def");
    }

    #[test]
    fn missing_integer_is_an_error() {
        let mut lx = Lexer::new("  ;");
        assert!(lx.read_integer().is_err());
        // A bare minus with no digits is also an error.
        let mut lx = Lexer::new("-;");
        assert!(lx.read_integer().is_err());
    }

    #[test]
    fn peeks() {
        let mut lx = Lexer::new(" 5 T");
        assert!(lx.peek_integer().unwrap());
        assert_eq!(lx.read_integer().unwrap(), 5);
        assert!(!lx.peek_integer().unwrap());
        assert_eq!(lx.peek_letter().unwrap(), Some(b'T'));
        assert_eq!(lx.take_letter().unwrap(), b'T');
        assert!(lx.at_end().unwrap());
    }
}
