//! Caltech Intermediate Form (CIF 2.0) lexer, parser, and writer.
//!
//! "The input to the ACE program is the artwork of a chip expressed in
//! CIF (Caltech Intermediate Form)" (paper §3). This crate turns CIF
//! text into a structured [`CifFile`]: symbol definitions, geometry on
//! the NMOS mask layers, symbol calls with their transforms, and the
//! CMU `94` net-name labels ("Names in CIF", Sproull, VLSI Document
//! V062).
//!
//! Supported commands:
//!
//! | Command | Meaning |
//! |---------|---------|
//! | `B l w cx cy [dx dy]` | box (optional direction vectors are snapped to an axis) |
//! | `P x1 y1 …` | polygon |
//! | `W w x1 y1 …` | wire |
//! | `R r cx cy` | round flash (approximated by an octagon) |
//! | `L name` | layer switch |
//! | `DS id [a b]` / `DF` | symbol definition with scale `a/b` |
//! | `DD id` | delete definitions (accepted, applied) |
//! | `C id [T x y \| MX \| MY \| R a b] …` | symbol call with transform list |
//! | `9 name` | cell name (user extension) |
//! | `94 name x y [layer]` | net-name label (user extension) |
//! | `( … )` | comment (nesting allowed) |
//! | `E` | end marker |
//!
//! Other user extensions (`0`–`8` prefixed commands) are preserved as
//! raw text and otherwise ignored, per the CIF convention.
//!
//! # Examples
//!
//! ```
//! use ace_cif::parse;
//!
//! let file = parse("
//!     DS 1 1 1;
//!     L ND; B 400 1600 0 0;
//!     L NP; B 1600 400 0 0;
//!     DF;
//!     C 1 T 0 0;
//!     E
//! ")?;
//! assert_eq!(file.symbols().len(), 1);
//! assert_eq!(file.top_level().len(), 1);
//! # Ok::<(), ace_cif::ParseCifError>(())
//! ```

#![forbid(unsafe_code)]

mod ast;
mod error;
mod lex;
pub mod locate;
mod parse;
mod write;

pub use ast::{CifFile, Command, Shape, SymbolDef, SymbolId};
pub use error::ParseCifError;
pub use locate::{label_line, label_sites, LabelSite};
pub use parse::parse;
pub use write::{write_cif, CifWriter};
