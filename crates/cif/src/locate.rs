//! Source-location recovery for CIF net-name labels.
//!
//! The parser's [`crate::Command`] values carry no source positions —
//! the extractor never needs them. Diagnostics do: an ERC lint that
//! flags a net wants to point back at the `94` label line that named
//! it. This module re-scans the *text* (comment-aware, counting
//! newlines) and reports where each `94 name x y [layer]` command
//! starts, so an emitter can attach `startLine` regions without the
//! whole AST growing position fields.
//!
//! The mapping is best-effort by design: a label inside a symbol
//! definition is written once but instantiated many times, and the
//! instantiated (transformed) position no longer equals the file
//! coordinates. Consumers therefore match primarily by *name* — the
//! first occurrence of a name is its canonical source site.

use ace_geom::Point;

/// One `94` label command as it appears in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelSite {
    /// The label's net name.
    pub name: String,
    /// Position as written (file coordinates, untransformed).
    pub at: Point,
    /// 1-based source line of the command's first token.
    pub line: u32,
}

/// Scans CIF text for `94` label commands, in file order.
///
/// Comments (which nest) are skipped; malformed `94` commands are
/// silently ignored — this is a lookup aid, not a validator (the
/// parser owns error reporting).
///
/// # Examples
///
/// ```
/// use ace_cif::locate::label_sites;
///
/// let sites = label_sites("L NM; B 4 4 0 0;\n94 OUT 0 0 NM;\nE");
/// assert_eq!(sites.len(), 1);
/// assert_eq!(sites[0].name, "OUT");
/// assert_eq!(sites[0].line, 2);
/// ```
pub fn label_sites(src: &str) -> Vec<LabelSite> {
    let mut sites = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();
    // The scanner walks command by command: skip separators and
    // comments, buffer up to the next ';', and pattern-match the
    // buffer against the `94` form.
    let mut command = String::new();
    let mut command_line = line;
    while let Some(c) = chars.next() {
        match c {
            '\n' => {
                line += 1;
                command.push(' ');
            }
            '(' => {
                // Nested comment: consume to the balancing ')'.
                let mut depth = 1usize;
                for c in chars.by_ref() {
                    match c {
                        '\n' => line += 1,
                        '(' => depth += 1,
                        ')' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
            ';' => {
                if let Some(site) = parse_label(&command, command_line) {
                    sites.push(site);
                }
                command.clear();
            }
            _ => {
                if command.trim().is_empty() && !c.is_whitespace() {
                    command_line = line;
                }
                command.push(c);
            }
        }
    }
    if let Some(site) = parse_label(&command, command_line) {
        sites.push(site);
    }
    sites
}

/// The source line of the first `94` command naming `name`, if any.
pub fn label_line(src: &str, name: &str) -> Option<u32> {
    label_sites(src)
        .into_iter()
        .find(|s| s.name == name)
        .map(|s| s.line)
}

fn parse_label(command: &str, line: u32) -> Option<LabelSite> {
    let mut tokens = command.split_whitespace();
    if tokens.next()? != "94" {
        return None;
    }
    let name = tokens.next()?.to_string();
    let x: i64 = tokens.next()?.parse().ok()?;
    let y: i64 = tokens.next()?.parse().ok()?;
    Some(LabelSite {
        name,
        at: Point::new(x, y),
        line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_labels_with_lines_and_positions() {
        let src = "L NM;\nB 400 400 0 0;\n94 VDD 0 200 NM;\n94 GND 0 -200;\nE";
        let sites = label_sites(src);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].name, "VDD");
        assert_eq!(sites[0].at, Point::new(0, 200));
        assert_eq!(sites[0].line, 3);
        assert_eq!(sites[1].name, "GND");
        assert_eq!(sites[1].line, 4);
    }

    #[test]
    fn comments_do_not_confuse_the_scan() {
        let src = "( a comment\nwith ( nested ) lines\n) 94 A 0 0;\n( 94 B 1 1; )\n94 C 2 2;";
        let sites = label_sites(src);
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["A", "C"]);
        assert_eq!(sites[0].line, 3);
        assert_eq!(sites[1].line, 5);
    }

    #[test]
    fn multiline_commands_report_their_first_token_line() {
        let src = "L NM; B 4 4 0 0;\n\n94 OUT\n  0 0\n  NM;\nE";
        let sites = label_sites(src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].line, 3);
    }

    #[test]
    fn label_line_matches_by_first_occurrence() {
        let src = "DS 1;\n94 X 0 0;\nDF;\n94 X 5 5;\nE";
        assert_eq!(label_line(src, "X"), Some(2));
        assert_eq!(label_line(src, "missing"), None);
    }

    #[test]
    fn malformed_labels_are_ignored() {
        let sites = label_sites("94;\n94 onlyname;\n94 N 1 notanumber;\n94 OK 1 2;");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].name, "OK");
        assert_eq!(sites[0].line, 4);
    }
}
