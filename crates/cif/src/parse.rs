use ace_geom::{Layer, Point, Polygon, Rect, Transform, Wire};

use crate::ast::{CifFile, Command, Shape, SymbolDef, SymbolId};
use crate::error::ParseCifError;
use crate::lex::Lexer;

/// Parses CIF source text into a [`CifFile`].
///
/// Layer state (`L` commands) is resolved during parsing and attached
/// to each geometry command, following the CIF rule that the current
/// layer is sticky until changed. The `DS a b` scale factor is applied
/// to every coordinate in the symbol body, including call-transform
/// operands, so the returned tree is entirely in absolute
/// centimicrons.
///
/// # Errors
///
/// Returns [`ParseCifError`] (with a line number) on malformed
/// commands, geometry before any `L` command, unknown layer names,
/// nested or unterminated symbol definitions, and trailing garbage
/// after the `E` end marker.
///
/// Degenerate geometry is rejected rather than silently fracturing
/// to nothing downstream: boxes and round flashes with non-positive
/// extents, wires with non-positive width (including widths scaled
/// to zero by `DS a b`), and polygons whose vertices are all
/// collinear (zero area, including repeated single points) are all
/// spanned parse errors.
///
/// # Examples
///
/// ```
/// use ace_cif::{parse, Command};
///
/// let file = parse("L NM; B 4800 800 -200 3400; E")?;
/// assert_eq!(file.top_level().len(), 1);
/// assert!(matches!(file.top_level()[0], Command::Geometry { .. }));
/// # Ok::<(), ace_cif::ParseCifError>(())
/// ```
pub fn parse(src: &str) -> Result<CifFile, ParseCifError> {
    Parser::new(src).run()
}

/// All points on one line (or one point): the cross product of every
/// vertex against the first distinct direction is zero.
fn all_collinear(pts: &[Point]) -> bool {
    let a = pts[0];
    let Some(b) = pts.iter().find(|p| **p != a) else {
        return true; // every vertex is the same point
    };
    pts.iter()
        .all(|p| (b.x - a.x) * (p.y - a.y) == (b.y - a.y) * (p.x - a.x))
}

struct Parser<'a> {
    lx: Lexer<'a>,
    file: CifFile,
    current_layer: Option<Layer>,
    /// `Some((def, a, b))` while inside `DS id a b; … DF;`.
    open_symbol: Option<(SymbolDef, i64, i64)>,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            lx: Lexer::new(src),
            file: CifFile::new(),
            current_layer: None,
            open_symbol: None,
        }
    }

    #[allow(clippy::while_let_loop)] // the E arm also exits the loop
    fn run(mut self) -> Result<CifFile, ParseCifError> {
        loop {
            let Some(start) = self.lx.next_command_start()? else {
                break;
            };
            match start {
                b'B' => {
                    self.lx.take_letter()?;
                    let shape = self.parse_box()?;
                    self.push_geometry(shape)?;
                }
                b'P' => {
                    self.lx.take_letter()?;
                    let shape = self.parse_polygon()?;
                    self.push_geometry(shape)?;
                }
                b'W' => {
                    self.lx.take_letter()?;
                    let shape = self.parse_wire()?;
                    self.push_geometry(shape)?;
                }
                b'R' => {
                    self.lx.take_letter()?;
                    let shape = self.parse_round_flash()?;
                    self.push_geometry(shape)?;
                }
                b'L' => {
                    self.lx.take_letter()?;
                    self.parse_layer()?;
                }
                b'D' => {
                    self.lx.take_letter()?;
                    self.parse_definition_command()?;
                }
                b'C' => {
                    self.lx.take_letter()?;
                    let call = self.parse_call()?;
                    self.push(call);
                }
                b'E' => {
                    self.lx.take_letter()?;
                    if let Some((def, _, _)) = &self.open_symbol {
                        return Err(self.lx.error(format!(
                            "end of file inside definition of symbol {}",
                            def.id
                        )));
                    }
                    // E terminates the file; anything after is ignored
                    // per CIF custom.
                    return Ok(self.file);
                }
                d if d.is_ascii_digit() => {
                    let cmd = self.parse_user_extension()?;
                    self.push(cmd);
                }
                other => {
                    return Err(self
                        .lx
                        .error(format!("unknown command '{}'", other as char)));
                }
            }
        }
        if let Some((def, _, _)) = &self.open_symbol {
            return Err(self
                .lx
                .error(format!("unterminated definition of symbol {}", def.id)));
        }
        Ok(self.file)
    }

    /// Applies the open symbol's `a/b` scale to a distance.
    fn scale(&self, v: i64) -> i64 {
        match &self.open_symbol {
            Some((_, a, b)) => v * a / b,
            None => v,
        }
    }

    fn scaled_int(&mut self) -> Result<i64, ParseCifError> {
        let v = self.lx.read_integer()?;
        Ok(self.scale(v))
    }

    fn push(&mut self, cmd: Command) {
        match &mut self.open_symbol {
            Some((def, _, _)) => def.items.push(cmd),
            None => self.file.push_top_level(cmd),
        }
    }

    fn push_geometry(&mut self, shape: Shape) -> Result<(), ParseCifError> {
        let layer = self
            .current_layer
            .ok_or_else(|| self.lx.error("geometry before any L (layer) command"))?;
        self.push(Command::Geometry { layer, shape });
        Ok(())
    }

    /// `B length width cx cy [dx dy];`
    fn parse_box(&mut self) -> Result<Shape, ParseCifError> {
        let length = self.scaled_int()?;
        let width = self.scaled_int()?;
        let cx = self.scaled_int()?;
        let cy = self.scaled_int()?;
        if length <= 0 || width <= 0 {
            return Err(self.lx.error("box with non-positive extent"));
        }
        // Optional direction vector. Arbitrary rotations are snapped
        // to the nearest axis (manhattan designs use axis directions).
        let (length, width) = if self.lx.peek_integer()? {
            let dx = self.lx.read_integer()?;
            let dy = self.lx.read_integer()?;
            if dx.abs() >= dy.abs() {
                (length, width)
            } else {
                (width, length)
            }
        } else {
            (length, width)
        };
        self.lx.expect_semicolon()?;
        Ok(Shape::Box(Rect::from_center_size(cx, cy, length, width)))
    }

    /// `P x1 y1 x2 y2 …;`
    fn parse_polygon(&mut self) -> Result<Shape, ParseCifError> {
        let mut pts = Vec::new();
        while self.lx.peek_integer()? {
            let x = self.scaled_int()?;
            let y = self.scaled_int()?;
            pts.push(Point::new(x, y));
        }
        self.lx.expect_semicolon()?;
        if pts.len() < 3 {
            return Err(self.lx.error("polygon needs at least 3 vertices"));
        }
        // A polygon whose vertices are all on one line (including a
        // repeated single point) has zero area and would silently
        // fracture to nothing; reject it here with a span instead.
        if all_collinear(&pts) {
            return Err(self
                .lx
                .error("degenerate polygon: all vertices are collinear"));
        }
        Ok(Shape::Polygon(Polygon::new(pts)))
    }

    /// `W width x1 y1 x2 y2 …;`
    fn parse_wire(&mut self) -> Result<Shape, ParseCifError> {
        let width = self.scaled_int()?;
        if width <= 0 {
            return Err(self.lx.error("wire with non-positive width"));
        }
        let mut pts = Vec::new();
        while self.lx.peek_integer()? {
            let x = self.scaled_int()?;
            let y = self.scaled_int()?;
            pts.push(Point::new(x, y));
        }
        self.lx.expect_semicolon()?;
        if pts.is_empty() {
            return Err(self.lx.error("wire needs at least 1 point"));
        }
        Ok(Shape::Wire(Wire::new(width, pts)))
    }

    /// `R diameter cx cy;`
    fn parse_round_flash(&mut self) -> Result<Shape, ParseCifError> {
        let diameter = self.scaled_int()?;
        let cx = self.scaled_int()?;
        let cy = self.scaled_int()?;
        self.lx.expect_semicolon()?;
        if diameter <= 0 {
            return Err(self.lx.error("round flash with non-positive diameter"));
        }
        Ok(Shape::RoundFlash {
            diameter,
            center: Point::new(cx, cy),
        })
    }

    /// `L name;`
    fn parse_layer(&mut self) -> Result<(), ParseCifError> {
        let name = self.lx.read_short_name()?;
        let layer = Layer::from_cif_name(&name)
            .ok_or_else(|| self.lx.error(format!("unknown NMOS layer '{name}'")))?;
        self.lx.expect_semicolon()?;
        self.current_layer = Some(layer);
        Ok(())
    }

    /// `DS id [a b];`, `DF;`, or `DD id;`
    fn parse_definition_command(&mut self) -> Result<(), ParseCifError> {
        let kind = self.lx.take_letter()?;
        match kind {
            b'S' => {
                if self.open_symbol.is_some() {
                    return Err(self.lx.error("nested symbol definition"));
                }
                let id = self.lx.read_integer()?;
                if id < 0 {
                    return Err(self.lx.error("negative symbol id"));
                }
                let (a, b) = if self.lx.peek_integer()? {
                    let a = self.lx.read_integer()?;
                    let b = self.lx.read_integer()?;
                    if a <= 0 || b <= 0 {
                        return Err(self.lx.error("non-positive DS scale factor"));
                    }
                    (a, b)
                } else {
                    (1, 1)
                };
                self.lx.expect_semicolon()?;
                self.open_symbol = Some((
                    SymbolDef {
                        id: id as SymbolId,
                        items: Vec::new(),
                    },
                    a,
                    b,
                ));
                Ok(())
            }
            b'F' => {
                self.lx.expect_semicolon()?;
                let (def, _, _) = self
                    .open_symbol
                    .take()
                    .ok_or_else(|| self.lx.error("DF without matching DS"))?;
                self.file.insert_symbol(def);
                Ok(())
            }
            b'D' => {
                let id = self.lx.read_integer()?;
                self.lx.expect_semicolon()?;
                if id < 0 {
                    return Err(self.lx.error("negative DD operand"));
                }
                self.file.delete_symbols_from(id as SymbolId);
                Ok(())
            }
            other => Err(self
                .lx
                .error(format!("unknown definition command 'D{}'", other as char))),
        }
    }

    /// `C id [T x y | M X | M Y | R a b] …;`
    fn parse_call(&mut self) -> Result<Command, ParseCifError> {
        let id = self.lx.read_integer()?;
        if id < 0 {
            return Err(self.lx.error("negative symbol id in call"));
        }
        let mut t = Transform::identity();
        loop {
            match self.lx.peek_letter()? {
                Some(b'T') => {
                    self.lx.take_letter()?;
                    let x = self.scaled_int()?;
                    let y = self.scaled_int()?;
                    t = t.translate(Point::new(x, y));
                }
                Some(b'M') => {
                    self.lx.take_letter()?;
                    match self.lx.take_letter()? {
                        b'X' => t = t.mirror_x(),
                        b'Y' => t = t.mirror_y(),
                        c => {
                            return Err(self
                                .lx
                                .error(format!("unknown mirror axis '{}'", c as char)))
                        }
                    }
                }
                Some(b'R') => {
                    self.lx.take_letter()?;
                    let a = self.lx.read_integer()?;
                    let b = self.lx.read_integer()?;
                    if a == 0 && b == 0 {
                        return Err(self.lx.error("zero rotation vector"));
                    }
                    // Snap to the nearest axis direction (manhattan
                    // layouts only use axis rotations).
                    let quarter_turns = if a.abs() >= b.abs() {
                        if a >= 0 {
                            0
                        } else {
                            2
                        }
                    } else if b > 0 {
                        1
                    } else {
                        3
                    };
                    t = t.rotate_quarter_turns(quarter_turns);
                }
                _ => break,
            }
        }
        self.lx.expect_semicolon()?;
        Ok(Command::Call {
            symbol: id as SymbolId,
            transform: t,
        })
    }

    /// Digit-prefixed user extension commands. `9 name` is a cell
    /// name; `94 name x y [layer]` is a net label; everything else is
    /// preserved verbatim.
    fn parse_user_extension(&mut self) -> Result<Command, ParseCifError> {
        let code = self.lx.read_integer()?;
        match code {
            9 => {
                let name = self.lx.read_rest_of_command()?;
                if name.is_empty() {
                    return Err(self.lx.error("empty cell name in '9' command"));
                }
                Ok(Command::CellName(name))
            }
            94 => {
                let name = self.lx.read_word()?;
                let x = self.scaled_int()?;
                let y = self.scaled_int()?;
                let layer = match self.lx.peek_letter()? {
                    Some(_) => {
                        let lname = self.lx.read_short_name()?;
                        Some(Layer::from_cif_name(&lname).ok_or_else(|| {
                            self.lx.error(format!("unknown layer '{lname}' in label"))
                        })?)
                    }
                    None => None,
                };
                self.lx.expect_semicolon()?;
                Ok(Command::Label {
                    name,
                    at: Point::new(x, y),
                    layer,
                })
            }
            _ => {
                let rest = self.lx.read_rest_of_command()?;
                Ok(Command::UserExtension(format!("{code} {rest}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes_of(cmds: &[Command]) -> Vec<Rect> {
        cmds.iter()
            .filter_map(|c| match c {
                Command::Geometry {
                    shape: Shape::Box(r),
                    ..
                } => Some(*r),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn minimal_box_file() {
        let f = parse("L ND; B 400 1600 0 0; E").unwrap();
        assert_eq!(
            boxes_of(f.top_level()),
            vec![Rect::new(-200, -800, 200, 800)]
        );
    }

    #[test]
    fn layer_is_sticky_across_commands() {
        let f = parse("L NP; B 10 10 0 0; B 20 20 100 100; E").unwrap();
        let layers: Vec<Layer> = f
            .top_level()
            .iter()
            .filter_map(|c| match c {
                Command::Geometry { layer, .. } => Some(*layer),
                _ => None,
            })
            .collect();
        assert_eq!(layers, vec![Layer::Poly, Layer::Poly]);
    }

    #[test]
    fn geometry_before_layer_errors() {
        let err = parse("B 10 10 0 0;").unwrap_err();
        assert!(err.message().contains("before any L"));
    }

    #[test]
    fn unknown_layer_errors() {
        let err = parse("L ZZ; B 10 10 0 0;").unwrap_err();
        assert!(err.message().contains("unknown NMOS layer"));
    }

    #[test]
    fn symbol_definition_and_call() {
        let f = parse("DS 1 1 1; 9 inv; L ND; B 400 1600 0 0; DF; C 1 T 100 200; C 1 MX T 0 0; E")
            .unwrap();
        let def = f.symbol(1).expect("symbol 1");
        assert_eq!(def.cell_name(), Some("inv"));
        assert_eq!(f.top_level().len(), 2);
        match &f.top_level()[0] {
            Command::Call { symbol, transform } => {
                assert_eq!(*symbol, 1);
                assert_eq!(
                    transform.apply_point(Point::new(0, 0)),
                    Point::new(100, 200)
                );
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn ds_scale_applies_to_body_coordinates() {
        // DS 1 2 1 doubles everything inside.
        let f = parse("DS 1 2 1; L ND; B 10 10 5 5; DF; E").unwrap();
        let def = f.symbol(1).unwrap();
        assert_eq!(
            boxes_of(&def.items),
            vec![Rect::from_center_size(10, 10, 20, 20)]
        );
    }

    #[test]
    fn ds_scale_applies_to_nested_call_translation() {
        let f = parse("DS 1 1 1; L ND; B 2 2 0 0; DF; DS 2 4 2; C 1 T 10 0; DF; E").unwrap();
        let def = f.symbol(2).unwrap();
        match &def.items[0] {
            Command::Call { transform, .. } => {
                assert_eq!(transform.translation(), Point::new(20, 0));
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn nested_ds_is_an_error() {
        let err = parse("DS 1; DS 2;").unwrap_err();
        assert!(err.message().contains("nested"));
    }

    #[test]
    fn unterminated_ds_is_an_error() {
        assert!(parse("DS 1; L ND; B 2 2 0 0;").is_err());
        assert!(parse("DS 1; L ND; B 2 2 0 0; E").is_err());
    }

    #[test]
    fn df_without_ds_is_an_error() {
        let err = parse("DF;").unwrap_err();
        assert!(err.message().contains("without matching DS"));
    }

    #[test]
    fn dd_deletes_symbols() {
        let f = parse("DS 1; DF; DS 2; DF; DD 2; E").unwrap();
        assert!(f.symbol(1).is_some());
        assert!(f.symbol(2).is_none());
    }

    #[test]
    fn polygon_and_wire_and_flash() {
        let f = parse("L NM; P 0 0 100 0 0 100; W 20 0 0 50 0; R 40 10 10; E").unwrap();
        assert_eq!(f.top_level().len(), 3);
        assert!(matches!(
            f.top_level()[0],
            Command::Geometry {
                shape: Shape::Polygon(_),
                ..
            }
        ));
        assert!(matches!(
            f.top_level()[1],
            Command::Geometry {
                shape: Shape::Wire(_),
                ..
            }
        ));
        assert!(matches!(
            f.top_level()[2],
            Command::Geometry {
                shape: Shape::RoundFlash { .. },
                ..
            }
        ));
    }

    #[test]
    fn degenerate_shapes_error() {
        assert!(parse("L NM; P 0 0 1 1;").is_err()); // 2 vertices
        assert!(parse("L NM; W 0 0 0;").is_err()); // zero width
        assert!(parse("L NM; B 0 10 0 0;").is_err()); // zero length
        assert!(parse("L NM; R 0 0 0;").is_err()); // zero diameter
    }

    #[test]
    fn box_with_vertical_direction_swaps_extents() {
        let f = parse("L ND; B 100 20 0 0 0 1; E").unwrap();
        assert_eq!(boxes_of(f.top_level()), vec![Rect::new(-10, -50, 10, 50)]);
    }

    #[test]
    fn call_transform_order_matters() {
        // "T 10 0 MX" ≠ "MX T 10 0".
        let f = parse("DS 1; DF; C 1 T 10 0 MX; C 1 MX T 10 0; E").unwrap();
        let t0 = match &f.top_level()[0] {
            Command::Call { transform, .. } => *transform,
            _ => unreachable!(),
        };
        let t1 = match &f.top_level()[1] {
            Command::Call { transform, .. } => *transform,
            _ => unreachable!(),
        };
        assert_ne!(t0, t1);
        assert_eq!(t0.apply_point(Point::new(1, 0)), Point::new(-11, 0));
        assert_eq!(t1.apply_point(Point::new(1, 0)), Point::new(9, 0));
    }

    #[test]
    fn rotation_snapping() {
        let f = parse("DS 1; DF; C 1 R 0 1; C 1 R -5 0; C 1 R 3 -4; E").unwrap();
        let orientations: Vec<_> = f
            .top_level()
            .iter()
            .map(|c| match c {
                Command::Call { transform, .. } => transform.orientation(),
                _ => unreachable!(),
            })
            .collect();
        use ace_geom::Orientation;
        assert_eq!(
            orientations,
            vec![Orientation::R90, Orientation::R180, Orientation::R270]
        );
    }

    #[test]
    fn labels_with_and_without_layer() {
        let f = parse("94 VDD -2600 3800; 94 out 0 0 NP; E").unwrap();
        match &f.top_level()[0] {
            Command::Label { name, at, layer } => {
                assert_eq!(name, "VDD");
                assert_eq!(*at, Point::new(-2600, 3800));
                assert_eq!(*layer, None);
            }
            other => panic!("{other:?}"),
        }
        match &f.top_level()[1] {
            Command::Label { name, layer, .. } => {
                assert_eq!(name, "out");
                assert_eq!(*layer, Some(Layer::Poly));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn lowercase_label_names_are_preserved() {
        let f = parse("94 phi1.clock 10 20; E").unwrap();
        match &f.top_level()[0] {
            Command::Label { name, .. } => assert_eq!(name, "phi1.clock"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn other_user_extensions_are_preserved() {
        let f = parse("42 some random stuff; E").unwrap();
        match &f.top_level()[0] {
            Command::UserExtension(s) => assert_eq!(s, "42 some random stuff"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comments_and_padding_everywhere() {
        let f = parse("(header comment) L ND;\n  B 10 , 10 (inline) 0 0;\n C 1 (why not) ; E");
        // C 1 refers to an undefined symbol — parsing still succeeds
        // (resolution happens at instantiation).
        let f = f.unwrap();
        assert_eq!(f.top_level().len(), 2);
    }

    #[test]
    fn text_after_e_is_ignored() {
        let f = parse("L ND; B 2 2 0 0; E this is trailing junk $$%").unwrap();
        assert_eq!(f.top_level().len(), 1);
    }

    #[test]
    fn missing_e_is_accepted() {
        // Many real CIF files in the wild lack the E marker; accept.
        let f = parse("L ND; B 2 2 0 0;").unwrap();
        assert_eq!(f.top_level().len(), 1);
    }
}
