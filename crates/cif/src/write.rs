use std::fmt::Write as _;

use crate::ast::{CifFile, Command, Shape};

/// Serializes a [`CifFile`] back to CIF text.
///
/// Symbols are emitted in id order (scale `1 1` — coordinates are
/// already absolute after parsing), followed by the top-level
/// commands and the `E` marker. `parse(write_cif(f))` reproduces `f`
/// for any file without round flashes whose diameter information
/// cannot be altered (flashes round-trip exactly).
///
/// # Examples
///
/// ```
/// use ace_cif::{parse, write_cif};
///
/// let f = parse("DS 1; L ND; B 4 4 0 0; DF; C 1 T 10 0; E")?;
/// let text = write_cif(&f);
/// assert_eq!(parse(&text)?, f);
/// # Ok::<(), ace_cif::ParseCifError>(())
/// ```
pub fn write_cif(file: &CifFile) -> String {
    let mut w = CifWriter::new();
    for def in file.symbols().values() {
        w.begin_symbol(def.id);
        for cmd in &def.items {
            w.command(cmd);
        }
        w.end_symbol();
    }
    for cmd in file.top_level() {
        w.command(cmd);
    }
    w.finish()
}

/// Incremental CIF text emitter.
///
/// Used by the workload generators to produce synthetic chips without
/// first materializing a [`CifFile`].
///
/// # Examples
///
/// ```
/// use ace_cif::CifWriter;
/// use ace_geom::{Layer, Rect};
///
/// let mut w = CifWriter::new();
/// w.begin_symbol(1);
/// w.layer(Layer::Diffusion);
/// w.rect(Rect::new(0, 0, 400, 1600));
/// w.end_symbol();
/// w.call(1, 0, 0);
/// let text = w.finish();
/// assert!(text.contains("DS 1 1 1;"));
/// assert!(text.ends_with("E\n"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CifWriter {
    out: String,
    current_layer: Option<ace_geom::Layer>,
}

impl CifWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        CifWriter::default()
    }

    /// Starts a symbol definition (`DS id 1 1;`).
    pub fn begin_symbol(&mut self, id: u32) {
        // Layer state is per-stream in CIF; reset so each symbol is
        // self-contained.
        self.current_layer = None;
        let _ = writeln!(self.out, "DS {id} 1 1;");
    }

    /// Ends the open symbol definition (`DF;`).
    pub fn end_symbol(&mut self) {
        self.current_layer = None;
        self.out.push_str("DF;\n");
    }

    /// Emits a `9 name;` cell-name extension.
    pub fn cell_name(&mut self, name: &str) {
        let _ = writeln!(self.out, "9 {name};");
    }

    /// Emits an `L` command if `layer` differs from the current one.
    pub fn layer(&mut self, layer: ace_geom::Layer) {
        if self.current_layer != Some(layer) {
            let _ = writeln!(self.out, "L {};", layer.cif_name());
            self.current_layer = Some(layer);
        }
    }

    /// Emits a box on the current layer.
    pub fn rect(&mut self, r: ace_geom::Rect) {
        let c = r.center();
        let _ = writeln!(self.out, "B {} {} {} {};", r.width(), r.height(), c.x, c.y);
    }

    /// Emits a box on `layer` (switching layers if needed).
    pub fn rect_on(&mut self, layer: ace_geom::Layer, r: ace_geom::Rect) {
        self.layer(layer);
        self.rect(r);
    }

    /// Emits a polygon on the current layer.
    pub fn polygon(&mut self, p: &ace_geom::Polygon) {
        self.out.push('P');
        for v in p.vertices() {
            let _ = write!(self.out, " {} {}", v.x, v.y);
        }
        self.out.push_str(";\n");
    }

    /// Emits a wire on the current layer.
    pub fn wire(&mut self, w: &ace_geom::Wire) {
        let _ = write!(self.out, "W {}", w.width());
        for v in w.path() {
            let _ = write!(self.out, " {} {}", v.x, v.y);
        }
        self.out.push_str(";\n");
    }

    /// Emits a round flash on the current layer.
    pub fn round_flash(&mut self, diameter: i64, center: ace_geom::Point) {
        let _ = writeln!(self.out, "R {} {} {};", diameter, center.x, center.y);
    }

    /// Emits a simple translated call (`C id T x y;`).
    pub fn call(&mut self, id: u32, x: i64, y: i64) {
        let _ = writeln!(self.out, "C {id} T {x} {y};");
    }

    /// Emits a call with a full transform.
    pub fn call_transformed(&mut self, id: u32, t: &ace_geom::Transform) {
        use ace_geom::Orientation;
        let _ = write!(self.out, "C {id}");
        let (mirror, turns) = match t.orientation() {
            Orientation::R0 => (false, 0),
            Orientation::R90 => (false, 1),
            Orientation::R180 => (false, 2),
            Orientation::R270 => (false, 3),
            Orientation::MxR0 => (true, 0),
            Orientation::MxR90 => (true, 1),
            Orientation::MxR180 => (true, 2),
            Orientation::MxR270 => (true, 3),
        };
        if mirror {
            let _ = write!(self.out, " M X");
        }
        match turns {
            1 => {
                let _ = write!(self.out, " R 0 1");
            }
            2 => {
                let _ = write!(self.out, " R -1 0");
            }
            3 => {
                let _ = write!(self.out, " R 0 -1");
            }
            _ => {}
        }
        let d = t.translation();
        if d != ace_geom::Point::ORIGIN {
            let _ = write!(self.out, " T {} {}", d.x, d.y);
        }
        self.out.push_str(";\n");
    }

    /// Emits a `94 name x y [layer];` net label.
    pub fn label(&mut self, name: &str, at: ace_geom::Point, layer: Option<ace_geom::Layer>) {
        match layer {
            Some(l) => {
                let _ = writeln!(self.out, "94 {name} {} {} {};", at.x, at.y, l.cif_name());
            }
            None => {
                let _ = writeln!(self.out, "94 {name} {} {};", at.x, at.y);
            }
        }
    }

    /// Emits a raw user-extension command.
    pub fn user_extension(&mut self, text: &str) {
        let _ = writeln!(self.out, "{text};");
    }

    /// Emits one parsed command.
    pub fn command(&mut self, cmd: &Command) {
        match cmd {
            Command::Geometry { layer, shape } => {
                self.layer(*layer);
                match shape {
                    Shape::Box(r) => self.rect(*r),
                    Shape::Polygon(p) => self.polygon(p),
                    Shape::Wire(w) => self.wire(w),
                    Shape::RoundFlash { diameter, center } => self.round_flash(*diameter, *center),
                }
            }
            Command::Call { symbol, transform } => self.call_transformed(*symbol, transform),
            Command::Label { name, at, layer } => self.label(name, *at, *layer),
            Command::CellName(name) => self.cell_name(name),
            Command::UserExtension(text) => self.user_extension(text),
        }
    }

    /// Terminates the file with `E` and returns the text.
    pub fn finish(mut self) -> String {
        self.out.push_str("E\n");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use ace_geom::{Layer, Point, Rect, Transform};

    #[test]
    fn round_trip_simple_file() {
        let src = "DS 1 1 1; 9 cell; L ND; B 400 1600 0 0; L NP; B 1600 400 -100 200; DF; \
                   C 1 T 10 20; 94 VDD 0 0; E";
        let parsed = parse(src).unwrap();
        let text = write_cif(&parsed);
        let reparsed = parse(&text).unwrap();
        assert_eq!(parsed, reparsed);
    }

    #[test]
    fn round_trip_transforms() {
        let t = Transform::identity()
            .mirror_x()
            .rotate_quarter_turns(3)
            .translate(Point::new(-70, 40));
        let mut w = CifWriter::new();
        w.begin_symbol(1);
        w.rect_on(Layer::Metal, Rect::new(0, 0, 10, 10));
        w.end_symbol();
        w.call_transformed(1, &t);
        let text = w.finish();
        let parsed = parse(&text).unwrap();
        match &parsed.top_level()[0] {
            Command::Call { transform, .. } => {
                // Verify by behaviour (decompositions may differ).
                for p in [Point::new(0, 0), Point::new(3, 7), Point::new(-5, 2)] {
                    assert_eq!(transform.apply_point(p), t.apply_point(p));
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn layer_commands_are_deduplicated() {
        let mut w = CifWriter::new();
        w.rect_on(Layer::Poly, Rect::new(0, 0, 4, 4));
        w.rect_on(Layer::Poly, Rect::new(10, 0, 14, 4));
        let text = w.finish();
        assert_eq!(text.matches("L NP;").count(), 1);
    }

    #[test]
    fn round_trip_polygon_wire_flash() {
        let src = "L NM; P 0 0 100 0 0 100; W 20 0 0 50 0; R 40 10 10; E";
        let parsed = parse(src).unwrap();
        assert_eq!(parse(&write_cif(&parsed)).unwrap(), parsed);
    }

    #[test]
    fn labels_round_trip() {
        let src = "94 phi1 10 -20 NP; 94 GND 0 0; E";
        let parsed = parse(src).unwrap();
        assert_eq!(parse(&write_cif(&parsed)).unwrap(), parsed);
    }
}
