//! Regression: degenerate shapes the parser used to accept — and
//! which then panicked or silently vanished during fracturing — are
//! rejected with spanned parse errors. The policy is documented on
//! [`ace_cif::parse`]: reject at parse time rather than fracture to
//! nothing downstream.

use ace_cif::parse;

fn err(src: &str) -> String {
    parse(src).expect_err("should be rejected").to_string()
}

#[test]
fn collinear_polygon_is_rejected() {
    // Diagonal line: three vertices, zero area.
    let e = err("L ND; P 0 0 100 100 200 200;\nE");
    assert!(e.contains("collinear"), "{e}");
    // Axis-aligned line.
    let e = err("L ND; P 0 0 100 0 50 0; E");
    assert!(e.contains("collinear"), "{e}");
}

#[test]
fn single_point_polygon_is_rejected() {
    let e = err("L ND; P 5 5 5 5 5 5; E");
    assert!(e.contains("collinear"), "{e}");
}

#[test]
fn polygon_errors_carry_the_line_number() {
    let e = err("L ND;\nB 100 100 0 0;\nP 0 0 10 10 20 20;\nE");
    assert!(e.contains('3'), "error should name line 3: {e}");
}

#[test]
fn zero_width_wire_is_rejected() {
    let e = err("L NM; W 0 0 0 100 0; E");
    assert!(e.contains("wire"), "{e}");
}

#[test]
fn wire_width_scaled_to_zero_is_rejected() {
    // DS 1 1 2 halves every operand: W 1 becomes width 0.
    let e = err("DS 1 1 2; L NM; W 1 0 0 100 0; DF; C 1 T 0 0; E");
    assert!(e.contains("wire"), "{e}");
}

#[test]
fn honest_polygons_and_wires_still_parse() {
    parse("L ND; P 0 0 100 0 100 100; E").expect("triangle parses");
    parse("L ND; P 0 0 100 0 100 100 0 100; E").expect("square parses");
    parse("L NM; W 40 0 0 100 0 100 100; E").expect("bent wire parses");
    // A single-point wire is legal CIF: it draws the square pen.
    parse("L NM; W 40 50 50; E").expect("point wire parses");
}
