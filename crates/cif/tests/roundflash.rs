//! Regression: CIF `R` (round flash) fracturing must be symmetric
//! about the flash center, including odd diameters.
//!
//! The original pipeline built the inscribed octagon and handed it to
//! the generic `fracture_polygon`, whose round-to-nearest sloped-edge
//! crossings shifted odd-diameter flashes half a unit to the right
//! (e.g. `R 7` at the origin emitted a strip spanning `[-2, +3]`).
//! The dedicated `fracture_round_flash` computes one half-width per
//! strip and is symmetric by construction.

use ace_cif::{parse, Command, Shape};
use ace_geom::{fracture_round_flash, Point, Rect, LAMBDA};

/// Extracts the single round flash from parsed CIF.
fn the_flash(src: &str) -> (i64, Point) {
    let file = parse(src).expect("valid CIF");
    let mut found = None;
    let mut scan = |commands: &[Command]| {
        for c in commands {
            if let Command::Geometry {
                shape: Shape::RoundFlash { diameter, center },
                ..
            } = c
            {
                found = Some((*diameter, *center));
            }
        }
    };
    for def in file.symbols().values() {
        scan(&def.items);
    }
    scan(file.top_level());
    found.expect("a round flash")
}

fn assert_centered(diameter: i64, center: Point) {
    let boxes = fracture_round_flash(diameter, center, LAMBDA);
    assert!(!boxes.is_empty(), "R {diameter} fractured to nothing");
    for b in &boxes {
        assert_eq!(
            center.x - b.x_min,
            b.x_max - center.x,
            "R {diameter} at {center:?}: box {b:?} is off center"
        );
    }
    // The box set mirrors about the horizontal center line too.
    let key = |r: &Rect| (r.y_min, r.x_min, r.y_max, r.x_max);
    let mut orig: Vec<Rect> = boxes.clone();
    let mut mirrored: Vec<Rect> = boxes
        .iter()
        .map(|b| {
            Rect::new(
                b.x_min,
                2 * center.y - b.y_max,
                b.x_max,
                2 * center.y - b.y_min,
            )
        })
        .collect();
    orig.sort_by_key(key);
    mirrored.sort_by_key(key);
    assert_eq!(orig, mirrored, "R {diameter}: not symmetric in y");
}

#[test]
fn odd_diameter_flash_fractures_about_its_center() {
    let (d, c) = the_flash("L ND; R 7 100 100; E");
    assert_eq!((d, c), (7, Point::new(100, 100)));
    assert_centered(d, c);
}

#[test]
fn even_diameter_flash_stays_centered() {
    let (d, c) = the_flash("L NM; R 500 -40 60; E");
    assert_eq!(d, 500);
    assert_centered(d, c);
}

#[test]
fn symbol_scaling_can_make_diameters_odd() {
    // DS 1 7 2 scales by 7/2: R 2 becomes diameter 7 — odd diameters
    // arise from real files even when the drawn value is even.
    let (d, c) = the_flash("DS 1 7 2; L ND; R 2 0 0; DF; C 1 T 0 0; E");
    assert_eq!(d, 7);
    assert_centered(d, c);
}

#[test]
fn large_flash_boxes_never_overhang_the_circle_square() {
    let (d, c) = the_flash("L NM; R 2001 0 0; E");
    let r = d / 2;
    for b in fracture_round_flash(d, c, LAMBDA) {
        assert!(b.x_min >= -r && b.x_max <= r, "{b:?}");
        assert!(b.y_min >= -r && b.y_max <= r, "{b:?}");
    }
}
