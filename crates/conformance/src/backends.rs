//! The six backends as instantiable, nameable units.
//!
//! The harness refers to backends by [`BackendId`] so a run is fully
//! described by `(seed, cases, backends)` — three values that fit on
//! a command line and reproduce bit-for-bit.

use ace_core::{CircuitExtractor, FlatExtractor, LazyExtractor};
use ace_geom::LAMBDA;
use ace_hext::HierarchicalExtractor;
use ace_layout::{FlatLayout, Library};
use ace_raster::{CifplotExtractor, PartlistExtractor};

/// Thread count for the banded backend: three bands exercises two
/// seams on even tiny layouts without oversubscribing CI hosts.
const BANDED_THREADS: usize = 3;

/// One of the six extractor backends behind [`CircuitExtractor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BackendId {
    /// Sequential flat scanline sweep (the reference backend).
    AceFlat,
    /// Lazy-front-end scanline sweep (symbols expand on reach — the
    /// only backend that does not flatten first, so the only one
    /// exercising expansion-ordered label discovery).
    AceLazy,
    /// Band-parallel scanline sweep with seam stitching.
    AceBanded,
    /// Hierarchical window/compose extractor.
    Hext,
    /// Run-encoded raster baseline.
    Partlist,
    /// Full-grid raster baseline.
    Cifplot,
}

impl BackendId {
    /// Every backend, reference first.
    pub const ALL: [BackendId; 6] = [
        BackendId::AceFlat,
        BackendId::AceLazy,
        BackendId::AceBanded,
        BackendId::Hext,
        BackendId::Partlist,
        BackendId::Cifplot,
    ];

    /// The backend's stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            BackendId::AceFlat => "ace-flat",
            BackendId::AceLazy => "ace-lazy",
            BackendId::AceBanded => "ace-banded",
            BackendId::Hext => "hext",
            BackendId::Partlist => "partlist",
            BackendId::Cifplot => "cifplot",
        }
    }

    /// Parses a backend name (the inverse of [`BackendId::name`]).
    pub fn parse(s: &str) -> Option<BackendId> {
        BackendId::ALL.into_iter().find(|b| b.name() == s)
    }

    /// Builds the backend over a layout library.
    pub fn instantiate(self, lib: &Library) -> Box<dyn CircuitExtractor> {
        let flat = || FlatLayout::from_library(lib);
        match self {
            BackendId::AceFlat => Box::new(FlatExtractor::new(flat())),
            BackendId::AceLazy => Box::new(LazyExtractor::new(lib.clone())),
            BackendId::AceBanded => Box::new(FlatExtractor::banded(flat(), BANDED_THREADS)),
            BackendId::Hext => Box::new(HierarchicalExtractor::new(lib.clone())),
            BackendId::Partlist => Box::new(PartlistExtractor::new(flat(), LAMBDA)),
            BackendId::Cifplot => Box::new(CifplotExtractor::new(flat(), LAMBDA)),
        }
    }
}

/// Parses a comma-separated backend list (`"ace-flat,hext"`).
///
/// # Errors
///
/// Returns the offending name. The reference backend `ace-flat` is
/// prepended when absent, since every comparison is against it.
pub fn parse_backend_list(s: &str) -> Result<Vec<BackendId>, String> {
    let mut out = Vec::new();
    for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let id = BackendId::parse(part)
            .ok_or_else(|| format!("unknown backend '{part}' (expected one of {})", all_names()))?;
        if !out.contains(&id) {
            out.push(id);
        }
    }
    if out.is_empty() {
        return Err(format!(
            "no backends given (expected one of {})",
            all_names()
        ));
    }
    if !out.contains(&BackendId::AceFlat) {
        out.insert(0, BackendId::AceFlat);
    } else {
        out.retain(|&b| b != BackendId::AceFlat);
        out.insert(0, BackendId::AceFlat);
    }
    Ok(out)
}

fn all_names() -> String {
    BackendId::ALL
        .iter()
        .map(|b| b.name())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for b in BackendId::ALL {
            assert_eq!(BackendId::parse(b.name()), Some(b));
        }
        assert_eq!(BackendId::parse("magic"), None);
    }

    #[test]
    fn backend_list_parses_and_pins_the_reference_first() {
        let l = parse_backend_list("hext, partlist").unwrap();
        assert_eq!(
            l,
            vec![BackendId::AceFlat, BackendId::Hext, BackendId::Partlist]
        );
        let l = parse_backend_list("cifplot,ace-flat,cifplot").unwrap();
        assert_eq!(l, vec![BackendId::AceFlat, BackendId::Cifplot]);
        assert!(parse_backend_list("bogus").is_err());
        assert!(parse_backend_list("").is_err());
    }

    #[test]
    fn every_backend_instantiates_and_extracts() {
        let lib = Library::from_cif_text("L ND; B 500 2000 250 1000; L NP; B 2000 500 250 1000; E")
            .unwrap();
        for id in BackendId::ALL {
            let mut b = id.instantiate(&lib);
            assert_eq!(b.backend(), id.name());
            let r = b.extract("t").unwrap();
            assert_eq!(r.netlist.device_count(), 1, "{}", id.name());
        }
    }
}
