//! Differential conformance runner.
//!
//! ```text
//! conformance --seed 1983 --cases 256                 # fuzz all six backends
//! conformance --seed 7 --cases 64 --backends hext     # reference vs hext only
//! conformance --corpus                                # replay the golden corpus
//! conformance --record-corpus                         # refresh corpus signatures
//! conformance --seed 1983 --emit-case 54              # print one case's layout
//! conformance --incremental --seed 1983 --cases 64    # edit-loop incremental check
//! ```
//!
//! Exit status: 0 when every case agrees (and the corpus passes),
//! 1 on divergence or corpus failure, 2 on usage errors.
//!
//! Divergent cases are shrunk to minimal repros and written to
//! `conformance/repros/<case-seed>.cif` (override with
//! `--repro-dir`); triage them by fixing the backend or, for vetted
//! behaviour, promoting the repro into `conformance/corpus/`.

use std::path::PathBuf;
use std::process::ExitCode;

use ace_conformance::backends::{parse_backend_list, BackendId};
use ace_conformance::corpus;
use ace_conformance::runner::{run_with, RunConfig};
use ace_conformance::shrink::DEFAULT_BUDGET;

const USAGE: &str = "usage: conformance [--seed S] [--cases N] [--backends a,b,c]
                   [--repro-dir DIR] [--corpus-dir DIR] [--shrink-budget N]
                   [--quiet] [--corpus | --record-corpus | --incremental]

modes (default: fuzz)
  --corpus          replay conformance/corpus/*.cif against canonical signatures
  --record-corpus   regenerate the corpus signature index from the reference
  --incremental     edit-loop check: random edits per case, incremental
                    re-extraction vs from-scratch after each round

fuzz options
  --seed S          run seed (default 1983)
  --cases N         number of cases (default 256)
  --backends LIST   comma-separated subset of: ace-flat, ace-lazy, ace-banded,
                    hext, partlist, cifplot (reference ace-flat is always
                    included)
  --repro-dir DIR   where shrunken repros go (default conformance/repros)
  --shrink-budget N oracle-call budget per shrink (default 1500)
  --lint-agreement  also require identical ace_lint diagnostics from
                    every backend (strict-comparison cases only)
  --parasitics      also require identical per-net parasitic totals from
                    every backend, with the reference checked against a
                    brute-force union-geometry oracle
  --quiet           only print the summary
  --emit-case I     print case I's generated CIF (for triage) and exit";

struct Args {
    seed: u64,
    cases: u32,
    backends: Vec<BackendId>,
    repro_dir: PathBuf,
    corpus_dir: PathBuf,
    shrink_budget: u32,
    lint_agreement: bool,
    parasitics: bool,
    quiet: bool,
    mode: Mode,
}

#[derive(PartialEq)]
enum Mode {
    Fuzz,
    Corpus,
    RecordCorpus,
    EmitCase(u32),
    Incremental,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 1983,
        cases: 256,
        backends: BackendId::ALL.to_vec(),
        repro_dir: PathBuf::from("conformance/repros"),
        corpus_dir: PathBuf::from("conformance/corpus"),
        shrink_budget: DEFAULT_BUDGET,
        lint_agreement: false,
        parasitics: false,
        quiet: false,
        mode: Mode::Fuzz,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--cases" => {
                args.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?;
            }
            "--backends" => args.backends = parse_backend_list(&value("--backends")?)?,
            "--repro-dir" => args.repro_dir = PathBuf::from(value("--repro-dir")?),
            "--corpus-dir" => args.corpus_dir = PathBuf::from(value("--corpus-dir")?),
            "--shrink-budget" => {
                args.shrink_budget = value("--shrink-budget")?
                    .parse()
                    .map_err(|e| format!("--shrink-budget: {e}"))?;
            }
            "--lint-agreement" => args.lint_agreement = true,
            "--parasitics" => args.parasitics = true,
            "--quiet" => args.quiet = true,
            "--emit-case" => {
                args.mode = Mode::EmitCase(
                    value("--emit-case")?
                        .parse()
                        .map_err(|e| format!("--emit-case: {e}"))?,
                );
            }
            "--corpus" => args.mode = Mode::Corpus,
            "--record-corpus" => args.mode = Mode::RecordCorpus,
            "--incremental" => args.mode = Mode::Incremental,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("conformance: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match args.mode {
        Mode::Corpus => replay_corpus(&args),
        Mode::RecordCorpus => record_corpus(&args),
        Mode::EmitCase(index) => emit_case(&args, index),
        Mode::Incremental => incremental(&args),
        Mode::Fuzz => fuzz(&args),
    }
}

fn incremental(args: &Args) -> ExitCode {
    use ace_conformance::incremental::{run_edit_cases, EDIT_ROUNDS};

    println!(
        "conformance: incremental edit loop, seed {} cases {} ({} rounds each)",
        args.seed, args.cases, EDIT_ROUNDS
    );
    let quiet = args.quiet;
    let failures = run_edit_cases(args.seed, args.cases, |index, failure| {
        if let Some(f) = failure {
            println!("{f}");
        } else if !quiet && (index + 1) % 32 == 0 {
            println!("case {}/{} ok", index + 1, args.cases);
        }
    });
    if failures.is_empty() {
        println!(
            "{} edit cases, zero incremental/full mismatches",
            args.cases
        );
        ExitCode::SUCCESS
    } else {
        println!("{} edit cases, {} mismatches", args.cases, failures.len());
        ExitCode::FAILURE
    }
}

fn emit_case(args: &Args, index: u32) -> ExitCode {
    use ace_conformance::harness::case_seed;
    use ace_conformance::strategies::LayoutStrategy;
    use rand::SeedableRng as _;

    let seed = case_seed(args.seed, index);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let strategy = LayoutStrategy::sample(&mut rng);
    eprintln!(
        "( run seed {} case {index} [case seed {seed}] strategy {} )",
        args.seed,
        strategy.name()
    );
    print!("{}", strategy.generate());
    ExitCode::SUCCESS
}

fn replay_corpus(args: &Args) -> ExitCode {
    match corpus::replay(&args.corpus_dir, &args.backends) {
        Err(e) => {
            eprintln!("conformance: corpus replay failed: {e}");
            ExitCode::from(2)
        }
        Ok(report) => {
            for case in &report.cases {
                match &case.failure {
                    None => {
                        if !args.quiet {
                            println!("corpus {} ok", case.file);
                        }
                    }
                    Some(why) => println!("corpus {} FAILED: {why}", case.file),
                }
            }
            let failed = report.failures().count();
            println!("corpus: {} layouts, {} failed", report.cases.len(), failed);
            if failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

fn record_corpus(args: &Args) -> ExitCode {
    match corpus::record(&args.corpus_dir) {
        Ok(n) => {
            println!(
                "recorded canonical signatures for {n} layouts in {}",
                args.corpus_dir.join(corpus::SIGNATURES_FILE).display()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("conformance: {e}");
            ExitCode::from(2)
        }
    }
}

fn fuzz(args: &Args) -> ExitCode {
    let config = RunConfig {
        seed: args.seed,
        cases: args.cases,
        backends: args.backends.clone(),
        repro_dir: Some(args.repro_dir.clone()),
        shrink_budget: args.shrink_budget,
        lint_agreement: args.lint_agreement,
        parasitics: args.parasitics,
    };
    let names: Vec<&str> = config.backends.iter().map(|b| b.name()).collect();
    println!(
        "conformance: seed {} cases {} backends {}{}{}",
        config.seed,
        config.cases,
        names.join(","),
        if config.lint_agreement {
            " (+lint agreement)"
        } else {
            ""
        },
        if config.parasitics {
            " (+parasitics)"
        } else {
            ""
        }
    );
    let quiet = args.quiet;
    let summary = match run_with(&config, |index, strategy, divergence| {
        if let Some(d) = divergence {
            println!(
                "case {index} [{strategy}]: DIVERGED ({} vs {})",
                d.backend.name(),
                d.reference.name()
            );
        } else if !quiet && (index + 1) % 32 == 0 {
            println!("case {}/{} ok", index + 1, config.cases);
        }
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("conformance: {e}");
            return ExitCode::from(2);
        }
    };

    let mix: Vec<String> = summary
        .by_strategy
        .iter()
        .map(|(name, n)| format!("{name}:{n}"))
        .collect();
    println!("strategy mix: {}", mix.join(" "));
    if summary.divergent.is_empty() {
        println!("{} cases, zero divergences", summary.cases);
        return ExitCode::SUCCESS;
    }
    for case in &summary.divergent {
        println!(
            "DIVERGENCE seed {} case {} [{}]: {} (shrunk {} -> {} boxes, {} oracle calls)",
            case.case_seed,
            case.index,
            case.strategy,
            case.divergence.backend.name(),
            case.shrink.boxes_before,
            case.shrink.boxes_after,
            case.shrink.oracle_calls,
        );
        if let Some(path) = &case.repro_path {
            println!("  repro: {}", path.display());
        }
        for line in case.divergence.detail.lines().take(12) {
            println!("  {line}");
        }
    }
    println!(
        "{} cases, {} divergences",
        summary.cases,
        summary.divergent.len()
    );
    ExitCode::FAILURE
}
