//! Golden-corpus replay.
//!
//! `conformance/corpus/*.cif` are layouts worth keeping forever —
//! shrunken repros of fixed divergences and hand-picked structural
//! edge cases. [`replay`] re-extracts each with every backend,
//! requires agreement, and checks the reference netlist against the
//! checked-in canonical line in `signatures.txt`:
//!
//! ```text
//! <file>.cif <signature-hex> <devices> <nets>
//! ```
//!
//! The signature is [`structural_signature`] of the pruned reference
//! netlist (a stable FNV-based hash, safe to check in). Regenerate
//! the file with `conformance --record-corpus` after *deliberate*
//! behaviour changes.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ace_layout::Library;
use ace_wirelist::compare::structural_signature;

use crate::backends::BackendId;
use crate::harness::{check_agreement, extract_pruned};

/// Name of the canonical-signature index inside the corpus dir.
pub const SIGNATURES_FILE: &str = "signatures.txt";

/// One corpus entry's replay outcome.
#[derive(Debug, Clone)]
pub struct CorpusCase {
    /// The layout file name (relative to the corpus dir).
    pub file: String,
    /// What went wrong; `None` = pass.
    pub failure: Option<String>,
}

/// The whole replay.
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Per-file outcomes, sorted by file name.
    pub cases: Vec<CorpusCase>,
}

impl CorpusReport {
    /// All files passed.
    pub fn all_passed(&self) -> bool {
        self.cases.iter().all(|c| c.failure.is_none())
    }

    /// The failing cases.
    pub fn failures(&self) -> impl Iterator<Item = &CorpusCase> {
        self.cases.iter().filter(|c| c.failure.is_some())
    }
}

/// The `.cif` files of a corpus directory, sorted by name. An absent
/// directory is an empty corpus, not an error.
///
/// # Errors
///
/// Propagates directory-read failures other than `NotFound`.
pub fn corpus_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(files),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "cif") {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

/// Parses `signatures.txt` into `file → (signature, devices, nets)`.
fn parse_signatures(text: &str) -> Result<BTreeMap<String, (u64, usize, usize)>, String> {
    let mut map = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let [file, sig, devices, nets] = parts[..] else {
            return Err(format!(
                "{}: malformed line {}",
                SIGNATURES_FILE,
                lineno + 1
            ));
        };
        let sig = u64::from_str_radix(sig.trim_start_matches("0x"), 16).map_err(|e| {
            format!(
                "{}: bad signature on line {}: {e}",
                SIGNATURES_FILE,
                lineno + 1
            )
        })?;
        let devices = devices.parse().map_err(|e| {
            format!(
                "{}: bad device count on line {}: {e}",
                SIGNATURES_FILE,
                lineno + 1
            )
        })?;
        let nets = nets.parse().map_err(|e| {
            format!(
                "{}: bad net count on line {}: {e}",
                SIGNATURES_FILE,
                lineno + 1
            )
        })?;
        map.insert(file.to_string(), (sig, devices, nets));
    }
    Ok(map)
}

/// The canonical line data for one layout: `(signature, devices,
/// nets)` of the pruned reference extraction.
///
/// # Errors
///
/// Returns a description when the layout fails to parse or extract.
pub fn canonical_entry(cif: &str) -> Result<(u64, usize, usize), String> {
    let lib = Library::from_cif_text(cif).map_err(|e| format!("parse failed: {e}"))?;
    let extraction =
        extract_pruned(BackendId::AceFlat, &lib).map_err(|e| format!("extraction failed: {e}"))?;
    Ok((
        structural_signature(&extraction.netlist),
        extraction.netlist.device_count(),
        extraction.netlist.net_count(),
    ))
}

/// Replays every corpus layout through `backends`, checking both
/// cross-backend agreement and the canonical signature index.
///
/// # Errors
///
/// Returns I/O or index-format errors; extraction disagreements are
/// reported per-case in the [`CorpusReport`] instead.
pub fn replay(dir: &Path, backends: &[BackendId]) -> Result<CorpusReport, String> {
    let files = corpus_files(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let sig_text = std::fs::read_to_string(dir.join(SIGNATURES_FILE)).unwrap_or_default();
    let mut signatures = parse_signatures(&sig_text)?;

    let mut cases = Vec::new();
    for path in files {
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let cif = std::fs::read_to_string(&path).map_err(|e| format!("{file}: {e}"))?;
        let mut failure = None;

        match Library::from_cif_text(&cif) {
            Err(e) => failure = Some(format!("parse failed: {e}")),
            Ok(lib) => match check_agreement(&lib, backends) {
                Err(e) => failure = Some(format!("reference extraction failed: {e}")),
                Ok(Some(divergence)) => failure = Some(divergence.to_string()),
                Ok(None) => match (canonical_entry(&cif), signatures.remove(&file)) {
                    (Err(e), _) => failure = Some(e),
                    (Ok(_), None) => {
                        failure = Some(format!(
                            "no canonical line in {SIGNATURES_FILE} (run conformance \
                             --record-corpus after vetting the layout)"
                        ));
                    }
                    (Ok(got), Some(want)) => {
                        if got != want {
                            failure = Some(format!(
                                "canonical mismatch: extracted (sig {:#018x}, {} devices, \
                                 {} nets) but {SIGNATURES_FILE} says (sig {:#018x}, {} \
                                 devices, {} nets)",
                                got.0, got.1, got.2, want.0, want.1, want.2
                            ));
                        }
                    }
                },
            },
        }
        cases.push(CorpusCase { file, failure });
    }

    // Index lines with no matching file are stale.
    for (file, _) in signatures {
        cases.push(CorpusCase {
            failure: Some(format!(
                "listed in {SIGNATURES_FILE} but {file} does not exist"
            )),
            file,
        });
    }
    Ok(CorpusReport { cases })
}

/// Regenerates `signatures.txt` from the current reference backend.
///
/// # Errors
///
/// Returns I/O errors and per-file extraction failures.
pub fn record(dir: &Path) -> Result<usize, String> {
    let files = corpus_files(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut out = String::from(
        "# Canonical reference extractions for conformance/corpus/*.cif.\n\
         # <file> <structural-signature> <devices> <nets>\n\
         # Regenerate with: cargo run -p ace_conformance --bin conformance -- --record-corpus\n",
    );
    let count = files.len();
    for path in &files {
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let cif = std::fs::read_to_string(path).map_err(|e| format!("{file}: {e}"))?;
        let (sig, devices, nets) = canonical_entry(&cif).map_err(|e| format!("{file}: {e}"))?;
        let _ = writeln!(out, "{file} {sig:#018x} {devices} {nets}");
    }
    std::fs::write(dir.join(SIGNATURES_FILE), out)
        .map_err(|e| format!("writing {}: {e}", SIGNATURES_FILE))?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_workloads::cells;

    #[test]
    fn record_then_replay_round_trips() {
        let dir = std::env::temp_dir().join(format!("ace-corpus-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("inverter.cif"), cells::inverter_cif()).unwrap();
        std::fs::write(dir.join("chain.cif"), cells::chained_inverters_cif(2)).unwrap();

        let n = record(&dir).unwrap();
        assert_eq!(n, 2);
        let report = replay(&dir, &BackendId::ALL).unwrap();
        assert!(report.all_passed(), "{:?}", report.cases);
        assert_eq!(report.cases.len(), 2);

        // Tampering with the index is caught.
        let sig_path = dir.join(SIGNATURES_FILE);
        let tampered: String = std::fs::read_to_string(&sig_path)
            .unwrap()
            .lines()
            .map(|l| {
                // Bump the net count on the inverter's line.
                if l.starts_with("inverter.cif") {
                    format!("{l}9\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        std::fs::write(&sig_path, tampered).unwrap();
        let report = replay(&dir, &[BackendId::AceFlat]).unwrap();
        assert!(!report.all_passed());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let report = replay(Path::new("/nonexistent/corpus"), &BackendId::ALL).unwrap();
        assert!(report.cases.is_empty());
    }

    #[test]
    fn unlisted_and_stale_entries_fail() {
        let dir = std::env::temp_dir().join(format!("ace-corpus-stale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("new.cif"), cells::inverter_cif()).unwrap();
        std::fs::write(
            dir.join(SIGNATURES_FILE),
            "gone.cif 0x0000000000000001 1 1\n",
        )
        .unwrap();
        let report = replay(&dir, &[BackendId::AceFlat]).unwrap();
        let failures: Vec<&str> = report.failures().map(|c| c.file.as_str()).collect();
        assert_eq!(failures, ["new.cif", "gone.cif"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
