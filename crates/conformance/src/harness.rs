//! Differential execution and comparison.
//!
//! One layout goes through every selected backend via
//! [`CircuitExtractor::extract_probed`]; the results are compared
//! pairwise against the reference (always `ace-flat`, pinned first by
//! [`crate::backends::parse_backend_list`]).
//!
//! # Comparison policy
//!
//! * Floating nets are pruned first — backends legitimately differ on
//!   how many unconnected net records they materialize.
//! * When the reference run reports no multi-terminal devices, the
//!   comparison is **strict**: [`same_circuit`] (location-keyed
//!   device matching plus wiring) and a [`structural_signature`]
//!   cross-check.
//! * When multi-terminal devices are present, source/drain
//!   tie-breaking on >2-terminal channels legitimately differs
//!   between algorithms (the same policy the property tests use), so
//!   the comparison degrades to the device census: the multiset of
//!   `(kind, length, width, location)`.

use ace_core::{CounterProbe, ExtractError, Extraction};
use ace_layout::Library;
use ace_wirelist::compare::{explain_mismatch, same_circuit, structural_signature};
use ace_wirelist::Netlist;

use crate::backends::BackendId;

/// A disagreement between one backend and the reference.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The backend that disagreed.
    pub backend: BackendId,
    /// The reference it was compared against.
    pub reference: BackendId,
    /// Human-readable explanation (mismatch report or census diff).
    pub detail: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} disagrees with {}:\n{}",
            self.backend.name(),
            self.reference.name(),
            self.detail
        )
    }
}

/// Extracts `lib` with one backend, netlist pruned of floating nets.
///
/// # Errors
///
/// Propagates the backend's [`ExtractError`].
pub fn extract_pruned(id: BackendId, lib: &Library) -> Result<Extraction, ExtractError> {
    let probe = CounterProbe::new();
    let mut backend = id.instantiate(lib);
    let mut extraction = backend.extract_probed("conformance", &probe)?;
    extraction.netlist.prune_floating_nets();
    Ok(extraction)
}

/// The `(kind, length, width, location)` census key used when strict
/// comparison is off the table.
fn census(nl: &Netlist) -> Vec<String> {
    let mut keys: Vec<String> = nl
        .devices()
        .iter()
        .map(|d| format!("{:?} {}x{} at {}", d.kind, d.length, d.width, d.location))
        .collect();
    keys.sort();
    keys
}

fn census_diff(reference: &Netlist, other: &Netlist) -> Option<String> {
    let a = census(reference);
    let b = census(other);
    if a == b {
        return None;
    }
    let only_ref: Vec<&String> = a.iter().filter(|k| !b.contains(k)).collect();
    let only_other: Vec<&String> = b.iter().filter(|k| !a.contains(k)).collect();
    let mut out = format!(
        "device census differs: {} vs {} devices\n",
        a.len(),
        b.len()
    );
    for k in only_ref.iter().take(8) {
        out.push_str(&format!("  only in reference: {k}\n"));
    }
    for k in only_other.iter().take(8) {
        out.push_str(&format!("  only in other: {k}\n"));
    }
    Some(out)
}

/// Compares one backend's result against the reference under the
/// module's comparison policy. `strict` is decided from the
/// *reference* extraction's report. Shared with the incremental
/// edit-loop checker, which compares against a rebuilt layout rather
/// than a second backend.
pub(crate) fn compare_one(reference: &Extraction, other: &Netlist, strict: bool) -> Option<String> {
    if strict {
        if let Some(report) = explain_mismatch(&reference.netlist, other) {
            return Some(report.to_string());
        }
        // explain_mismatch is built on same_circuit; the signature is
        // an independent cross-check of the partition structure.
        let (ls, rs) = (
            structural_signature(&reference.netlist),
            structural_signature(other),
        );
        if ls != rs {
            debug_assert!(same_circuit(&reference.netlist, other).is_ok());
            return Some(format!(
                "same_circuit passed but structural signatures differ: \
                 {ls:#018x} vs {rs:#018x}"
            ));
        }
        None
    } else {
        census_diff(&reference.netlist, other)
    }
}

/// Runs every backend over `lib` and returns the first divergence
/// from the reference (`backends[0]`), if any.
///
/// # Errors
///
/// Propagates extraction failures; a backend *erroring* where the
/// reference succeeds is reported as a divergence, not an error.
pub fn check_agreement(
    lib: &Library,
    backends: &[BackendId],
) -> Result<Option<Divergence>, ExtractError> {
    let reference_id = backends[0];
    let reference = extract_pruned(reference_id, lib)?;
    let strict = reference.report.multi_terminal_devices == 0;
    for &id in &backends[1..] {
        let other = match extract_pruned(id, lib) {
            Ok(e) => e,
            Err(e) => {
                return Ok(Some(Divergence {
                    backend: id,
                    reference: reference_id,
                    detail: format!("backend failed where the reference succeeded: {e}"),
                }));
            }
        };
        if let Some(detail) = compare_one(&reference, &other.netlist, strict) {
            return Ok(Some(Divergence {
                backend: id,
                reference: reference_id,
                detail,
            }));
        }
    }
    Ok(None)
}

/// Whether `cif` still makes the backends diverge — the shrinker's
/// oracle. Layouts that fail to parse or extract do not count as
/// divergent (a repro must be a *valid* layout the backends disagree
/// on).
pub fn diverges(cif: &str, backends: &[BackendId]) -> bool {
    let Ok(lib) = Library::from_cif_text(cif) else {
        return false;
    };
    matches!(check_agreement(&lib, backends), Ok(Some(_)))
}

/// Per-case seed: a splitmix64-style mix of the run seed and the case
/// index, so neighbouring cases draw unrelated streams.
pub fn case_seed(seed: u64, index: u32) -> u64 {
    let mut z = seed ^ (u64::from(index).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_workloads::cells;

    #[test]
    fn all_backends_agree_on_the_inverter() {
        let lib = Library::from_cif_text(&cells::inverter_cif()).unwrap();
        assert!(check_agreement(&lib, &BackendId::ALL).unwrap().is_none());
    }

    #[test]
    fn case_seeds_spread() {
        let seeds: std::collections::BTreeSet<u64> = (0..100).map(|i| case_seed(1983, i)).collect();
        assert_eq!(seeds.len(), 100);
        assert_ne!(case_seed(1983, 0), case_seed(1984, 0));
    }

    #[test]
    fn oracle_rejects_invalid_cif() {
        assert!(!diverges("this is not cif", &BackendId::ALL));
    }
}
