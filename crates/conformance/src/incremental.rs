//! Incremental-vs-full conformance: the edit-loop checker.
//!
//! The fuzz loop ([`crate::runner`]) checks that six backends agree
//! on a *static* layout. The incremental extractor makes a stronger
//! claim — that re-extraction after an edit equals a from-scratch
//! extraction of the edited layout — so it gets its own loop: sample
//! a layout strategy, seed an [`IncrementalExtractor`], then apply
//! several rounds of random edits ([`ace_workloads::edits`]),
//! re-extracting incrementally after each round and comparing
//! against a full flat extraction of the same layout under the
//! harness's strict comparison policy ([`same_circuit`] plus the
//! structural-signature cross-check, census fallback on
//! multi-terminal channels).
//!
//! [`same_circuit`]: ace_wirelist::compare::same_circuit

use ace_core::IncrementalExtractor;
use ace_core::{extract_flat, CircuitExtractor, ExtractError, ExtractOptions, Extraction};
use ace_layout::{FlatLayout, Library};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::harness::{case_seed, compare_one};
use crate::strategies::LayoutStrategy;

/// Bands the checker's incremental extractor uses — matching the
/// banded conformance backend so the two exercise the same seam
/// machinery.
const BANDS: usize = 3;

/// Edit rounds per case; each round applies 1–4 random operations.
pub const EDIT_ROUNDS: u32 = 4;

/// One failing edit case.
#[derive(Debug, Clone)]
pub struct EditCaseFailure {
    /// Case index within the run.
    pub index: u32,
    /// The per-case seed ([`case_seed`]).
    pub case_seed: u64,
    /// Strategy that generated the base layout.
    pub strategy: String,
    /// Edit round the mismatch appeared in (0 = before any edit).
    pub round: u32,
    /// Comparison report or extraction error.
    pub detail: String,
}

impl std::fmt::Display for EditCaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "case {} [{}] round {}: incremental disagrees with full:\n{}",
            self.index, self.strategy, self.round, self.detail
        )
    }
}

fn full_pruned(flat: &FlatLayout) -> Result<Extraction, ExtractError> {
    let mut e = extract_flat(flat.clone(), "conformance", ExtractOptions::new())?;
    e.netlist.prune_floating_nets();
    Ok(e)
}

/// Compares the incremental extractor's current answer against a
/// from-scratch extraction of its current layout. `Ok(None)` on
/// agreement.
fn compare_round(inc: &mut IncrementalExtractor) -> Result<Option<String>, ExtractError> {
    let reference = full_pruned(inc.layout())?;
    let mut got = inc.extract("conformance")?;
    got.netlist.prune_floating_nets();
    let strict = reference.report.multi_terminal_devices == 0;
    Ok(compare_one(&reference, &got.netlist, strict))
}

/// Runs one edit case: generate the layout for `(seed, index)`, then
/// check incremental-vs-full after the seed extraction and after each
/// of `rounds` edit rounds. Returns the first failure, if any.
pub fn check_edit_case(seed: u64, index: u32, rounds: u32) -> Option<EditCaseFailure> {
    let cs = case_seed(seed, index);
    let mut rng = ChaCha8Rng::seed_from_u64(cs);
    let strategy = LayoutStrategy::sample(&mut rng);
    let fail = |round: u32, detail: String| {
        Some(EditCaseFailure {
            index,
            case_seed: cs,
            strategy: strategy.name(),
            round,
            detail,
        })
    };

    let lib = match Library::from_cif_text(&strategy.generate()) {
        Ok(lib) => lib,
        Err(e) => return fail(0, format!("generated CIF failed to parse: {e}")),
    };
    let mut inc = IncrementalExtractor::new(FlatLayout::from_library(&lib), BANDS);

    for round in 0..=rounds {
        if round > 0 {
            let ops = rng.gen_range(1..5);
            let diff = ace_workloads::edits::random_edits_with(&mut rng, inc.layout(), ops);
            if let Err(e) = inc.apply(&diff) {
                return fail(round, format!("edit failed to apply: {e}"));
            }
        }
        match compare_round(&mut inc) {
            Ok(None) => {}
            Ok(Some(detail)) => return fail(round, detail),
            Err(e) => return fail(round, format!("extraction failed: {e}")),
        }
    }
    None
}

/// Runs `cases` edit cases, invoking `on_case` after each with the
/// failure (if any), and returns all failures.
pub fn run_edit_cases(
    seed: u64,
    cases: u32,
    on_case: impl FnMut(u32, Option<&EditCaseFailure>),
) -> Vec<EditCaseFailure> {
    let mut on_case = on_case;
    let mut failures = Vec::new();
    for index in 0..cases {
        let failure = check_edit_case(seed, index, EDIT_ROUNDS);
        on_case(index, failure.as_ref());
        if let Some(f) = failure {
            failures.push(f);
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_handful_of_edit_cases_agree() {
        for index in 0..4 {
            if let Some(f) = check_edit_case(1983, index, 2) {
                panic!("edit case diverged: {f}");
            }
        }
    }
}
