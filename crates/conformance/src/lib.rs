//! Differential conformance harness for the six ACE extractor
//! backends.
//!
//! The repository ships six independent implementations of the same
//! job — `ace-flat`, `ace-lazy`, `ace-banded`, `hext`, `partlist`,
//! `cifplot` — which is a standing invitation to differential
//! testing: generate random NMOS layouts, run all six, and any
//! disagreement is a bug in at least one of them. This crate is that
//! harness:
//!
//! * [`strategies`] — seeded random layout generation (box soups,
//!   BHH squares, mesh fragments, perturbed leaf cells, hierarchical
//!   CIF with transforms and `94` labels, plus overlay/label
//!   combinators). Everything is λ-aligned so the raster backends
//!   are exact, keeping "agreement" a hard requirement rather than a
//!   statistical hope.
//! * [`backends`] — the six backends as nameable, instantiable
//!   units behind [`ace_core::CircuitExtractor`].
//! * [`harness`] — differential execution and the comparison policy
//!   (location-keyed [`ace_wirelist::compare::same_circuit`] with a
//!   structural-signature cross-check; device-census fallback when
//!   multi-terminal tie-breaking makes wiring comparison unsound).
//! * [`incremental`] — the edit-loop checker: apply random edits to
//!   a generated layout and verify `ace_core`'s incremental
//!   re-extraction against a from-scratch extraction after each.
//! * [`lints`] — lint agreement: every backend's netlist must
//!   produce the identical `ace_lint` diagnostic list (spans are
//!   backend-stable by design; this fuzzes that claim).
//! * [`parasitics`] — parasitic agreement: every backend's per-net
//!   parasitic totals must match, and the reference accumulator must
//!   equal an independent brute-force union computation (coordinate
//!   compression, no scanline).
//! * [`shrink`] — oracle-driven delta debugging of divergent
//!   layouts: drop boxes, shrink extents, flatten symbols,
//!   re-λ-align, normalize.
//! * [`runner`] — the fuzz loop tying the above together, writing
//!   minimal repros to `conformance/repros/<seed>.cif`.
//! * [`corpus`] — golden replay of `conformance/corpus/*.cif`
//!   against checked-in canonical signatures.
//!
//! The CLI lives in `src/bin/conformance.rs`:
//!
//! ```text
//! cargo run -p ace_conformance --bin conformance -- --seed 1983 --cases 256
//! ```
//!
//! # Examples
//!
//! ```
//! use ace_conformance::backends::BackendId;
//! use ace_conformance::harness::check_agreement;
//! use ace_layout::Library;
//!
//! let lib = Library::from_cif_text(&ace_workloads::cells::inverter_cif())?;
//! assert!(check_agreement(&lib, &BackendId::ALL)?.is_none());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod backends;
pub mod corpus;
pub mod harness;
pub mod incremental;
pub mod lints;
pub mod parasitics;
pub mod runner;
pub mod shrink;
pub mod strategies;

pub use backends::{parse_backend_list, BackendId};
pub use harness::{case_seed, check_agreement, diverges, Divergence};
pub use incremental::{check_edit_case, run_edit_cases, EditCaseFailure};
pub use lints::{check_agreement_with_lints, diverges_with_lints, lint_signature};
pub use parasitics::{
    check_agreement_with_parasitics, diverges_with_parasitics, oracle_check, parasitic_signature,
};
pub use runner::{run, run_with, DivergentCase, RunConfig, RunSummary};
pub use shrink::{shrink, shrink_with_budget, ShrinkStats};
pub use strategies::LayoutStrategy;
