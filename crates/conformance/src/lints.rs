//! Cross-backend lint agreement.
//!
//! `ace_lint` diagnostics are designed to be backend-stable: they
//! anchor on device locations, layout label positions, and contact
//! rectangles — never on net ids or net representative locations.
//! This module turns that design claim into a fuzzed invariant: every
//! backend's netlist, linted against the same flat layout with the
//! default [`LintConfig`], must yield the *identical* sorted
//! diagnostic list (which subsumes the rule-id multiset).
//!
//! The comparison follows the harness's strictness policy: when the
//! reference extraction reports multi-terminal devices, source/drain
//! tie-breaking may legitimately differ between backends, which can
//! flip attachment-count-sensitive rules — those cases are skipped,
//! exactly like the wiring comparison degrades to a census there.

use ace_core::ExtractError;
use ace_layout::{FlatLayout, Library};
use ace_lint::{lint, Diagnostic, LintConfig};
use ace_wirelist::Netlist;

use crate::backends::BackendId;
use crate::harness::{compare_one, diverges, extract_pruned, Divergence};

/// The canonical per-backend lint signature: every rendered
/// diagnostic line, in the engine's sorted order.
pub fn lint_signature(netlist: &Netlist, layout: &FlatLayout) -> Vec<String> {
    lint(netlist, layout, &LintConfig::new())
        .iter()
        .map(Diagnostic::render)
        .collect()
}

fn lint_diff(expect: &[String], got: &[String]) -> String {
    let mut out = format!(
        "lint diagnostics differ: {} vs {} from the reference\n",
        got.len(),
        expect.len()
    );
    for line in expect.iter().filter(|l| !got.contains(l)).take(8) {
        out.push_str(&format!("  only from reference: {line}\n"));
    }
    for line in got.iter().filter(|l| !expect.contains(l)).take(8) {
        out.push_str(&format!("  only from backend: {line}\n"));
    }
    out
}

/// [`crate::check_agreement`] plus lint agreement: each backend is
/// extracted once, compared for circuit equivalence, and — when the
/// strict policy applies — for an identical lint signature.
///
/// # Errors
///
/// Propagates reference-backend extraction failures; a non-reference
/// backend erroring is a divergence.
pub fn check_agreement_with_lints(
    lib: &Library,
    backends: &[BackendId],
) -> Result<Option<Divergence>, ExtractError> {
    let reference_id = backends[0];
    let reference = extract_pruned(reference_id, lib)?;
    let strict = reference.report.multi_terminal_devices == 0;
    let layout = FlatLayout::from_library(lib);
    let expect = strict.then(|| lint_signature(&reference.netlist, &layout));
    for &id in &backends[1..] {
        let other = match extract_pruned(id, lib) {
            Ok(e) => e,
            Err(e) => {
                return Ok(Some(Divergence {
                    backend: id,
                    reference: reference_id,
                    detail: format!("backend failed where the reference succeeded: {e}"),
                }));
            }
        };
        if let Some(detail) = compare_one(&reference, &other.netlist, strict) {
            return Ok(Some(Divergence {
                backend: id,
                reference: reference_id,
                detail,
            }));
        }
        if let Some(expect) = &expect {
            let got = lint_signature(&other.netlist, &layout);
            if &got != expect {
                return Ok(Some(Divergence {
                    backend: id,
                    reference: reference_id,
                    detail: lint_diff(expect, &got),
                }));
            }
        }
    }
    Ok(None)
}

/// Shrink oracle for lint-agreement runs: the layout still counts as
/// divergent if either the circuits or the lint signatures disagree.
pub fn diverges_with_lints(cif: &str, backends: &[BackendId]) -> bool {
    if diverges(cif, backends) {
        return true;
    }
    let Ok(lib) = Library::from_cif_text(cif) else {
        return false;
    };
    matches!(check_agreement_with_lints(&lib, backends), Ok(Some(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_workloads::{cells, violations};

    #[test]
    fn backends_lint_the_inverter_identically() {
        let lib = Library::from_cif_text(&cells::inverter_cif()).unwrap();
        assert!(check_agreement_with_lints(&lib, &BackendId::ALL)
            .unwrap()
            .is_none());
    }

    #[test]
    fn backends_lint_every_violation_layout_identically() {
        for (rule, cif) in violations::all() {
            let lib = Library::from_cif_text(&cif).unwrap();
            let outcome = check_agreement_with_lints(&lib, &BackendId::ALL).unwrap();
            assert!(outcome.is_none(), "{rule}: {}", outcome.unwrap());
        }
    }

    #[test]
    fn a_forged_lint_difference_reads_well() {
        let detail = lint_diff(&["error[supply-short] @ (0, 0): x".to_string()], &[]);
        assert!(detail.contains("only from reference"), "{detail}");
    }
}
