//! Cross-backend parasitic agreement, checked against an independent
//! brute-force oracle.
//!
//! Two claims are fuzzed here:
//!
//! 1. **Backend agreement** — all six backends accumulate identical
//!    per-net parasitic totals ([`ace_wirelist::NetParasitics`]).
//!    Net ids differ between backends, so nets are keyed by a
//!    backend-stable signature: sorted user names plus symmetric
//!    device attachments anchored on device locations (`G@` for
//!    gates, `T@` for channel terminals — terminal entries do not
//!    distinguish source from drain, so the comparison survives the
//!    multi-terminal tie-breaking cases where wiring comparison
//!    degrades to a census).
//! 2. **Accumulator exactness** — the sweep's incremental
//!    add-rect/subtract-shared-edge accounting equals a brute-force
//!    union computation done by 2D coordinate compression (color a
//!    compressed grid, sum covered cells for area, sum covered/empty
//!    cell boundaries for perimeter). The oracle shares no code with
//!    the scanline's interval machinery.

use ace_core::{extract_library, ExtractError, ExtractOptions};
use ace_geom::{Layer, Rect};
use ace_layout::{FlatLayout, Library};
use ace_wirelist::parasitics::conducting_slot;
use ace_wirelist::{NetParasitics, Netlist};

use crate::backends::BackendId;
use crate::harness::{diverges, extract_pruned, Divergence};

/// One net's backend-stable identity plus its parasitic totals.
pub type ParasiticEntry = (String, NetParasitics);

/// The canonical per-backend parasitic signature: one entry per net,
/// keyed by sorted names and symmetric device-location attachments,
/// sorted for order-independent comparison.
pub fn parasitic_signature(nl: &Netlist) -> Vec<ParasiticEntry> {
    let mut keys: Vec<Vec<String>> = vec![Vec::new(); nl.net_count()];
    for (id, net) in nl.nets() {
        for name in &net.names {
            keys[id.0 as usize].push(format!("N:{name}"));
        }
    }
    for d in nl.devices() {
        keys[d.gate.0 as usize].push(format!("G@({}, {})", d.location.x, d.location.y));
        for t in [d.source, d.drain] {
            keys[t.0 as usize].push(format!("T@({}, {})", d.location.x, d.location.y));
        }
    }
    let mut out: Vec<ParasiticEntry> = nl
        .nets()
        .map(|(id, net)| {
            let k = &mut keys[id.0 as usize];
            k.sort();
            (k.join(" "), net.parasitics)
        })
        .collect();
    out.sort();
    out
}

fn parasitic_diff(expect: &[ParasiticEntry], got: &[ParasiticEntry]) -> String {
    let mut out = format!(
        "parasitic totals differ: {} vs {} nets from the reference\n",
        got.len(),
        expect.len()
    );
    for e in expect.iter().filter(|e| !got.contains(e)).take(6) {
        out.push_str(&format!("  reference has [{}] {:?}\n", e.0, e.1));
    }
    for e in got.iter().filter(|e| !expect.contains(e)).take(6) {
        out.push_str(&format!("  backend has   [{}] {:?}\n", e.0, e.1));
    }
    out
}

/// Union area and perimeter of a rectangle set, by coordinate
/// compression: every rect corner coordinate becomes a grid line, a
/// cell is covered iff any rect contains it, area sums covered cells,
/// and perimeter sums cell edges whose neighbor (or the outside) is
/// uncovered.
pub fn union_metrics(rects: &[Rect]) -> (i64, i64) {
    let grid = CompressedGrid::new(&[rects]);
    let covered = |i: isize, j: isize| grid.covered(0, i, j);
    let mut area = 0i64;
    let mut perim = 0i64;
    for i in 0..grid.xs.len() as isize - 1 {
        for j in 0..grid.ys.len() as isize - 1 {
            if !covered(i, j) {
                continue;
            }
            let w = grid.xs[i as usize + 1] - grid.xs[i as usize];
            let h = grid.ys[j as usize + 1] - grid.ys[j as usize];
            area += w * h;
            if !covered(i - 1, j) {
                perim += h;
            }
            if !covered(i + 1, j) {
                perim += h;
            }
            if !covered(i, j - 1) {
                perim += w;
            }
            if !covered(i, j + 1) {
                perim += w;
            }
        }
    }
    (area, perim)
}

/// Area of `(∪ a) ∩ (∪ b)` by the same compressed-grid coloring.
pub fn intersection_area(a: &[Rect], b: &[Rect]) -> i64 {
    let grid = CompressedGrid::new(&[a, b]);
    let mut area = 0i64;
    for i in 0..grid.xs.len() as isize - 1 {
        for j in 0..grid.ys.len() as isize - 1 {
            if grid.covered(0, i, j) && grid.covered(1, i, j) {
                let w = grid.xs[i as usize + 1] - grid.xs[i as usize];
                let h = grid.ys[j as usize + 1] - grid.ys[j as usize];
                area += w * h;
            }
        }
    }
    area
}

/// A coordinate-compressed grid with one coverage plane per input
/// rectangle set.
struct CompressedGrid {
    xs: Vec<i64>,
    ys: Vec<i64>,
    /// `planes[set][i * (ys.len()-1) + j]`
    planes: Vec<Vec<bool>>,
}

impl CompressedGrid {
    fn new(sets: &[&[Rect]]) -> Self {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for set in sets {
            for r in set.iter() {
                xs.push(r.x_min);
                xs.push(r.x_max);
                ys.push(r.y_min);
                ys.push(r.y_max);
            }
        }
        xs.sort_unstable();
        xs.dedup();
        ys.sort_unstable();
        ys.dedup();
        let cols = xs.len().saturating_sub(1);
        let rows = ys.len().saturating_sub(1);
        let mut planes = vec![vec![false; cols * rows]; sets.len()];
        for (plane, set) in planes.iter_mut().zip(sets) {
            for r in set.iter() {
                let i0 = xs.partition_point(|&x| x < r.x_min);
                let i1 = xs.partition_point(|&x| x < r.x_max);
                let j0 = ys.partition_point(|&y| y < r.y_min);
                let j1 = ys.partition_point(|&y| y < r.y_max);
                for i in i0..i1 {
                    for j in j0..j1 {
                        plane[i * rows + j] = true;
                    }
                }
            }
        }
        CompressedGrid { xs, ys, planes }
    }

    fn covered(&self, set: usize, i: isize, j: isize) -> bool {
        let rows = self.ys.len() as isize - 1;
        let cols = self.xs.len() as isize - 1;
        if i < 0 || j < 0 || i >= cols || j >= rows {
            return false;
        }
        self.planes[set][(i * rows + j) as usize]
    }
}

/// Recomputes one net's parasitics from its recorded geometry (and
/// the layout's cut boxes) with the brute-force union algorithms.
fn brute_force_net(geometry: &[(Layer, Rect)], cuts: &[Rect]) -> NetParasitics {
    let mut p = NetParasitics::default();
    let mut conducting: Vec<Rect> = Vec::new();
    for layer in Layer::CONDUCTING {
        let rects: Vec<Rect> = geometry
            .iter()
            .filter(|&&(l, _)| l == layer)
            .map(|&(_, r)| r)
            .collect();
        let (area, perim) = union_metrics(&rects);
        let slot = conducting_slot(layer).expect("CONDUCTING layers have slots");
        p.area[slot] = area;
        p.perimeter[slot] = perim;
        conducting.extend(rects);
    }
    p.add_cut_area(intersection_area(&conducting, cuts));
    p
}

/// Extracts `lib` with the reference backend (geometry recording on)
/// and checks every net's accumulated totals against the brute-force
/// recomputation. Returns a human-readable report of the first few
/// mismatches, or `None` when the accumulator is exact.
///
/// # Errors
///
/// Propagates reference extraction failures.
pub fn oracle_check(lib: &Library) -> Result<Option<String>, ExtractError> {
    let mut extraction = extract_library(lib, "oracle", ExtractOptions::new().with_geometry())?;
    extraction.netlist.prune_floating_nets();
    let layout = FlatLayout::from_library(lib);
    let cuts: Vec<Rect> = layout
        .boxes()
        .iter()
        .filter(|b| b.layer == Layer::Cut)
        .map(|b| b.rect)
        .collect();
    let mut mismatches = Vec::new();
    for (id, net) in extraction.netlist.nets() {
        let expect = brute_force_net(&net.geometry, &cuts);
        if expect != net.parasitics {
            mismatches.push(format!(
                "  net {id} {:?}: sweep {:?} != oracle {:?}",
                net.names, net.parasitics, expect
            ));
        }
    }
    if mismatches.is_empty() {
        return Ok(None);
    }
    let mut out = format!(
        "sweep parasitic accumulator diverges from the brute-force oracle on {} nets\n",
        mismatches.len()
    );
    for m in mismatches.iter().take(6) {
        out.push_str(m);
        out.push('\n');
    }
    Ok(Some(out))
}

/// [`crate::check_agreement`]'s parasitic variant: the reference
/// extraction is validated against the brute-force oracle, then every
/// backend's parasitic signature must equal the reference's.
///
/// # Errors
///
/// Propagates reference-backend extraction failures; a non-reference
/// backend erroring is a divergence.
pub fn check_agreement_with_parasitics(
    lib: &Library,
    backends: &[BackendId],
) -> Result<Option<Divergence>, ExtractError> {
    let reference_id = backends[0];
    if let Some(detail) = oracle_check(lib)? {
        return Ok(Some(Divergence {
            backend: reference_id,
            reference: reference_id,
            detail,
        }));
    }
    let reference = extract_pruned(reference_id, lib)?;
    let expect = parasitic_signature(&reference.netlist);
    for &id in &backends[1..] {
        let other = match extract_pruned(id, lib) {
            Ok(e) => e,
            Err(e) => {
                return Ok(Some(Divergence {
                    backend: id,
                    reference: reference_id,
                    detail: format!("backend failed where the reference succeeded: {e}"),
                }));
            }
        };
        let got = parasitic_signature(&other.netlist);
        if got != expect {
            return Ok(Some(Divergence {
                backend: id,
                reference: reference_id,
                detail: parasitic_diff(&expect, &got),
            }));
        }
    }
    Ok(None)
}

/// Shrink oracle for parasitic runs: the layout still counts as
/// divergent if the circuits, the parasitic signatures, or the
/// brute-force check disagree.
pub fn diverges_with_parasitics(cif: &str, backends: &[BackendId]) -> bool {
    if diverges(cif, backends) {
        return true;
    }
    let Ok(lib) = Library::from_cif_text(cif) else {
        return false;
    };
    matches!(check_agreement_with_parasitics(&lib, backends), Ok(Some(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_workloads::cells;

    #[test]
    fn union_metrics_handles_overlap_and_abutment() {
        // Two overlapping squares: union is an L-shaped octomino.
        let (area, perim) = union_metrics(&[Rect::new(0, 0, 2, 2), Rect::new(1, 1, 3, 3)]);
        assert_eq!(area, 7);
        assert_eq!(perim, 12);
        // Abutting pair: one 2×1 region.
        let (area, perim) = union_metrics(&[Rect::new(0, 0, 1, 1), Rect::new(1, 0, 2, 1)]);
        assert_eq!(area, 2);
        assert_eq!(perim, 6);
        // Identical duplicates collapse.
        let (area, perim) = union_metrics(&[Rect::new(0, 0, 4, 4), Rect::new(0, 0, 4, 4)]);
        assert_eq!(area, 16);
        assert_eq!(perim, 16);
        assert_eq!(union_metrics(&[]), (0, 0));
    }

    #[test]
    fn intersection_area_is_exact() {
        let a = [Rect::new(0, 0, 10, 10)];
        let b = [Rect::new(5, 5, 15, 15), Rect::new(8, 0, 12, 4)];
        assert_eq!(intersection_area(&a, &b), 25 + 8);
        assert_eq!(intersection_area(&a, &[]), 0);
    }

    #[test]
    fn oracle_accepts_the_inverter() {
        let lib = Library::from_cif_text(&cells::inverter_cif()).unwrap();
        assert_eq!(oracle_check(&lib).unwrap(), None);
    }

    #[test]
    fn backends_agree_on_inverter_parasitics() {
        let lib = Library::from_cif_text(&cells::inverter_cif()).unwrap();
        let outcome = check_agreement_with_parasitics(&lib, &BackendId::ALL).unwrap();
        assert!(outcome.is_none(), "{}", outcome.unwrap());
    }

    #[test]
    fn a_forged_parasitic_difference_reads_well() {
        let expect = vec![("N:OUT".to_string(), NetParasitics::default())];
        let detail = parasitic_diff(&expect, &[]);
        assert!(detail.contains("reference has [N:OUT]"), "{detail}");
    }
}
