//! The fuzz loop: generate → extract everywhere → compare → shrink.
//!
//! A run is `(seed, cases, backends)`. Case `i` derives its own seed
//! via [`case_seed`], samples a [`LayoutStrategy`], and checks
//! cross-backend agreement. On divergence the layout is shrunk to a
//! minimal repro (the oracle being "do the backends still
//! disagree?") and, when a repro directory is configured, written to
//! `<dir>/<case-seed>.cif` with the divergence report and both
//! wirelists embedded as CIF comments.

use std::path::PathBuf;

use ace_layout::Library;
use ace_wirelist::{write_wirelist, WirelistOptions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::backends::BackendId;
use crate::harness::{case_seed, check_agreement, diverges, extract_pruned, Divergence};
use crate::lints::{check_agreement_with_lints, diverges_with_lints};
use crate::parasitics::{check_agreement_with_parasitics, diverges_with_parasitics};
use crate::shrink::{shrink_with_budget, ShrinkStats};
use crate::strategies::LayoutStrategy;

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Run seed (`--seed`).
    pub seed: u64,
    /// Number of cases (`--cases`).
    pub cases: u32,
    /// Backends under test; `[0]` is the reference.
    pub backends: Vec<BackendId>,
    /// Where to write shrunken repros; `None` disables writing.
    pub repro_dir: Option<PathBuf>,
    /// Oracle-call budget per shrink.
    pub shrink_budget: u32,
    /// Also require identical `ace_lint` diagnostics from every
    /// backend (`--lint-agreement`); see [`crate::lints`].
    pub lint_agreement: bool,
    /// Also require identical per-net parasitic totals from every
    /// backend, with the reference checked against the brute-force
    /// oracle (`--parasitics`); see [`crate::parasitics`].
    pub parasitics: bool,
}

impl RunConfig {
    /// A run over all five backends with the default shrink budget
    /// and no repro directory.
    pub fn new(seed: u64, cases: u32) -> Self {
        RunConfig {
            seed,
            cases,
            backends: BackendId::ALL.to_vec(),
            repro_dir: None,
            shrink_budget: crate::shrink::DEFAULT_BUDGET,
            lint_agreement: false,
            parasitics: false,
        }
    }

    /// Enables lint agreement checking.
    pub fn with_lint_agreement(mut self) -> Self {
        self.lint_agreement = true;
        self
    }

    /// Enables parasitic agreement checking.
    pub fn with_parasitics(mut self) -> Self {
        self.parasitics = true;
        self
    }
}

/// One divergent case, with its shrunken repro.
#[derive(Debug, Clone)]
pub struct DivergentCase {
    /// Case index within the run.
    pub index: u32,
    /// The case's derived seed (also the repro file stem).
    pub case_seed: u64,
    /// Strategy family name.
    pub strategy: String,
    /// The disagreement found on the *original* layout.
    pub divergence: Divergence,
    /// Shrunken repro CIF (comment header included).
    pub repro_cif: String,
    /// Shrink accounting.
    pub shrink: ShrinkStats,
    /// Where the repro was written, when a directory was configured.
    pub repro_path: Option<PathBuf>,
}

/// Outcome of a whole run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Cases executed.
    pub cases: u32,
    /// Cases per strategy family, sorted by name.
    pub by_strategy: Vec<(String, u32)>,
    /// The divergent cases (empty = all backends agree).
    pub divergent: Vec<DivergentCase>,
}

/// Runs the fuzz loop, invoking `progress` after every case with
/// `(index, strategy-name, divergence?)`.
///
/// # Errors
///
/// Returns an error string on repro-write I/O failures or when the
/// *reference* backend fails on a generated layout (generated
/// layouts are valid by construction, so that is a harness bug).
pub fn run_with(
    config: &RunConfig,
    mut progress: impl FnMut(u32, &str, Option<&Divergence>),
) -> Result<RunSummary, String> {
    let mut by_strategy: std::collections::BTreeMap<String, u32> = Default::default();
    let mut divergent = Vec::new();

    for index in 0..config.cases {
        let seed = case_seed(config.seed, index);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let strategy = LayoutStrategy::sample(&mut rng);
        let name = strategy.name();
        *by_strategy.entry(name.clone()).or_insert(0) += 1;

        let cif = strategy.generate();
        let lib = Library::from_cif_text(&cif).map_err(|e| {
            format!("case {index} (seed {seed}, {name}): generated CIF invalid: {e}")
        })?;
        let outcome = if config.parasitics {
            check_agreement_with_parasitics(&lib, &config.backends)
        } else if config.lint_agreement {
            check_agreement_with_lints(&lib, &config.backends)
        } else {
            check_agreement(&lib, &config.backends)
        }
        .map_err(|e| format!("case {index} (seed {seed}, {name}): reference failed: {e}"))?;

        progress(index, &name, outcome.as_ref());
        let Some(divergence) = outcome else { continue };

        let mut oracle = |text: &str| {
            if config.parasitics {
                diverges_with_parasitics(text, &config.backends)
            } else if config.lint_agreement {
                diverges_with_lints(text, &config.backends)
            } else {
                diverges(text, &config.backends)
            }
        };
        let (small, stats) = shrink_with_budget(&cif, &mut oracle, config.shrink_budget);
        let repro_cif = render_repro(config, index, seed, &name, &divergence, &small);
        let repro_path = match &config.repro_dir {
            None => None,
            Some(dir) => {
                std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
                let path = dir.join(format!("{seed}.cif"));
                std::fs::write(&path, &repro_cif)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                Some(path)
            }
        };
        divergent.push(DivergentCase {
            index,
            case_seed: seed,
            strategy: name,
            divergence,
            repro_cif,
            shrink: stats,
            repro_path,
        });
    }

    Ok(RunSummary {
        cases: config.cases,
        by_strategy: by_strategy.into_iter().collect(),
        divergent,
    })
}

/// [`run_with`] without progress reporting.
///
/// # Errors
///
/// See [`run_with`].
pub fn run(config: &RunConfig) -> Result<RunSummary, String> {
    run_with(config, |_, _, _| {})
}

/// CIF comments may nest but must balance; divergence reports quote
/// device locations like `(500, 250)`, which balance, but net names
/// are user text — map parens to brackets to be safe.
fn comment_safe(text: &str) -> String {
    text.replace('(', "[").replace(')', "]")
}

/// A repro file: provenance + divergence report + both wirelists (as
/// CIF comments), then the shrunken layout itself.
fn render_repro(
    config: &RunConfig,
    index: u32,
    seed: u64,
    strategy: &str,
    divergence: &Divergence,
    small: &str,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "( conformance repro: run seed {} case {} [case seed {}] strategy {} )\n",
        config.seed, index, seed, strategy
    ));
    out.push_str(&format!(
        "( reproduce: cargo run -p ace_conformance --bin conformance -- --seed {} --cases {} )\n",
        config.seed,
        index + 1
    ));
    for line in comment_safe(&divergence.to_string()).lines() {
        out.push_str(&format!("( {line} )\n"));
    }
    // Wirelists of the shrunken layout, where available: re-extract
    // both sides so the comments describe the layout below them.
    if let Ok(lib) = Library::from_cif_text(small) {
        for id in [divergence.reference, divergence.backend] {
            match extract_pruned(id, &lib) {
                Ok(e) => {
                    out.push_str(&format!(
                        "( {} wirelist of the shrunken layout:\n",
                        id.name()
                    ));
                    out.push_str(&comment_safe(&write_wirelist(
                        &e.netlist,
                        WirelistOptions::new(),
                    )));
                    out.push_str(")\n");
                }
                Err(e) => {
                    out.push_str(&format!(
                        "( {} fails on the shrunken layout: {} )\n",
                        id.name(),
                        comment_safe(&e.to_string())
                    ));
                }
            }
        }
    }
    out.push_str(small);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_run_is_deterministic() {
        let config = RunConfig::new(7, 12);
        let a = run(&config).unwrap();
        let b = run(&config).unwrap();
        assert_eq!(a.cases, 12);
        assert_eq!(a.by_strategy, b.by_strategy);
        assert_eq!(a.divergent.len(), b.divergent.len());
    }

    #[test]
    fn progress_fires_once_per_case() {
        let mut seen = Vec::new();
        let config = RunConfig::new(3, 5);
        run_with(&config, |i, name, _| seen.push((i, name.to_string()))).unwrap();
        assert_eq!(seen.len(), 5);
        assert_eq!(seen[0].0, 0);
        assert_eq!(seen[4].0, 4);
    }

    #[test]
    fn repro_files_parse_as_cif() {
        // Comment-wrapped reports must still be valid CIF: check the
        // renderer output on a fabricated divergence.
        let config = RunConfig::new(1, 1);
        let divergence = Divergence {
            backend: BackendId::Hext,
            reference: BackendId::AceFlat,
            detail: "device count differs: 2 vs 1 (weird (nested) parens)".to_string(),
        };
        let text = render_repro(
            &config,
            0,
            42,
            "soup",
            &divergence,
            "L ND; B 500 500 250 250; E\n",
        );
        let lib = Library::from_cif_text(&text).unwrap();
        assert_eq!(lib.instantiated_box_count(), 1);
    }
}
