//! Oracle-driven layout shrinking.
//!
//! Given a CIF layout and an oracle ("does this layout still make the
//! backends diverge?"), [`shrink`] searches for a smaller layout the
//! oracle still accepts, delta-debugging style:
//!
//! 1. **Flatten symbols** — if the divergence survives flattening,
//!    the hierarchy was irrelevant and every later step gets a
//!    simpler, single-level file to chew on.
//! 2. **Drop commands** — remove boxes, calls, and labels in
//!    exponentially narrowing chunks until no single removal keeps
//!    the divergence alive.
//! 3. **Shrink extents** — replace boxes by their λ-aligned half
//!    boxes while the oracle stays green.
//! 4. **Re-λ-align** — snap any off-grid box outward to the λ grid
//!    (a repro that survives alignment rules out snap artifacts).
//! 5. **Normalize** — translate a flat all-box layout so its bounding
//!    box starts at the origin.
//!
//! Every candidate is validated through the oracle, so an op that
//! breaks the layout (e.g. removing a symbol still being called,
//! which no longer parses) is simply rejected. The search is bounded
//! by an oracle-call budget, not by wall clock, so runs reproduce.

use std::collections::BTreeSet;

use ace_cif::{parse, write_cif, CifFile, Command, Shape, SymbolDef, SymbolId};
use ace_geom::{Point, Rect, LAMBDA};
use ace_layout::{FlatLayout, Library};
use ace_workloads::soup::flat_to_cif;

/// Default cap on oracle invocations per shrink.
pub const DEFAULT_BUDGET: u32 = 1500;

/// What a shrink run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Oracle invocations spent.
    pub oracle_calls: u32,
    /// Geometry commands before shrinking.
    pub boxes_before: usize,
    /// Geometry commands after shrinking.
    pub boxes_after: usize,
}

/// Shrinks `cif` to a smaller layout the oracle still accepts, with
/// the default budget. Returns the input unchanged (plus zero-work
/// stats) when the oracle rejects the input itself or the input does
/// not parse.
pub fn shrink(cif: &str, oracle: &mut dyn FnMut(&str) -> bool) -> (String, ShrinkStats) {
    shrink_with_budget(cif, oracle, DEFAULT_BUDGET)
}

/// [`shrink`] with an explicit oracle-call budget.
pub fn shrink_with_budget(
    cif: &str,
    oracle: &mut dyn FnMut(&str) -> bool,
    budget: u32,
) -> (String, ShrinkStats) {
    let mut s = Shrinker {
        oracle,
        calls: 0,
        budget,
    };
    let Ok(mut file) = parse(cif) else {
        return (
            cif.to_string(),
            ShrinkStats {
                oracle_calls: 0,
                boxes_before: 0,
                boxes_after: 0,
            },
        );
    };
    let boxes_before = file.geometry_count();
    if !s.check(&file) {
        return (
            cif.to_string(),
            ShrinkStats {
                oracle_calls: s.calls,
                boxes_before,
                boxes_after: boxes_before,
            },
        );
    }

    // Flatten first: most divergences survive it, and a flat file
    // makes every later pass cheaper and the repro easier to read.
    if let Some(flat) = flatten_candidate(&file) {
        if s.check(&flat) {
            file = flat;
        }
    }

    loop {
        let before = write_cif(&file);
        file = s.drop_pass(file);
        file = s.extent_pass(file);
        file = s.align_pass(file);
        file = s.normalize_pass(file);
        if write_cif(&file) == before || s.exhausted() {
            break;
        }
    }

    let boxes_after = file.geometry_count();
    (
        write_cif(&file),
        ShrinkStats {
            oracle_calls: s.calls,
            boxes_before,
            boxes_after,
        },
    )
}

struct Shrinker<'a> {
    oracle: &'a mut dyn FnMut(&str) -> bool,
    calls: u32,
    budget: u32,
}

/// Address of one command: `(symbol, index)`, `None` = top level.
type Unit = (Option<SymbolId>, usize);

impl Shrinker<'_> {
    fn exhausted(&self) -> bool {
        self.calls >= self.budget
    }

    fn check(&mut self, file: &CifFile) -> bool {
        if self.exhausted() {
            return false;
        }
        self.calls += 1;
        (self.oracle)(&write_cif(file))
    }

    /// Removes commands in narrowing chunks until stuck.
    fn drop_pass(&mut self, mut file: CifFile) -> CifFile {
        loop {
            let units = enumerate_units(&file);
            if units.len() <= 1 {
                return file;
            }
            let mut chunk = units.len().div_ceil(2);
            let mut reduced = None;
            'search: while chunk >= 1 {
                let mut start = 0;
                while start < units.len() {
                    let removed: BTreeSet<Unit> = units[start..(start + chunk).min(units.len())]
                        .iter()
                        .copied()
                        .collect();
                    let candidate = without_units(&file, &removed);
                    if self.check(&candidate) {
                        reduced = Some(candidate);
                        break 'search;
                    }
                    if self.exhausted() {
                        return file;
                    }
                    start += chunk;
                }
                if chunk == 1 {
                    break;
                }
                chunk /= 2;
            }
            match reduced {
                Some(smaller) => file = smaller,
                None => return file,
            }
        }
    }

    /// Replaces boxes by λ-aligned halves while the oracle holds.
    fn extent_pass(&mut self, mut file: CifFile) -> CifFile {
        loop {
            let mut progressed = false;
            for (unit, rect) in enumerate_boxes(&file) {
                for half in lambda_halves(rect) {
                    let candidate = with_box(&file, unit, half);
                    if self.check(&candidate) {
                        file = candidate;
                        progressed = true;
                        break;
                    }
                    if self.exhausted() {
                        return file;
                    }
                }
                if progressed {
                    break; // unit addresses shifted meaning; re-enumerate
                }
            }
            if !progressed {
                return file;
            }
        }
    }

    /// Snaps off-grid boxes outward to the λ grid.
    fn align_pass(&mut self, mut file: CifFile) -> CifFile {
        for (unit, rect) in enumerate_boxes(&file) {
            let snapped = snap_outward(rect);
            if snapped != rect {
                let candidate = with_box(&file, unit, snapped);
                if self.check(&candidate) {
                    file = candidate;
                }
                if self.exhausted() {
                    return file;
                }
            }
        }
        file
    }

    /// Translates a flat, all-box layout so its bbox starts at the
    /// origin (λ-aligned shift, so alignment is preserved).
    fn normalize_pass(&mut self, file: CifFile) -> CifFile {
        if !file.symbols().is_empty() {
            return file;
        }
        let mut bbox: Option<Rect> = None;
        for cmd in file.top_level() {
            match cmd {
                Command::Geometry {
                    shape: Shape::Box(r),
                    ..
                } => {
                    bbox = Some(match bbox {
                        None => *r,
                        Some(b) => Rect::new(
                            b.x_min.min(r.x_min),
                            b.y_min.min(r.y_min),
                            b.x_max.max(r.x_max),
                            b.y_max.max(r.y_max),
                        ),
                    });
                }
                Command::Label { .. } | Command::CellName(_) | Command::UserExtension(_) => {}
                // Calls (impossible here: no symbols) or non-box
                // geometry: leave the layout where it is.
                _ => return file,
            }
        }
        let Some(b) = bbox else { return file };
        let shift = Point::new(-floor_lambda(b.x_min), -floor_lambda(b.y_min));
        if shift == Point::ORIGIN {
            return file;
        }
        let mut moved = CifFile::new();
        for cmd in file.top_level() {
            moved.push_top_level(match cmd {
                Command::Geometry {
                    layer,
                    shape: Shape::Box(r),
                } => Command::Geometry {
                    layer: *layer,
                    shape: Shape::Box(r.translate(shift)),
                },
                Command::Label { name, at, layer } => Command::Label {
                    name: name.clone(),
                    at: Point::new(at.x + shift.x, at.y + shift.y),
                    layer: *layer,
                },
                other => other.clone(),
            });
        }
        if self.check(&moved) {
            moved
        } else {
            file
        }
    }
}

fn flatten_candidate(file: &CifFile) -> Option<CifFile> {
    if file.symbols().is_empty() {
        return None;
    }
    let lib = Library::from_cif_text(&write_cif(file)).ok()?;
    let flat = FlatLayout::from_library(&lib);
    parse(&flat_to_cif(&flat)).ok()
}

fn enumerate_units(file: &CifFile) -> Vec<Unit> {
    let mut units = Vec::new();
    for (id, def) in file.symbols() {
        for i in 0..def.items.len() {
            units.push((Some(*id), i));
        }
    }
    for i in 0..file.top_level().len() {
        units.push((None, i));
    }
    units
}

fn without_units(file: &CifFile, removed: &BTreeSet<Unit>) -> CifFile {
    let mut out = CifFile::new();
    for (id, def) in file.symbols() {
        let items: Vec<Command> = def
            .items
            .iter()
            .enumerate()
            .filter(|(i, _)| !removed.contains(&(Some(*id), *i)))
            .map(|(_, c)| c.clone())
            .collect();
        out.insert_symbol(SymbolDef { id: *id, items });
    }
    for (i, cmd) in file.top_level().iter().enumerate() {
        if !removed.contains(&(None, i)) {
            out.push_top_level(cmd.clone());
        }
    }
    out
}

fn enumerate_boxes(file: &CifFile) -> Vec<(Unit, Rect)> {
    let mut boxes = Vec::new();
    let mut scan = |sym: Option<SymbolId>, items: &[Command]| {
        for (i, cmd) in items.iter().enumerate() {
            if let Command::Geometry {
                shape: Shape::Box(r),
                ..
            } = cmd
            {
                boxes.push(((sym, i), *r));
            }
        }
    };
    for (id, def) in file.symbols() {
        scan(Some(*id), &def.items);
    }
    scan(None, file.top_level());
    boxes
}

fn with_box(file: &CifFile, unit: Unit, rect: Rect) -> CifFile {
    let replace = |items: &[Command], idx: usize| -> Vec<Command> {
        items
            .iter()
            .enumerate()
            .map(|(i, c)| match c {
                Command::Geometry {
                    layer,
                    shape: Shape::Box(_),
                } if i == idx => Command::Geometry {
                    layer: *layer,
                    shape: Shape::Box(rect),
                },
                other => other.clone(),
            })
            .collect()
    };
    let mut out = CifFile::new();
    for (id, def) in file.symbols() {
        let items = if unit.0 == Some(*id) {
            replace(&def.items, unit.1)
        } else {
            def.items.clone()
        };
        out.insert_symbol(SymbolDef { id: *id, items });
    }
    let top = if unit.0.is_none() {
        replace(file.top_level(), unit.1)
    } else {
        file.top_level().to_vec()
    };
    for cmd in top {
        out.push_top_level(cmd);
    }
    out
}

/// The λ-aligned half boxes of `r` (left/right/bottom/top), shortest
/// first so the greedy pass prefers the biggest reduction that works.
fn lambda_halves(r: Rect) -> Vec<Rect> {
    let mut halves = Vec::new();
    let half_w = floor_lambda(r.width() / 2).max(LAMBDA);
    if half_w < r.width() {
        halves.push(Rect::new(r.x_min, r.y_min, r.x_min + half_w, r.y_max));
        halves.push(Rect::new(r.x_max - half_w, r.y_min, r.x_max, r.y_max));
    }
    let half_h = floor_lambda(r.height() / 2).max(LAMBDA);
    if half_h < r.height() {
        halves.push(Rect::new(r.x_min, r.y_min, r.x_max, r.y_min + half_h));
        halves.push(Rect::new(r.x_min, r.y_max - half_h, r.x_max, r.y_max));
    }
    halves
}

fn snap_outward(r: Rect) -> Rect {
    let snapped = Rect::new(
        floor_lambda(r.x_min),
        floor_lambda(r.y_min),
        ceil_lambda(r.x_max),
        ceil_lambda(r.y_max),
    );
    if snapped.x_max == snapped.x_min || snapped.y_max == snapped.y_min {
        // Zero-extent after snap (degenerate sliver): widen by one λ.
        Rect::new(
            snapped.x_min,
            snapped.y_min,
            snapped.x_min + (snapped.x_max - snapped.x_min).max(LAMBDA),
            snapped.y_min + (snapped.y_max - snapped.y_min).max(LAMBDA),
        )
    } else {
        snapped
    }
}

fn floor_lambda(c: i64) -> i64 {
    c.div_euclid(LAMBDA) * LAMBDA
}

fn ceil_lambda(c: i64) -> i64 {
    floor_lambda(c) + if c.rem_euclid(LAMBDA) == 0 { 0 } else { LAMBDA }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_workloads::mesh::mesh_cif;

    #[test]
    fn shrinks_to_the_boxes_the_oracle_needs() {
        // Oracle: "diverges" iff a metal box overlaps a poly box.
        let cif = "L NM; B 1000 1000 500 500; B 500 500 5000 5000; \
                   L NP; B 1000 1000 750 750; B 500 500 9000 9000; \
                   L ND; B 500 500 -3000 -3000; E";
        let mut oracle = |text: &str| {
            let Ok(lib) = Library::from_cif_text(text) else {
                return false;
            };
            let flat = FlatLayout::from_library(&lib);
            let metal: Vec<Rect> = flat
                .boxes()
                .iter()
                .filter(|b| b.layer == ace_geom::Layer::Metal)
                .map(|b| b.rect)
                .collect();
            flat.boxes().iter().any(|b| {
                b.layer == ace_geom::Layer::Poly && metal.iter().any(|m| m.overlaps(&b.rect))
            })
        };
        let (small, stats) = shrink(cif, &mut oracle);
        assert!(
            oracle(&small),
            "shrunk layout must still satisfy the oracle"
        );
        let file = parse(&small).unwrap();
        assert_eq!(file.geometry_count(), 2, "{small}");
        assert_eq!(stats.boxes_before, 5);
        assert_eq!(stats.boxes_after, 2);
        assert!(stats.oracle_calls <= DEFAULT_BUDGET);
    }

    #[test]
    fn flattens_hierarchy_when_the_divergence_survives() {
        let cif = mesh_cif(3);
        let mut oracle = |text: &str| {
            Library::from_cif_text(text)
                .map(|l| l.instantiated_box_count() > 0)
                .unwrap_or(false)
        };
        let (small, _) = shrink(&cif, &mut oracle);
        let file = parse(&small).unwrap();
        assert!(file.symbols().is_empty(), "hierarchy should flatten away");
        assert_eq!(file.geometry_count(), 1, "{small}");
    }

    #[test]
    fn returns_input_when_oracle_rejects_it() {
        let cif = "L ND; B 1000 1000 500 500; E";
        let mut oracle = |_: &str| false;
        let (out, stats) = shrink(cif, &mut oracle);
        assert_eq!(out, cif);
        assert_eq!(stats.boxes_after, stats.boxes_before);
    }

    #[test]
    fn respects_the_budget() {
        let cif = mesh_cif(4);
        let mut calls = 0u32;
        let mut oracle = |text: &str| {
            calls += 1;
            Library::from_cif_text(text)
                .map(|l| l.instantiated_box_count() > 0)
                .unwrap_or(false)
        };
        let (_, stats) = shrink_with_budget(&cif, &mut oracle, 10);
        assert!(stats.oracle_calls <= 10);
        assert_eq!(calls, stats.oracle_calls);
    }

    #[test]
    fn normalizes_flat_layouts_to_the_origin() {
        let cif = "L ND; B 500 2000 9250 9000; L NP; B 2000 500 9250 9000; E";
        let mut oracle = |text: &str| {
            Library::from_cif_text(text)
                .map(|l| l.instantiated_box_count() == 2)
                .unwrap_or(false)
        };
        let (small, _) = shrink(cif, &mut oracle);
        let lib = Library::from_cif_text(&small).unwrap();
        let flat = FlatLayout::from_library(&lib);
        let bbox = flat.bounding_box().unwrap();
        assert!(
            bbox.x_min.abs() < LAMBDA && bbox.y_min.abs() < LAMBDA,
            "{small}"
        );
    }
}
