//! Random-layout strategies for the differential fuzzer.
//!
//! A [`LayoutStrategy`] is a *fully materialized* plan: sampling
//! draws every parameter (including per-strategy sub-seeds) up
//! front, so `generate()` is a pure function of the strategy value
//! and a case is reproducible from `(seed, index)` alone.
//!
//! The base strategies cover the repository's workload families —
//! λ-aligned box soups, Bentley–Haken–Hon random squares (λ-aligned
//! variant), worst-case mesh fragments, perturbed hand-designed leaf
//! cells, and hierarchical CIF with rotated/mirrored symbol calls —
//! and two combinators compose them: [`LayoutStrategy::Overlay`]
//! superimposes two layouts, [`LayoutStrategy::Labeled`] decorates
//! one with CIF `94` net labels at backend-safe sites.

use ace_cif::CifWriter;
use ace_geom::{Layer, Point, Rect, Transform, LAMBDA};
use ace_layout::{FlatLayout, Library};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use ace_workloads::bhh::{bhh_cif, BhhParams};
use ace_workloads::cells::{write_inverter_cell, write_nand_cell, write_ram_cell};
use ace_workloads::mesh::mesh_cif;
use ace_workloads::soup::{
    boxes_to_cif, label_sites, overlay_flat_cif, soup_boxes, with_labels, SoupParams,
};

/// Signal names used by the labeling combinator.
const LABEL_POOL: [&str; 6] = ["VDD", "GND", "phi1", "phi2", "out", "in"];

/// A hand-designed leaf cell the perturbation strategy starts from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafCell {
    /// The Figure 3-3 inverter (10 boxes, 2 devices).
    Inverter,
    /// A row of chained inverters.
    InverterChain(u32),
    /// The one-transistor RAM cell.
    Ram,
    /// The two-input NAND cell.
    Nand,
}

impl LeafCell {
    /// The cell as unlabeled CIF (labels are added, if at all, by the
    /// [`LayoutStrategy::Labeled`] combinator *after* perturbation —
    /// perturbing geometry under a fixed label can legitimately
    /// change what the label resolves to).
    pub fn cif(self) -> String {
        let mut w = CifWriter::new();
        match self {
            LeafCell::Inverter => {
                write_inverter_cell(&mut w, false);
            }
            LeafCell::InverterChain(n) => {
                w.begin_symbol(1);
                write_inverter_cell(&mut w, true);
                w.end_symbol();
                for i in 0..n.max(1) {
                    w.call(1, i as i64 * ace_workloads::cells::INVERTER_PITCH.0, 0);
                }
            }
            LeafCell::Ram => {
                write_ram_cell(&mut w);
            }
            LeafCell::Nand => {
                write_nand_cell(&mut w);
            }
        }
        w.finish()
    }

    fn name(self) -> &'static str {
        match self {
            LeafCell::Inverter => "inverter",
            LeafCell::InverterChain(_) => "inverter-chain",
            LeafCell::Ram => "ram",
            LeafCell::Nand => "nand",
        }
    }
}

/// Parameters of the hierarchical-CIF strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierParams {
    /// Number of distinct symbols (1–3).
    pub symbols: u32,
    /// Number of symbol calls (placements on a coarse grid).
    pub placements: u32,
    /// Whether symbol 2 nests a call to symbol 1.
    pub nested: bool,
    /// Whether symbols placed exactly once carry an internal metal
    /// `94` label (exercising label transformation).
    pub internal_labels: bool,
    /// Sub-seed for symbol contents and call transforms.
    pub seed: u64,
}

/// One composable layout-generation strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutStrategy {
    /// λ-aligned random box soup over all six layers.
    Soup(SoupParams),
    /// BHH random squares, λ-aligned variant (8λ edges so the raster
    /// grid samples them exactly).
    BhhAligned {
        /// Square count (the model's N).
        boxes: u64,
        /// Sub-seed.
        seed: u64,
    },
    /// A random subset of the worst-case N×N poly/diffusion mesh.
    MeshFragment {
        /// Mesh side.
        n: u32,
        /// Percent of boxes kept (the rest are dropped).
        keep_percent: u32,
        /// Sub-seed for the subset choice.
        seed: u64,
    },
    /// A hand-designed leaf cell with random λ-aligned edits applied
    /// (move / delete / duplicate a box).
    PerturbedLeaf {
        /// The starting cell.
        cell: LeafCell,
        /// Number of edits.
        steps: u32,
        /// Sub-seed for the edit sequence.
        seed: u64,
    },
    /// Hierarchical CIF: symbols of random content placed with
    /// rotation/mirror transforms, optionally nested, optionally with
    /// symbol-internal `94` labels.
    Hierarchical(HierParams),
    /// Superimpose two strategies' layouts at a λ-aligned offset.
    Overlay(Box<LayoutStrategy>, Box<LayoutStrategy>, Point),
    /// Decorate a strategy's layout with up to the given number of
    /// CIF `94` labels at backend-safe sites.
    Labeled(Box<LayoutStrategy>, u32),
}

impl LayoutStrategy {
    /// Short family name for reporting (`soup`, `overlay(soup+mesh)`,
    /// …).
    pub fn name(&self) -> String {
        match self {
            LayoutStrategy::Soup(_) => "soup".into(),
            LayoutStrategy::BhhAligned { .. } => "bhh".into(),
            LayoutStrategy::MeshFragment { .. } => "mesh".into(),
            LayoutStrategy::PerturbedLeaf { cell, .. } => format!("leaf-{}", cell.name()),
            LayoutStrategy::Hierarchical(_) => "hier".into(),
            LayoutStrategy::Overlay(a, b, _) => format!("overlay({}+{})", a.name(), b.name()),
            LayoutStrategy::Labeled(inner, _) => format!("labeled({})", inner.name()),
        }
    }

    /// Draws a random strategy (with all parameters fixed) from the
    /// default mix.
    pub fn sample(rng: &mut dyn RngCore) -> LayoutStrategy {
        // Weighted pick over the seven families.
        match rng.gen_range(0..18u32) {
            0..=3 => Self::sample_soup(rng),
            4..=5 => Self::sample_bhh(rng),
            6..=7 => Self::sample_mesh(rng),
            8..=9 => Self::sample_leaf(rng),
            10..=12 => Self::sample_hier(rng),
            13..=14 => {
                let a = Self::sample_base(rng);
                let b = Self::sample_base(rng);
                let dx = rng.gen_range(-16i64..17) * LAMBDA;
                let dy = rng.gen_range(-16i64..17) * LAMBDA;
                LayoutStrategy::Overlay(Box::new(a), Box::new(b), Point::new(dx, dy))
            }
            _ => {
                let inner = match rng.gen_range(0..4u32) {
                    0 => Self::sample_soup(rng),
                    1 => Self::sample_bhh(rng),
                    2 => Self::sample_mesh(rng),
                    _ => {
                        let a = Self::sample_soup(rng);
                        let b = Self::sample_soup(rng);
                        let dx = rng.gen_range(-12i64..13) * LAMBDA;
                        let dy = rng.gen_range(-12i64..13) * LAMBDA;
                        LayoutStrategy::Overlay(Box::new(a), Box::new(b), Point::new(dx, dy))
                    }
                };
                let labels = rng.gen_range(1..5u32);
                LayoutStrategy::Labeled(Box::new(inner), labels)
            }
        }
    }

    fn sample_base(rng: &mut dyn RngCore) -> LayoutStrategy {
        match rng.gen_range(0..3u32) {
            0 => Self::sample_soup(rng),
            1 => Self::sample_mesh(rng),
            _ => Self::sample_leaf(rng),
        }
    }

    fn sample_soup(rng: &mut dyn RngCore) -> LayoutStrategy {
        let boxes = rng.gen_range(1..40u32);
        let region = rng.gen_range(12..32u32);
        let max_extent = rng.gen_range(2..9u32);
        LayoutStrategy::Soup(
            SoupParams::new(boxes, rng.next_u64())
                .with_region(region)
                .with_max_extent(max_extent),
        )
    }

    fn sample_bhh(rng: &mut dyn RngCore) -> LayoutStrategy {
        LayoutStrategy::BhhAligned {
            boxes: rng.gen_range(8..64u64),
            seed: rng.next_u64(),
        }
    }

    fn sample_mesh(rng: &mut dyn RngCore) -> LayoutStrategy {
        LayoutStrategy::MeshFragment {
            n: rng.gen_range(2..6u32),
            keep_percent: rng.gen_range(40..101u32),
            seed: rng.next_u64(),
        }
    }

    fn sample_leaf(rng: &mut dyn RngCore) -> LayoutStrategy {
        let cell = match rng.gen_range(0..4u32) {
            0 => LeafCell::Inverter,
            1 => LeafCell::InverterChain(rng.gen_range(2..5u32)),
            2 => LeafCell::Ram,
            _ => LeafCell::Nand,
        };
        LayoutStrategy::PerturbedLeaf {
            cell,
            steps: rng.gen_range(1..6u32),
            seed: rng.next_u64(),
        }
    }

    fn sample_hier(rng: &mut dyn RngCore) -> LayoutStrategy {
        LayoutStrategy::Hierarchical(HierParams {
            symbols: rng.gen_range(1..4u32),
            placements: rng.gen_range(2..9u32),
            nested: rng.gen_range(0..2u32) == 1,
            internal_labels: rng.gen_range(0..2u32) == 1,
            seed: rng.next_u64(),
        })
    }

    /// Generates the strategy's layout as CIF text.
    pub fn generate(&self) -> String {
        match self {
            LayoutStrategy::Soup(params) => boxes_to_cif(&soup_boxes(params)),
            LayoutStrategy::BhhAligned { boxes, seed } => bhh_cif(&BhhParams {
                boxes: (*boxes).max(1),
                edge: 8 * LAMBDA, // λ-aligned stand-in for the 7.6λ square
                side_factor: 9.8,
                seed: *seed,
            }),
            LayoutStrategy::MeshFragment {
                n,
                keep_percent,
                seed,
            } => {
                let full = flatten(&mesh_cif(*n));
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                let kept: Vec<(Layer, Rect)> = full
                    .boxes()
                    .iter()
                    .filter(|_| rng.gen_range(0..100u32) < *keep_percent)
                    .map(|b| (b.layer, b.rect))
                    .collect();
                if kept.is_empty() {
                    // Degenerate subsets regrow one box so the layout
                    // parses into a non-empty library.
                    boxes_to_cif(&[(Layer::Diffusion, Rect::new(0, 0, LAMBDA, LAMBDA))])
                } else {
                    boxes_to_cif(&kept)
                }
            }
            LayoutStrategy::PerturbedLeaf { cell, steps, seed } => {
                let flat = flatten(&cell.cif());
                let mut boxes: Vec<(Layer, Rect)> =
                    flat.boxes().iter().map(|b| (b.layer, b.rect)).collect();
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                for _ in 0..*steps {
                    perturb(&mut boxes, &mut rng);
                }
                boxes_to_cif(&boxes)
            }
            LayoutStrategy::Hierarchical(params) => hierarchical_cif(params),
            LayoutStrategy::Overlay(a, b, offset) => {
                overlay_flat_cif(&a.generate(), &b.generate(), *offset)
                    .expect("strategy output parses")
            }
            LayoutStrategy::Labeled(inner, count) => {
                let cif = inner.generate();
                let flat = flatten(&cif);
                let sites = label_sites(&flat, *count as usize);
                let labels: Vec<(String, Point, Layer)> = sites
                    .into_iter()
                    .enumerate()
                    .map(|(i, (at, layer))| {
                        (LABEL_POOL[i % LABEL_POOL.len()].to_string(), at, layer)
                    })
                    .collect();
                with_labels(&cif, &labels)
            }
        }
    }
}

fn flatten(cif: &str) -> FlatLayout {
    FlatLayout::from_library(&Library::from_cif_text(cif).expect("strategy output parses"))
}

/// One random λ-aligned edit: move, delete, or duplicate a box.
fn perturb(boxes: &mut Vec<(Layer, Rect)>, rng: &mut ChaCha8Rng) {
    if boxes.is_empty() {
        return;
    }
    let idx = rng.gen_range(0..boxes.len());
    let delta = Point::new(
        rng.gen_range(-3i64..4) * LAMBDA,
        rng.gen_range(-3i64..4) * LAMBDA,
    );
    match rng.gen_range(0..3u32) {
        0 => boxes[idx].1 = boxes[idx].1.translate(delta),
        1 if boxes.len() > 2 => {
            boxes.remove(idx);
        }
        _ => {
            let copy = (boxes[idx].0, boxes[idx].1.translate(delta));
            boxes.push(copy);
        }
    }
}

/// Grid pitch for hierarchical placements: far enough apart that no
/// two placed symbols (content radius ≤ ~12λ after any orientation)
/// can touch, which keeps per-symbol label sites globally safe.
const HIER_PITCH: i64 = 28 * LAMBDA;

fn hierarchical_cif(params: &HierParams) -> String {
    let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
    let nsym = params.symbols.clamp(1, 3);

    // Symbol contents: conducting-heavy mini-soups in [0, 6λ]²-ish.
    let symbol_boxes: Vec<Vec<(Layer, Rect)>> = (0..nsym)
        .map(|_| {
            soup_boxes(&SoupParams {
                boxes: rng.gen_range(2..7u32),
                region: 6,
                max_extent: 4,
                weights: [30, 30, 25, 5, 5, 5],
                seed: rng.next_u64(),
            })
        })
        .collect();

    // Placements on a coarse grid (distinct cells, so instance
    // geometry never collides), random orientation per call.
    let mut cells: Vec<(i64, i64)> = (0..4)
        .flat_map(|gx| (0..4).map(move |gy| (gx, gy)))
        .collect();
    let mut calls: Vec<(u32, Transform)> = Vec::new();
    for _ in 0..params.placements.clamp(1, 8) {
        if cells.is_empty() {
            break;
        }
        let cell = cells.remove(rng.gen_range(0..cells.len()));
        let sym = rng.gen_range(1..nsym + 1);
        let mut t = Transform::identity();
        if rng.gen_range(0..2u32) == 1 {
            t = t.mirror_x();
        }
        t = t.rotate_quarter_turns(rng.gen_range(0..4u32) as u8);
        t = t.translate(Point::new(cell.0 * HIER_PITCH, cell.1 * HIER_PITCH));
        calls.push((sym, t));
    }

    let mut w = CifWriter::new();
    for (s, boxes) in symbol_boxes.iter().enumerate() {
        let id = s as u32 + 1;
        w.begin_symbol(id);
        let mut metal: Option<Rect> = None;
        for &(layer, rect) in boxes {
            w.rect_on(layer, rect);
            if layer == Layer::Metal && metal.is_none() {
                metal = Some(rect);
            }
        }
        if params.nested && id == 2 {
            w.call(1, 2 * LAMBDA, 2 * LAMBDA);
        }
        // Symbol-internal labels: only for symbols placed exactly
        // once at top level (the same name stamped from two
        // placements would bind one name to two nets, which the
        // comparator rightly rejects — and the nested call of symbol
        // 1 inside symbol 2 counts as an extra stamping), and only on
        // metal (metal can never become a transistor channel, so the
        // site stays resolvable whatever else the symbol contains).
        let stampings = calls.iter().filter(|&&(sym, _)| sym == id).count()
            + usize::from(params.nested && id == 1 && calls.iter().any(|&(sym, _)| sym == 2));
        if params.internal_labels && stampings == 1 {
            if let Some(r) = metal.filter(|r| r.width() >= LAMBDA && r.height() >= LAMBDA) {
                w.label(
                    &format!("s{id}m"),
                    Point::new(r.x_min + LAMBDA / 2, r.y_min + LAMBDA / 2),
                    Some(Layer::Metal),
                );
            }
        }
        w.end_symbol();
    }
    for (sym, t) in &calls {
        w.call_transformed(*sym, t);
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_and_generation_are_deterministic() {
        let draw = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let s = LayoutStrategy::sample(&mut rng);
            (s.name(), s.generate())
        };
        assert_eq!(draw(42), draw(42));
        // Different seeds explore different strategies/geometry.
        let mut names = std::collections::BTreeSet::new();
        for seed in 0..40 {
            names.insert(draw(seed).0);
        }
        assert!(names.len() >= 4, "mix too narrow: {names:?}");
    }

    #[test]
    fn every_family_generates_valid_cif() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..60 {
            let s = LayoutStrategy::sample(&mut rng);
            let cif = s.generate();
            let lib =
                Library::from_cif_text(&cif).unwrap_or_else(|e| panic!("{}: {e}\n{cif}", s.name()));
            assert!(lib.instantiated_box_count() > 0, "{}", s.name());
        }
    }

    #[test]
    fn generated_layouts_are_lambda_aligned() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..40 {
            let s = LayoutStrategy::sample(&mut rng);
            let flat = flatten(&s.generate());
            for b in flat.boxes() {
                for c in [b.rect.x_min, b.rect.y_min, b.rect.x_max, b.rect.y_max] {
                    assert_eq!(c % LAMBDA, 0, "{}: {} not λ-aligned", s.name(), b.rect);
                }
            }
        }
    }
}
