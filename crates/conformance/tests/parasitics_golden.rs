//! Golden parasitic snapshots.
//!
//! `conformance/corpus/parasitics.txt` pins, byte for byte, the three
//! parasitic-facing render paths for two known layouts (the canonical
//! inverter with its depletion pullup, and a three-stage chain):
//!
//! * the wirelist `(Parasitics ...)` sections emitted under
//!   `WirelistOptions::with_parasitics`;
//! * the SPICE deck from `write_spice`;
//! * the Elmore critical-path report.
//!
//! Any drift in the union accumulator, the parameter table, or the
//! renderers shows up here as a diff. Regenerate after an intentional
//! change with:
//!
//! ```text
//! ACE_PARASITICS_RECORD=1 cargo test -p ace_conformance --test parasitics_golden
//! ```

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ace_core::{extract_text, ExtractOptions};
use ace_wirelist::parasitics::ParasiticParams;
use ace_wirelist::timing::critical_path;
use ace_wirelist::{write_spice, write_wirelist, WirelistOptions};
use ace_workloads::cells::{chained_inverters_cif, inverter_cif};

fn snapshot_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../conformance/corpus/parasitics.txt")
}

/// Every `(section key, rendered text)` pair the snapshot pins.
fn compute_sections() -> Vec<(String, String)> {
    let params = ParasiticParams::nmos();
    let mut sections = Vec::new();
    for (name, src) in [
        ("inverter", inverter_cif()),
        ("chain3", chained_inverters_cif(3)),
    ] {
        let mut r = extract_text(&src, ExtractOptions::new()).expect("layout extracts");
        r.netlist.prune_floating_nets();
        sections.push((
            format!("{name}.wirelist"),
            write_wirelist(&r.netlist, WirelistOptions::new().with_parasitics()),
        ));
        sections.push((format!("{name}.spice"), write_spice(&r.netlist, &params)));
        let cp = critical_path(&r.netlist, &params).expect("layout has a delay path");
        sections.push((format!("{name}.critical-path"), cp.render(&r.netlist)));
    }
    sections
}

fn render_snapshot(sections: &[(String, String)]) -> String {
    let mut out = String::new();
    for (key, text) in sections {
        out.push_str("== ");
        out.push_str(key);
        out.push('\n');
        out.push_str(text);
        if !text.ends_with('\n') {
            out.push('\n');
        }
    }
    out
}

fn parse_snapshot(text: &str) -> BTreeMap<String, String> {
    let mut sections = BTreeMap::new();
    let mut key: Option<String> = None;
    let mut body = String::new();
    for line in text.lines() {
        if let Some(next) = line.strip_prefix("== ") {
            if let Some(k) = key.take() {
                sections.insert(k, std::mem::take(&mut body));
            }
            key = Some(next.to_string());
        } else if key.is_some() {
            body.push_str(line);
            body.push('\n');
        }
    }
    if let Some(k) = key {
        sections.insert(k, body);
    }
    sections
}

#[test]
fn parasitic_renders_match_the_golden_snapshot() {
    let sections = compute_sections();
    if std::env::var_os("ACE_PARASITICS_RECORD").is_some() {
        std::fs::write(snapshot_path(), render_snapshot(&sections)).expect("write snapshot");
        return;
    }
    let stored = parse_snapshot(
        &std::fs::read_to_string(snapshot_path())
            .expect("conformance/corpus/parasitics.txt exists (ACE_PARASITICS_RECORD=1 to create)"),
    );
    let mut failures = Vec::new();
    for (key, text) in &sections {
        match stored.get(key) {
            None => failures.push(format!("missing snapshot section `== {key}`")),
            Some(want) if want != text => failures.push(format!(
                "section `== {key}` drifted\n--- pinned ---\n{want}--- computed ---\n{text}"
            )),
            Some(_) => {}
        }
    }
    for key in stored.keys() {
        if !sections.iter().any(|(k, _)| k == key) {
            failures.push(format!("stale snapshot section `== {key}`"));
        }
    }
    assert!(
        failures.is_empty(),
        "{}\n(ACE_PARASITICS_RECORD=1 to refresh after an intentional change)",
        failures.join("\n")
    );
}

/// The pinned layouts really exercise the machinery: the inverter's
/// output must carry wire capacitance on more than one layer, and the
/// chain's critical path must be longer than the single inverter's.
#[test]
fn pinned_layouts_are_representative() {
    let params = ParasiticParams::nmos();
    let mut inv = extract_text(&inverter_cif(), ExtractOptions::new()).expect("inverter");
    inv.netlist.prune_floating_nets();
    let out = inv.netlist.net_by_name("OUT").expect("OUT net");
    let p = &inv.netlist.net(out).parasitics;
    assert!(
        p.area.iter().filter(|a| **a > 0).count() >= 1 && !p.is_zero(),
        "inverter output should carry drawn parasitics: {p:?}"
    );
    let inv_cp = critical_path(&inv.netlist, &params).expect("inverter path");

    let mut chain = extract_text(&chained_inverters_cif(3), ExtractOptions::new()).expect("chain");
    chain.netlist.prune_floating_nets();
    let chain_cp = critical_path(&chain.netlist, &params).expect("chain path");
    assert!(
        chain_cp.stages.len() > inv_cp.stages.len(),
        "three chained stages must beat one ({} vs {})",
        chain_cp.stages.len(),
        inv_cp.stages.len()
    );
    assert!(chain_cp.delay_zs > inv_cp.delay_zs);
}
