//! The [`CircuitExtractor`] trait: one interface over every extractor
//! backend — the flat, banded, and lazy scanline sweeps here, the
//! hierarchical window/compose extractor in `ace-hext`, and the
//! raster baselines in `ace-raster` — so cross-extractor comparisons
//! and benches drive them all through the same two methods.

use ace_layout::{FlatLayout, Library};

use crate::extract::{extract_flat_probed, extract_library_probed, ExtractError, Extraction};
use crate::probe::{NullProbe, Probe};
use crate::report::ExtractOptions;

/// A circuit-extraction backend: give it a name, get an
/// [`Extraction`] back, observed through the probe layer.
///
/// Backends take `&mut self` so stateful implementations (e.g. the
/// incremental hierarchical extractor, which keeps memo tables warm
/// between runs) fit the same interface as the stateless sweeps.
pub trait CircuitExtractor {
    /// Stable machine-readable backend name (`"ace-flat"`,
    /// `"ace-banded"`, `"hext"`, `"partlist"`, `"cifplot"`).
    fn backend(&self) -> &'static str;

    /// Extracts the circuit, reporting events to `probe`; `name`
    /// becomes the output netlist's title.
    fn extract_probed(&mut self, name: &str, probe: &dyn Probe)
        -> Result<Extraction, ExtractError>;

    /// Extracts the circuit unobserved.
    fn extract(&mut self, name: &str) -> Result<Extraction, ExtractError> {
        self.extract_probed(name, &NullProbe)
    }
}

/// The scanline sweep as a backend — sequential by default, banded
/// when the options request threads (the two differ only in options,
/// which is the point of the unified surface).
pub struct FlatExtractor {
    flat: FlatLayout,
    options: ExtractOptions,
}

impl FlatExtractor {
    /// A sequential flat extractor over `flat`.
    pub fn new(flat: FlatLayout) -> Self {
        FlatExtractor {
            flat,
            options: ExtractOptions::new(),
        }
    }

    /// Flattens a library's top cell first.
    pub fn from_library(lib: &Library) -> Self {
        FlatExtractor::new(FlatLayout::from_library(lib))
    }

    /// A band-parallel extractor over `flat` on `threads` workers
    /// (0 = one per host core).
    pub fn banded(flat: FlatLayout, threads: usize) -> Self {
        FlatExtractor::new(flat).with_options(ExtractOptions::new().with_threads(threads))
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: ExtractOptions) -> Self {
        self.options = options;
        self
    }
}

impl CircuitExtractor for FlatExtractor {
    fn backend(&self) -> &'static str {
        if self.options.threads.is_some() || self.options.bands.is_some() {
            "ace-banded"
        } else {
            "ace-flat"
        }
    }

    fn extract_probed(
        &mut self,
        name: &str,
        probe: &dyn Probe,
    ) -> Result<Extraction, ExtractError> {
        extract_flat_probed(self.flat.clone(), name, self.options, probe)
    }
}

/// The production lazy-front-end sweep as a backend: symbols expand
/// only as the scanline reaches them. Behaviorally identical to
/// [`FlatExtractor`]; exists so differential harnesses exercise the
/// lazy feed's label discovery and expansion order, which flattening
/// backends never touch.
pub struct LazyExtractor {
    lib: Library,
    options: ExtractOptions,
}

impl LazyExtractor {
    /// A lazy extractor over the library's top cell.
    pub fn new(lib: Library) -> Self {
        LazyExtractor {
            lib,
            options: ExtractOptions::new(),
        }
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: ExtractOptions) -> Self {
        self.options = options;
        self
    }
}

impl CircuitExtractor for LazyExtractor {
    fn backend(&self) -> &'static str {
        "ace-lazy"
    }

    fn extract_probed(
        &mut self,
        name: &str,
        probe: &dyn Probe,
    ) -> Result<Extraction, ExtractError> {
        extract_library_probed(&self.lib, name, self.options, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INVERTERISH: &str = "L ND; B 400 1600 0 0; L NP; B 1600 400 0 0; E";

    fn flat() -> FlatLayout {
        let lib = Library::from_cif_text(INVERTERISH).unwrap();
        FlatLayout::from_library(&lib)
    }

    #[test]
    fn flat_and_banded_share_one_type() {
        let mut seq = FlatExtractor::new(flat());
        let mut par = FlatExtractor::banded(flat(), 2);
        assert_eq!(seq.backend(), "ace-flat");
        assert_eq!(par.backend(), "ace-banded");
        let a = seq.extract("t").unwrap();
        let b = par.extract("t").unwrap();
        assert_eq!(a.netlist.device_count(), b.netlist.device_count());
    }

    #[test]
    fn works_as_a_trait_object() {
        let lib = Library::from_cif_text(INVERTERISH).unwrap();
        let mut backends: Vec<Box<dyn CircuitExtractor>> = vec![
            Box::new(FlatExtractor::new(flat())),
            Box::new(FlatExtractor::banded(flat(), 2)),
            Box::new(LazyExtractor::new(lib)),
        ];
        for b in &mut backends {
            let r = b.extract("obj").unwrap();
            assert_eq!(r.netlist.device_count(), 1, "{}", b.backend());
        }
    }

    #[test]
    fn lazy_backend_names_itself() {
        let lib = Library::from_cif_text(INVERTERISH).unwrap();
        assert_eq!(LazyExtractor::new(lib).backend(), "ace-lazy");
    }
}
