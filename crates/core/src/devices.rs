use ace_geom::{Coord, Rect};
use ace_wirelist::{Device, DeviceKind, NetId, UnionFind};

use crate::nets::NetTable;

/// Accumulated state of one (possibly still growing) device.
///
/// Channel fragments that later turn out to belong to the same
/// transistor are merged by unioning their accumulators; the final
/// length/width computation happens once, at output time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceAccumulator {
    /// Total channel area so far.
    pub area: i64,
    /// Bounding box of the channel.
    pub bbox: Option<Rect>,
    /// Gate net handle (poly over the channel), once seen.
    pub gate: Option<u32>,
    /// `(net handle, contact length)` pairs for diffusion terminals.
    /// Handles are resolved to roots and coalesced lazily.
    pub terminals: Vec<(u32, Coord)>,
    /// `true` once implant has been seen over the channel.
    pub depletion: bool,
    /// Channel rectangles (only when geometry output is enabled).
    pub geometry: Vec<Rect>,
}

impl DeviceAccumulator {
    fn absorb(&mut self, mut other: DeviceAccumulator) {
        self.area += other.area;
        self.bbox = match (self.bbox, other.bbox) {
            (Some(a), Some(b)) => Some(a.bounding_union(&b)),
            (a, b) => a.or(b),
        };
        // When both sides carry a gate handle the caller has already
        // unioned the two nets, so keeping either handle is correct.
        self.gate = self.gate.or(other.gate);
        self.terminals.append(&mut other.terminals);
        self.depletion |= other.depletion;
        self.geometry.append(&mut other.geometry);
    }

    /// Coalesces terminal entries that now share a net root.
    pub fn normalize_terminals(&mut self, nets: &mut NetTable) {
        for entry in &mut self.terminals {
            entry.0 = nets.find(entry.0);
        }
        self.terminals.sort_unstable_by_key(|&(h, _)| h);
        let mut write = 0;
        for read in 0..self.terminals.len() {
            if write > 0 && self.terminals[write - 1].0 == self.terminals[read].0 {
                self.terminals[write - 1].1 += self.terminals[read].1;
            } else {
                self.terminals[write] = self.terminals[read];
                write += 1;
            }
        }
        self.terminals.truncate(write);
    }
}

/// Union-find over channel fragments, with per-root accumulators.
///
/// # Examples
///
/// ```
/// use ace_core::{DeviceTable, NetTable};
/// use ace_geom::Rect;
///
/// let mut nets = NetTable::new(false);
/// let mut devs = DeviceTable::new(false);
/// let d1 = devs.fresh(Rect::new(0, 0, 4, 2));
/// let d2 = devs.fresh(Rect::new(0, 2, 4, 6));
/// devs.union(d1, d2, &mut nets);
/// assert_eq!(devs.accumulator(d1).area, 4 * 2 + 4 * 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeviceTable {
    uf: UnionFind,
    accum: Vec<DeviceAccumulator>,
    record_geometry: bool,
}

impl DeviceTable {
    /// Creates an empty table.
    pub fn new(record_geometry: bool) -> Self {
        DeviceTable {
            uf: UnionFind::new(),
            accum: Vec::new(),
            record_geometry,
        }
    }

    /// Creates a fresh device from its first channel rectangle.
    pub fn fresh(&mut self, channel: Rect) -> u32 {
        let mut acc = DeviceAccumulator {
            area: channel.area(),
            bbox: Some(channel),
            ..DeviceAccumulator::default()
        };
        if self.record_geometry {
            acc.geometry.push(channel);
        }
        self.accum.push(acc);
        self.uf.make_set()
    }

    /// Number of handles allocated.
    pub fn handle_count(&self) -> usize {
        self.uf.len()
    }

    /// Canonical representative of `h`'s device.
    pub fn find(&mut self, h: u32) -> u32 {
        self.uf.find(h)
    }

    /// Merges two channel fragments into one device. Gate nets are
    /// unioned through `nets`.
    pub fn union(&mut self, a: u32, b: u32, nets: &mut NetTable) -> u32 {
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            return ra;
        }
        // Union the gate nets if both sides have one.
        let ga = self.accum[ra as usize].gate;
        let gb = self.accum[rb as usize].gate;
        if let (Some(ga), Some(gb)) = (ga, gb) {
            nets.union(ga, gb);
        }
        let root = self.uf.union(ra, rb);
        let other = if root == ra { rb } else { ra };
        let moved = std::mem::take(&mut self.accum[other as usize]);
        self.accum[root as usize].absorb(moved);
        root
    }

    /// Adds channel area (a later strip of the same fragment).
    pub fn add_channel(&mut self, h: u32, channel: Rect) {
        let root = self.uf.find(h) as usize;
        let acc = &mut self.accum[root];
        acc.area += channel.area();
        acc.bbox = Some(match acc.bbox {
            Some(bb) => bb.bounding_union(&channel),
            None => channel,
        });
        if self.record_geometry {
            acc.geometry.push(channel);
        }
    }

    /// Records (and unions) the gate net over the channel.
    pub fn set_gate(&mut self, h: u32, gate_net: u32, nets: &mut NetTable) {
        let root = self.uf.find(h) as usize;
        match self.accum[root].gate {
            Some(g) => {
                nets.union(g, gate_net);
            }
            None => self.accum[root].gate = Some(gate_net),
        }
    }

    /// Adds terminal contact length against a diffusion net.
    pub fn add_terminal_contact(&mut self, h: u32, net: u32, length: Coord) {
        if length <= 0 {
            return;
        }
        let root = self.uf.find(h) as usize;
        self.accum[root].terminals.push((net, length));
    }

    /// Marks the device depletion-mode.
    pub fn set_depletion(&mut self, h: u32) {
        let root = self.uf.find(h) as usize;
        self.accum[root].depletion = true;
    }

    /// The accumulator at `h`'s root.
    pub fn accumulator(&mut self, h: u32) -> &DeviceAccumulator {
        let root = self.uf.find(h) as usize;
        &self.accum[root]
    }

    /// The root handles, ascending (each device exactly once).
    pub fn roots(&mut self) -> Vec<u32> {
        let n = self.uf.len() as u32;
        let mut roots = Vec::new();
        for h in 0..n {
            if self.uf.find(h) == h {
                roots.push(h);
            }
        }
        roots
    }

    /// Finalizes one device into a wirelist [`Device`].
    ///
    /// Width is the mean of the two largest terminal contact lengths
    /// ("the width of the transistor is … the mean of the source and
    /// drain edge lengths"), and length is channel area over width.
    /// Devices with fewer than two distinct terminals become
    /// capacitors. Returns `None` for a degenerate zero-area channel,
    /// and sets `multi_terminal` when more than two distinct nets
    /// touch the channel. The normalized accumulator is returned
    /// alongside the device for window-mode consumers.
    pub fn finalize(
        &mut self,
        h: u32,
        nets: &mut NetTable,
        net_map: &[u32],
        multi_terminal: &mut bool,
    ) -> Option<(Device, DeviceAccumulator)> {
        let root = self.uf.find(h) as usize;
        let mut acc = std::mem::take(&mut self.accum[root]);
        acc.normalize_terminals(nets);
        if acc.area == 0 {
            return None;
        }
        let bbox = acc.bbox.expect("non-zero area implies bbox");

        // Sort terminals by contact length, largest first.
        acc.terminals.sort_unstable_by_key(|&(_, len)| -len);
        *multi_terminal = acc.terminals.len() > 2;

        let gate_handle = acc.gate.unwrap_or_else(|| {
            // A channel with no poly cannot occur (channel = diff∧poly)
            // but guard with a fresh floating net.
            nets.fresh()
        });
        let gate = NetId(net_map[nets.find(gate_handle) as usize]);

        let (kind, source, drain, width) = match acc.terminals.len() {
            0 => {
                // Fully isolated channel: a capacitor to nowhere;
                // report gate on both plates.
                let side = integer_sqrt(acc.area);
                (DeviceKind::Capacitor, gate, gate, side.max(1))
            }
            1 => {
                let (net, len) = acc.terminals[0];
                let n = NetId(net_map[nets.find(net) as usize]);
                (DeviceKind::Capacitor, n, n, len.max(1))
            }
            _ => {
                let (s_net, s_len) = acc.terminals[0];
                let (d_net, d_len) = acc.terminals[1];
                let s = NetId(net_map[nets.find(s_net) as usize]);
                let d = NetId(net_map[nets.find(d_net) as usize]);
                let kind = if acc.depletion {
                    DeviceKind::Depletion
                } else {
                    DeviceKind::Enhancement
                };
                (kind, s, d, ((s_len + d_len) / 2).max(0))
            }
        };

        // `add_terminal_contact` drops zero-length edges, so a zero
        // width cannot arise from the sweep itself — but guard the
        // division anyway and emit the 0×0 degenerate marker
        // (`ace_wirelist::DeviceDim::Degenerate`) rather than an
        // ∞-style length.
        let length = if width > 0 {
            (acc.area / width).max(1)
        } else {
            0
        };
        let device = Device {
            kind,
            gate,
            source,
            drain,
            length,
            width,
            location: ace_geom::Point::new(bbox.x_min, bbox.y_max),
            channel_geometry: ace_geom::merge_boxes(&acc.geometry),
        };
        Some((device, acc))
    }
}

/// Integer square root (floor).
fn integer_sqrt(v: i64) -> i64 {
    if v <= 0 {
        return 0;
    }
    let mut x = (v as f64).sqrt() as i64;
    while (x + 1) * (x + 1) <= v {
        x += 1;
    }
    while x * x > v {
        x -= 1;
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_geom::Point;

    #[test]
    fn simple_transistor_dimensions() {
        // Channel 400 wide (x) × 1200 tall: poly runs horizontally, so
        // source/drain contact the 1200-long vertical edges... here we
        // model the paper's inverter pull-down: area 400×1200, source
        // and drain contacts of 1200 each on the left/right edges.
        let mut nets = NetTable::new(false);
        let mut devs = DeviceTable::new(false);
        let d = devs.fresh(Rect::new(0, 0, 400, 1200));
        let gate = nets.fresh();
        let src = nets.fresh();
        let drn = nets.fresh();
        devs.set_gate(d, gate, &mut nets);
        devs.add_terminal_contact(d, src, 1200);
        devs.add_terminal_contact(d, drn, 1200);
        let (map, _) = nets.compress();
        let mut multi = false;
        let (dev, _) = devs
            .finalize(d, &mut nets, &map, &mut multi)
            .expect("device");
        assert_eq!(dev.kind, DeviceKind::Enhancement);
        assert_eq!(dev.width, 1200);
        assert_eq!(dev.length, 400);
        assert!(!multi);
        assert_eq!(dev.location, Point::new(0, 1200));
    }

    #[test]
    fn unequal_edges_average() {
        // Source edge 1000, drain edge 600 → width 800; area 800×400 →
        // length 400.
        let mut nets = NetTable::new(false);
        let mut devs = DeviceTable::new(false);
        let d = devs.fresh(Rect::new(0, 0, 800, 400));
        devs.set_gate(d, nets.fresh(), &mut nets);
        let s = nets.fresh();
        let t = nets.fresh();
        devs.add_terminal_contact(d, s, 1000);
        devs.add_terminal_contact(d, t, 600);
        let (map, _) = nets.compress();
        let mut multi = false;
        let (dev, _) = devs
            .finalize(d, &mut nets, &map, &mut multi)
            .expect("device");
        assert_eq!(dev.width, 800);
        assert_eq!(dev.length, 400);
    }

    #[test]
    fn union_merges_area_and_contacts() {
        let mut nets = NetTable::new(false);
        let mut devs = DeviceTable::new(false);
        let a = devs.fresh(Rect::new(0, 0, 4, 2));
        let b = devs.fresh(Rect::new(0, 2, 4, 6));
        let g1 = nets.fresh();
        let g2 = nets.fresh();
        devs.set_gate(a, g1, &mut nets);
        devs.set_gate(b, g2, &mut nets);
        devs.union(a, b, &mut nets);
        // Gate nets must have been unioned.
        assert_eq!(nets.find(g1), nets.find(g2));
        assert_eq!(devs.accumulator(a).area, 8 + 16);
        assert_eq!(devs.accumulator(b).bbox, Some(Rect::new(0, 0, 4, 6)));
    }

    #[test]
    fn terminal_normalization_coalesces_same_net() {
        let mut nets = NetTable::new(false);
        let mut devs = DeviceTable::new(false);
        let d = devs.fresh(Rect::new(0, 0, 2, 2));
        let n1 = nets.fresh();
        let n2 = nets.fresh();
        devs.add_terminal_contact(d, n1, 10);
        devs.add_terminal_contact(d, n2, 20);
        nets.union(n1, n2); // they turn out to be the same net
        devs.set_gate(d, nets.fresh(), &mut nets);
        let (map, _) = nets.compress();
        let mut multi = false;
        let (dev, _) = devs
            .finalize(d, &mut nets, &map, &mut multi)
            .expect("device");
        // Single distinct terminal → capacitor with width 30.
        assert_eq!(dev.kind, DeviceKind::Capacitor);
        assert_eq!(dev.source, dev.drain);
        assert_eq!(dev.width, 30);
    }

    #[test]
    fn depletion_flag_selects_kind() {
        let mut nets = NetTable::new(false);
        let mut devs = DeviceTable::new(false);
        let d = devs.fresh(Rect::new(0, 0, 4, 4));
        devs.set_gate(d, nets.fresh(), &mut nets);
        devs.add_terminal_contact(d, nets.fresh(), 4);
        devs.add_terminal_contact(d, nets.fresh(), 4);
        devs.set_depletion(d);
        let (map, _) = nets.compress();
        let mut multi = false;
        let (dev, _) = devs
            .finalize(d, &mut nets, &map, &mut multi)
            .expect("device");
        assert_eq!(dev.kind, DeviceKind::Depletion);
    }

    #[test]
    fn multi_terminal_detection() {
        let mut nets = NetTable::new(false);
        let mut devs = DeviceTable::new(false);
        let d = devs.fresh(Rect::new(0, 0, 4, 4));
        devs.set_gate(d, nets.fresh(), &mut nets);
        for len in [10, 8, 3] {
            let n = nets.fresh();
            devs.add_terminal_contact(d, n, len);
        }
        let (map, _) = nets.compress();
        let mut multi = false;
        let (dev, _) = devs
            .finalize(d, &mut nets, &map, &mut multi)
            .expect("device");
        assert!(multi);
        // The two longest contacts win.
        assert_eq!(dev.width, (10 + 8) / 2);
    }

    #[test]
    fn isolated_channel_is_capacitor() {
        let mut nets = NetTable::new(false);
        let mut devs = DeviceTable::new(false);
        let d = devs.fresh(Rect::new(0, 0, 10, 10));
        devs.set_gate(d, nets.fresh(), &mut nets);
        let (map, _) = nets.compress();
        let mut multi = false;
        let (dev, _) = devs
            .finalize(d, &mut nets, &map, &mut multi)
            .expect("device");
        assert_eq!(dev.kind, DeviceKind::Capacitor);
        assert_eq!(dev.length * dev.width, 100);
    }

    #[test]
    fn integer_sqrt_basics() {
        assert_eq!(integer_sqrt(0), 0);
        assert_eq!(integer_sqrt(1), 1);
        assert_eq!(integer_sqrt(99), 9);
        assert_eq!(integer_sqrt(100), 10);
    }
}
