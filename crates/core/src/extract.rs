use std::error::Error;
use std::fmt;

use ace_layout::{BuildLayoutError, EagerFeed, FlatLayout, GeometryFeed, LazyFeed, Library};
use ace_wirelist::Netlist;

use crate::probe::{Lane, NullProbe, Probe};
use crate::report::{ExtractOptions, ExtractionReport};
use crate::sweep::Extractor;
use crate::window::WindowExtraction;

/// The result of one extraction run.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// The extracted circuit.
    pub netlist: Netlist,
    /// Instrumentation (phase times, counters).
    pub report: ExtractionReport,
    /// Boundary interface, when extracting in window mode.
    pub window: Option<WindowExtraction>,
}

/// The one error type of every extraction entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtractError {
    /// The CIF source failed to parse or instantiate.
    Layout(BuildLayoutError),
    /// The options combination is unsupported.
    Options(&'static str),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::Layout(e) => write!(f, "extraction failed: {e}"),
            ExtractError::Options(msg) => write!(f, "invalid extraction options: {msg}"),
        }
    }
}

impl Error for ExtractError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExtractError::Layout(e) => Some(e),
            ExtractError::Options(_) => None,
        }
    }
}

impl From<BuildLayoutError> for ExtractError {
    fn from(e: BuildLayoutError) -> Self {
        ExtractError::Layout(e)
    }
}

/// True when the options request a band-parallel extraction, via a
/// worker count, a band count, or both.
fn wants_banding(options: &ExtractOptions) -> bool {
    options.threads.is_some() || options.bands.is_some()
}

/// Rejects option combinations no backend supports.
fn validate(options: &ExtractOptions) -> Result<(), ExtractError> {
    if wants_banding(options) && options.window.is_some() {
        return Err(ExtractError::Options(
            "window-mode extraction cannot be banded (threads/bands conflicts with window)",
        ));
    }
    Ok(())
}

/// Extracts from any geometry feed.
///
/// `name` becomes the netlist title.
///
/// # Errors
///
/// Returns [`ExtractError::Options`] when the options are
/// inconsistent or request banding (a bare feed cannot be split into
/// bands — band with [`extract_flat`] or [`extract_library`]).
pub fn extract_feed(
    feed: &mut dyn GeometryFeed,
    name: &str,
    options: ExtractOptions,
) -> Result<Extraction, ExtractError> {
    extract_feed_probed(feed, name, options, &NullProbe)
}

/// [`extract_feed`], reporting events to `probe` as it runs.
pub fn extract_feed_probed(
    feed: &mut dyn GeometryFeed,
    name: &str,
    options: ExtractOptions,
    probe: &dyn Probe,
) -> Result<Extraction, ExtractError> {
    validate(&options)?;
    if wants_banding(&options) {
        return Err(ExtractError::Options(
            "a geometry feed cannot be banded; band a flat layout or a library instead",
        ));
    }
    Ok(Extractor::with_probe(options, probe).run(feed, name))
}

/// Extracts a layout library with the lazy front-end (the production
/// path: symbols are expanded only as the scanline reaches them).
///
/// With [`ExtractOptions::with_threads`] the library is flattened and
/// extracted band-parallel instead.
///
/// # Errors
///
/// Returns [`ExtractError::Options`] when the options are
/// inconsistent (e.g. banding a window-mode extraction).
pub fn extract_library(
    lib: &Library,
    name: &str,
    options: ExtractOptions,
) -> Result<Extraction, ExtractError> {
    extract_library_probed(lib, name, options, &NullProbe)
}

/// [`extract_library`], reporting events to `probe` as it runs.
pub fn extract_library_probed(
    lib: &Library,
    name: &str,
    options: ExtractOptions,
    probe: &dyn Probe,
) -> Result<Extraction, ExtractError> {
    validate(&options)?;
    if wants_banding(&options) {
        // Banding needs the full flat box list to find y cuts.
        let flat = FlatLayout::from_library(lib);
        return crate::parallel::extract_auto_banded(flat, name, options, probe);
    }
    let mut feed = LazyFeed::new(lib).with_probe(probe, Lane::MAIN);
    Ok(Extractor::with_probe(options, probe).run(&mut feed, name))
}

/// Extracts a fully-instantiated layout with the eager front-end,
/// band-parallel when [`ExtractOptions::with_threads`] is set.
///
/// # Errors
///
/// Returns [`ExtractError::Options`] when the options are
/// inconsistent (e.g. banding a window-mode extraction).
pub fn extract_flat(
    flat: FlatLayout,
    name: &str,
    options: ExtractOptions,
) -> Result<Extraction, ExtractError> {
    extract_flat_probed(flat, name, options, &NullProbe)
}

/// [`extract_flat`], reporting events to `probe` as it runs.
pub fn extract_flat_probed(
    flat: FlatLayout,
    name: &str,
    options: ExtractOptions,
    probe: &dyn Probe,
) -> Result<Extraction, ExtractError> {
    validate(&options)?;
    if wants_banding(&options) {
        return crate::parallel::extract_auto_banded(flat, name, options, probe);
    }
    let mut feed = EagerFeed::from_flat(flat).with_probe(probe, Lane::MAIN);
    Ok(Extractor::with_probe(options, probe).run(&mut feed, name))
}

/// Parses CIF text and extracts it.
///
/// # Errors
///
/// Returns [`ExtractError`] when the CIF is malformed or references
/// undefined/recursive symbols, or when the options are inconsistent.
///
/// # Examples
///
/// ```
/// use ace_core::{extract_text, ExtractOptions};
///
/// let result = extract_text(
///     "L ND; B 400 1600 0 0; L NP; B 1600 400 0 0; E",
///     ExtractOptions::new(),
/// )?;
/// assert_eq!(result.netlist.device_count(), 1);
/// # Ok::<(), ace_core::ExtractError>(())
/// ```
pub fn extract_text(src: &str, options: ExtractOptions) -> Result<Extraction, ExtractError> {
    extract_text_probed(src, options, &NullProbe)
}

/// [`extract_text`], reporting events to `probe` as it runs.
pub fn extract_text_probed(
    src: &str,
    options: ExtractOptions,
    probe: &dyn Probe,
) -> Result<Extraction, ExtractError> {
    let lib = Library::from_cif_text(src)?;
    extract_library_probed(&lib, "cif-text", options, probe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_geom::{Layer, Point, Rect};
    use ace_wirelist::DeviceKind;

    /// A canonical NMOS inverter, built box by box:
    ///
    /// * vertical diffusion column `x∈[0,400]`, `y∈[-1600,1600]`;
    /// * enhancement gate: poly bar crossing at `y∈[-800,-400]`;
    /// * depletion load: poly bar at `y∈[400,800]` under implant,
    ///   with its gate strapped to the output by a buried contact at
    ///   `y∈[-100,400]`;
    /// * metal rails with cuts at top (VDD) and bottom (GND);
    /// * labels VDD/OUT/INP/GND.
    const INVERTER: &str = "
        L ND; B 400 3200 200 0;
        L NP; B 1200 400 200 -600;
        L NP; B 400 400 200 600;
        L NP; B 400 500 200 150;
        L NI; B 600 600 200 600;
        L NB; B 400 500 200 150;
        L NM; B 800 400 200 1400;
        L NM; B 800 400 200 -1400;
        L NC; B 200 200 200 1400;
        L NC; B 200 200 200 -1400;
        94 VDD 0 1600 NM;
        94 GND 0 -1600 NM;
        94 OUT 200 0 ND;
        94 INP -400 -600 NP;
        E";

    fn extract_inverter(options: ExtractOptions) -> Extraction {
        extract_text(INVERTER, options).expect("inverter extracts")
    }

    #[test]
    fn inverter_has_two_devices_and_four_nets() {
        let r = extract_inverter(ExtractOptions::new());
        assert_eq!(r.netlist.device_count(), 2, "{:#?}", r.netlist.devices());
        let (enh, dep, cap) = r.netlist.device_census();
        assert_eq!((enh, dep, cap), (1, 1, 0));
        let mut nl = r.netlist.clone();
        nl.prune_floating_nets();
        assert_eq!(nl.net_count(), 4);
        for name in ["VDD", "GND", "OUT", "INP"] {
            assert!(nl.net_by_name(name).is_some(), "missing net {name}");
        }
    }

    #[test]
    fn inverter_connectivity_is_correct() {
        let r = extract_inverter(ExtractOptions::new());
        let nl = &r.netlist;
        let vdd = nl.net_by_name("VDD").unwrap();
        let gnd = nl.net_by_name("GND").unwrap();
        let out = nl.net_by_name("OUT").unwrap();
        let inp = nl.net_by_name("INP").unwrap();
        assert_eq!(
            [vdd, gnd, out, inp]
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len(),
            4
        );

        let enh = nl
            .devices()
            .iter()
            .find(|d| d.kind == DeviceKind::Enhancement)
            .expect("enhancement transistor");
        assert_eq!(enh.gate, inp);
        let mut sd = [enh.source, enh.drain];
        sd.sort();
        let mut expect = [out, gnd];
        expect.sort();
        assert_eq!(sd, expect);

        let dep = nl
            .devices()
            .iter()
            .find(|d| d.kind == DeviceKind::Depletion)
            .expect("depletion load");
        // Depletion gate is strapped to the output through the buried
        // contact.
        assert_eq!(dep.gate, out);
        let mut sd = [dep.source, dep.drain];
        sd.sort();
        let mut expect = [vdd, out];
        expect.sort();
        assert_eq!(sd, expect);
    }

    #[test]
    fn inverter_dimensions() {
        let r = extract_inverter(ExtractOptions::new());
        for d in r.netlist.devices() {
            assert_eq!(d.length, 400, "{d:?}");
            assert_eq!(d.width, 400, "{d:?}");
        }
    }

    #[test]
    fn single_crossing_yields_one_transistor() {
        let r = extract_text(
            "L ND; B 400 1600 0 0; L NP; B 1600 400 0 0; E",
            ExtractOptions::new(),
        )
        .unwrap();
        assert_eq!(r.netlist.device_count(), 1);
        let d = &r.netlist.devices()[0];
        assert_eq!(d.kind, DeviceKind::Enhancement);
        assert_eq!((d.length, d.width), (400, 400));
        // Source and drain are distinct diffusion nets.
        assert_ne!(d.source, d.drain);
        assert_ne!(d.gate, d.source);
        // Location: upper-left of the channel [-200,-200;200,200].
        assert_eq!(d.location, Point::new(-200, 200));
    }

    #[test]
    fn mesh_worst_case_counts() {
        // 3 horizontal poly bars × 3 vertical diffusion columns = 9
        // transistors, one poly net per bar, and diffusion columns cut
        // into 4 segments each (12 diffusion nets).
        let mut src = String::new();
        for i in 0..3 {
            src.push_str(&format!("L NP; B 5000 400 0 {};\n", i * 1500));
            src.push_str(&format!("L ND; B 400 5000 {} 750;\n", i * 1500 - 1500));
        }
        src.push('E');
        let r = extract_text(&src, ExtractOptions::new()).unwrap();
        assert_eq!(r.netlist.device_count(), 9);
        let mut nl = r.netlist.clone();
        nl.prune_floating_nets();
        assert_eq!(nl.net_count(), 3 + 12);
    }

    #[test]
    fn overlapping_same_layer_boxes_are_one_net() {
        let r = extract_text(
            "L NM; B 1000 200 0 0; B 200 1000 0 0; 94 A -500 0; 94 B 0 -500; E",
            ExtractOptions::new(),
        )
        .unwrap();
        let nl = &r.netlist;
        assert_eq!(nl.net_by_name("A"), nl.net_by_name("B"));
        assert!(nl.net_by_name("A").is_some());
    }

    #[test]
    fn abutting_boxes_connect_but_corner_contact_does_not() {
        // Two metal boxes sharing a full edge, a third touching only
        // at a corner.
        let r = extract_text(
            "L NM; B 100 100 0 0; B 100 100 100 0; B 100 100 200 100;
             94 A -50 0; 94 B 150 0; 94 C 250 100; E",
            ExtractOptions::new(),
        )
        .unwrap();
        let nl = &r.netlist;
        assert_eq!(nl.net_by_name("A"), nl.net_by_name("B"));
        assert_ne!(nl.net_by_name("A"), nl.net_by_name("C"));
    }

    #[test]
    fn layers_do_not_connect_without_contacts() {
        let r = extract_text(
            "L NM; B 1000 1000 0 0; L NP; B 1000 1000 0 0;
             94 M 0 0 NM; 94 P 0 0 NP; E",
            ExtractOptions::new(),
        )
        .unwrap();
        let nl = &r.netlist;
        assert_ne!(nl.net_by_name("M"), nl.net_by_name("P"));
        assert_eq!(nl.device_count(), 0); // poly over metal is nothing
    }

    #[test]
    fn cut_connects_metal_to_poly() {
        let r = extract_text(
            "L NM; B 1000 1000 0 0; L NP; B 1000 1000 0 0; L NC; B 200 200 0 0;
             94 M -400 0 NM; 94 P 400 0 NP; E",
            ExtractOptions::new(),
        )
        .unwrap();
        assert_eq!(r.netlist.net_by_name("M"), r.netlist.net_by_name("P"));
    }

    #[test]
    fn buried_contact_suppresses_transistor_and_connects() {
        let r = extract_text(
            "L ND; B 400 1600 0 0; L NP; B 1600 400 0 0; L NB; B 600 600 0 0;
             94 D 0 700 ND; 94 P 700 0 NP; E",
            ExtractOptions::new(),
        )
        .unwrap();
        assert_eq!(r.netlist.device_count(), 0);
        assert_eq!(r.netlist.net_by_name("D"), r.netlist.net_by_name("P"));
    }

    #[test]
    fn poly_covering_whole_diffusion_island_is_a_capacitor() {
        let r = extract_text(
            "L ND; B 400 400 0 0; L NP; B 1000 1000 0 0; E",
            ExtractOptions::new(),
        )
        .unwrap();
        assert_eq!(r.netlist.device_count(), 1);
        let d = &r.netlist.devices()[0];
        assert_eq!(d.kind, DeviceKind::Capacitor);
        assert_eq!(d.channel_area(), 400 * 400);
    }

    #[test]
    fn l_shaped_channel_is_one_transistor() {
        // Poly bent in an L over a diffusion region: the channel
        // fragments in different strips must union into one device.
        let r = extract_text(
            "L ND; B 2000 2000 0 0;
             L NP; B 400 1400 -500 -300; B 1400 400 0 200;
             E",
            ExtractOptions::new(),
        )
        .unwrap();
        // One L-shaped channel: diffusion is cut into two nets by it
        // (inside corner and outside), so exactly one device results.
        assert_eq!(r.netlist.device_count(), 1);
        let d = &r.netlist.devices()[0];
        let area = 400 * 1400 + 1400 * 400 - 400 * 400;
        assert_eq!(d.length * d.width, (d.length * d.width).max(1));
        // Total channel area is preserved through the W/L model:
        // area == L·W only up to integer division; check against the
        // true area with 1% slack.
        let lw = d.length * d.width;
        assert!(
            (lw - area).abs() <= area / 100 + d.width,
            "L·W {lw} vs true area {area}"
        );
    }

    #[test]
    fn geometry_output_is_optional_and_coalesced() {
        let r = extract_text(
            "L NM; B 1000 200 0 0; B 1000 200 0 200; 94 A 0 0; E",
            ExtractOptions::new().with_geometry(),
        )
        .unwrap();
        let id = r.netlist.net_by_name("A").unwrap();
        let geometry = &r.netlist.net(id).geometry;
        // The two stacked boxes coalesce into one rectangle.
        assert_eq!(
            geometry,
            &vec![(Layer::Metal, Rect::new(-500, -100, 500, 300))]
        );

        let r2 = extract_text("L NM; B 1000 200 0 0; 94 A 0 0; E", ExtractOptions::new()).unwrap();
        let id2 = r2.netlist.net_by_name("A").unwrap();
        assert!(r2.netlist.net(id2).geometry.is_empty());
    }

    #[test]
    fn unresolved_labels_are_counted() {
        let r = extract_text(
            "L NM; B 100 100 0 0; 94 GHOST 5000 5000; E",
            ExtractOptions::new(),
        )
        .unwrap();
        assert_eq!(r.report.unresolved_labels, 1);
    }

    #[test]
    fn net_location_is_upper_left_of_bbox() {
        let r = extract_text(
            "L NM; B 4800 800 -200 3400; 94 VDD -200 3400; E",
            ExtractOptions::new(),
        )
        .unwrap();
        let id = r.netlist.net_by_name("VDD").unwrap();
        assert_eq!(r.netlist.net(id).location, Some(Point::new(-2600, 3800)));
    }

    #[test]
    fn lazy_and_eager_extractions_agree() {
        let lib = Library::from_cif_text(INVERTER).unwrap();
        let lazy = extract_library(&lib, "inv", ExtractOptions::new()).unwrap();
        let eager =
            extract_flat(FlatLayout::from_library(&lib), "inv", ExtractOptions::new()).unwrap();
        ace_wirelist::compare::same_circuit(&lazy.netlist, &eager.netlist)
            .expect("lazy and eager agree");
    }

    #[test]
    fn hierarchical_instances_extract_like_flat_copies() {
        // Two inverter-ish cells side by side via symbol calls.
        let src = "
            DS 1;
            L ND; B 400 1600 0 0;
            L NP; B 1600 400 0 0;
            DF;
            C 1 T 0 0;
            C 1 T 5000 0;
            E";
        let r = extract_text(src, ExtractOptions::new()).unwrap();
        assert_eq!(r.netlist.device_count(), 2);
    }

    #[test]
    fn report_counts_boxes_and_stops() {
        let r = extract_inverter(ExtractOptions::new());
        assert_eq!(r.report.boxes, 10); // 10 geometry boxes in INVERTER
        assert!(r.report.scanline_stops > 5);
        assert!(r.report.max_active > 0);
        assert!(r.report.fragments > 0);
    }

    #[test]
    fn empty_layout_extracts_empty() {
        let r = extract_text("E", ExtractOptions::new()).unwrap();
        assert_eq!(r.netlist.device_count(), 0);
        assert_eq!(r.netlist.net_count(), 0);
        assert_eq!(r.report.boxes, 0);
    }

    #[test]
    fn window_mode_reports_boundary_contacts() {
        // A transistor whose channel sits on the window's right edge:
        // poly and diffusion both reach x = 1000.
        let src = "
            L ND; B 800 1600 600 0;
            L NP; B 2000 400 0 0;
            E";
        let window = Rect::new(-1000, -800, 1000, 800);
        let r = extract_text(src, ExtractOptions::new().with_window(window)).unwrap();
        let w = r.window.as_ref().expect("window extraction");
        use crate::window::{BoundarySignal, Face};
        let right = w.face_contacts(Face::Right);
        assert!(!right.is_empty());
        // The channel [200,1000]×[-200,200] touches the right face.
        assert!(right
            .iter()
            .any(|c| matches!(c.signal, BoundarySignal::Channel(_))));
        // The device is marked partial.
        assert_eq!(w.partial_device_indexes().len(), 1);
        // Poly reaches both left and right faces.
        let left = w.face_contacts(Face::Left);
        assert!(left.iter().any(|c| c.layer == Some(Layer::Poly)));
    }

    #[test]
    fn window_mode_details_align_with_devices() {
        let src = "
            L ND; B 400 1600 0 0;
            L NP; B 1600 400 0 0;
            E";
        let window = Rect::new(-800, -800, 800, 800);
        let r = extract_text(src, ExtractOptions::new().with_window(window)).unwrap();
        let w = r.window.as_ref().unwrap();
        assert_eq!(w.device_details.len(), r.netlist.device_count());
        let detail = &w.device_details[0];
        assert_eq!(detail.area, 400 * 400);
        assert!(!detail.partial);
        assert_eq!(detail.terminals.len(), 2);
        assert_eq!(detail.gate, r.netlist.devices()[0].gate);
    }

    #[test]
    fn bin_sort_produces_same_netlist() {
        use crate::report::SortStrategy;
        let a = extract_inverter(ExtractOptions::new());
        let b = extract_inverter(ExtractOptions::new().with_sort(SortStrategy::Bin));
        ace_wirelist::compare::same_circuit(&a.netlist, &b.netlist).expect("same circuit");
    }

    /// Two overlapping same-net rectangles contribute their *union*
    /// to the parasitic totals: counting the lens twice would inflate
    /// the capacitance of any net drawn as overlapping strokes.
    #[test]
    fn overlapping_rects_do_not_double_count_area() {
        // Metal x∈[0,800] ∪ x∈[400,1200], both y∈[0,400]: the union
        // is the single rectangle 1200×400.
        let r = extract_text(
            "L NM; B 800 400 400 200; B 800 400 800 200;
             94 W 400 200 NM; E",
            ExtractOptions::new(),
        )
        .expect("extracts");
        let id = r.netlist.net_by_name("W").expect("net W");
        let p = &r.netlist.net(id).parasitics;
        let metal = ace_wirelist::parasitics::conducting_slot(Layer::Metal).unwrap();
        assert_eq!(p.area[metal], 1200 * 400, "union area, not the sum");
        assert_eq!(p.perimeter[metal], 2 * (1200 + 400), "union perimeter");
        assert_eq!(p.cut_area, 0);
    }

    /// Two rectangles abutting along a full edge merge into one net;
    /// the shared edge is interior to the union and must vanish from
    /// the perimeter total (subtracted once from each side).
    #[test]
    fn abutting_rects_do_not_double_count_shared_perimeter() {
        // Metal x∈[0,800] and x∈[800,1600], both y∈[0,400]: zero
        // overlap area, but the 400-long seam at x=800 is interior.
        let r = extract_text(
            "L NM; B 800 400 400 200; B 800 400 1200 200;
             94 W 400 200 NM; E",
            ExtractOptions::new(),
        )
        .expect("extracts");
        let id = r.netlist.net_by_name("W").expect("net W");
        let p = &r.netlist.net(id).parasitics;
        let metal = ace_wirelist::parasitics::conducting_slot(Layer::Metal).unwrap();
        assert_eq!(p.area[metal], 2 * 800 * 400, "abutment adds no area");
        assert_eq!(
            p.perimeter[metal],
            2 * (1600 + 400),
            "shared seam must not be counted"
        );
    }

    #[test]
    fn malformed_cif_reports_error() {
        let err = extract_text("C 99;", ExtractOptions::new()).unwrap_err();
        assert!(err.to_string().contains("undefined symbol"));
        assert!(matches!(err, ExtractError::Layout(_)));
    }

    #[test]
    fn conflicting_options_report_error() {
        let options = ExtractOptions::new()
            .with_window(Rect::new(0, 0, 100, 100))
            .with_threads(2);
        let err = extract_text("E", options).unwrap_err();
        assert!(matches!(err, ExtractError::Options(_)));
        assert!(err.to_string().contains("invalid extraction options"));

        // A bare feed cannot be banded either.
        let lib = Library::from_cif_text("E").unwrap();
        let mut feed = LazyFeed::new(&lib);
        let err = extract_feed(&mut feed, "e", ExtractOptions::new().with_threads(2)).unwrap_err();
        assert!(matches!(err, ExtractError::Options(_)));
    }
}
