//! Incremental re-extraction: a per-band sweep cache with dirty-band
//! invalidation.
//!
//! Editing a chip rarely touches more than a sliver of it, yet a
//! classic extractor re-sweeps everything. [`IncrementalExtractor`]
//! reuses the band-parallel machinery (`parallel.rs`) to make
//! re-extraction proportional to the *edit*, not the chip: the layout
//! is split into horizontal bands along seam lines fixed at
//! construction, each band's sweep result is cached, and after an
//! edit only the bands whose content changed are swept again. The
//! seam stitch then reassembles the full circuit from cached and
//! fresh band results alike.
//!
//! # Cache keying
//!
//! Each band is keyed by a content hash of its clipped slice: the
//! sorted multiset of `(layer, rect)` boxes plus the sorted multiset
//! of `(name, position, layer)` labels. Hashing the *content* rather
//! than tracking which edits landed where makes invalidation
//! self-correcting — a box moved into a band, out of it, or across
//! it changes the affected slices' hashes and nothing else, and an
//! edit that cancels out (move a box and move it back) costs no
//! re-sweep at all.
//!
//! # Invalidation rules
//!
//! * Seam lines are chosen once, from the seed layout
//!   ([`ace_layout::band_cuts`]), and never move. Stable cuts are
//!   what make a cached band reusable: its slice is a pure function
//!   of the layout content between two fixed y lines.
//! * Band windows use fixed sentinel outer bounds (±2⁴⁰) instead of
//!   the current bounding box, so a band's extraction does not depend
//!   on geometry outside it even indirectly.
//! * A band is re-swept iff its content hash differs from the cached
//!   one. Geometry edits dirty exactly the bands whose clipped slice
//!   they change (a box straddling a seam dirties both neighbours).
//! * The clipped band slices are themselves maintained
//!   incrementally: [`apply`](IncrementalExtractor::apply) routes
//!   each diff entry into the slices it touches (the same clipping
//!   [`partition_bands`](ace_layout::partition_bands) uses) and only
//!   touched bands are re-hashed — so an edit/re-extract cycle costs
//!   work proportional to the edit and its dirty bands, never a
//!   whole-chip re-partition.
//! * The seam stitch re-runs on every extraction — it is cheap
//!   (linear in nets and seam contacts, no interval algebra) and
//!   consuming both cached and fresh band results through it is what
//!   guarantees the output equals a from-scratch extraction. Labels
//!   sitting exactly on a seam are resolved by the stitcher, so
//!   seam-label edits are picked up without dirtying any band.
//!
//! Layouts too small to band (no interior cut) degrade to a
//! whole-layout memo: one cache slot keyed by the full content hash.
//!
//! # Examples
//!
//! ```
//! use ace_core::{CircuitExtractor, IncrementalExtractor};
//! use ace_geom::{Layer, Rect};
//! use ace_layout::{FlatLayout, LayoutDiff, Library};
//!
//! let lib = Library::from_cif_text("
//!     L ND; B 400 1600 0 0;
//!     L NP; B 1600 400 0 0;
//!     E
//! ")?;
//! let flat = FlatLayout::from_library(&lib);
//! let mut inc = IncrementalExtractor::new(flat, 2);
//!
//! // First extraction sweeps everything and fills the cache.
//! let before = inc.extract("chip")?;
//! assert_eq!(before.netlist.device_count(), 1);
//!
//! // Widen the poly gate; only the touched bands re-sweep.
//! let mut edit = LayoutDiff::new();
//! edit.move_box(
//!     Layer::Poly,
//!     Rect::new(-800, -200, 800, 200),
//!     Rect::new(-800, -400, 800, 400),
//! );
//! inc.apply(&edit)?;
//! let after = inc.extract("chip")?;
//! assert_eq!(after.netlist.devices()[0].length, 800);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use ace_geom::{Coord, Layer, Point, Rect};
use ace_layout::{
    band_cuts, partition_bands, route_box, route_label, DiffError, EagerFeed, FlatLabel,
    FlatLayout, LayerBox, LayoutDiff,
};

use crate::backend::CircuitExtractor;
use crate::extract::{ExtractError, Extraction};
use std::sync::Mutex;

use crate::parallel::stitch;
use crate::probe::{Counter, CounterProbe, Lane, Probe, Span};
use crate::report::ExtractOptions;
use crate::scheduler::run_jobs;
use crate::sweep::Extractor;

/// Outer window bound for the bottom and top bands: far beyond any
/// coordinate a real layout reaches, so band windows are independent
/// of the current bounding box and each band's extraction is a pure
/// function of its content slice. λ is 250 database units, so 2⁴⁰
/// units is ~4·10⁹ λ — geometry out there would silently touch the
/// sentinel edge, but no fractured CIF design comes within orders of
/// magnitude of it.
const OUTER: Coord = 1 << 40;

/// One cached band: the content hash its sweep was computed from,
/// the window-mode extraction the stitcher consumes, and the
/// extraction's estimated heap footprint (computed once at insert).
struct BandSlot {
    hash: u64,
    bytes: u64,
    result: Extraction,
}

/// A re-extraction session over an evolving layout.
///
/// Create it from the seed layout, [`extract`](CircuitExtractor::extract)
/// once (sweeping every band), then alternate
/// [`apply`](Self::apply) / extract: each extraction re-sweeps only
/// the bands whose content hash changed and re-stitches. The output
/// is always the same circuit a from-scratch extraction of the
/// current layout would produce.
pub struct IncrementalExtractor {
    flat: FlatLayout,
    options: ExtractOptions,
    /// Interior seam lines, fixed at construction.
    cuts: Vec<Coord>,
    /// Persistent clipped per-band layouts (empty when unbanded).
    /// Maintained in place by [`apply`](Self::apply) so an extraction
    /// never re-partitions the whole chip.
    bands: Vec<FlatLayout>,
    /// Labels sitting exactly on a seam, kept aside for the stitcher.
    seam_labels: Vec<FlatLabel>,
    /// Bands an edit has touched since their last hash check.
    dirty: Vec<bool>,
    /// One slot per band (`cuts.len() + 1`, or 1 when unbanded);
    /// `None` until the band's first sweep.
    cache: Vec<Option<BandSlot>>,
    /// Band indices re-swept by the most recent extraction.
    last_reswept: Vec<usize>,
}

impl IncrementalExtractor {
    /// A session over `flat`, banded for `bands` workers. Seam lines
    /// are picked from `flat`'s box edges once, here; later edits
    /// never move them (see the module docs for why).
    pub fn new(flat: FlatLayout, bands: usize) -> Self {
        let cuts = band_cuts(&flat, bands);
        let slots = cuts.len() + 1;
        let (bands, seam_labels) = if cuts.is_empty() {
            (Vec::new(), Vec::new())
        } else {
            let p = partition_bands(&flat, &cuts);
            (p.bands, p.seam_labels)
        };
        IncrementalExtractor {
            flat,
            options: ExtractOptions::new(),
            cuts,
            bands,
            seam_labels,
            dirty: vec![true; slots],
            cache: (0..slots).map(|_| None).collect(),
            last_reswept: Vec::new(),
        }
    }

    /// Replaces the options. Requesting `threads` or `window` here is
    /// rejected at extraction time: incremental extraction manages
    /// its own banding, and window mode cannot be banded.
    pub fn with_options(mut self, options: ExtractOptions) -> Self {
        self.options = options;
        self
    }

    /// The current layout.
    pub fn layout(&self) -> &FlatLayout {
        &self.flat
    }

    /// The fixed interior seam lines.
    pub fn cuts(&self) -> &[Coord] {
        &self.cuts
    }

    /// Band indices re-swept by the most recent extraction (empty
    /// before the first, or when every band was answered from cache).
    pub fn last_reswept(&self) -> &[usize] {
        &self.last_reswept
    }

    /// Estimated bytes held by the band cache.
    pub fn cache_bytes(&self) -> u64 {
        self.cache.iter().flatten().map(|slot| slot.bytes).sum()
    }

    /// Drops every cached band sweep, keeping the layout, the seam
    /// lines, and the persistent band slices. The next extraction
    /// re-sweeps everything (and refills the cache); the one after
    /// that is warm again.
    ///
    /// This is the reclaim hook for a memory-budget evictor: a
    /// long-lived server holding many sessions can shed a cold
    /// session's cache (its dominant footprint) without discarding
    /// the session itself.
    pub fn evict_cache(&mut self) {
        for slot in &mut self.cache {
            *slot = None;
        }
        self.dirty.iter_mut().for_each(|d| *d = true);
    }

    /// Applies an edit to the retained layout, routing each entry
    /// into the persistent band slices it touches and marking those
    /// bands dirty — the next extraction re-hashes only dirty bands
    /// and re-sweeps the ones whose content actually changed. Cost is
    /// proportional to the diff, not the chip.
    ///
    /// # Errors
    ///
    /// [`DiffError`] when a removal names a box or label the layout
    /// does not contain; the layout is then partially patched exactly
    /// as [`LayoutDiff::apply_to`] left it, and the band slices are
    /// rebuilt from it so the cache stays coherent with whatever
    /// state resulted.
    pub fn apply(&mut self, diff: &LayoutDiff) -> Result<(), DiffError> {
        let result = diff.apply_to(&mut self.flat);
        if self.cuts.is_empty() {
            // Unbanded: the whole-layout memo hash covers everything.
            return result;
        }
        if result.is_err() || !self.route_diff(diff) {
            self.rebuild_bands();
        }
        result
    }

    /// Routes a successfully-applied diff into the band slices,
    /// mirroring [`partition_bands`]'s clipping exactly. Returns
    /// `false` if a removal did not line up with the slices (they
    /// then need a rebuild — only reachable if the slices somehow
    /// drifted from the flat layout).
    fn route_diff(&mut self, diff: &LayoutDiff) -> bool {
        let cuts = &self.cuts;
        let bands = &mut self.bands;
        let dirty = &mut self.dirty;
        let n = bands.len();

        let mut removed: Vec<Vec<LayerBox>> = vec![Vec::new(); n];
        for b in &diff.boxes_removed {
            route_box(cuts, b.rect, |band, clipped| {
                removed[band].push(LayerBox {
                    layer: b.layer,
                    rect: clipped,
                });
            });
        }
        let mut removed_labels: Vec<Vec<FlatLabel>> = vec![Vec::new(); n];
        let mut seam_removed: Vec<FlatLabel> = Vec::new();
        for l in &diff.labels_removed {
            match route_label(cuts, l.at.y) {
                None => seam_removed.push(l.clone()),
                Some(band) => removed_labels[band].push(l.clone()),
            }
        }
        for i in 0..n {
            if !removed[i].is_empty() {
                dirty[i] = true;
                if bands[i].remove_boxes_bulk(&removed[i]).is_some() {
                    return false;
                }
            }
            if !removed_labels[i].is_empty() {
                dirty[i] = true;
                if bands[i].remove_labels_bulk(&removed_labels[i]).is_some() {
                    return false;
                }
            }
        }
        for l in &seam_removed {
            let Some(at) = self.seam_labels.iter().position(|s| s == l) else {
                return false;
            };
            self.seam_labels.swap_remove(at);
        }

        for b in &diff.boxes_added {
            route_box(cuts, b.rect, |band, clipped| {
                bands[band].push_box(b.layer, clipped);
                dirty[band] = true;
            });
        }
        for l in &diff.labels_added {
            match route_label(cuts, l.at.y) {
                // Seam labels live outside every band; the stitch
                // (re-run each extraction) picks the change up.
                None => self.seam_labels.push(l.clone()),
                Some(band) => {
                    bands[band].push_label(l.name.clone(), l.at, l.layer);
                    dirty[band] = true;
                }
            }
        }
        true
    }

    /// Re-derives the band slices from the flat layout and marks
    /// every band dirty — the recovery path when routing could not
    /// patch them incrementally.
    fn rebuild_bands(&mut self) {
        let p = partition_bands(&self.flat, &self.cuts);
        self.bands = p.bands;
        self.seam_labels = p.seam_labels;
        self.dirty.iter_mut().for_each(|d| *d = true);
    }

    fn windows(&self) -> Vec<Rect> {
        let n = self.cuts.len() + 1;
        (0..n)
            .map(|i| {
                let lo = if i == 0 { -OUTER } else { self.cuts[i - 1] };
                let hi = if i == n - 1 { OUTER } else { self.cuts[i] };
                Rect::new(-OUTER, lo, OUTER, hi)
            })
            .collect()
    }

    /// The whole-layout memo path for layouts with no interior cut.
    fn extract_unbanded(
        &mut self,
        name: &str,
        counters: &CounterProbe,
        probe: &dyn Probe,
    ) -> Extraction {
        let tee = (counters, probe);
        let p: &dyn Probe = &tee;
        let hash = flat_hash(&self.flat);

        p.enter(Lane::MAIN, Span::Extract);
        let reused = matches!(&self.cache[0], Some(slot) if slot.hash == hash);
        if reused {
            self.last_reswept.clear();
            p.add(Lane::MAIN, Counter::BandsReused, 1);
        } else {
            let mut feed = EagerFeed::from_flat(self.flat.clone()).with_probe(p, Lane::MAIN);
            let result = Extractor::with_probe(self.options, p).run(&mut feed, name);
            self.cache[0] = Some(BandSlot {
                hash,
                bytes: extraction_bytes(&result),
                result,
            });
            self.last_reswept = vec![0];
            p.add(Lane::MAIN, Counter::BandsReswept, 1);
        }
        p.gauge(Lane::MAIN, Counter::CacheBytes, self.cache_bytes());
        p.exit(Lane::MAIN, Span::Extract);

        let slot = self.cache[0].as_ref().expect("just filled");
        let mut netlist = slot.result.netlist.clone();
        netlist.name = name.to_string();
        let mut report = counters.report();
        report.threads = 1;
        report.bands = 1;
        Extraction {
            netlist,
            report,
            window: None,
        }
    }
}

impl CircuitExtractor for IncrementalExtractor {
    fn backend(&self) -> &'static str {
        "ace-incremental"
    }

    fn extract_probed(
        &mut self,
        name: &str,
        probe: &dyn Probe,
    ) -> Result<Extraction, ExtractError> {
        if self.options.threads.is_some() || self.options.bands.is_some() {
            return Err(ExtractError::Options(
                "incremental extraction manages its own banding (threads/bands conflicts)",
            ));
        }
        if self.options.window.is_some() {
            return Err(ExtractError::Options(
                "window-mode extraction cannot be incremental (window conflicts)",
            ));
        }

        let counters = CounterProbe::new();
        if self.cuts.is_empty() {
            return Ok(self.extract_unbanded(name, &counters, probe));
        }
        let tee = (&counters, probe);
        let p: &dyn Probe = &tee;

        p.enter(Lane::MAIN, Span::Extract);
        let n = self.bands.len();
        let windows = self.windows();

        // Re-hash only bands an edit touched (or that were never
        // swept); a clean band reuses its cache without even hashing.
        // A dirty band whose hash still matches — the edit cancelled
        // out — is reused too.
        let mut resweep: Vec<(usize, u64)> = Vec::new();
        for i in 0..n {
            if !self.dirty[i] && self.cache[i].is_some() {
                continue;
            }
            let hash = flat_hash(&self.bands[i]);
            if !matches!(&self.cache[i], Some(slot) if slot.hash == hash) {
                resweep.push((i, hash));
            }
        }
        self.dirty.iter_mut().for_each(|d| *d = false);
        p.add(Lane::MAIN, Counter::BandsReused, (n - resweep.len()) as u64);
        p.add(Lane::MAIN, Counter::BandsReswept, resweep.len() as u64);

        // Re-sweep the dirty bands through the work-stealing
        // scheduler, exactly like the band-parallel driver: window
        // mode along the fixed seams, one lane per band so traces
        // show which bands ran, and one worker per host core (not
        // per dirty band) draining the jobs.
        let mut band_base = self.options;
        band_base.threads = None;
        band_base.bands = None;
        let work: Vec<(usize, u64, Mutex<Option<FlatLayout>>)> = resweep
            .iter()
            .map(|&(i, hash)| (i, hash, Mutex::new(Some(self.bands[i].clone()))))
            .collect();
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        let (fresh, steal) = run_jobs(workers, work.len(), |j| {
            let &(i, hash, ref slot) = &work[j];
            let band = slot
                .lock()
                .expect("band slot lock")
                .take()
                .expect("each dirty band sweeps once");
            let band_name = format!("{name}.band{i}");
            let band_options = band_base.with_window(windows[i]);
            let lane = Lane::band(i);
            p.enter(lane, Span::Band);
            let mut feed = EagerFeed::from_flat(band).with_probe(p, lane);
            let result = Extractor::with_probe(band_options, p)
                .on_lane(lane)
                .run(&mut feed, &band_name);
            p.exit(lane, Span::Band);
            (i, hash, result)
        });
        p.add(Lane::MAIN, Counter::BandsStolen, steal.stolen);
        p.add(Lane::MAIN, Counter::StealWaitNs, steal.wait_ns);
        for (i, hash, result) in fresh {
            self.cache[i] = Some(BandSlot {
                hash,
                bytes: extraction_bytes(&result),
                result,
            });
        }
        self.last_reswept = resweep.into_iter().map(|(i, _)| i).collect();
        p.gauge(Lane::MAIN, Counter::CacheBytes, self.cache_bytes());

        // Stitch cached and fresh band results alike into the full
        // circuit (same code path as the band-parallel extractor).
        p.enter(Lane::MAIN, Span::Stitch);
        let refs: Vec<&Extraction> = self
            .cache
            .iter()
            .map(|slot| &slot.as_ref().expect("every band cached").result)
            .collect();
        let (mut netlist, stats, seam_unresolved) =
            stitch(&refs, &self.cuts, &self.seam_labels, self.options);
        netlist.name = name.to_string();
        p.exit(Lane::MAIN, Span::Stitch);
        p.add(Lane::MAIN, Counter::SeamContacts, stats.seam_contacts);
        p.add(Lane::MAIN, Counter::PairsMatched, stats.pairs_matched);
        p.add(Lane::MAIN, Counter::SeamNetUnions, stats.net_unions);
        p.add(Lane::MAIN, Counter::DeviceMerges, stats.device_merges);
        p.add(
            Lane::MAIN,
            Counter::TerminalContacts,
            stats.terminal_contacts,
        );
        p.add(
            Lane::MAIN,
            Counter::PartialsCompleted,
            stats.partials_completed,
        );
        p.add(Lane::MAIN, Counter::UnresolvedLabels, seam_unresolved);
        p.exit(Lane::MAIN, Span::Extract);

        let mut report = counters.report();
        report.threads = steal.workers.max(1);
        report.bands = n;

        Ok(Extraction {
            netlist,
            report,
            window: None,
        })
    }
}

/// Content hash of one flat layout (a band slice or, unbanded, the
/// whole chip): sorted box and label multisets with domain
/// separators, so box/label boundaries cannot alias.
fn flat_hash(flat: &FlatLayout) -> u64 {
    let mut boxes: Vec<(Layer, Rect)> = flat.boxes().iter().map(|b| (b.layer, b.rect)).collect();
    boxes.sort_unstable();
    let mut labels: Vec<(&str, Point, Option<Layer>)> = flat
        .labels()
        .iter()
        .map(|l| (l.name.as_str(), l.at, l.layer))
        .collect();
    labels.sort_unstable();

    let mut h = DefaultHasher::new();
    0xAAu8.hash(&mut h);
    boxes.hash(&mut h);
    0xABu8.hash(&mut h);
    labels.hash(&mut h);
    h.finish()
}

/// Rough heap footprint of one cached band extraction. An estimate
/// for the cache-bytes gauge, not an allocator-exact measure: devices
/// and rects by `size_of`, nets by name bytes plus a fixed per-record
/// overhead.
fn extraction_bytes(e: &Extraction) -> u64 {
    use std::mem::size_of;
    let mut bytes = size_of::<Extraction>();
    for d in e.netlist.devices() {
        bytes += size_of::<ace_wirelist::Device>();
        bytes += d.channel_geometry.len() * size_of::<Rect>();
    }
    for (_, net) in e.netlist.nets() {
        bytes += 64; // per-net record overhead
        bytes += net
            .names
            .iter()
            .map(|s| s.len() + size_of::<String>())
            .sum::<usize>();
        bytes += net.geometry.len() * (size_of::<Layer>() + size_of::<Rect>());
    }
    if let Some(w) = &e.window {
        bytes += w.contacts.len() * size_of::<crate::window::BoundaryContact>();
        bytes += w.device_details.len() * 96;
    }
    bytes as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_flat;
    use ace_wirelist::compare::same_circuit;

    /// A transistor chain tall enough to band: one diffusion column
    /// crossed by three poly gates at different heights.
    fn chip() -> FlatLayout {
        let lib = ace_layout::Library::from_cif_text(
            "
            L ND; B 400 6000 0 3000;
            L NP; B 1600 400 0 1000;
            L NP; B 1600 400 0 3000;
            L NP; B 1600 400 0 5000;
            94 gnd 0 100 ND;
            94 vdd 0 5900 ND;
            E
            ",
        )
        .expect("valid CIF");
        FlatLayout::from_library(&lib)
    }

    /// Three disjoint metal wires, one per band, with cuts pinned at
    /// y = 1000 and y = 2000 by construction.
    fn three_wires() -> FlatLayout {
        let mut flat = FlatLayout::new();
        flat.push_box(Layer::Metal, Rect::new(0, 0, 400, 400));
        flat.push_box(Layer::Metal, Rect::new(0, 1000, 400, 1400));
        flat.push_box(Layer::Metal, Rect::new(0, 2000, 400, 2400));
        flat.push_label("a", Point::new(200, 200), Some(Layer::Metal));
        flat.push_label("b", Point::new(200, 1200), Some(Layer::Metal));
        flat.push_label("c", Point::new(200, 2200), Some(Layer::Metal));
        flat
    }

    fn assert_matches_full(inc: &mut IncrementalExtractor) {
        let full = extract_flat(inc.layout().clone(), "full", ExtractOptions::new())
            .expect("full extraction");
        let got = inc.extract("full").expect("incremental extraction");
        same_circuit(&got.netlist, &full.netlist).expect("incremental == full");
    }

    #[test]
    fn first_extraction_sweeps_every_band_and_matches_full() {
        let mut inc = IncrementalExtractor::new(chip(), 3);
        let bands = inc.cuts().len() + 1;
        assert!(bands >= 2, "chip should band");
        let full = extract_flat(chip(), "chip", ExtractOptions::new()).expect("full extraction");
        let got = inc.extract("chip").expect("incremental extraction");
        same_circuit(&got.netlist, &full.netlist).expect("incremental == full");
        assert_eq!(got.netlist.device_count(), 3);
        assert_eq!(inc.last_reswept(), (0..bands).collect::<Vec<_>>());
        assert_eq!(got.report.bands_reswept, bands as u64);
        assert_eq!(got.report.bands_reused, 0);
        assert!(inc.cache_bytes() > 0);
    }

    #[test]
    fn clean_re_extraction_reuses_every_band() {
        let mut inc = IncrementalExtractor::new(chip(), 3);
        let bands = inc.cuts().len() + 1;
        let first = inc.extract("chip").expect("first");
        let second = inc.extract("chip").expect("second");
        assert_eq!(inc.last_reswept(), &[] as &[usize]);
        assert_eq!(second.report.bands_reused, bands as u64);
        assert_eq!(second.report.bands_reswept, 0);
        same_circuit(&second.netlist, &first.netlist).expect("identical");
    }

    #[test]
    fn interior_edit_resweeps_only_its_band() {
        let mut inc = IncrementalExtractor::new(three_wires(), 3);
        assert_eq!(inc.cuts(), &[1000, 2000]);
        inc.extract("wires").expect("seed extraction");

        // Nudge the bottom wire, staying strictly inside band 0: the
        // bands above share no seam content with the edit and must
        // answer from cache.
        let mut edit = LayoutDiff::new();
        edit.move_box(
            Layer::Metal,
            Rect::new(0, 0, 400, 400),
            Rect::new(0, 200, 400, 600),
        );
        inc.apply(&edit).expect("edit applies");
        let got = inc.extract("wires").expect("re-extraction");
        assert_eq!(inc.last_reswept(), &[0]);
        assert_eq!(got.report.bands_reused, 2);
        assert_eq!(got.report.bands_reswept, 1);
        assert_matches_full(&mut inc);
    }

    #[test]
    fn seam_straddling_edit_dirties_both_neighbours() {
        let mut inc = IncrementalExtractor::new(three_wires(), 3);
        assert_eq!(inc.cuts(), &[1000, 2000]);
        inc.extract("wires").expect("seed extraction");

        // A wire across the y=1000 seam is clipped into bands 0 and
        // 1; both hashes change, band 2 stays cached.
        let mut edit = LayoutDiff::new();
        edit.add_box(Layer::Metal, Rect::new(0, 900, 400, 1100));
        inc.apply(&edit).expect("edit applies");
        inc.extract("wires").expect("re-extraction");
        assert_eq!(inc.last_reswept(), &[0, 1]);
        assert_matches_full(&mut inc);
    }

    #[test]
    fn label_only_edit_resweeps_just_the_labelled_band() {
        let mut inc = IncrementalExtractor::new(three_wires(), 3);
        inc.extract("wires").expect("seed extraction");
        let mut edit = LayoutDiff::new();
        edit.add_label("mid", Point::new(200, 1200), Some(Layer::Metal));
        inc.apply(&edit).expect("edit applies");
        inc.extract("wires").expect("re-extraction");
        assert_eq!(inc.last_reswept(), &[1]);
        assert_matches_full(&mut inc);
    }

    #[test]
    fn unbanded_layout_memoizes_the_whole_extraction() {
        let mut inc = IncrementalExtractor::new(chip(), 1);
        assert!(inc.cuts().is_empty());
        let first = inc.extract("chip").expect("first");
        assert_eq!(first.report.bands_reswept, 1);
        let second = inc.extract("chip").expect("second");
        assert_eq!(second.report.bands_reused, 1);
        assert_eq!(second.report.bands_reswept, 0);
        same_circuit(&second.netlist, &first.netlist).expect("identical");

        let mut edit = LayoutDiff::new();
        edit.remove_box(Layer::Poly, Rect::new(-800, 2800, 800, 3200));
        inc.apply(&edit).expect("edit applies");
        let third = inc.extract("chip").expect("third");
        assert_eq!(third.report.bands_reswept, 1);
        assert_eq!(third.netlist.device_count(), 2);
        assert_matches_full(&mut inc);
    }

    /// Per-request reporting on a reused extractor must not
    /// accumulate: each `extract` call's own report carries only that
    /// run's `BandsReused`/`BandsReswept`/`CacheBytes`, and a
    /// long-lived external probe gets the same per-run numbers via
    /// `take_report` (without it, the second request's report says
    /// "6 bands reused" on a 3-band chip — stale values from request
    /// one baked in).
    #[test]
    fn reused_extractor_reports_per_request_not_cumulative() {
        use crate::probe::CounterProbe;

        let mut inc = IncrementalExtractor::new(three_wires(), 3);
        let bands = (inc.cuts().len() + 1) as u64;
        let probe = CounterProbe::new(); // retained across requests
        let r1 = inc.extract_probed("wires", &probe).expect("request 1");
        assert_eq!(r1.report.bands_reswept, bands);
        assert_eq!(probe.take_report().bands_reswept, bands);

        let r2 = inc.extract_probed("wires", &probe).expect("request 2");
        assert_eq!(r2.report.bands_reused, bands, "own report is per-run");
        assert_eq!(r2.report.bands_reswept, 0);
        let external = probe.take_report();
        assert_eq!(
            external.bands_reused, bands,
            "take_report must yield request 2's numbers alone"
        );
        assert_eq!(external.bands_reswept, 0);
        assert_eq!(external.cache_bytes, inc.cache_bytes());
    }

    #[test]
    fn evicted_cache_resweeps_and_reports_shrunken_bytes() {
        use crate::probe::CounterProbe;

        let mut inc = IncrementalExtractor::new(three_wires(), 3);
        let bands = (inc.cuts().len() + 1) as u64;
        let probe = CounterProbe::new();
        inc.extract_probed("wires", &probe).expect("warm-up");
        let warm_bytes = inc.cache_bytes();
        assert!(warm_bytes > 0);
        probe.reset();

        // Evict: the cache empties, and the gauge must track the
        // shrink rather than keep the old high-water mark.
        inc.evict_cache();
        assert_eq!(inc.cache_bytes(), 0);

        // Shrink the layout, then re-extract: everything re-sweeps
        // (cold cache) and the reported cache footprint is the *new*,
        // smaller one — not the pre-eviction peak.
        let mut edit = LayoutDiff::new();
        edit.remove_box(Layer::Metal, Rect::new(0, 2000, 400, 2400));
        edit.remove_label("c", Point::new(200, 2200), Some(Layer::Metal));
        inc.apply(&edit).expect("edit applies");
        let r = inc.extract_probed("wires", &probe).expect("cold re-run");
        assert_eq!(r.report.bands_reswept, bands);
        assert_eq!(r.report.bands_reused, 0);
        assert!(inc.cache_bytes() < warm_bytes);
        assert_eq!(r.report.cache_bytes, inc.cache_bytes());
        assert_eq!(probe.take_report().cache_bytes, inc.cache_bytes());
        assert_matches_full(&mut inc);
    }

    #[test]
    fn rejects_threads_and_window_options() {
        let opts = ExtractOptions::new().with_threads(2);
        let mut inc = IncrementalExtractor::new(chip(), 2).with_options(opts);
        assert!(inc.extract("chip").is_err());
        let opts = ExtractOptions::new().with_window(Rect::new(0, 0, 100, 100));
        let mut inc = IncrementalExtractor::new(chip(), 2).with_options(opts);
        assert!(inc.extract("chip").is_err());
    }

    #[test]
    fn edit_sequence_tracks_full_extraction() {
        let mut inc = IncrementalExtractor::new(chip(), 3);
        inc.extract("chip").expect("seed extraction");

        // Widen the middle gate.
        let mut edit = LayoutDiff::new();
        edit.move_box(
            Layer::Poly,
            Rect::new(-800, 2800, 800, 3200),
            Rect::new(-800, 2600, 800, 3400),
        );
        inc.apply(&edit).expect("widen applies");
        assert_matches_full(&mut inc);

        // Delete the top gate.
        let mut edit = LayoutDiff::new();
        edit.remove_box(Layer::Poly, Rect::new(-800, 4800, 800, 5200));
        inc.apply(&edit).expect("delete applies");
        assert_matches_full(&mut inc);

        // Put it back, and move a supply label.
        let mut edit = LayoutDiff::new();
        edit.add_box(Layer::Poly, Rect::new(-800, 4800, 800, 5200));
        edit.remove_label("vdd", Point::new(0, 5900), Some(Layer::Diffusion));
        edit.add_label("vdd", Point::new(0, 5700), Some(Layer::Diffusion));
        inc.apply(&edit).expect("restore applies");
        assert_matches_full(&mut inc);
    }
}
