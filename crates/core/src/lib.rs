//! ACE: a flat edge-based circuit extractor for NMOS layouts.
//!
//! This crate is the paper's primary contribution: "A scan line is
//! moved from the top to the bottom of the chip, pausing at points
//! corresponding to the top or bottom edges of pieces of geometry.
//! Conceptually, this divides the chip into a number of horizontal
//! strips where the state within the strip does not change in the
//! vertical direction. Change in state occurs only at the interface
//! between two strips." (§2.)
//!
//! # Algorithm
//!
//! The sweep ([`Extractor`]) follows Figure 3-2 of the paper:
//!
//! 1. Set the scanline to the top of the chip.
//! 2. While geometry remains: (a) fetch boxes whose top coincides
//!    with the scanline, sorting them by x into per-layer
//!    `newGeometry` lists; (b) insert the new geometry into
//!    per-layer *active lists*; (c) compute devices — the active
//!    lists of the interacting layers (diffusion, poly, buried,
//!    implant, plus metal and cut for connectivity) are traversed
//!    simultaneously and their overlap computed: diffusion ∧ poly ∧
//!    ¬buried is transistor channel, implant selects depletion mode,
//!    buried contacts join poly to diffusion, and cuts join metal to
//!    whatever lies beneath; (d) set the next scanline position to
//!    the larger of the next box top from the front-end and the
//!    largest active bottom.
//! 3. Output devices and nets — nothing is emitted earlier because
//!    "two nets that were earlier distinct can be merged after they
//!    have been output, causing the output to be in error" (§4).
//!
//! Connectivity inside each strip is interval algebra
//! ([`ace_geom::IntervalSet`]); connectivity across strips is
//! union-find over per-strip *fragments*. Transistor width is the
//! mean of the source- and drain-edge contact lengths, and length is
//! channel area over width (§3).
//!
//! # Examples
//!
//! ```
//! use ace_core::{extract_text, ExtractOptions};
//!
//! // A minimal transistor: poly crossing diffusion.
//! let result = extract_text("
//!     L ND; B 400 1600 0 0;
//!     L NP; B 1600 400 0 0;
//!     E
//! ", ExtractOptions::new())?;
//! assert_eq!(result.netlist.device_count(), 1);
//! let d = &result.netlist.devices()[0];
//! assert_eq!((d.length, d.width), (400, 400));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod backend;
mod devices;
mod extract;
mod incremental;
mod nets;
mod parallel;
pub mod probe;
mod report;
pub mod scheduler;
mod strip;
mod sweep;
mod window;

pub use backend::{CircuitExtractor, FlatExtractor, LazyExtractor};
pub use devices::{DeviceAccumulator, DeviceTable};
pub use extract::{
    extract_feed, extract_feed_probed, extract_flat, extract_flat_probed, extract_library,
    extract_library_probed, extract_text, extract_text_probed, ExtractError, Extraction,
};
pub use incremental::IncrementalExtractor;
pub use nets::{NetData, NetTable};
pub use parallel::{extract_banded, extract_banded_probed};
pub use probe::{
    ChromeTraceProbe, Counter, CounterProbe, Lane, NullProbe, Probe, Span, SummaryProbe, TraceEvent,
};
pub use report::{BandReport, ExtractOptions, ExtractionReport, Phase, SortStrategy, StitchStats};
pub use scheduler::{PoolStats, SubmitError, WorkerPool};
pub use strip::{
    abutting, find_containing, overlap_pairs, overlap_pairs_into, overlapping, Fragment,
    StripCoverage, StripFragments,
};
pub use sweep::Extractor;
pub use window::{BoundaryContact, BoundarySignal, Face, WindowExtraction};
