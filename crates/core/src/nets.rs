use ace_geom::{Layer, Point, Rect};
use ace_wirelist::{NetParasitics, UnionFind};

/// Per-net data assembled from a [`NetTable`] root.
///
/// The table itself stores these columns struct-of-arrays (see
/// [`NetTable`]); this owned view exists for output construction and
/// the public API.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetData {
    /// User names from CIF `94` labels, in resolution order.
    pub names: Vec<String>,
    /// Bounding box of all geometry seen on this net.
    pub bbox: Option<Rect>,
    /// Recorded geometry (only when geometry output is enabled).
    pub geometry: Vec<(Layer, Rect)>,
    /// Parasitic totals accumulated for this net (union area and
    /// perimeter per conducting layer, plus contact-cut area).
    pub parasitics: NetParasitics,
}

/// Union-find over net handles with per-root net data.
///
/// Every fragment the sweep creates gets a handle; handles are
/// unioned as connectivity is discovered, and the surviving roots
/// become the output nets.
///
/// Storage is struct-of-arrays: bounding boxes, names, and recorded
/// geometry live in three parallel columns indexed by handle. The
/// sweep's hot call is [`add_geometry`](Self::add_geometry), which
/// touches only the union-find and the dense `bboxes` column —
/// names and geometry (almost always empty) stay out of the cache
/// lines it walks.
///
/// # Examples
///
/// ```
/// use ace_core::NetTable;
///
/// let mut nets = NetTable::new(false);
/// let a = nets.fresh();
/// let b = nets.fresh();
/// nets.add_name(a, "VDD");
/// nets.union(a, b);
/// assert_eq!(nets.find(b), nets.find(a));
/// assert_eq!(nets.data(b).names, vec!["VDD".to_string()]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetTable {
    uf: UnionFind,
    bboxes: Vec<Option<Rect>>,
    names: Vec<Vec<String>>,
    geometry: Vec<Vec<(Layer, Rect)>>,
    parasitics: Vec<NetParasitics>,
    record_geometry: bool,
}

impl NetTable {
    /// Creates an empty table. `record_geometry` controls whether
    /// [`NetTable::add_geometry`] stores rectangles.
    pub fn new(record_geometry: bool) -> Self {
        NetTable {
            uf: UnionFind::new(),
            bboxes: Vec::new(),
            names: Vec::new(),
            geometry: Vec::new(),
            parasitics: Vec::new(),
            record_geometry,
        }
    }

    /// Allocates a fresh net handle.
    pub fn fresh(&mut self) -> u32 {
        self.bboxes.push(None);
        self.names.push(Vec::new());
        self.geometry.push(Vec::new());
        self.parasitics.push(NetParasitics::default());
        self.uf.make_set()
    }

    /// Number of handles allocated.
    pub fn handle_count(&self) -> usize {
        self.uf.len()
    }

    /// Number of net-union operations that actually merged.
    pub fn union_count(&self) -> u64 {
        self.uf.union_count()
    }

    /// Canonical representative of `h`'s net.
    pub fn find(&mut self, h: u32) -> u32 {
        self.uf.find(h)
    }

    /// Merges the nets of `a` and `b`, combining their data. Returns
    /// the surviving root.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            return ra;
        }
        let root = self.uf.union(ra, rb);
        let other = (if root == ra { rb } else { ra }) as usize;
        let root = root as usize;
        self.bboxes[root] = match (self.bboxes[root], self.bboxes[other].take()) {
            (Some(x), Some(y)) => Some(x.bounding_union(&y)),
            (x, y) => x.or(y),
        };
        if !self.names[other].is_empty() {
            let moved = std::mem::take(&mut self.names[other]);
            for name in moved {
                if !self.names[root].contains(&name) {
                    self.names[root].push(name);
                }
            }
        }
        if !self.geometry[other].is_empty() {
            let mut moved = std::mem::take(&mut self.geometry[other]);
            self.geometry[root].append(&mut moved);
        }
        let moved = std::mem::take(&mut self.parasitics[other]);
        self.parasitics[root].merge(&moved);
        root as u32
    }

    /// Attaches a user name to `h`'s net.
    pub fn add_name(&mut self, h: u32, name: impl Into<String>) {
        let root = self.find(h) as usize;
        let name = name.into();
        if !self.names[root].contains(&name) {
            self.names[root].push(name);
        }
    }

    /// Extends the net's bounding box and (optionally) records the
    /// rectangle. The sweep calls this once per fragment per strip —
    /// the hot path the SoA layout exists for.
    pub fn add_geometry(&mut self, h: u32, layer: Layer, rect: Rect) {
        let root = self.find(h) as usize;
        let bb = &mut self.bboxes[root];
        *bb = Some(match bb {
            Some(old) => old.bounding_union(&rect),
            None => rect,
        });
        self.parasitics[root].add_rect(layer, &rect);
        if self.record_geometry {
            self.geometry[root].push((layer, rect));
        }
    }

    /// Removes a shared same-layer edge of length `len` from the
    /// net's union perimeter. Called wherever two fragments of the
    /// same layer are joined along an edge (vertical strip links,
    /// band seams, window seams, raster cell adjacency): the callers
    /// add each fragment's full perimeter, so every shared edge must
    /// be subtracted once to leave the union region's perimeter.
    pub fn sub_perimeter(&mut self, h: u32, layer: Layer, len: i64) {
        let root = self.find(h) as usize;
        self.parasitics[root].sub_edge(layer, len);
    }

    /// Adds contact-cut area (cut layer ∩ this net's conducting
    /// region) to the net's totals.
    pub fn add_cut_area(&mut self, h: u32, area: i64) {
        let root = self.find(h) as usize;
        self.parasitics[root].add_cut_area(area);
    }

    /// The net's accumulated parasitic totals.
    pub fn parasitics(&mut self, h: u32) -> NetParasitics {
        let root = self.find(h) as usize;
        self.parasitics[root]
    }

    /// Data at `h`'s root, assembled into an owned [`NetData`].
    pub fn data(&mut self, h: u32) -> NetData {
        let root = self.find(h) as usize;
        NetData {
            names: self.names[root].clone(),
            bbox: self.bboxes[root],
            geometry: self.geometry[root].clone(),
            parasitics: self.parasitics[root],
        }
    }

    /// The net's bounding box, if any geometry was seen.
    pub fn bbox(&mut self, h: u32) -> Option<Rect> {
        let root = self.find(h) as usize;
        self.bboxes[root]
    }

    /// The net's representative location: upper-left corner of its
    /// bounding box (matching the paper's Figure 3-4 conventions).
    pub fn location(&mut self, h: u32) -> Option<Point> {
        self.bbox(h).map(|bb| Point::new(bb.x_min, bb.y_max))
    }

    /// Maps every handle to a dense output net id; returns
    /// `(map, net_count)`.
    pub fn compress(&mut self) -> (Vec<u32>, usize) {
        self.uf.compress()
    }

    /// Takes (moves out) the data at `h`'s root. Used once per net
    /// during output construction; subsequent reads see empty data.
    pub fn take_data(&mut self, h: u32) -> NetData {
        let root = self.find(h) as usize;
        NetData {
            names: std::mem::take(&mut self.names[root]),
            bbox: self.bboxes[root].take(),
            geometry: std::mem::take(&mut self.geometry[root]),
            parasitics: std::mem::take(&mut self.parasitics[root]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_merges_names_and_bbox() {
        let mut t = NetTable::new(false);
        let a = t.fresh();
        let b = t.fresh();
        t.add_name(a, "X");
        t.add_name(b, "Y");
        t.add_geometry(a, Layer::Metal, Rect::new(0, 0, 10, 10));
        t.add_geometry(b, Layer::Poly, Rect::new(100, 100, 110, 110));
        t.union(a, b);
        let d = t.data(a);
        assert_eq!(d.names, vec!["X".to_string(), "Y".to_string()]);
        assert_eq!(d.bbox, Some(Rect::new(0, 0, 110, 110)));
        // Geometry suppressed.
        assert!(d.geometry.is_empty());
    }

    #[test]
    fn geometry_recording_honors_flag() {
        let mut t = NetTable::new(true);
        let a = t.fresh();
        t.add_geometry(a, Layer::Diffusion, Rect::new(0, 0, 5, 5));
        assert_eq!(t.data(a).geometry.len(), 1);
    }

    #[test]
    fn geometry_moves_to_the_surviving_root() {
        let mut t = NetTable::new(true);
        let a = t.fresh();
        let b = t.fresh();
        t.add_geometry(a, Layer::Metal, Rect::new(0, 0, 5, 5));
        t.add_geometry(b, Layer::Poly, Rect::new(10, 10, 15, 15));
        t.union(a, b);
        assert_eq!(t.data(b).geometry.len(), 2);
    }

    #[test]
    fn location_is_upper_left_of_bbox() {
        let mut t = NetTable::new(false);
        let a = t.fresh();
        assert_eq!(t.location(a), None);
        t.add_geometry(a, Layer::Metal, Rect::new(-2600, 3000, 2200, 3800));
        assert_eq!(t.location(a), Some(Point::new(-2600, 3800)));
    }

    #[test]
    fn duplicate_names_collapse() {
        let mut t = NetTable::new(false);
        let a = t.fresh();
        let b = t.fresh();
        t.add_name(a, "CLK");
        t.add_name(b, "CLK");
        t.union(a, b);
        assert_eq!(t.data(a).names, vec!["CLK".to_string()]);
    }

    #[test]
    fn union_is_idempotent_on_same_net() {
        let mut t = NetTable::new(false);
        let a = t.fresh();
        let b = t.fresh();
        t.union(a, b);
        let before = t.union_count();
        t.union(a, b);
        assert_eq!(t.union_count(), before);
    }

    #[test]
    fn take_data_drains_the_root() {
        let mut t = NetTable::new(false);
        let a = t.fresh();
        t.add_name(a, "OUT");
        t.add_geometry(a, Layer::Metal, Rect::new(0, 0, 4, 4));
        let d = t.take_data(a);
        assert_eq!(d.names, vec!["OUT".to_string()]);
        assert_eq!(d.bbox, Some(Rect::new(0, 0, 4, 4)));
        assert!(t.data(a).names.is_empty());
        assert_eq!(t.data(a).bbox, None);
    }

    #[test]
    fn compress_gives_dense_ids() {
        let mut t = NetTable::new(false);
        let a = t.fresh();
        let _b = t.fresh();
        let c = t.fresh();
        t.union(a, c);
        let (map, count) = t.compress();
        assert_eq!(count, 2);
        assert_eq!(map[a as usize], map[c as usize]);
    }
}
