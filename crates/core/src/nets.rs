use ace_geom::{Layer, Point, Rect};
use ace_wirelist::UnionFind;

/// Per-net data carried at each union-find root.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetData {
    /// User names from CIF `94` labels, in resolution order.
    pub names: Vec<String>,
    /// Bounding box of all geometry seen on this net.
    pub bbox: Option<Rect>,
    /// Recorded geometry (only when geometry output is enabled).
    pub geometry: Vec<(Layer, Rect)>,
}

impl NetData {
    fn absorb(&mut self, mut other: NetData) {
        for name in other.names.drain(..) {
            if !self.names.contains(&name) {
                self.names.push(name);
            }
        }
        self.bbox = match (self.bbox, other.bbox) {
            (Some(a), Some(b)) => Some(a.bounding_union(&b)),
            (a, b) => a.or(b),
        };
        self.geometry.append(&mut other.geometry);
    }
}

/// Union-find over net handles with per-root [`NetData`].
///
/// Every fragment the sweep creates gets a handle; handles are
/// unioned as connectivity is discovered, and the surviving roots
/// become the output nets.
///
/// # Examples
///
/// ```
/// use ace_core::NetTable;
///
/// let mut nets = NetTable::new(false);
/// let a = nets.fresh();
/// let b = nets.fresh();
/// nets.add_name(a, "VDD");
/// nets.union(a, b);
/// assert_eq!(nets.find(b), nets.find(a));
/// assert_eq!(nets.data(b).names, vec!["VDD".to_string()]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NetTable {
    uf: UnionFind,
    data: Vec<NetData>,
    record_geometry: bool,
}

impl NetTable {
    /// Creates an empty table. `record_geometry` controls whether
    /// [`NetTable::add_geometry`] stores rectangles.
    pub fn new(record_geometry: bool) -> Self {
        NetTable {
            uf: UnionFind::new(),
            data: Vec::new(),
            record_geometry,
        }
    }

    /// Allocates a fresh net handle.
    pub fn fresh(&mut self) -> u32 {
        self.data.push(NetData::default());
        self.uf.make_set()
    }

    /// Number of handles allocated.
    pub fn handle_count(&self) -> usize {
        self.uf.len()
    }

    /// Number of net-union operations that actually merged.
    pub fn union_count(&self) -> u64 {
        self.uf.union_count()
    }

    /// Canonical representative of `h`'s net.
    pub fn find(&mut self, h: u32) -> u32 {
        self.uf.find(h)
    }

    /// Merges the nets of `a` and `b`, combining their data. Returns
    /// the surviving root.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            return ra;
        }
        let root = self.uf.union(ra, rb);
        let other = if root == ra { rb } else { ra };
        let moved = std::mem::take(&mut self.data[other as usize]);
        self.data[root as usize].absorb(moved);
        root
    }

    /// Attaches a user name to `h`'s net.
    pub fn add_name(&mut self, h: u32, name: impl Into<String>) {
        let root = self.find(h) as usize;
        let name = name.into();
        if !self.data[root].names.contains(&name) {
            self.data[root].names.push(name);
        }
    }

    /// Extends the net's bounding box and (optionally) records the
    /// rectangle.
    pub fn add_geometry(&mut self, h: u32, layer: Layer, rect: Rect) {
        let root = self.find(h) as usize;
        let d = &mut self.data[root];
        d.bbox = Some(match d.bbox {
            Some(bb) => bb.bounding_union(&rect),
            None => rect,
        });
        if self.record_geometry {
            d.geometry.push((layer, rect));
        }
    }

    /// Data at `h`'s root.
    pub fn data(&mut self, h: u32) -> &NetData {
        let root = self.find(h) as usize;
        &self.data[root]
    }

    /// The net's representative location: upper-left corner of its
    /// bounding box (matching the paper's Figure 3-4 conventions).
    pub fn location(&mut self, h: u32) -> Option<Point> {
        self.data(h).bbox.map(|bb| Point::new(bb.x_min, bb.y_max))
    }

    /// Maps every handle to a dense output net id; returns
    /// `(map, net_count)`.
    pub fn compress(&mut self) -> (Vec<u32>, usize) {
        self.uf.compress()
    }

    /// Takes (moves out) the data at `h`'s root. Used once per net
    /// during output construction; subsequent reads see empty data.
    pub fn take_data(&mut self, h: u32) -> NetData {
        let root = self.find(h) as usize;
        std::mem::take(&mut self.data[root])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_merges_names_and_bbox() {
        let mut t = NetTable::new(false);
        let a = t.fresh();
        let b = t.fresh();
        t.add_name(a, "X");
        t.add_name(b, "Y");
        t.add_geometry(a, Layer::Metal, Rect::new(0, 0, 10, 10));
        t.add_geometry(b, Layer::Poly, Rect::new(100, 100, 110, 110));
        t.union(a, b);
        let d = t.data(a);
        assert_eq!(d.names, vec!["X".to_string(), "Y".to_string()]);
        assert_eq!(d.bbox, Some(Rect::new(0, 0, 110, 110)));
        // Geometry suppressed.
        assert!(d.geometry.is_empty());
    }

    #[test]
    fn geometry_recording_honors_flag() {
        let mut t = NetTable::new(true);
        let a = t.fresh();
        t.add_geometry(a, Layer::Diffusion, Rect::new(0, 0, 5, 5));
        assert_eq!(t.data(a).geometry.len(), 1);
    }

    #[test]
    fn location_is_upper_left_of_bbox() {
        let mut t = NetTable::new(false);
        let a = t.fresh();
        assert_eq!(t.location(a), None);
        t.add_geometry(a, Layer::Metal, Rect::new(-2600, 3000, 2200, 3800));
        assert_eq!(t.location(a), Some(Point::new(-2600, 3800)));
    }

    #[test]
    fn duplicate_names_collapse() {
        let mut t = NetTable::new(false);
        let a = t.fresh();
        let b = t.fresh();
        t.add_name(a, "CLK");
        t.add_name(b, "CLK");
        t.union(a, b);
        assert_eq!(t.data(a).names, vec!["CLK".to_string()]);
    }

    #[test]
    fn union_is_idempotent_on_same_net() {
        let mut t = NetTable::new(false);
        let a = t.fresh();
        let b = t.fresh();
        t.union(a, b);
        let before = t.union_count();
        t.union(a, b);
        assert_eq!(t.union_count(), before);
    }

    #[test]
    fn compress_gives_dense_ids() {
        let mut t = NetTable::new(false);
        let a = t.fresh();
        let _b = t.fresh();
        let c = t.fresh();
        t.union(a, c);
        let (map, count) = t.compress();
        assert_eq!(count, 2);
        assert_eq!(map[a as usize], map[c as usize]);
    }
}
