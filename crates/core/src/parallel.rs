//! Band-parallel extraction: the scanline sweep, run on K horizontal
//! bands concurrently, then stitched back into one flat circuit.
//!
//! The sweep itself is inherently sequential — each strip's state
//! depends on the strip above — but the chip can be cut into bands
//! that are swept independently and composed afterwards, exactly the
//! way HEXT composes adjacent windows: "For each pair of touching
//! boundary segments, step through the elements of the
//! interface-segment lists (for corresponding layers) and establish
//! signal equivalences" (HEXT §3). Here the windows are full-width
//! bands, so only Top/Bottom faces ever meet and every seam is a
//! single horizontal line.
//!
//! Cut lines come from [`ace_layout::band_cuts`], which picks existing
//! box edges; since the flat sweep already stops at every box edge,
//! each band sees exactly the strips the flat sweep saw, and the
//! stitched result is canonically the same circuit.
//!
//! The stitch mirrors `ace-hext`'s `compose`:
//!
//! 1. match each seam's Top contacts (band below) against its Bottom
//!    contacts (band above) by layer and positive x-overlap;
//! 2. net ↔ net on the same layer is an equivalence; channel ↔
//!    channel merges two fragments of one device; channel ↔ diffusion
//!    adds a terminal contact with the overlap as its edge length;
//! 3. merged partial transistors are re-finalized with the flat
//!    extractor's width/length rules ([`PartialDevice::finalize`]).

use std::collections::HashMap;
use std::sync::Mutex;

use ace_geom::{merge_boxes, Coord, Layer, Point, Rect};
use ace_layout::{band_cuts, partition_bands, EagerFeed, FlatLabel, FlatLayout};
use ace_wirelist::{Device, NetId, NetParasitics, Netlist, PartialDevice, UnionFind};

use crate::extract::{ExtractError, Extraction};
use crate::probe::{Counter, CounterProbe, Lane, NullProbe, Probe, Span};
use crate::report::{ExtractOptions, ExtractionReport, StitchStats};
use crate::scheduler::run_jobs;
use crate::sweep::Extractor;
use crate::window::{BoundaryContact, BoundarySignal, Face, WindowExtraction};

/// Worker-thread count an options value asks for (0 or unset = one
/// per host core).
pub(crate) fn worker_count(options: &ExtractOptions) -> usize {
    match options.threads {
        Some(0) | None => std::thread::available_parallelism().map_or(1, |n| n.get()),
        Some(t) => t.max(1),
    }
}

/// Band-parallel driver behind the unified entry points: picks the
/// cut lines for the requested band count (defaulting to one band
/// per worker) and runs the banded extraction.
pub(crate) fn extract_auto_banded(
    flat: FlatLayout,
    name: &str,
    options: ExtractOptions,
    probe: &dyn Probe,
) -> Result<Extraction, ExtractError> {
    let band_count = match options.bands {
        Some(0) | None => worker_count(&options),
        Some(b) => b.max(1),
    };
    let cuts = band_cuts(&flat, band_count);
    banded(flat, name, options, &cuts, probe)
}

/// Extracts a flat layout banded along explicit seam lines.
///
/// This is the banded extraction with the cut selection made
/// deterministic: the caller supplies the interior seam y-coordinates
/// (ascending, on existing box edges, strictly inside the layout's
/// y-extent). Used by the equivalence tests to pin down seams that
/// split specific devices.
///
/// # Errors
///
/// Returns [`ExtractError::Options`] when the options request window
/// mode, which cannot be banded.
pub fn extract_banded(
    flat: FlatLayout,
    name: &str,
    options: ExtractOptions,
    cuts: &[Coord],
) -> Result<Extraction, ExtractError> {
    extract_banded_probed(flat, name, options, cuts, &NullProbe)
}

/// [`extract_banded`], reporting events to `probe` as it runs.
pub fn extract_banded_probed(
    flat: FlatLayout,
    name: &str,
    options: ExtractOptions,
    cuts: &[Coord],
    probe: &dyn Probe,
) -> Result<Extraction, ExtractError> {
    if options.window.is_some() {
        return Err(ExtractError::Options(
            "window-mode extraction cannot be banded (threads conflicts with window)",
        ));
    }
    banded(flat, name, options, cuts, probe)
}

/// The band-parallel extraction proper. `cuts` must not request
/// window mode; empty `cuts` degrade to a sequential sweep.
fn banded(
    flat: FlatLayout,
    name: &str,
    options: ExtractOptions,
    cuts: &[Coord],
    probe: &dyn Probe,
) -> Result<Extraction, ExtractError> {
    // Per-band options: window mode carries the seams, and
    // `threads`/`bands` must not recurse into the band sweeps.
    let mut band_base = options;
    band_base.threads = None;
    band_base.bands = None;

    if cuts.is_empty() {
        // Empty layout or layout too small to cut: sweep sequentially
        // on the main lane, but report the degenerate band count.
        let mut feed = EagerFeed::from_flat(flat).with_probe(probe, Lane::MAIN);
        let mut result = Extractor::with_probe(band_base, probe).run(&mut feed, name);
        result.report.threads = 1;
        result.report.bands = 1;
        return Ok(result);
    }

    // The driver's own aggregate: every band worker reports into it
    // (and into the caller's probe) tagged with its lane, and the
    // final report is the view over this aggregate.
    let counters = CounterProbe::new();
    let tee = (&counters, probe);
    let p: &dyn Probe = &tee;

    p.enter(Lane::MAIN, Span::Extract);
    let bb = flat.bounding_box().expect("cuts imply geometry");
    let partition = partition_bands(&flat, cuts);
    let n = partition.bands.len();

    // Band windows: interior seams sit exactly on the cut lines so
    // geometry clipped there registers boundary contacts; the outer
    // edges are padded by one unit so nothing touches them and no
    // false contacts or partial devices arise.
    let windows: Vec<Rect> = (0..n)
        .map(|i| {
            let lo = if i == 0 { bb.y_min - 1 } else { cuts[i - 1] };
            let hi = if i == n - 1 { bb.y_max + 1 } else { cuts[i] };
            Rect::new(bb.x_min - 1, lo, bb.x_max + 1, hi)
        })
        .collect();

    // Hand the bands to the work-stealing scheduler: `workers`
    // threads drain `n` band jobs, each band still sweeping on its
    // own lane so traces and band reports stay per-band. The band
    // layouts pass through Mutex<Option<_>> slots because a job body
    // only gets its index (the repo forbids unsafe, so no raw takes).
    let band_inputs: Vec<Mutex<Option<FlatLayout>>> = partition
        .bands
        .into_iter()
        .map(|band| Mutex::new(Some(band)))
        .collect();
    let workers = worker_count(&options);
    let (results, steal) = run_jobs(workers, n, |i| {
        let band = band_inputs[i]
            .lock()
            .expect("band slot lock")
            .take()
            .expect("each band job runs once");
        let band_name = format!("{name}.band{i}");
        let band_options = band_base.with_window(windows[i]);
        let lane = Lane::band(i);
        p.enter(lane, Span::Band);
        let mut feed = EagerFeed::from_flat(band).with_probe(p, lane);
        let result = Extractor::with_probe(band_options, p)
            .on_lane(lane)
            .run(&mut feed, &band_name);
        p.exit(lane, Span::Band);
        result
    });
    p.add(Lane::MAIN, Counter::BandsStolen, steal.stolen);
    p.add(Lane::MAIN, Counter::StealWaitNs, steal.wait_ns);

    p.enter(Lane::MAIN, Span::Stitch);
    let refs: Vec<&Extraction> = results.iter().collect();
    let (mut netlist, stats, seam_unresolved) =
        stitch(&refs, cuts, &partition.seam_labels, options);
    // The stitched netlist is assembled from scratch; carry the
    // caller's title over (band results only hold "<name>.bandN").
    netlist.name = name.to_string();
    p.exit(Lane::MAIN, Span::Stitch);
    p.add(Lane::MAIN, Counter::SeamContacts, stats.seam_contacts);
    p.add(Lane::MAIN, Counter::PairsMatched, stats.pairs_matched);
    p.add(Lane::MAIN, Counter::SeamNetUnions, stats.net_unions);
    p.add(Lane::MAIN, Counter::DeviceMerges, stats.device_merges);
    p.add(
        Lane::MAIN,
        Counter::TerminalContacts,
        stats.terminal_contacts,
    );
    p.add(
        Lane::MAIN,
        Counter::PartialsCompleted,
        stats.partials_completed,
    );
    p.add(Lane::MAIN, Counter::UnresolvedLabels, seam_unresolved);
    p.exit(Lane::MAIN, Span::Extract);

    let mut report: ExtractionReport = counters.report();
    // The report view sets threads = bands (lanes); the scheduler
    // knows how many workers actually drained them.
    report.threads = steal.workers;
    report.bands = n;

    Ok(Extraction {
        netlist,
        report,
        window: None,
    })
}

/// Global ids for one band: nets are offset into one shared space.
struct BandSpace {
    offset: u32,
}

impl BandSpace {
    fn net(&self, id: NetId) -> u32 {
        self.offset + id.0
    }
}

/// Stitches per-band window extractions (bottom to top, one per band
/// between consecutive `cuts`) into one flat circuit. Shared with the
/// incremental extractor, which mixes cached and freshly-swept band
/// results — hence the slice of references.
pub(crate) fn stitch(
    results: &[&Extraction],
    cuts: &[Coord],
    seam_labels: &[FlatLabel],
    options: ExtractOptions,
) -> (Netlist, StitchStats, u64) {
    let mut stats = StitchStats::default();
    let n = results.len();

    let spaces: Vec<BandSpace> = results
        .iter()
        .scan(0u32, |acc, r| {
            let offset = *acc;
            *acc += r.netlist.net_count() as u32;
            Some(BandSpace { offset })
        })
        .collect();
    let total_nets: usize = results.iter().map(|r| r.netlist.net_count()).sum();
    let mut net_uf = UnionFind::with_len(total_nets);

    // Register every partial device (channel touching a seam) as a
    // PartialDevice with nets in the global space; whole devices are
    // copied through untouched further down.
    let mut partial_ids: HashMap<(usize, usize), u32> = HashMap::new();
    let mut partials: Vec<PartialDevice> = Vec::new();
    let mut partial_geometry: Vec<Vec<Rect>> = Vec::new();
    for (bi, r) in results.iter().enumerate() {
        let w = band_window(r);
        for (di, detail) in w.device_details.iter().enumerate() {
            if !detail.partial {
                continue;
            }
            partial_ids.insert((bi, di), partials.len() as u32);
            partials.push(PartialDevice {
                area: detail.area,
                bbox: detail.bbox,
                depletion: detail.depletion,
                gate: spaces[bi].net(detail.gate),
                terminals: detail
                    .terminals
                    .iter()
                    .map(|&(net, len)| (spaces[bi].net(net), len))
                    .collect(),
            });
            partial_geometry.push(if options.geometry_output {
                r.netlist.devices()[di].channel_geometry.clone()
            } else {
                Vec::new()
            });
        }
    }
    let mut dev_uf = UnionFind::with_len(partials.len());

    // Step 1+2 of HEXT's compose, specialized to horizontal seams:
    // match the band below's Top contacts against the band above's
    // Bottom contacts and establish equivalences.
    let mut contact_additions: Vec<(u32, u32, i64)> = Vec::new();
    // Same-layer seam joins, for the perimeter correction: each band
    // counted the shared edge in its fragment's perimeter, so the
    // union's perimeter drops by twice the matched overlap.
    let mut seam_edges: Vec<(u32, Layer, i64)> = Vec::new();
    for s in 0..n.saturating_sub(1) {
        let tops = band_window(results[s]).face_contacts(Face::Top);
        let bottoms = band_window(results[s + 1]).face_contacts(Face::Bottom);
        stats.seam_contacts += (tops.len() + bottoms.len()) as u64;
        for ta in &tops {
            for tb in &bottoms {
                if tb.span.lo >= ta.span.hi {
                    break; // bottoms are sorted by span start
                }
                let overlap = ta.span.overlap_len(&tb.span);
                if overlap <= 0 {
                    continue;
                }
                stats.pairs_matched += 1;
                match (ta.signal, tb.signal) {
                    (BoundarySignal::Net(x), BoundarySignal::Net(y)) => {
                        if ta.layer == tb.layer {
                            let (gx, gy) = (spaces[s].net(x), spaces[s + 1].net(y));
                            if net_uf.find(gx) != net_uf.find(gy) {
                                stats.net_unions += 1;
                            }
                            net_uf.union(gx, gy);
                            if let Some(layer) = ta.layer {
                                seam_edges.push((gx, layer, overlap));
                            }
                        }
                    }
                    (BoundarySignal::Channel(a), BoundarySignal::Channel(b)) => {
                        let (pa, pb) = (partial_ids[&(s, a)], partial_ids[&(s + 1, b)]);
                        if dev_uf.find(pa) != dev_uf.find(pb) {
                            stats.device_merges += 1;
                        }
                        dev_uf.union(pa, pb);
                    }
                    (BoundarySignal::Channel(k), BoundarySignal::Net(net)) => {
                        // Diffusion meeting a channel across the seam
                        // is a transistor terminal; poly and metal
                        // continue via their own net contacts.
                        if tb.layer == Some(Layer::Diffusion) {
                            let p = partial_ids[&(s, k)];
                            contact_additions.push((p, spaces[s + 1].net(net), overlap));
                            stats.terminal_contacts += 1;
                        }
                    }
                    (BoundarySignal::Net(net), BoundarySignal::Channel(k)) => {
                        if ta.layer == Some(Layer::Diffusion) {
                            let p = partial_ids[&(s + 1, k)];
                            contact_additions.push((p, spaces[s].net(net), overlap));
                            stats.terminal_contacts += 1;
                        }
                    }
                }
            }
        }
    }

    // Gates of merged channel fragments carry the same signal.
    for i in 0..partials.len() as u32 {
        let root = dev_uf.find(i);
        if root != i {
            let ga = partials[root as usize].gate;
            let gb = partials[i as usize].gate;
            if net_uf.find(ga) != net_uf.find(gb) {
                stats.net_unions += 1;
            }
            net_uf.union(ga, gb);
        }
    }
    for &(p, net, len) in &contact_additions {
        let root = dev_uf.find(p) as usize;
        partials[root].terminals.push((net, len));
    }
    for i in 0..partials.len() as u32 {
        let root = dev_uf.find(i);
        if root != i {
            let absorbed = partials[i as usize].clone();
            partials[root as usize].absorb(&absorbed);
            if options.geometry_output {
                let geometry = partial_geometry[i as usize].clone();
                partial_geometry[root as usize].extend(geometry);
            }
        }
    }

    // Labels sitting exactly on a seam: the flat sweep tries the strip
    // above the line first (the label lies on its bottom edge), then
    // the strip below, probing diffusion, then poly, then metal unless
    // the label names a layer. Replay that against the seam contacts.
    let mut seam_names: Vec<(u32, String)> = Vec::new();
    let mut seam_unresolved = 0u64;
    for label in seam_labels {
        let s = cuts
            .binary_search(&label.at.y)
            .expect("seam labels sit on cuts");
        let above = band_window(results[s + 1]).face_contacts(Face::Bottom);
        let below = band_window(results[s]).face_contacts(Face::Top);
        match resolve_seam_label(label, &above, &spaces[s + 1])
            .or_else(|| resolve_seam_label(label, &below, &spaces[s]))
        {
            Some(net) => seam_names.push((net, label.name.clone())),
            None => seam_unresolved += 1,
        }
    }

    // Renumber into one canonical netlist: classes are numbered in
    // order of first appearance, bands bottom to top.
    let (net_map, classes) = net_uf.compress();
    let mut netlist = Netlist::new();
    for _ in 0..classes {
        netlist.add_net();
    }
    let mut locations: Vec<Option<Point>> = vec![None; classes];
    for (bi, r) in results.iter().enumerate() {
        for (local, net) in r.netlist.nets() {
            let id = NetId(net_map[spaces[bi].net(local) as usize]);
            for name in &net.names {
                netlist.add_name(id, name.clone());
            }
            if let Some(at) = net.location {
                // The flat location is the upper-left of the net's
                // bounding box; combine the per-band fragments'.
                let best = locations[id.0 as usize].get_or_insert(at);
                best.x = best.x.min(at.x);
                best.y = best.y.max(at.y);
            }
            if options.geometry_output {
                for &(layer, rect) in &net.geometry {
                    netlist.add_geometry(id, layer, rect);
                }
            }
            netlist.add_parasitics(id, &net.parasitics);
        }
    }
    // Remove each seam join's shared edge, double-counted by the two
    // bands' clipped fragments.
    for &(g, layer, len) in &seam_edges {
        let mut correction = NetParasitics::default();
        correction.sub_edge(layer, len);
        netlist.add_parasitics(NetId(net_map[g as usize]), &correction);
    }
    for (id, location) in locations.iter().enumerate() {
        if let Some(at) = location {
            netlist.set_location(NetId(id as u32), *at);
        }
    }
    for (net, name) in seam_names {
        netlist.add_name(NetId(net_map[net as usize]), name);
    }

    // Whole devices copy through with remapped nets; merged partials
    // are re-finalized with the flat extractor's rules.
    let mut devices: Vec<Device> = Vec::new();
    for (bi, r) in results.iter().enumerate() {
        let w = band_window(r);
        for (di, device) in r.netlist.devices().iter().enumerate() {
            if w.device_details[di].partial {
                continue;
            }
            let mut device = device.clone();
            device.gate = NetId(net_map[spaces[bi].net(device.gate) as usize]);
            device.source = NetId(net_map[spaces[bi].net(device.source) as usize]);
            device.drain = NetId(net_map[spaces[bi].net(device.drain) as usize]);
            if !options.geometry_output {
                // Window mode forces channel recording in the bands.
                device.channel_geometry = Vec::new();
            }
            devices.push(device);
        }
    }
    for i in 0..partials.len() as u32 {
        if dev_uf.find(i) != i {
            continue;
        }
        stats.partials_completed += 1;
        let mut partial = partials[i as usize].clone();
        partial.gate = net_map[partial.gate as usize];
        for t in &mut partial.terminals {
            t.0 = net_map[t.0 as usize];
        }
        let mut device = partial.finalize();
        if options.geometry_output {
            device.channel_geometry = merge_boxes(&partial_geometry[i as usize]);
        }
        devices.push(device);
    }
    devices.sort_by_key(|d| {
        (
            d.location, d.kind, d.length, d.width, d.gate, d.source, d.drain,
        )
    });
    for device in devices {
        netlist.add_device(device);
    }

    (netlist, stats, seam_unresolved)
}

fn band_window(r: &Extraction) -> &WindowExtraction {
    r.window.as_ref().expect("bands run in window mode")
}

/// One strip's worth of the flat sweep's label matching, replayed on
/// seam contacts: probe diffusion, poly, then metal (or only the
/// labeled layer) for a span containing the label's x.
fn resolve_seam_label(
    label: &FlatLabel,
    contacts: &[BoundaryContact],
    space: &BandSpace,
) -> Option<u32> {
    let layers: &[Layer] = match label.layer {
        Some(Layer::Diffusion) => &[Layer::Diffusion],
        Some(Layer::Poly) => &[Layer::Poly],
        Some(Layer::Metal) => &[Layer::Metal],
        // Labels on non-conducting layers or without a layer bind to
        // whatever conducting geometry is under them.
        _ => &[Layer::Diffusion, Layer::Poly, Layer::Metal],
    };
    for &layer in layers {
        for c in contacts {
            if c.layer != Some(layer) {
                continue;
            }
            if c.span.lo <= label.at.x && label.at.x <= c.span.hi {
                if let BoundarySignal::Net(net) = c.signal {
                    return Some(space.net(net));
                }
            }
        }
    }
    None
}
