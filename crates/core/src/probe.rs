//! Probe sinks: ready-made [`Probe`] implementations that turn the
//! pipeline's event stream into reports, traces, and tables.
//!
//! The [`Probe`] trait itself (plus [`Lane`], [`Span`], [`Counter`],
//! and [`NullProbe`]) lives in `ace_layout::probe` — the lowest layer
//! that emits events — and is re-exported here. This module adds the
//! three sinks:
//!
//! * [`CounterProbe`] — aggregates durations, totals, and high-water
//!   marks per lane; [`ExtractionReport`] is a *view* over it
//!   (see [`CounterProbe::report`]). This is also what the extractor
//!   uses internally, so an external `CounterProbe` sees exactly the
//!   numbers the report is built from.
//! * [`ChromeTraceProbe`] — records span begin/end events and writes
//!   `chrome://tracing` JSON with one track (tid) per lane, so a
//!   banded extraction renders as one lane per band worker plus the
//!   main lane holding the stitch span.
//! * [`SummaryProbe`] — a §5-style phase-percentage table ("40% for
//!   parsing … 15% for entering new geometry … 20% for computing
//!   devices", paper §5).
//!
//! Sinks compose with the tuple tee from `ace_layout::probe`:
//!
//! ```
//! use ace_core::probe::{ChromeTraceProbe, Probe, SummaryProbe};
//!
//! let trace = ChromeTraceProbe::new();
//! let summary = SummaryProbe::new();
//! let tee = (&trace, &summary);
//! let probe: &dyn Probe = &tee; // one run feeds both sinks
//! # let _ = probe;
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use ace_layout::probe::{Counter, Lane, NullProbe, Probe, Span};

use crate::report::{BandReport, ExtractionReport, Phase, StitchStats};

#[derive(Default)]
struct CounterInner {
    /// Open spans: (lane, span) -> (entry instant, nesting depth).
    /// The depth guard makes re-entrant spans count wall time once.
    open: BTreeMap<(u32, Span), (Option<Instant>, u32)>,
    /// Accumulated wall time per (lane, span).
    durations: BTreeMap<(u32, Span), Duration>,
    /// Running totals per (lane, counter).
    counts: BTreeMap<(u32, Counter), u64>,
    /// High-water marks per (lane, counter).
    peaks: BTreeMap<(u32, Counter), u64>,
}

/// Aggregating sink: accumulates span durations, counter totals, and
/// gauge high-water marks, keyed by lane.
///
/// [`ExtractionReport`] is a view over this aggregate — see
/// [`report`](Self::report). The sweep and the band-parallel driver
/// keep one internally, which is where their reports come from.
#[derive(Default)]
pub struct CounterProbe {
    inner: Mutex<CounterInner>,
}

impl CounterProbe {
    /// An empty aggregate.
    pub fn new() -> Self {
        CounterProbe::default()
    }

    /// Total of `counter` summed over all lanes.
    pub fn total(&self, counter: Counter) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner
            .counts
            .iter()
            .filter(|((_, c), _)| *c == counter)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Total of `counter` on one lane.
    pub fn lane_total(&self, lane: Lane, counter: Counter) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.counts.get(&(lane.0, counter)).copied().unwrap_or(0)
    }

    /// Highest gauge value of `counter` seen on any lane.
    pub fn peak(&self, counter: Counter) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner
            .peaks
            .iter()
            .filter(|((_, c), _)| *c == counter)
            .map(|(_, v)| *v)
            .max()
            .unwrap_or(0)
    }

    /// Wall time accumulated in `span`, summed over all lanes.
    pub fn span_time(&self, span: Span) -> Duration {
        let inner = self.inner.lock().unwrap();
        inner
            .durations
            .iter()
            .filter(|((_, s), _)| *s == span)
            .map(|(_, d)| *d)
            .sum()
    }

    /// Wall time accumulated in `span` on one lane.
    pub fn lane_span_time(&self, lane: Lane, span: Span) -> Duration {
        let inner = self.inner.lock().unwrap();
        inner
            .durations
            .get(&(lane.0, span))
            .copied()
            .unwrap_or(Duration::ZERO)
    }

    /// Every lane that reported at least one event, ascending.
    pub fn lanes(&self) -> Vec<Lane> {
        let inner = self.inner.lock().unwrap();
        let mut ids: Vec<u32> = inner
            .durations
            .keys()
            .map(|(l, _)| *l)
            .chain(inner.counts.keys().map(|(l, _)| *l))
            .chain(inner.peaks.keys().map(|(l, _)| *l))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(Lane).collect()
    }

    /// Clears every aggregate — accumulated durations, counter
    /// totals, gauge high-water marks, and any open spans — returning
    /// the probe to its freshly-constructed state.
    ///
    /// This is what makes one long-lived probe usable for
    /// *per-request* reporting on a reused extractor (the
    /// extraction-service pattern): without it, counters like
    /// `BandsReused` and gauges like `CacheBytes` accumulate across
    /// runs, so the second request's report carries the first
    /// request's values baked in — and a gauge that legitimately
    /// *shrank* (a cache eviction between requests) keeps reporting
    /// the stale high-water mark forever.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        *inner = CounterInner::default();
    }

    /// Builds the [`ExtractionReport`] view, then [`reset`]s — the
    /// per-run report pattern for a probe retained across requests.
    ///
    /// [`reset`]: Self::reset
    pub fn take_report(&self) -> ExtractionReport {
        let report = self.report();
        self.reset();
        report
    }

    /// Builds an [`ExtractionReport`] view of the aggregate.
    ///
    /// Phase times are summed over lanes (CPU work, not wall clock);
    /// `total_time` is the main lane's [`Span::Extract`] duration, and
    /// band lanes become [`BandReport`]s. The stitch counters fill
    /// [`StitchStats`]. The caller still owns fields the probe cannot
    /// know, such as `threads` for a parallel run.
    pub fn report(&self) -> ExtractionReport {
        let mut report = ExtractionReport {
            boxes: self.total(Counter::Boxes),
            scanline_stops: self.total(Counter::ScanlineStops),
            fragments: self.total(Counter::Fragments),
            net_unions: self.total(Counter::NetUnions) + self.total(Counter::SeamNetUnions),
            unresolved_labels: self.total(Counter::UnresolvedLabels),
            multi_terminal_devices: self.total(Counter::MultiTerminalDevices),
            max_active: self.peak(Counter::MaxActive) as usize,
            ..ExtractionReport::default()
        };
        for phase in Phase::ALL {
            report.add_phase_time(phase, self.span_time(phase.span()));
        }
        let main_extract = self.lane_span_time(Lane::MAIN, Span::Extract);
        report.total_time = if main_extract > Duration::ZERO {
            main_extract
        } else {
            self.span_time(Span::Extract)
        };
        for lane in self.lanes() {
            let Some(band) = lane.band_index() else {
                continue;
            };
            let mut band_report = BandReport {
                band,
                boxes: self.lane_total(lane, Counter::Boxes),
                scanline_stops: self.lane_total(lane, Counter::ScanlineStops),
                total_time: self.lane_span_time(lane, Span::Extract),
                ..BandReport::default()
            };
            for (i, phase) in Phase::ALL.iter().enumerate() {
                band_report.phase_times[i] = self.lane_span_time(lane, phase.span());
            }
            report.band_reports.push(band_report);
        }
        // Bands map 1:1 onto lanes; the band-parallel driver lowers
        // `threads` afterwards when fewer workers drained the bands.
        report.threads = report.band_reports.len();
        report.bands = report.band_reports.len();
        report.bands_stolen = self.total(Counter::BandsStolen);
        report.steal_wait = Duration::from_nanos(self.total(Counter::StealWaitNs));
        report.lints_emitted = self.total(Counter::LintsEmitted);
        report.lint_time = Duration::from_nanos(self.total(Counter::LintTimeNs));
        report.bands_reused = self.total(Counter::BandsReused);
        report.bands_reswept = self.total(Counter::BandsReswept);
        report.cache_bytes = self.peak(Counter::CacheBytes);
        report.stitch = StitchStats {
            seam_contacts: self.total(Counter::SeamContacts),
            pairs_matched: self.total(Counter::PairsMatched),
            net_unions: self.total(Counter::SeamNetUnions),
            device_merges: self.total(Counter::DeviceMerges),
            terminal_contacts: self.total(Counter::TerminalContacts),
            partials_completed: self.total(Counter::PartialsCompleted),
            time: self.span_time(Span::Stitch),
        };
        report
    }
}

impl fmt::Debug for CounterProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("CounterProbe")
            .field("spans", &inner.durations.len())
            .field("counters", &inner.counts.len())
            .finish()
    }
}

impl Probe for CounterProbe {
    fn enter(&self, lane: Lane, span: Span) {
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.open.entry((lane.0, span)).or_insert((None, 0));
        if slot.1 == 0 {
            slot.0 = Some(Instant::now());
        }
        slot.1 += 1;
    }

    fn exit(&self, lane: Lane, span: Span) {
        let mut inner = self.inner.lock().unwrap();
        let elapsed = match inner.open.get_mut(&(lane.0, span)) {
            None => return, // unmatched exit: ignore
            Some(slot) => {
                slot.1 = slot.1.saturating_sub(1);
                if slot.1 == 0 {
                    slot.0.take().map(|start| start.elapsed())
                } else {
                    None
                }
            }
        };
        if let Some(elapsed) = elapsed {
            *inner
                .durations
                .entry((lane.0, span))
                .or_insert(Duration::ZERO) += elapsed;
        }
    }

    fn add(&self, lane: Lane, counter: Counter, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counts.entry((lane.0, counter)).or_insert(0) += delta;
    }

    fn gauge(&self, lane: Lane, counter: Counter, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        let peak = inner.peaks.entry((lane.0, counter)).or_insert(0);
        *peak = (*peak).max(value);
    }
}

/// One begin or end event recorded by [`ChromeTraceProbe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (the Chrome-trace event name).
    pub name: &'static str,
    /// `'B'` (begin) or `'E'` (end).
    pub phase: char,
    /// Microseconds since the probe was created.
    pub ts_us: u64,
    /// Thread id: the event's lane number.
    pub tid: u32,
}

/// Tracing sink: records span begin/end events and renders them as
/// `chrome://tracing` / Perfetto JSON, one track per lane.
///
/// Counter events are ignored — this sink draws the timeline, the
/// [`CounterProbe`] keeps the numbers; tee them together for both.
#[derive(Debug)]
pub struct ChromeTraceProbe {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for ChromeTraceProbe {
    fn default() -> Self {
        ChromeTraceProbe::new()
    }
}

impl ChromeTraceProbe {
    /// An empty trace; timestamps count from now.
    pub fn new() -> Self {
        ChromeTraceProbe {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// The recorded events, in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().unwrap().clone()
    }

    /// Renders the trace as Chrome trace-event JSON (the
    /// `traceEvents` array format `chrome://tracing` and Perfetto
    /// load directly). All events share `pid` 1; `tid` is the lane,
    /// with thread-name metadata naming each track ("main",
    /// "band 0", …).
    pub fn to_json(&self) -> String {
        let events = self.events.lock().unwrap();
        let mut tids: Vec<u32> = events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
             \"args\":{\"name\":\"ace\"}}",
        );
        for tid in &tids {
            out.push_str(&format!(
                ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                Lane(*tid)
            ));
        }
        for e in events.iter() {
            out.push_str(&format!(
                ",\n{{\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{},\
                 \"cat\":\"ace\",\"name\":\"{}\"}}",
                e.phase, e.tid, e.ts_us, e.name
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

impl Probe for ChromeTraceProbe {
    fn enter(&self, lane: Lane, span: Span) {
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        self.events.lock().unwrap().push(TraceEvent {
            name: span.name(),
            phase: 'B',
            ts_us,
            tid: lane.0,
        });
    }

    fn exit(&self, lane: Lane, span: Span) {
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        self.events.lock().unwrap().push(TraceEvent {
            name: span.name(),
            phase: 'E',
            ts_us,
            tid: lane.0,
        });
    }
}

/// Reporting sink: renders the §5-style phase-percentage table.
///
/// Wraps a [`CounterProbe`] (exposed via [`counters`](Self::counters))
/// and formats the four sweep phases as percentages of their sum, so
/// the column always totals 100 like the paper's breakdown.
#[derive(Debug, Default)]
pub struct SummaryProbe {
    counters: CounterProbe,
}

impl SummaryProbe {
    /// An empty summary.
    pub fn new() -> Self {
        SummaryProbe::default()
    }

    /// The underlying aggregate.
    pub fn counters(&self) -> &CounterProbe {
        &self.counters
    }

    /// Percentage of sweep time spent in `phase`, measured against
    /// the sum of the four phase durations (so the four percentages
    /// sum to exactly 100; 0 when no phase time was recorded).
    pub fn phase_percent(&self, phase: Phase) -> f64 {
        let total: f64 = Phase::ALL
            .iter()
            .map(|p| self.counters.span_time(p.span()).as_secs_f64())
            .sum();
        if total == 0.0 {
            0.0
        } else {
            100.0 * self.counters.span_time(phase.span()).as_secs_f64() / total
        }
    }

    /// The phase table as a string (also available via `Display`).
    pub fn table(&self) -> String {
        self.to_string()
    }
}

impl Probe for SummaryProbe {
    fn enter(&self, lane: Lane, span: Span) {
        self.counters.enter(lane, span);
    }
    fn exit(&self, lane: Lane, span: Span) {
        self.counters.exit(lane, span);
    }
    fn add(&self, lane: Lane, counter: Counter, delta: u64) {
        self.counters.add(lane, counter, delta);
    }
    fn gauge(&self, lane: Lane, counter: Counter, value: u64) {
        self.counters.gauge(lane, counter, value);
    }
}

impl fmt::Display for SummaryProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "phase breakdown (share of sweep time):")?;
        for phase in Phase::ALL {
            writeln!(
                f,
                "  {:>5.1}%  {}",
                self.phase_percent(phase),
                phase.label()
            )?;
        }
        write!(
            f,
            "  {} boxes, {} stops, {} net unions, max active {}",
            self.counters.total(Counter::Boxes),
            self.counters.total(Counter::ScanlineStops),
            self.counters.total(Counter::NetUnions),
            self.counters.peak(Counter::MaxActive),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_probe_aggregates_per_lane() {
        let p = CounterProbe::new();
        p.add(Lane::MAIN, Counter::Boxes, 5);
        p.add(Lane::band(0), Counter::Boxes, 3);
        p.add(Lane::band(1), Counter::Boxes, 2);
        p.gauge(Lane::MAIN, Counter::MaxActive, 4);
        p.gauge(Lane::band(0), Counter::MaxActive, 9);
        p.gauge(Lane::band(0), Counter::MaxActive, 6);
        assert_eq!(p.total(Counter::Boxes), 10);
        assert_eq!(p.lane_total(Lane::band(0), Counter::Boxes), 3);
        assert_eq!(p.peak(Counter::MaxActive), 9);
        assert_eq!(p.lanes(), vec![Lane::MAIN, Lane::band(0), Lane::band(1)]);
    }

    #[test]
    fn counter_probe_times_spans_with_reentrancy_guard() {
        let p = CounterProbe::new();
        p.enter(Lane::MAIN, Span::Extract);
        p.enter(Lane::MAIN, Span::Extract); // nested: no double count
        thread::sleep(Duration::from_millis(2));
        p.exit(Lane::MAIN, Span::Extract);
        p.exit(Lane::MAIN, Span::Extract);
        p.exit(Lane::MAIN, Span::Extract); // unmatched: ignored
        let t = p.lane_span_time(Lane::MAIN, Span::Extract);
        assert!(t >= Duration::from_millis(2));
        assert!(t < Duration::from_secs(5));
    }

    #[test]
    fn report_view_sums_lanes_and_fills_bands() {
        let p = CounterProbe::new();
        p.enter(Lane::MAIN, Span::Extract);
        for i in 0..2 {
            let lane = Lane::band(i);
            p.add(lane, Counter::Boxes, 10 + i as u64);
            p.add(lane, Counter::ScanlineStops, 4);
            p.add(lane, Counter::NetUnions, 1);
            p.enter(lane, Span::Extract);
            p.exit(lane, Span::Extract);
        }
        p.add(Lane::MAIN, Counter::SeamNetUnions, 3);
        p.add(Lane::MAIN, Counter::SeamContacts, 7);
        p.exit(Lane::MAIN, Span::Extract);
        let r = p.report();
        assert_eq!(r.boxes, 21);
        assert_eq!(r.scanline_stops, 8);
        assert_eq!(r.net_unions, 2 + 3); // sweep unions + seam unions
        assert_eq!(r.band_reports.len(), 2);
        assert_eq!(r.band_reports[0].band, 0);
        assert_eq!(r.band_reports[1].boxes, 11);
        assert_eq!(r.threads, 2);
        assert_eq!(r.stitch.seam_contacts, 7);
        assert_eq!(r.stitch.net_unions, 3);
    }

    #[test]
    fn reset_clears_totals_peaks_and_open_spans() {
        let p = CounterProbe::new();
        p.add(Lane::MAIN, Counter::BandsReused, 3);
        p.gauge(Lane::MAIN, Counter::CacheBytes, 4096);
        p.enter(Lane::MAIN, Span::Extract); // left open deliberately
        let first = p.take_report();
        assert_eq!(first.bands_reused, 3);
        assert_eq!(first.cache_bytes, 4096);

        // After the reset: no totals, no stale gauge peak, and the
        // dangling enter is forgotten (its exit is ignored).
        p.exit(Lane::MAIN, Span::Extract);
        p.add(Lane::MAIN, Counter::BandsReused, 1);
        p.gauge(Lane::MAIN, Counter::CacheBytes, 512);
        let second = p.report();
        assert_eq!(second.bands_reused, 1, "totals must not accumulate");
        assert_eq!(second.cache_bytes, 512, "gauge peak must not persist");
        assert_eq!(second.total_time, Duration::ZERO);
    }

    #[test]
    fn chrome_trace_records_balanced_events() {
        let p = ChromeTraceProbe::new();
        p.enter(Lane::MAIN, Span::Extract);
        p.enter(Lane::band(0), Span::Band);
        p.exit(Lane::band(0), Span::Band);
        p.add(Lane::MAIN, Counter::Boxes, 1); // ignored
        p.exit(Lane::MAIN, Span::Extract);
        let events = p.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].phase, 'B');
        assert_eq!(events[1].tid, 1);
        let json = p.to_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"band 0\""));
        assert!(json.contains("\"name\":\"band-sweep\""));
    }

    #[test]
    fn summary_percentages_sum_to_100() {
        let p = SummaryProbe::new();
        for phase in Phase::ALL {
            p.enter(Lane::MAIN, phase.span());
            thread::sleep(Duration::from_millis(1));
            p.exit(Lane::MAIN, phase.span());
        }
        let sum: f64 = Phase::ALL.iter().map(|ph| p.phase_percent(*ph)).sum();
        assert!((sum - 100.0).abs() < 1e-6, "sum was {sum}");
        assert!(p.table().contains("front-end") || p.table().contains("parse/sort"));
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let p = SummaryProbe::new();
        for phase in Phase::ALL {
            assert_eq!(p.phase_percent(phase), 0.0);
        }
    }
}
