use std::fmt;
use std::time::Duration;

use ace_geom::Rect;
use ace_layout::probe::Span;

/// How step 2.a sorts incoming geometry by x.
///
/// "Step 2.a takes O(N) time, because a simple insertion sort is used
/// … The term containing N^{3/2} can be made linear by using bin-sort
/// instead of insertion-sort, but c₁ is so small that it has not been
/// necessary to do so." (§4.) Both are provided so the ablation bench
/// can compare them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SortStrategy {
    /// The paper's insertion sort.
    #[default]
    Insertion,
    /// Bucket sort on the x coordinate.
    Bin,
}

/// Extraction options.
///
/// # Examples
///
/// ```
/// use ace_core::{ExtractOptions, SortStrategy};
///
/// let opts = ExtractOptions::new()
///     .with_geometry()
///     .with_sort(SortStrategy::Bin);
/// assert!(opts.geometry_output);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExtractOptions {
    /// Record the geometry constituting each net and device ("User
    /// options exist to force the extractor to output the geometry …
    /// Under normal operation this is suppressed", §3).
    pub geometry_output: bool,
    /// Sorting strategy for step 2.a.
    pub sort: SortStrategy,
    /// When set, collect boundary contacts against this window
    /// rectangle (used by the hierarchical extractor).
    pub window: Option<Rect>,
    /// Band-parallel extraction: `None` runs the classic sequential
    /// sweep (unless [`bands`](Self::bands) asks for banding),
    /// `Some(0)` picks one worker per host core, `Some(k)` uses `k`
    /// worker threads. Workers drain the bands through a
    /// work-stealing scheduler, so the band count may exceed the
    /// worker count (see [`bands`](Self::bands)).
    pub threads: Option<usize>,
    /// Number of horizontal bands to cut the chip into. `None` or
    /// `Some(0)` matches the worker count (one band per worker, the
    /// classic split); `Some(b)` with `b > threads` gives the
    /// work-stealing scheduler slack to balance skewed bands.
    pub bands: Option<usize>,
    /// Request an ERC lint pass over the extracted circuit. The
    /// extractor itself never runs lints (the rule engine lives above
    /// it, in `ace_lint`); this flag is honored by `ace_lint`'s
    /// `extract_*_linted` wrappers and the `acelint` CLI, which fold
    /// the pass's `LintsEmitted` / `LintTimeNs` counters back into
    /// [`ExtractionReport`].
    pub lints: bool,
}

impl ExtractOptions {
    /// Default options: no geometry output, insertion sort, no window.
    pub fn new() -> Self {
        ExtractOptions::default()
    }

    /// Enables net/device geometry recording.
    pub fn with_geometry(mut self) -> Self {
        self.geometry_output = true;
        self
    }

    /// Selects the step-2.a sorting strategy.
    pub fn with_sort(mut self, sort: SortStrategy) -> Self {
        self.sort = sort;
        self
    }

    /// Enables window-boundary collection (hierarchical extraction).
    pub fn with_window(mut self, window: Rect) -> Self {
        self.window = Some(window);
        self
    }

    /// Requests a band-parallel extraction on `threads` worker
    /// threads (0 = one per host core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Requests `bands` horizontal bands. When no worker count has
    /// been chosen yet this also sets `threads` to `bands`, keeping
    /// the historic 1:1 band-per-worker behavior; combine with
    /// [`with_threads`](Self::with_threads) to decouple the two (more
    /// bands than workers lets the work-stealing scheduler balance
    /// skew).
    pub fn with_bands(mut self, bands: usize) -> Self {
        self.bands = Some(bands);
        self.threads = self.threads.or(Some(bands));
        self
    }

    /// Requests an ERC lint pass after extraction (see
    /// [`ExtractOptions::lints`]).
    pub fn with_lints(mut self) -> Self {
        self.lints = true;
        self
    }
}

/// The extractor's work phases, for the §5 time-distribution
/// experiment ("40% for parsing, interpreting and sorting the CIF
/// file; 15% for entering new geometry …; 20% for computing devices
/// …; 10% for storage allocation, input/output, and initialization;
/// 15% miscellaneous").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Parsing, instantiating and sorting the CIF file (front-end
    /// work: everything spent inside the geometry feed).
    FrontEnd,
    /// Entering new geometry into lists and updating data structures.
    Insert,
    /// Computing devices, nets, and contacts.
    Devices,
    /// Storage allocation, output construction, initialization.
    Output,
}

impl Phase {
    /// All phases in display order.
    pub const ALL: [Phase; 4] = [
        Phase::FrontEnd,
        Phase::Insert,
        Phase::Devices,
        Phase::Output,
    ];

    /// Short label for tables.
    pub const fn label(self) -> &'static str {
        match self {
            Phase::FrontEnd => "parse/sort (front-end)",
            Phase::Insert => "enter geometry",
            Phase::Devices => "compute devices/nets",
            Phase::Output => "alloc/init/output",
        }
    }

    /// The probe span this phase is measured by.
    pub const fn span(self) -> Span {
        match self {
            Phase::FrontEnd => Span::FrontEnd,
            Phase::Insert => Span::Insert,
            Phase::Devices => Span::Devices,
            Phase::Output => Span::Output,
        }
    }

    /// The phase measured by `span`, if any.
    pub const fn from_span(span: Span) -> Option<Phase> {
        match span {
            Span::FrontEnd => Some(Phase::FrontEnd),
            Span::Insert => Some(Phase::Insert),
            Span::Devices => Some(Phase::Devices),
            Span::Output => Some(Phase::Output),
            _ => None,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-band instrumentation recorded by the band-parallel driver
/// (`with_threads`/`with_bands`), one entry per horizontal band,
/// bottom to top.
#[derive(Debug, Clone, Default)]
pub struct BandReport {
    /// Band index (0 = bottom band).
    pub band: usize,
    /// Boxes fed to this band's sweep (clipped copies included).
    pub boxes: u64,
    /// Scanline stops this band made.
    pub scanline_stops: u64,
    /// Wall-clock time per phase inside this band's sweep.
    pub phase_times: [Duration; 4],
    /// This band's total sweep time.
    pub total_time: Duration,
}

/// Counters from the seam-stitching pass of the parallel extractor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StitchStats {
    /// Boundary contacts collected on all interior seams.
    pub seam_contacts: u64,
    /// Contact pairs with positive overlap examined across seams.
    pub pairs_matched: u64,
    /// Net equivalences established across seams.
    pub net_unions: u64,
    /// Channel-fragment pairs united into one device.
    pub device_merges: u64,
    /// Diffusion terminal contacts added to partial devices.
    pub terminal_contacts: u64,
    /// Partial devices finalized after merging.
    pub partials_completed: u64,
    /// Wall-clock time spent stitching.
    pub time: Duration,
}

/// Instrumentation gathered during one extraction.
#[derive(Debug, Clone, Default)]
pub struct ExtractionReport {
    /// Wall-clock time per phase (same order as [`Phase::ALL`]).
    ///
    /// For a parallel extraction these are summed over bands, so they
    /// measure total CPU work, not wall-clock time; `total_time` is
    /// the wall clock.
    pub phase_times: [Duration; 4],
    /// Total wall-clock time.
    pub total_time: Duration,
    /// Scanline stops made.
    pub scanline_stops: u64,
    /// Boxes received from the front-end (the paper's N).
    pub boxes: u64,
    /// High-water mark of the total active-list length.
    pub max_active: usize,
    /// Net union operations performed.
    pub net_unions: u64,
    /// Fragments created across all strips (work proxy for step 2.c).
    pub fragments: u64,
    /// Labels that did not land on any conducting geometry.
    pub unresolved_labels: u64,
    /// Devices whose channel touched more than two diffusion nets.
    pub multi_terminal_devices: u64,
    /// Worker threads used (0 for a sequential extraction). With the
    /// work-stealing scheduler this can be fewer than `bands`.
    pub threads: usize,
    /// Horizontal bands swept (0 for a sequential extraction).
    pub bands: usize,
    /// Bands run by a worker other than their chunk's owner (the
    /// work-stealing scheduler's activity; 0 when bands == threads
    /// and no skew arose, or on a 1-worker run).
    pub bands_stolen: u64,
    /// Total time workers spent finished while the slowest worker was
    /// still running (the imbalance stealing is there to shrink).
    pub steal_wait: Duration,
    /// Per-band sweep instrumentation (parallel extraction only).
    pub band_reports: Vec<BandReport>,
    /// Seam-stitching counters (parallel extraction only).
    pub stitch: StitchStats,
    /// Bands answered from the incremental cache (incremental
    /// extraction only).
    pub bands_reused: u64,
    /// Bands re-swept because their content hash changed
    /// (incremental extraction only).
    pub bands_reswept: u64,
    /// Estimated bytes held by the incremental band cache
    /// (incremental extraction only).
    pub cache_bytes: u64,
    /// Diagnostics emitted by the ERC lint pass (zero when no lint
    /// pass ran — see [`ExtractOptions::with_lints`]).
    pub lints_emitted: u64,
    /// Wall-clock time spent in the lint pass.
    pub lint_time: Duration,
}

impl ExtractionReport {
    /// Time spent in `phase`.
    pub fn phase_time(&self, phase: Phase) -> Duration {
        let idx = Phase::ALL.iter().position(|p| *p == phase).expect("known");
        self.phase_times[idx]
    }

    /// Adds `d` to `phase`.
    pub(crate) fn add_phase_time(&mut self, phase: Phase, d: Duration) {
        let idx = Phase::ALL.iter().position(|p| *p == phase).expect("known");
        self.phase_times[idx] += d;
    }

    /// Percentage of total time spent in `phase` (0 when total is 0).
    pub fn phase_percent(&self, phase: Phase) -> f64 {
        let total = self.total_time.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            100.0 * self.phase_time(phase).as_secs_f64() / total
        }
    }

    /// Boxes processed per second of total time.
    pub fn boxes_per_second(&self) -> f64 {
        let total = self.total_time.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.boxes as f64 / total
        }
    }
}

impl fmt::Display for ExtractionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} boxes, {} stops, {} net unions, max active {}",
            self.boxes, self.scanline_stops, self.net_unions, self.max_active
        )?;
        for phase in Phase::ALL {
            writeln!(
                f,
                "  {:>5.1}%  {}",
                self.phase_percent(phase),
                phase.label()
            )?;
        }
        if self.threads > 1 {
            writeln!(
                f,
                "  {} threads over {} bands ({} stolen, wait {:?}), \
                 {} seam unions, {} device merges, stitch {:?}",
                self.threads,
                self.bands,
                self.bands_stolen,
                self.steal_wait,
                self.stitch.net_unions,
                self.stitch.device_merges,
                self.stitch.time
            )?;
        }
        if self.lints_emitted > 0 {
            writeln!(
                f,
                "  lint: {} diagnostics in {:?}",
                self.lints_emitted, self.lint_time
            )?;
        }
        if self.bands_reused + self.bands_reswept > 0 {
            writeln!(
                f,
                "  incremental: {} bands reused, {} re-swept, cache ~{} KiB",
                self.bands_reused,
                self.bands_reswept,
                self.cache_bytes / 1024
            )?;
        }
        write!(f, "  total {:?}", self.total_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_builder() {
        let o = ExtractOptions::new();
        assert!(!o.geometry_output);
        assert_eq!(o.sort, SortStrategy::Insertion);
        assert_eq!(o.window, None);
        assert_eq!(o.threads, None);
        assert!(!o.lints);
        let o = o
            .with_geometry()
            .with_sort(SortStrategy::Bin)
            .with_window(Rect::new(0, 0, 10, 10))
            .with_threads(4)
            .with_lints();
        assert!(o.geometry_output);
        assert!(o.lints);
        assert_eq!(o.sort, SortStrategy::Bin);
        assert_eq!(o.window, Some(Rect::new(0, 0, 10, 10)));
        assert_eq!(o.threads, Some(4));
        // with_bands alone keeps the historic 1:1 behavior …
        let banded = ExtractOptions::new().with_bands(2);
        assert_eq!(banded.threads, Some(2));
        assert_eq!(banded.bands, Some(2));
        // … but never overrides an explicit worker count.
        let decoupled = ExtractOptions::new().with_threads(2).with_bands(8);
        assert_eq!(decoupled.threads, Some(2));
        assert_eq!(decoupled.bands, Some(8));
    }

    #[test]
    fn phases_map_onto_spans() {
        for phase in Phase::ALL {
            assert_eq!(Phase::from_span(phase.span()), Some(phase));
        }
        assert_eq!(Phase::from_span(Span::Stitch), None);
    }

    #[test]
    fn phase_accounting() {
        let mut r = ExtractionReport::default();
        r.add_phase_time(Phase::Insert, Duration::from_millis(25));
        r.add_phase_time(Phase::Insert, Duration::from_millis(25));
        r.total_time = Duration::from_millis(100);
        assert_eq!(r.phase_time(Phase::Insert), Duration::from_millis(50));
        assert!((r.phase_percent(Phase::Insert) - 50.0).abs() < 1e-9);
        assert_eq!(r.phase_percent(Phase::Output), 0.0);
    }

    #[test]
    fn rates_handle_zero_time() {
        let r = ExtractionReport::default();
        assert_eq!(r.boxes_per_second(), 0.0);
        assert_eq!(r.phase_percent(Phase::FrontEnd), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let r = ExtractionReport::default();
        assert!(r.to_string().contains("boxes"));
    }
}
