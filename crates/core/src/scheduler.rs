//! Work-stealing schedulers: the batch scheduler for band sweeps and
//! the long-lived [`WorkerPool`] for the extraction service.
//!
//! Band-parallel extraction used to spawn one thread per band, so a
//! band count above the core count oversubscribed the host and a
//! skewed band (one dense stripe of the chip) idled every other
//! worker while its thread finished. This module decouples the two:
//! `k` workers drain `n` jobs, each worker owning a contiguous chunk
//! of the job indices and *stealing* from the other chunks once its
//! own is empty.
//!
//! The batch queue is three atomics per chunk short of a deque: each
//! chunk is `[start, end)` with an atomic claim cursor, a worker
//! claims the next index with `fetch_add`, and a claim past `end`
//! means the chunk is dry. Contiguous ownership keeps the common case
//! (no skew) equivalent to the old static split; stealing only kicks
//! in when a worker actually runs out of work early.
//!
//! [`WorkerPool`] transplants the same shape onto a *persistent* pool
//! for request-at-a-time workloads: each worker owns one bounded
//! shard queue, a submitter routes a job to a shard (the service
//! daemon shards sessions by id hash, giving cache affinity), and an
//! idle worker steals from the other shards in ring order so one hot
//! session cannot idle the rest of the host. A full shard queue
//! rejects the job — that is the daemon's backpressure signal.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// What the scheduler observed while draining the jobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct StealStats {
    /// Jobs run by a worker other than their chunk's owner.
    pub stolen: u64,
    /// Total nanoseconds workers spent finished while the slowest
    /// worker was still running (the tail-latency the stealing is
    /// there to shrink).
    pub wait_ns: u64,
    /// Workers actually used: `min(requested.max(1), jobs)`.
    pub workers: usize,
}

/// Runs `jobs` jobs on up to `requested` worker threads and returns
/// the results in job order plus the steal statistics.
///
/// `run` is called exactly once per job index, from whichever worker
/// claimed it. With one worker (or one job) everything runs inline on
/// the caller's thread — no spawn, no atomics.
pub(crate) fn run_jobs<T, F>(requested: usize, jobs: usize, run: F) -> (Vec<T>, StealStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = requested.max(1).min(jobs);
    if workers <= 1 {
        let results = (0..jobs).map(&run).collect();
        return (
            results,
            StealStats {
                stolen: 0,
                wait_ns: 0,
                workers,
            },
        );
    }

    // Chunk w owns job indices [w*jobs/workers, (w+1)*jobs/workers).
    let bounds: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * jobs / workers, (w + 1) * jobs / workers))
        .collect();
    let cursors: Vec<AtomicUsize> = bounds.iter().map(|&(s, _)| AtomicUsize::new(s)).collect();
    let run = &run;
    let bounds = &bounds;
    let cursors = &cursors;

    // (job-indexed results, bands stolen, finish time) per worker.
    type WorkerRun<T> = (Vec<(usize, T)>, u64, Instant);
    let per_worker: Vec<WorkerRun<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut stolen = 0u64;
                    // Own chunk first (v = 0), then victims in ring
                    // order — each worker starts stealing from a
                    // different neighbour, spreading contention.
                    for v in 0..workers {
                        let c = (w + v) % workers;
                        let end = bounds[c].1;
                        loop {
                            // `fetch_add` hands out each index at most
                            // once; claims past `end` are harmless
                            // overshoot by racing stealers.
                            let idx = cursors[c].fetch_add(1, Ordering::Relaxed);
                            if idx >= end {
                                break;
                            }
                            if c != w {
                                stolen += 1;
                            }
                            out.push((idx, run(idx)));
                        }
                    }
                    (out, stolen, Instant::now())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("band worker panicked"))
            .collect()
    });

    let last_finish = per_worker
        .iter()
        .map(|&(_, _, at)| at)
        .max()
        .expect("workers > 0");
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    let mut stats = StealStats {
        workers,
        ..StealStats::default()
    };
    for (items, stolen, finished) in per_worker {
        stats.stolen += stolen;
        stats.wait_ns += last_finish.duration_since(finished).as_nanos() as u64;
        for (idx, item) in items {
            slots[idx] = Some(item);
        }
    }
    let results = slots
        .into_iter()
        .map(|slot| slot.expect("every job index claimed exactly once"))
        .collect();
    (results, stats)
}

/// A job queued on a [`WorkerPool`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why [`WorkerPool::try_submit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The target shard's queue is at capacity. The natural response
    /// is reject-with-retry-after: tell the client to come back once
    /// the queue has drained a little.
    Full,
    /// The pool is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "shard queue full"),
            SubmitError::ShuttingDown => write!(f, "pool shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What a [`WorkerPool`] has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs completed.
    pub executed: u64,
    /// Jobs run by a worker other than their shard's owner.
    pub stolen: u64,
    /// Jobs currently queued across all shards.
    pub queued: usize,
    /// Worker threads in the pool.
    pub workers: usize,
}

struct PoolState {
    /// One bounded queue per worker (the worker's *shard*).
    queues: Vec<VecDeque<Job>>,
    /// No new submissions; workers exit once every queue is dry.
    shutdown: bool,
    executed: u64,
    stolen: u64,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work: Condvar,
    capacity: usize,
}

/// A persistent work-stealing worker pool.
///
/// `k` long-lived workers each own one bounded shard queue. Jobs are
/// submitted to a shard of the caller's choosing (hash a session id
/// for affinity, round-robin for spread); a worker drains its own
/// shard first and steals from the others in ring order when idle —
/// the same victim order as the batch scheduler above, so contention
/// spreads instead of converging on shard 0.
///
/// Shutdown is *draining*: queued jobs still run, workers exit when
/// every queue is empty. In-flight jobs always complete.
///
/// # Examples
///
/// ```
/// use ace_core::scheduler::WorkerPool;
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use std::sync::Arc;
///
/// let pool = WorkerPool::new(2, 16);
/// let hits = Arc::new(AtomicU64::new(0));
/// for i in 0..10 {
///     let hits = Arc::clone(&hits);
///     pool.try_submit(i, move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///     })
///     .expect("queue has room");
/// }
/// let stats = pool.shutdown();
/// assert_eq!(hits.load(Ordering::Relaxed), 10);
/// assert_eq!(stats.executed, 10);
/// ```
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool of `workers` threads (clamped to ≥ 1), each shard queue
    /// bounded at `queue_capacity` jobs (clamped to ≥ 1).
    pub fn new(workers: usize, queue_capacity: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                shutdown: false,
                executed: 0,
                stolen: 0,
            }),
            work: Condvar::new(),
            capacity: queue_capacity.max(1),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ace-pool-{w}"))
                    .spawn(move || worker_loop(w, &shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Worker (and shard) count.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Queues `job` on shard `shard % workers`.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when that shard's queue is at capacity
    /// (the backpressure signal), [`SubmitError::ShuttingDown`] after
    /// [`shutdown`](Self::shutdown) has begun.
    pub fn try_submit(
        &self,
        shard: usize,
        job: impl FnOnce() + Send + 'static,
    ) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().expect("pool lock");
        if state.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let shard = shard % state.queues.len();
        if state.queues[shard].len() >= self.shared.capacity {
            return Err(SubmitError::Full);
        }
        state.queues[shard].push_back(Box::new(job));
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        let state = self.shared.state.lock().expect("pool lock");
        PoolStats {
            executed: state.executed,
            stolen: state.stolen,
            queued: state.queues.iter().map(VecDeque::len).sum(),
            workers: self.handles.len(),
        }
    }

    /// Stops accepting work, drains every queue, joins the workers,
    /// and returns the final counters.
    pub fn shutdown(mut self) -> PoolStats {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            handle.join().expect("pool worker panicked");
        }
        let state = self.shared.state.lock().expect("pool lock");
        PoolStats {
            executed: state.executed,
            stolen: state.stolen,
            queued: 0,
            workers: 0,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Mirror `shutdown` for pools dropped without an explicit
        // call (tests, panics): drain and join so no job is lost.
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(own: usize, shared: &PoolShared) {
    let mut state = shared.state.lock().expect("pool lock");
    loop {
        // Own shard first, then victims in ring order.
        let n = state.queues.len();
        let mut claimed: Option<(usize, Job)> = None;
        for v in 0..n {
            let shard = (own + v) % n;
            if let Some(job) = state.queues[shard].pop_front() {
                claimed = Some((shard, job));
                break;
            }
        }
        match claimed {
            Some((shard, job)) => {
                if shard != own {
                    state.stolen += 1;
                }
                drop(state);
                job();
                state = shared.state.lock().expect("pool lock");
                state.executed += 1;
            }
            None if state.shutdown => return,
            None => {
                state = shared.work.wait(state).expect("pool wait");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 3, 7, 16] {
            let (results, stats) = run_jobs(workers, 20, |i| i * i);
            assert_eq!(results, (0..20).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.workers, workers.min(20));
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let (results, _) = run_jobs(4, 100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn single_worker_runs_inline_without_stealing() {
        let (results, stats) = run_jobs(1, 5, |i| i + 1);
        assert_eq!(results, vec![1, 2, 3, 4, 5]);
        assert_eq!(stats.stolen, 0);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn workers_clamp_to_job_count() {
        let (results, stats) = run_jobs(16, 3, |i| i);
        assert_eq!(results, vec![0, 1, 2]);
        assert_eq!(stats.workers, 3);
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        let (results, stats) = run_jobs(4, 0, |i| i);
        assert!(results.is_empty());
        assert!(stats.workers <= 1);
        assert_eq!(stats.stolen, 0);
    }

    #[test]
    fn pool_runs_every_job_and_drains_on_shutdown() {
        let pool = WorkerPool::new(3, 64);
        assert_eq!(pool.workers(), 3);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 0..100u64 {
            let sum = Arc::clone(&sum);
            pool.try_submit(i as usize, move || {
                sum.fetch_add(i, Ordering::Relaxed);
            })
            .expect("capacity 64 per shard");
        }
        let stats = pool.shutdown();
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum::<u64>());
        assert_eq!(stats.executed, 100);
    }

    #[test]
    fn pool_backpressure_rejects_when_a_shard_is_full() {
        // One worker, capacity 2: block the worker, fill the queue.
        let pool = WorkerPool::new(1, 2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        pool.try_submit(0, move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        })
        .expect("first job enqueues");
        // Wait until the worker has picked the blocker up, then fill
        // the two queue slots; the next submission must bounce.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while pool.stats().queued > 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        pool.try_submit(0, || {}).expect("slot 1");
        pool.try_submit(0, || {}).expect("slot 2");
        assert_eq!(pool.try_submit(0, || {}), Err(SubmitError::Full));
        // Open the gate; everything drains.
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        let stats = pool.shutdown();
        assert_eq!(stats.executed, 3);
    }

    #[test]
    fn pool_submissions_after_shutdown_are_rejected() {
        let pool = WorkerPool::new(2, 4);
        let shared = Arc::clone(&pool.shared);
        pool.shutdown();
        // A fresh handle to the same state would refuse; simulate via
        // a second pool's API shape by checking the state directly.
        assert!(shared.state.lock().unwrap().shutdown);
    }

    #[test]
    fn pool_idle_worker_steals_from_a_hot_shard() {
        // Two workers; every job lands on shard 0. Worker 1 has
        // nothing of its own and must steal to keep busy. On a 1-core
        // host the OS may still let worker 0 drain everything, so
        // only assert the strong property on multicore.
        let pool = WorkerPool::new(2, 256);
        let slow = Arc::new(AtomicU64::new(0));
        for _ in 0..64 {
            let slow = Arc::clone(&slow);
            pool.try_submit(0, move || {
                std::thread::sleep(std::time::Duration::from_micros(200));
                slow.fetch_add(1, Ordering::Relaxed);
            })
            .expect("capacity");
        }
        let stats = pool.shutdown();
        assert_eq!(stats.executed, 64);
        if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
            assert!(stats.stolen > 0, "idle worker should have stolen");
        }
    }

    #[test]
    fn skewed_work_gets_stolen() {
        // Job 0 is much slower than the rest; with 2 workers over 8
        // jobs, the idle worker must steal from the slow one's chunk.
        let (results, stats) = run_jobs(2, 8, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(results, (0..8).collect::<Vec<_>>());
        // On a single-core host the workers may still happen to drain
        // their own chunks in turn, so only assert when a steal is
        // guaranteed observable: worker 0 sleeps on job 0 while jobs
        // 1..4 sit unclaimed in its chunk.
        if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
            assert!(stats.stolen > 0, "idle worker should have stolen");
        }
    }
}
