//! Work-stealing job scheduler for band sweeps.
//!
//! Band-parallel extraction used to spawn one thread per band, so a
//! band count above the core count oversubscribed the host and a
//! skewed band (one dense stripe of the chip) idled every other
//! worker while its thread finished. This module decouples the two:
//! `k` workers drain `n` jobs, each worker owning a contiguous chunk
//! of the job indices and *stealing* from the other chunks once its
//! own is empty.
//!
//! The queue is three atomics per chunk short of a deque: each chunk
//! is `[start, end)` with an atomic claim cursor, a worker claims the
//! next index with `fetch_add`, and a claim past `end` means the
//! chunk is dry. Contiguous ownership keeps the common case (no
//! skew) equivalent to the old static split; stealing only kicks in
//! when a worker actually runs out of work early.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// What the scheduler observed while draining the jobs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct StealStats {
    /// Jobs run by a worker other than their chunk's owner.
    pub stolen: u64,
    /// Total nanoseconds workers spent finished while the slowest
    /// worker was still running (the tail-latency the stealing is
    /// there to shrink).
    pub wait_ns: u64,
    /// Workers actually used: `min(requested.max(1), jobs)`.
    pub workers: usize,
}

/// Runs `jobs` jobs on up to `requested` worker threads and returns
/// the results in job order plus the steal statistics.
///
/// `run` is called exactly once per job index, from whichever worker
/// claimed it. With one worker (or one job) everything runs inline on
/// the caller's thread — no spawn, no atomics.
pub(crate) fn run_jobs<T, F>(requested: usize, jobs: usize, run: F) -> (Vec<T>, StealStats)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = requested.max(1).min(jobs);
    if workers <= 1 {
        let results = (0..jobs).map(&run).collect();
        return (
            results,
            StealStats {
                stolen: 0,
                wait_ns: 0,
                workers,
            },
        );
    }

    // Chunk w owns job indices [w*jobs/workers, (w+1)*jobs/workers).
    let bounds: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * jobs / workers, (w + 1) * jobs / workers))
        .collect();
    let cursors: Vec<AtomicUsize> = bounds.iter().map(|&(s, _)| AtomicUsize::new(s)).collect();
    let run = &run;
    let bounds = &bounds;
    let cursors = &cursors;

    // (job-indexed results, bands stolen, finish time) per worker.
    type WorkerRun<T> = (Vec<(usize, T)>, u64, Instant);
    let per_worker: Vec<WorkerRun<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut stolen = 0u64;
                    // Own chunk first (v = 0), then victims in ring
                    // order — each worker starts stealing from a
                    // different neighbour, spreading contention.
                    for v in 0..workers {
                        let c = (w + v) % workers;
                        let end = bounds[c].1;
                        loop {
                            // `fetch_add` hands out each index at most
                            // once; claims past `end` are harmless
                            // overshoot by racing stealers.
                            let idx = cursors[c].fetch_add(1, Ordering::Relaxed);
                            if idx >= end {
                                break;
                            }
                            if c != w {
                                stolen += 1;
                            }
                            out.push((idx, run(idx)));
                        }
                    }
                    (out, stolen, Instant::now())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("band worker panicked"))
            .collect()
    });

    let last_finish = per_worker
        .iter()
        .map(|&(_, _, at)| at)
        .max()
        .expect("workers > 0");
    let mut slots: Vec<Option<T>> = (0..jobs).map(|_| None).collect();
    let mut stats = StealStats {
        workers,
        ..StealStats::default()
    };
    for (items, stolen, finished) in per_worker {
        stats.stolen += stolen;
        stats.wait_ns += last_finish.duration_since(finished).as_nanos() as u64;
        for (idx, item) in items {
            slots[idx] = Some(item);
        }
    }
    let results = slots
        .into_iter()
        .map(|slot| slot.expect("every job index claimed exactly once"))
        .collect();
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 3, 7, 16] {
            let (results, stats) = run_jobs(workers, 20, |i| i * i);
            assert_eq!(results, (0..20).map(|i| i * i).collect::<Vec<_>>());
            assert_eq!(stats.workers, workers.min(20));
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let (results, _) = run_jobs(4, 100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn single_worker_runs_inline_without_stealing() {
        let (results, stats) = run_jobs(1, 5, |i| i + 1);
        assert_eq!(results, vec![1, 2, 3, 4, 5]);
        assert_eq!(stats.stolen, 0);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn workers_clamp_to_job_count() {
        let (results, stats) = run_jobs(16, 3, |i| i);
        assert_eq!(results, vec![0, 1, 2]);
        assert_eq!(stats.workers, 3);
    }

    #[test]
    fn zero_jobs_is_a_no_op() {
        let (results, stats) = run_jobs(4, 0, |i| i);
        assert!(results.is_empty());
        assert!(stats.workers <= 1);
        assert_eq!(stats.stolen, 0);
    }

    #[test]
    fn skewed_work_gets_stolen() {
        // Job 0 is much slower than the rest; with 2 workers over 8
        // jobs, the idle worker must steal from the slow one's chunk.
        let (results, stats) = run_jobs(2, 8, |i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i
        });
        assert_eq!(results, (0..8).collect::<Vec<_>>());
        // On a single-core host the workers may still happen to drain
        // their own chunks in turn, so only assert when a steal is
        // guaranteed observable: worker 0 sleeps on job 0 while jobs
        // 1..4 sit unclaimed in its chunk.
        if std::thread::available_parallelism().map_or(1, |n| n.get()) > 1 {
            assert!(stats.stolen > 0, "idle worker should have stolen");
        }
    }
}
