use ace_geom::{Coord, Interval, IntervalSet};

/// One maximal x-interval of connected geometry within a strip.
///
/// For conducting layers the handle indexes the net table; for
/// channel fragments it indexes the device table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fragment {
    /// The x extent.
    pub span: Interval,
    /// Net handle (conducting layers) or device handle (channels).
    pub handle: u32,
}

/// The fragments of one horizontal strip, after handle assignment.
///
/// "Conceptually, this divides the chip into a number of horizontal
/// strips where the state within the strip does not change in the
/// vertical direction." (§2.) The four lists here are the strip's
/// state; consecutive strips are linked by [`overlap_pairs`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StripFragments {
    /// Top edge of the strip.
    pub y_top: Coord,
    /// Bottom edge of the strip.
    pub y_bot: Coord,
    /// Metal fragments.
    pub metal: Vec<Fragment>,
    /// Poly fragments (including poly over channels — the gate wiring
    /// conducts straight across a transistor).
    pub poly: Vec<Fragment>,
    /// Diffusion fragments with channel regions removed: diffusion
    /// under a gate is channel, not interconnect.
    pub diff: Vec<Fragment>,
    /// Channel fragments (handles index the device table).
    pub channel: Vec<Fragment>,
}

impl StripFragments {
    /// Strip height.
    pub fn height(&self) -> Coord {
        self.y_top - self.y_bot
    }

    /// Total fragment count (instrumentation).
    pub fn fragment_count(&self) -> usize {
        self.metal.len() + self.poly.len() + self.diff.len() + self.channel.len()
    }
}

/// Pure per-strip layer coverage, before handle assignment.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StripCoverage {
    /// Metal coverage.
    pub metal: IntervalSet,
    /// Poly coverage.
    pub poly: IntervalSet,
    /// Raw diffusion coverage (channel regions still included).
    pub diff_raw: IntervalSet,
    /// Buried-contact coverage.
    pub buried: IntervalSet,
    /// Depletion-implant coverage.
    pub implant: IntervalSet,
    /// Contact-cut coverage.
    pub cut: IntervalSet,
}

impl StripCoverage {
    /// Transistor channels: diffusion ∧ poly ∧ ¬buried
    /// ("An overlap between diffusion and poly accompanied by the
    /// absence of buried results in a potential transistor", §3).
    pub fn channels(&self) -> IntervalSet {
        self.diff_raw
            .intersection(&self.poly)
            .subtract(&self.buried)
    }

    /// Conducting diffusion: raw diffusion minus channels.
    pub fn conducting_diff(&self) -> IntervalSet {
        self.diff_raw.subtract(&self.channels())
    }

    /// Buried contacts: diffusion ∧ poly ∧ buried — poly and
    /// diffusion are electrically joined here and no transistor forms.
    pub fn buried_contacts(&self) -> IntervalSet {
        self.diff_raw
            .intersection(&self.poly)
            .intersection(&self.buried)
    }
}

/// Pairs up fragments of two vertically adjacent strips that share
/// positive-length x-overlap (corner contact does not connect).
///
/// Returns `(prev_handle, cur_handle, overlap_len)` triples; both
/// inputs must be sorted by span (they are, by construction).
pub fn overlap_pairs(prev: &[Fragment], cur: &[Fragment]) -> Vec<(u32, u32, Coord)> {
    let mut out = Vec::new();
    overlap_pairs_into(prev, cur, &mut out);
    out
}

/// [`overlap_pairs`] into a caller-owned buffer (cleared first), so
/// the sweep's stop loop can reuse one allocation across strips.
pub fn overlap_pairs_into(prev: &[Fragment], cur: &[Fragment], out: &mut Vec<(u32, u32, Coord)>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < prev.len() && j < cur.len() {
        let a = prev[i].span;
        let b = cur[j].span;
        let len = a.overlap_len(&b);
        if len > 0 {
            out.push((prev[i].handle, cur[j].handle, len));
        }
        if a.hi <= b.hi {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// The fragment whose span contains `span` entirely (used to find the
/// gate poly over a channel; channels are subsets of poly coverage so
/// exactly one maximal poly fragment contains each).
pub fn find_containing(frags: &[Fragment], span: Interval) -> Option<&Fragment> {
    let idx = frags.partition_point(|f| f.span.hi < span.hi);
    let f = frags.get(idx)?;
    (f.span.lo <= span.lo && span.hi <= f.span.hi).then_some(f)
}

/// All fragments overlapping `span` with positive length.
pub fn overlapping<'a>(
    frags: &'a [Fragment],
    span: Interval,
) -> impl Iterator<Item = &'a Fragment> + 'a {
    let start = frags.partition_point(|f| f.span.hi <= span.lo);
    frags[start..]
        .iter()
        .take_while(move |f| f.span.lo < span.hi)
        .filter(move |f| f.span.overlap_len(&span) > 0)
}

/// The fragments abutting `span` exactly at its left and right
/// endpoints (horizontal neighbour test: a diffusion fragment ending
/// where the channel begins is a terminal). Binary search over the
/// sorted, disjoint fragment list.
pub fn abutting(frags: &[Fragment], span: Interval) -> (Option<&Fragment>, Option<&Fragment>) {
    let left = {
        let idx = frags.partition_point(|f| f.span.hi < span.lo);
        frags.get(idx).filter(|f| f.span.hi == span.lo)
    };
    let right = {
        let idx = frags.partition_point(|f| f.span.lo < span.hi);
        frags.get(idx).filter(|f| f.span.lo == span.hi)
    };
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frag(lo: Coord, hi: Coord, handle: u32) -> Fragment {
        Fragment {
            span: Interval::new(lo, hi),
            handle,
        }
    }

    fn set(pairs: &[(Coord, Coord)]) -> IntervalSet {
        pairs
            .iter()
            .map(|&(lo, hi)| Interval::new(lo, hi))
            .collect()
    }

    #[test]
    fn channel_algebra() {
        let cov = StripCoverage {
            diff_raw: set(&[(0, 1000)]),
            poly: set(&[(200, 400), (600, 800)]),
            buried: set(&[(600, 800)]),
            ..StripCoverage::default()
        };
        assert_eq!(cov.channels(), set(&[(200, 400)]));
        // Conducting diffusion excludes only the channel, not the
        // buried-contact region.
        assert_eq!(cov.conducting_diff(), set(&[(0, 200), (400, 1000)]));
        assert_eq!(cov.buried_contacts(), set(&[(600, 800)]));
    }

    #[test]
    fn overlap_pairs_positive_only() {
        let prev = vec![frag(0, 10, 1), frag(10, 20, 2), frag(30, 40, 3)];
        let cur = vec![frag(5, 10, 4), frag(10, 35, 5)];
        let pairs = overlap_pairs(&prev, &cur);
        // (1,4): [5,10) len 5; (2,5): [10,20) len 10; (3,5): [30,35) len 5.
        // (1,5) share only the point x=10 → excluded.
        assert_eq!(pairs, vec![(1, 4, 5), (2, 5, 10), (3, 5, 5)]);
    }

    #[test]
    fn overlap_pairs_handles_empty() {
        assert!(overlap_pairs(&[], &[frag(0, 5, 1)]).is_empty());
        assert!(overlap_pairs(&[frag(0, 5, 1)], &[]).is_empty());
    }

    #[test]
    fn find_containing_works() {
        let frags = vec![frag(0, 10, 1), frag(20, 50, 2)];
        assert_eq!(
            find_containing(&frags, Interval::new(25, 30)).map(|f| f.handle),
            Some(2)
        );
        assert_eq!(
            find_containing(&frags, Interval::new(0, 10)).map(|f| f.handle),
            Some(1)
        );
        // Straddles a gap.
        assert_eq!(find_containing(&frags, Interval::new(5, 25)), None);
        // Outside everything.
        assert_eq!(find_containing(&frags, Interval::new(60, 70)), None);
    }

    #[test]
    fn overlapping_iterates_correct_subset() {
        let frags = vec![frag(0, 10, 1), frag(10, 20, 2), frag(30, 40, 3)];
        let hits: Vec<u32> = overlapping(&frags, Interval::new(5, 35))
            .map(|f| f.handle)
            .collect();
        assert_eq!(hits, vec![1, 2, 3]);
        let hits: Vec<u32> = overlapping(&frags, Interval::new(10, 10))
            .map(|f| f.handle)
            .collect();
        assert!(hits.is_empty());
    }

    #[test]
    fn abutting_finds_horizontal_neighbours() {
        let frags = vec![frag(0, 100, 1), frag(140, 200, 2), frag(300, 400, 3)];
        let channel = Interval::new(100, 140);
        let (left, right) = abutting(&frags, channel);
        assert_eq!(left.map(|f| f.handle), Some(1));
        assert_eq!(right.map(|f| f.handle), Some(2));
        // No neighbours on either side.
        let (left, right) = abutting(&frags, Interval::new(250, 260));
        assert!(left.is_none());
        assert!(right.is_none());
        // Only one side.
        let (left, right) = abutting(&frags, Interval::new(200, 290));
        assert_eq!(left.map(|f| f.handle), Some(2));
        assert!(right.is_none());
    }

    #[test]
    fn strip_metrics() {
        let s = StripFragments {
            y_top: 100,
            y_bot: 60,
            metal: vec![frag(0, 10, 0)],
            poly: vec![],
            diff: vec![frag(0, 5, 1), frag(8, 9, 2)],
            channel: vec![],
        };
        assert_eq!(s.height(), 40);
        assert_eq!(s.fragment_count(), 3);
    }
}
