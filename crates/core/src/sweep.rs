use std::collections::{BinaryHeap, HashMap};

use ace_geom::{Coord, Interval, IntervalSet, Layer, LayerMap, Point, Rect};
use ace_layout::{FlatLabel, GeometryFeed, LayerBox};
use ace_wirelist::{NetId, Netlist};

use crate::devices::DeviceTable;
use crate::extract::Extraction;
use crate::nets::NetTable;
use crate::probe::{Counter, CounterProbe, Lane, NullProbe, Probe, Span};
use crate::report::{ExtractOptions, SortStrategy};
use crate::strip::{
    abutting, find_containing, overlap_pairs, overlapping, Fragment, StripCoverage, StripFragments,
};
use crate::window::{BoundaryContact, BoundarySignal, DeviceDetail, Face, WindowExtraction};

/// One box currently intersecting the scanline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ActiveBox {
    x_min: Coord,
    x_max: Coord,
    y_bot: Coord,
}

/// A boundary contact recorded during the sweep, before handles are
/// resolved to output ids.
#[derive(Debug, Clone, Copy)]
struct RawContact {
    face: Face,
    layer: Option<Layer>,
    span: Interval,
    handle: u32,
    is_channel: bool,
}

/// The scanline extraction engine (the paper's back-end).
///
/// Feed geometry in with any [`GeometryFeed`] and call
/// [`Extractor::run`]; see the crate docs for the algorithm and
/// [`crate::extract_library`] for the usual entry point.
///
/// Every sweep reports its work through the probe layer: an internal
/// [`CounterProbe`] aggregates the events into the final
/// [`crate::ExtractionReport`], and an optional external [`Probe`]
/// (see [`Extractor::with_probe`]) receives the same stream — so an
/// outside `CounterProbe` always agrees with the report it shadows.
pub struct Extractor<'p> {
    options: ExtractOptions,
    lane: Lane,
    probe: &'p dyn Probe,
    counters: CounterProbe,
    nets: NetTable,
    devices: DeviceTable,
    active: LayerMap<Vec<ActiveBox>>,
    // One max-heap of active bottoms per layer, kept in lockstep with
    // `active`: every stop pops the bottoms that exit, so the heap top
    // is always the layer's largest live bottom. This keeps the next
    // scanline stop O(changes) instead of rescanning the active lists.
    bottoms: LayerMap<BinaryHeap<Coord>>,
    raw_contacts: Vec<RawContact>,
    // Union count already emitted; unions are reported as deltas so
    // cross-lane aggregation is a plain sum.
    last_unions: u64,
    max_active_seen: usize,
}

impl Extractor<'static> {
    /// Creates an extractor with the given options.
    pub fn new(options: ExtractOptions) -> Self {
        Extractor::with_probe(options, &NullProbe)
    }
}

impl<'p> Extractor<'p> {
    /// Creates an extractor that mirrors every probe event to
    /// `probe` in addition to its internal aggregate.
    pub fn with_probe(options: ExtractOptions, probe: &'p dyn Probe) -> Self {
        Extractor {
            options,
            lane: Lane::MAIN,
            probe,
            counters: CounterProbe::new(),
            nets: NetTable::new(options.geometry_output),
            devices: DeviceTable::new(options.geometry_output || options.window.is_some()),
            active: LayerMap::default(),
            bottoms: LayerMap::default(),
            raw_contacts: Vec::new(),
            last_unions: 0,
            max_active_seen: 0,
        }
    }

    /// Tags this sweep's events with `lane` (band workers use their
    /// band's lane; the default is [`Lane::MAIN`]).
    pub fn on_lane(mut self, lane: Lane) -> Self {
        self.lane = lane;
        self
    }

    fn enter(&self, span: Span) {
        self.counters.enter(self.lane, span);
        self.probe.enter(self.lane, span);
    }

    fn exit_span(&self, span: Span) {
        self.counters.exit(self.lane, span);
        self.probe.exit(self.lane, span);
    }

    fn count(&self, counter: Counter, delta: u64) {
        if delta == 0 {
            return;
        }
        self.counters.add(self.lane, counter, delta);
        self.probe.add(self.lane, counter, delta);
    }

    fn gauge(&self, counter: Counter, value: u64) {
        self.counters.gauge(self.lane, counter, value);
        self.probe.gauge(self.lane, counter, value);
    }

    /// Emits net unions performed since the last call as a delta.
    fn note_unions(&mut self) {
        let total = self.nets.union_count();
        let delta = total - self.last_unions;
        if delta > 0 {
            self.last_unions = total;
            self.count(Counter::NetUnions, delta);
        }
    }

    /// Runs the sweep to completion and produces the extraction.
    ///
    /// `name` becomes the output netlist's title.
    pub fn run(mut self, feed: &mut dyn GeometryFeed, name: &str) -> Extraction {
        self.enter(Span::Extract);
        let mut pending_labels: Vec<FlatLabel> = Vec::new();
        let mut new_boxes: Vec<LayerBox> = Vec::new();
        let mut prev = StripFragments::default();

        // Step 1: set the scanline to the top of the chip.
        let mut cursor = {
            self.enter(Span::FrontEnd);
            let top = feed.peek_top();
            feed.drain_new_labels(&mut pending_labels);
            self.exit_span(Span::FrontEnd);
            top
        };

        // Step 2: sweep.
        while let Some(y) = cursor {
            self.count(Counter::ScanlineStops, 1);

            // 2.a: fetch geometry whose top coincides with the
            // scanline.
            self.enter(Span::FrontEnd);
            new_boxes.clear();
            feed.pop_at(y, &mut new_boxes);
            feed.drain_new_labels(&mut pending_labels);
            self.exit_span(Span::FrontEnd);
            self.count(Counter::Boxes, new_boxes.len() as u64);

            // 2.b: exits and insertions.
            self.enter(Span::Insert);
            let max_bottom = self.insert_new_geometry(y, &new_boxes);
            self.exit_span(Span::Insert);

            // 2.d: next scanline position — the larger of the next
            // front-end top and the largest active bottom.
            self.enter(Span::FrontEnd);
            let feed_top = feed.peek_top();
            feed.drain_new_labels(&mut pending_labels);
            self.exit_span(Span::FrontEnd);
            let next = match (feed_top, max_bottom) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };

            // 2.c: compute devices over the strip [next, y].
            if let Some(lo) = next {
                debug_assert!(lo < y, "scanline must strictly descend");
                self.enter(Span::Devices);
                let cur = self.process_strip(lo, y, &prev, &mut pending_labels);
                prev = cur;
                self.exit_span(Span::Devices);
            }
            cursor = next;
        }

        self.count(Counter::UnresolvedLabels, pending_labels.len() as u64);

        // Step 3: output devices and nets.
        self.enter(Span::Output);
        let (netlist, window) = self.finalize(name);
        self.exit_span(Span::Output);
        self.exit_span(Span::Extract);

        // The report is a view over the sweep's own counter aggregate.
        Extraction {
            netlist,
            report: self.counters.report(),
            window,
        }
    }

    /// Removes boxes whose bottom coincides with the scanline, sorts
    /// the incoming geometry by x, and merges it into the active
    /// lists. Returns the largest active bottom.
    fn insert_new_geometry(&mut self, y: Coord, new_boxes: &[LayerBox]) -> Option<Coord> {
        // Distribute incoming boxes per layer.
        let mut incoming: LayerMap<Vec<ActiveBox>> = LayerMap::default();
        for b in new_boxes {
            if b.layer == Layer::Glass {
                continue; // overglass does not participate
            }
            debug_assert_eq!(b.rect.y_max, y);
            if b.rect.is_empty() {
                continue;
            }
            incoming[b.layer].push(ActiveBox {
                x_min: b.rect.x_min,
                x_max: b.rect.x_max,
                y_bot: b.rect.y_min,
            });
        }

        let mut max_bottom: Option<Coord> = None;
        let mut total_active = 0usize;
        for layer in Layer::ALL {
            let fresh = &mut incoming[layer];
            let bottoms = &mut self.bottoms[layer];
            let list = &mut self.active[layer];
            // Exits: bottom coincides with the scanline. The sweep
            // stops at every bottom, so only exact matches can be on
            // top of the heap; layers with none skip the O(active)
            // retain entirely.
            while bottoms.peek() == Some(&y) {
                bottoms.pop();
            }
            if bottoms.len() != list.len() {
                list.retain(|b| b.y_bot < y);
                debug_assert_eq!(bottoms.len(), list.len());
            }
            if !fresh.is_empty() {
                sort_by_x(fresh, self.options.sort);
                for b in fresh.iter() {
                    bottoms.push(b.y_bot);
                }
                merge_sorted(list, fresh);
            }
            if let Some(&b) = bottoms.peek() {
                max_bottom = Some(match max_bottom {
                    Some(m) => m.max(b),
                    None => b,
                });
            }
            total_active += list.len();
        }
        if total_active > self.max_active_seen {
            self.max_active_seen = total_active;
            self.gauge(Counter::MaxActive, total_active as u64);
        }
        max_bottom
    }

    /// Processes one strip: builds coverage and fragments, links them
    /// to the previous strip, finds channels, contacts, and labels.
    fn process_strip(
        &mut self,
        lo: Coord,
        hi: Coord,
        prev: &StripFragments,
        labels: &mut Vec<FlatLabel>,
    ) -> StripFragments {
        let height = hi - lo;
        debug_assert!(height > 0);

        // Layer coverage from the active lists (sorted by x, so the
        // IntervalSet inserts are effectively appends).
        let coverage = |list: &[ActiveBox]| -> IntervalSet {
            list.iter()
                .map(|b| Interval::new(b.x_min, b.x_max))
                .collect()
        };
        let cov = StripCoverage {
            metal: coverage(&self.active[Layer::Metal]),
            poly: coverage(&self.active[Layer::Poly]),
            diff_raw: coverage(&self.active[Layer::Diffusion]),
            buried: coverage(&self.active[Layer::Buried]),
            implant: coverage(&self.active[Layer::Implant]),
            cut: coverage(&self.active[Layer::Cut]),
        };
        let channels = cov.channels();
        let diff = cov.conducting_diff();

        // Fragments with fresh handles; conducting fragments extend
        // their net's bounding box (and geometry when enabled).
        let mut make_net_frags = |set: &IntervalSet, layer: Layer| -> Vec<Fragment> {
            set.iter()
                .map(|iv| {
                    let handle = self.nets.fresh();
                    self.nets
                        .add_geometry(handle, layer, Rect::new(iv.lo, lo, iv.hi, hi));
                    Fragment { span: *iv, handle }
                })
                .collect()
        };
        let cur = StripFragments {
            y_top: hi,
            y_bot: lo,
            metal: make_net_frags(&cov.metal, Layer::Metal),
            poly: make_net_frags(&cov.poly, Layer::Poly),
            diff: make_net_frags(&diff, Layer::Diffusion),
            channel: channels
                .iter()
                .map(|iv| Fragment {
                    span: *iv,
                    handle: self.devices.fresh(Rect::new(iv.lo, lo, iv.hi, hi)),
                })
                .collect(),
        };

        // Vertical links to the strip above (positive x-overlap).
        for (a, b, _) in overlap_pairs(&prev.metal, &cur.metal) {
            self.nets.union(a, b);
        }
        for (a, b, _) in overlap_pairs(&prev.poly, &cur.poly) {
            self.nets.union(a, b);
        }
        for (a, b, _) in overlap_pairs(&prev.diff, &cur.diff) {
            self.nets.union(a, b);
        }
        for (a, b, _) in overlap_pairs(&prev.channel, &cur.channel) {
            self.devices.union(a, b, &mut self.nets);
        }
        // Terminals along horizontal channel edges: diffusion above
        // channel, or channel above diffusion.
        for (d, k, len) in overlap_pairs(&prev.diff, &cur.channel) {
            self.devices.add_terminal_contact(k, d, len);
        }
        for (k, d, len) in overlap_pairs(&prev.channel, &cur.diff) {
            self.devices.add_terminal_contact(k, d, len);
        }

        // Per-channel work: gate poly, implant, vertical-edge
        // terminals.
        for k in &cur.channel {
            if let Some(p) = find_containing(&cur.poly, k.span) {
                self.devices.set_gate(k.handle, p.handle, &mut self.nets);
            }
            if cov.implant.intersects(&k.span) {
                self.devices.set_depletion(k.handle);
            }
            let (left, right) = abutting(&cur.diff, k.span);
            if let Some(f) = left {
                self.devices
                    .add_terminal_contact(k.handle, f.handle, height);
            }
            if let Some(f) = right {
                self.devices
                    .add_terminal_contact(k.handle, f.handle, height);
            }
        }

        // Buried contacts join poly to diffusion with no transistor.
        for bc in cov.buried_contacts().iter() {
            let mut first: Option<u32> = None;
            for f in overlapping(&cur.diff, *bc).chain(overlapping(&cur.poly, *bc)) {
                match first {
                    Some(a) => {
                        self.nets.union(a, f.handle);
                    }
                    None => first = Some(f.handle),
                }
            }
        }

        // Contact cuts join the conducting layers stacked above each
        // other *at the same position*: two fragments connect only
        // where both overlap the cut and each other (a wide cut does
        // not bridge laterally disjoint geometry).
        for c in cov.cut.iter() {
            let metal: Vec<Fragment> = overlapping(&cur.metal, *c).copied().collect();
            let poly: Vec<Fragment> = overlapping(&cur.poly, *c).copied().collect();
            let diff: Vec<Fragment> = overlapping(&cur.diff, *c).copied().collect();
            for (above, below) in [(&metal, &poly), (&metal, &diff), (&poly, &diff)] {
                for fa in above {
                    for fb in below {
                        let lo = fa.span.lo.max(fb.span.lo).max(c.lo);
                        let hi = fa.span.hi.min(fb.span.hi).min(c.hi);
                        if hi > lo {
                            self.nets.union(fa.handle, fb.handle);
                        }
                    }
                }
            }
        }

        self.resolve_labels(labels, lo, hi, &cur);

        if let Some(window) = self.options.window {
            self.collect_boundary(&cur, window);
        }

        self.count(Counter::Fragments, cur.fragment_count() as u64);
        self.note_unions();
        cur
    }

    /// Attaches user names to the nets under them.
    fn resolve_labels(
        &mut self,
        labels: &mut Vec<FlatLabel>,
        lo: Coord,
        hi: Coord,
        cur: &StripFragments,
    ) {
        if labels.is_empty() {
            return;
        }
        let mut unresolved = 0u64;
        let nets = &mut self.nets;
        labels.retain(|label| {
            if label.at.y > hi {
                // The sweep has passed this label without finding
                // geometry under it.
                unresolved += 1;
                return false;
            }
            if label.at.y < lo {
                return true; // a later strip will cover it
            }
            let candidates: &[&[Fragment]] = match label.layer {
                Some(Layer::Diffusion) => &[&cur.diff],
                Some(Layer::Poly) => &[&cur.poly],
                Some(Layer::Metal) => &[&cur.metal],
                // Labels on non-conducting layers or without a layer
                // bind to whatever conducting geometry is under them.
                _ => &[&cur.diff, &cur.poly, &cur.metal],
            };
            for list in candidates {
                let x = label.at.x;
                let idx = list.partition_point(|f| f.span.hi < x);
                if let Some(f) = list.get(idx) {
                    if f.span.lo <= x && x <= f.span.hi {
                        nets.add_name(f.handle, label.name.clone());
                        return false;
                    }
                }
            }
            // Keep boundary labels (y == lo) alive: geometry starting
            // exactly at the strip's bottom edge may carry them.
            label.at.y == lo
        });
        self.count(Counter::UnresolvedLabels, unresolved);
    }

    /// Records fragments touching the window boundary.
    fn collect_boundary(&mut self, cur: &StripFragments, window: Rect) {
        let lists: [(&[Fragment], Option<Layer>, bool); 4] = [
            (&cur.metal, Some(Layer::Metal), false),
            (&cur.poly, Some(Layer::Poly), false),
            (&cur.diff, Some(Layer::Diffusion), false),
            (&cur.channel, None, true),
        ];
        for (frags, layer, is_channel) in lists {
            for f in frags {
                if cur.y_top == window.y_max {
                    self.raw_contacts.push(RawContact {
                        face: Face::Top,
                        layer,
                        span: f.span,
                        handle: f.handle,
                        is_channel,
                    });
                }
                if cur.y_bot == window.y_min {
                    self.raw_contacts.push(RawContact {
                        face: Face::Bottom,
                        layer,
                        span: f.span,
                        handle: f.handle,
                        is_channel,
                    });
                }
                if f.span.lo == window.x_min {
                    self.raw_contacts.push(RawContact {
                        face: Face::Left,
                        layer,
                        span: Interval::new(cur.y_bot, cur.y_top),
                        handle: f.handle,
                        is_channel,
                    });
                }
                if f.span.hi == window.x_max {
                    self.raw_contacts.push(RawContact {
                        face: Face::Right,
                        layer,
                        span: Interval::new(cur.y_bot, cur.y_top),
                        handle: f.handle,
                        is_channel,
                    });
                }
            }
        }
    }

    /// Builds the output netlist, device list, and window interface.
    fn finalize(&mut self, name: &str) -> (Netlist, Option<WindowExtraction>) {
        let (net_map, net_count) = self.nets.compress();
        let mut netlist = Netlist::new();
        netlist.name = name.to_string();
        for _ in 0..net_count {
            netlist.add_net();
        }

        // Move per-root net data into the output. (Indexing is the
        // point here: h is a union-find handle.)
        let mut seen = vec![false; net_count];
        #[allow(clippy::needless_range_loop)] // h is a union-find handle
        for h in 0..net_map.len() {
            let dense = net_map[h] as usize;
            if seen[dense] {
                continue;
            }
            seen[dense] = true;
            let id = NetId(dense as u32);
            let data = self.nets.take_data(h as u32);
            for net_name in data.names {
                netlist.add_name(id, net_name);
            }
            if let Some(bb) = data.bbox {
                netlist.set_location(id, Point::new(bb.x_min, bb.y_max));
            }
            if !data.geometry.is_empty() {
                // Coalesce the strip-sliced fragments per layer.
                for layer in Layer::ALL {
                    let rects: Vec<Rect> = data
                        .geometry
                        .iter()
                        .filter(|(l, _)| *l == layer)
                        .map(|(_, r)| *r)
                        .collect();
                    for r in ace_geom::merge_boxes(&rects) {
                        netlist.add_geometry(id, layer, r);
                    }
                }
            }
        }

        // Which devices are partial (window mode)?
        let mut partial_roots: Vec<u32> = self
            .raw_contacts
            .iter()
            .filter(|c| c.is_channel)
            .map(|c| c.handle)
            .collect();
        for r in &mut partial_roots {
            *r = self.devices.find(*r);
        }

        // Finalize devices in ascending root order.
        let mut device_index_by_root: HashMap<u32, usize> = HashMap::new();
        let mut details = Vec::new();
        for root in self.devices.roots() {
            let mut multi = false;
            let Some((device, acc)) =
                self.devices
                    .finalize(root, &mut self.nets, &net_map, &mut multi)
            else {
                continue;
            };
            if multi {
                self.count(Counter::MultiTerminalDevices, 1);
            }
            let index = netlist.device_count();
            device_index_by_root.insert(root, index);
            if self.options.window.is_some() {
                details.push(DeviceDetail {
                    area: acc.area,
                    bbox: acc.bbox.expect("finalized device has bbox"),
                    depletion: acc.depletion,
                    terminals: acc
                        .terminals
                        .iter()
                        .map(|&(h, len)| (NetId(net_map[self.nets.find(h) as usize]), len))
                        .collect(),
                    gate: device.gate,
                    partial: partial_roots.contains(&root),
                });
            }
            netlist.add_device(device);
        }

        self.note_unions();

        let window = self.options.window.map(|rect| {
            let mut contacts: Vec<BoundaryContact> = self
                .raw_contacts
                .iter()
                .filter_map(|raw| {
                    let signal = if raw.is_channel {
                        let root = self.devices.find(raw.handle);
                        BoundarySignal::Channel(*device_index_by_root.get(&root)?)
                    } else {
                        BoundarySignal::Net(NetId(net_map[self.nets.find(raw.handle) as usize]))
                    };
                    Some(BoundaryContact {
                        face: raw.face,
                        layer: raw.layer,
                        span: raw.span,
                        signal,
                    })
                })
                .collect();
            coalesce_contacts(&mut contacts);
            WindowExtraction {
                window: rect,
                contacts,
                device_details: details,
            }
        });

        (netlist, window)
    }
}

/// Merges adjacent boundary contacts carrying the same signal on the
/// same face and layer.
fn coalesce_contacts(contacts: &mut Vec<BoundaryContact>) {
    contacts.sort_by_key(|c| (c.face, c.layer.map(|l| l.index()), c.span.lo, c.span.hi));
    let mut write = 0usize;
    for read in 0..contacts.len() {
        if write > 0 {
            let prev = contacts[write - 1];
            let cur = contacts[read];
            if prev.face == cur.face
                && prev.layer == cur.layer
                && prev.signal == cur.signal
                && prev.span.hi >= cur.span.lo
            {
                contacts[write - 1].span = prev.span.hull(&cur.span);
                continue;
            }
        }
        contacts[write] = contacts[read];
        write += 1;
    }
    contacts.truncate(write);
}

/// Sorts a batch of incoming boxes by x (step 2.a).
fn sort_by_x(boxes: &mut [ActiveBox], strategy: SortStrategy) {
    match strategy {
        SortStrategy::Insertion => {
            for i in 1..boxes.len() {
                let key = boxes[i];
                let mut j = i;
                while j > 0 && boxes[j - 1].x_min > key.x_min {
                    boxes[j] = boxes[j - 1];
                    j -= 1;
                }
                boxes[j] = key;
            }
        }
        SortStrategy::Bin => {
            bin_sort(boxes);
        }
    }
}

/// Bucket sort on x_min, with insertion sort inside buckets.
fn bin_sort(boxes: &mut [ActiveBox]) {
    let n = boxes.len();
    if n < 2 {
        return;
    }
    let min = boxes.iter().map(|b| b.x_min).min().expect("non-empty");
    let max = boxes.iter().map(|b| b.x_min).max().expect("non-empty");
    if min == max {
        return;
    }
    let range = (max - min) as i128 + 1;
    let mut buckets: Vec<Vec<ActiveBox>> = vec![Vec::new(); n];
    for &b in boxes.iter() {
        let idx = ((b.x_min - min) as i128 * n as i128 / range) as usize;
        buckets[idx.min(n - 1)].push(b);
    }
    let mut out = 0usize;
    for bucket in &mut buckets {
        bucket.sort_unstable_by_key(|b| b.x_min);
        for &b in bucket.iter() {
            boxes[out] = b;
            out += 1;
        }
    }
}

/// Merges a sorted batch into a sorted active list (both by x_min).
fn merge_sorted(list: &mut Vec<ActiveBox>, fresh: &[ActiveBox]) {
    if list.is_empty() {
        list.extend_from_slice(fresh);
        return;
    }
    let mut merged = Vec::with_capacity(list.len() + fresh.len());
    let (mut i, mut j) = (0, 0);
    while i < list.len() && j < fresh.len() {
        if list[i].x_min <= fresh[j].x_min {
            merged.push(list[i]);
            i += 1;
        } else {
            merged.push(fresh[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&list[i..]);
    merged.extend_from_slice(&fresh[j..]);
    *list = merged;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abox(x_min: Coord, x_max: Coord) -> ActiveBox {
        ActiveBox {
            x_min,
            x_max,
            y_bot: 0,
        }
    }

    #[test]
    fn insertion_sort_orders() {
        let mut v = vec![abox(5, 6), abox(1, 2), abox(3, 4), abox(1, 9)];
        sort_by_x(&mut v, SortStrategy::Insertion);
        let xs: Vec<Coord> = v.iter().map(|b| b.x_min).collect();
        assert_eq!(xs, vec![1, 1, 3, 5]);
    }

    #[test]
    fn bin_sort_matches_insertion_sort() {
        let mut a: Vec<ActiveBox> = (0..100)
            .map(|i| abox((i * 7919) % 251 - 100, (i * 7919) % 251 - 90))
            .collect();
        let mut b = a.clone();
        sort_by_x(&mut a, SortStrategy::Insertion);
        sort_by_x(&mut b, SortStrategy::Bin);
        let xa: Vec<Coord> = a.iter().map(|x| x.x_min).collect();
        let xb: Vec<Coord> = b.iter().map(|x| x.x_min).collect();
        assert_eq!(xa, xb);
    }

    #[test]
    fn bin_sort_degenerate_cases() {
        let mut empty: Vec<ActiveBox> = vec![];
        bin_sort(&mut empty);
        let mut single = vec![abox(5, 10)];
        bin_sort(&mut single);
        let mut same = vec![abox(5, 10), abox(5, 20), abox(5, 1)];
        bin_sort(&mut same);
        assert_eq!(same.len(), 3);
    }

    #[test]
    fn merge_sorted_interleaves() {
        let mut list = vec![abox(0, 1), abox(10, 11), abox(20, 21)];
        let fresh = vec![abox(5, 6), abox(15, 16), abox(25, 26)];
        merge_sorted(&mut list, &fresh);
        let xs: Vec<Coord> = list.iter().map(|b| b.x_min).collect();
        assert_eq!(xs, vec![0, 5, 10, 15, 20, 25]);
    }

    #[test]
    fn coalesce_contacts_merges_touching_same_signal() {
        let c = |lo, hi, id: u32| BoundaryContact {
            face: Face::Left,
            layer: Some(Layer::Metal),
            span: Interval::new(lo, hi),
            signal: BoundarySignal::Net(NetId(id)),
        };
        let mut v = vec![c(0, 10, 1), c(10, 20, 1), c(30, 40, 1), c(20, 30, 2)];
        coalesce_contacts(&mut v);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].span, Interval::new(0, 20));
    }
}
