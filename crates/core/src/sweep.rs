use std::collections::HashMap;

use ace_geom::{Coord, Interval, IntervalMap, IntervalSet, Layer, LayerMap, Point, Rect};
use ace_layout::{FlatLabel, GeometryFeed, LayerBox};
use ace_wirelist::{NetId, Netlist};

use crate::devices::DeviceTable;
use crate::extract::Extraction;
use crate::nets::NetTable;
use crate::probe::{Counter, CounterProbe, Lane, NullProbe, Probe, Span};
use crate::report::{ExtractOptions, SortStrategy};
use crate::strip::{
    abutting, find_containing, overlap_pairs_into, overlapping, Fragment, StripCoverage,
    StripFragments,
};
use crate::window::{BoundaryContact, BoundarySignal, DeviceDetail, Face, WindowExtraction};

/// One incoming box, reduced to what the active list stores: its x
/// extent and its bottom edge.
type ActiveEntry = (Interval, Coord);

/// A boundary contact recorded during the sweep, before handles are
/// resolved to output ids.
#[derive(Debug, Clone, Copy)]
struct RawContact {
    face: Face,
    layer: Option<Layer>,
    span: Interval,
    handle: u32,
    is_channel: bool,
}

/// Reusable per-stop buffers, allocated once per sweep and threaded
/// through the stop loop.
///
/// Every temporary the old stop loop allocated fresh — the incoming
/// per-layer batches, the six coverage sets, the strip fragments, the
/// overlap-pair lists, the per-cut fragment collections — lives here
/// instead and is `clear()`ed (capacity kept) at each reuse, so the
/// steady-state sweep performs no per-stop heap allocation: only the
/// net/device tables grow, amortized.
#[derive(Default)]
struct SweepScratch {
    /// Labels drained from the front-end, awaiting resolution.
    pending_labels: Vec<FlatLabel>,
    /// Boxes fetched at the current stop.
    new_boxes: Vec<LayerBox>,
    /// The stop's incoming boxes distributed per layer.
    incoming: LayerMap<Vec<ActiveEntry>>,
    /// Bucket storage for [`SortStrategy::Bin`].
    bins: Vec<Vec<ActiveEntry>>,
    /// Per-strip layer coverage.
    cov: StripCoverage,
    /// diffusion ∧ poly — shared intermediate of the device algebra.
    poly_diff: IntervalSet,
    /// Transistor channels: diffusion ∧ poly ∧ ¬buried.
    channels: IntervalSet,
    /// Conducting diffusion: raw diffusion minus channels.
    diff: IntervalSet,
    /// Buried contacts: diffusion ∧ poly ∧ buried.
    buried_joins: IntervalSet,
    /// The previous strip's fragments (linked against `cur`).
    prev: StripFragments,
    /// The strip being built; swapped with `prev` when done.
    cur: StripFragments,
    /// Overlap pairs between consecutive strips.
    pairs: Vec<(u32, u32, Coord)>,
    /// Fragments overlapping the contact cut being processed.
    cut_metal: Vec<Fragment>,
    cut_poly: Vec<Fragment>,
    cut_diff: Vec<Fragment>,
    /// Cut-area attribution pieces: (net root, clipped x-extent).
    cut_pieces: Vec<(u32, Coord, Coord)>,
}

/// The scanline extraction engine (the paper's back-end).
///
/// Feed geometry in with any [`GeometryFeed`] and call
/// [`Extractor::run`]; see the crate docs for the algorithm and
/// [`crate::extract_library`] for the usual entry point.
///
/// The active lists are [`IntervalMap`]s — struct-of-arrays sorted
/// interval structures — with a cached per-layer maximum bottom edge
/// replacing the old per-layer heaps: the sweep stops at every box
/// bottom, so a layer's next exit is always its maximum live bottom,
/// and the retain pass that removes exiting boxes recomputes the new
/// maximum in the same scan.
///
/// Every sweep reports its work through the probe layer: an internal
/// [`CounterProbe`] aggregates the events into the final
/// [`crate::ExtractionReport`], and an optional external [`Probe`]
/// (see [`Extractor::with_probe`]) receives the same stream — so an
/// outside `CounterProbe` always agrees with the report it shadows.
pub struct Extractor<'p> {
    options: ExtractOptions,
    lane: Lane,
    probe: &'p dyn Probe,
    counters: CounterProbe,
    nets: NetTable,
    devices: DeviceTable,
    active: LayerMap<IntervalMap<Coord>>,
    // Cached largest live bottom per layer (`Coord::MIN` when the
    // layer is empty), kept in lockstep with `active`. This keeps the
    // next scanline stop O(1) per layer instead of a heap in lockstep
    // with the list.
    max_bottom: LayerMap<Coord>,
    raw_contacts: Vec<RawContact>,
    // Union count already emitted; unions are reported as deltas so
    // cross-lane aggregation is a plain sum.
    last_unions: u64,
    max_active_seen: usize,
}

impl Extractor<'static> {
    /// Creates an extractor with the given options.
    pub fn new(options: ExtractOptions) -> Self {
        Extractor::with_probe(options, &NullProbe)
    }
}

impl<'p> Extractor<'p> {
    /// Creates an extractor that mirrors every probe event to
    /// `probe` in addition to its internal aggregate.
    pub fn with_probe(options: ExtractOptions, probe: &'p dyn Probe) -> Self {
        Extractor {
            options,
            lane: Lane::MAIN,
            probe,
            counters: CounterProbe::new(),
            nets: NetTable::new(options.geometry_output),
            devices: DeviceTable::new(options.geometry_output || options.window.is_some()),
            active: LayerMap::default(),
            max_bottom: LayerMap::from_fn(|_| Coord::MIN),
            raw_contacts: Vec::new(),
            last_unions: 0,
            max_active_seen: 0,
        }
    }

    /// Tags this sweep's events with `lane` (band workers use their
    /// band's lane; the default is [`Lane::MAIN`]).
    pub fn on_lane(mut self, lane: Lane) -> Self {
        self.lane = lane;
        self
    }

    fn enter(&self, span: Span) {
        self.counters.enter(self.lane, span);
        self.probe.enter(self.lane, span);
    }

    fn exit_span(&self, span: Span) {
        self.counters.exit(self.lane, span);
        self.probe.exit(self.lane, span);
    }

    fn count(&self, counter: Counter, delta: u64) {
        if delta == 0 {
            return;
        }
        self.counters.add(self.lane, counter, delta);
        self.probe.add(self.lane, counter, delta);
    }

    fn gauge(&self, counter: Counter, value: u64) {
        self.counters.gauge(self.lane, counter, value);
        self.probe.gauge(self.lane, counter, value);
    }

    /// Emits net unions performed since the last call as a delta.
    fn note_unions(&mut self) {
        let total = self.nets.union_count();
        let delta = total - self.last_unions;
        if delta > 0 {
            self.last_unions = total;
            self.count(Counter::NetUnions, delta);
        }
    }

    /// Runs the sweep to completion and produces the extraction.
    ///
    /// `name` becomes the output netlist's title.
    pub fn run(mut self, feed: &mut dyn GeometryFeed, name: &str) -> Extraction {
        self.enter(Span::Extract);
        let mut scratch = SweepScratch::default();

        // Step 1: set the scanline to the top of the chip.
        let mut cursor = {
            self.enter(Span::FrontEnd);
            let top = feed.peek_top();
            feed.drain_new_labels(&mut scratch.pending_labels);
            self.exit_span(Span::FrontEnd);
            top
        };

        // Step 2: sweep.
        while let Some(y) = cursor {
            self.count(Counter::ScanlineStops, 1);

            // 2.a: fetch geometry whose top coincides with the
            // scanline.
            self.enter(Span::FrontEnd);
            scratch.new_boxes.clear();
            feed.pop_at(y, &mut scratch.new_boxes);
            feed.drain_new_labels(&mut scratch.pending_labels);
            self.exit_span(Span::FrontEnd);
            self.count(Counter::Boxes, scratch.new_boxes.len() as u64);

            // 2.b: exits and insertions.
            self.enter(Span::Insert);
            let max_bottom = self.insert_new_geometry(y, &mut scratch);
            self.exit_span(Span::Insert);

            // 2.d: next scanline position — the larger of the next
            // front-end top and the largest active bottom.
            self.enter(Span::FrontEnd);
            let feed_top = feed.peek_top();
            feed.drain_new_labels(&mut scratch.pending_labels);
            self.exit_span(Span::FrontEnd);
            let next = match (feed_top, max_bottom) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };

            // 2.c: compute devices over the strip [next, y].
            if let Some(lo) = next {
                debug_assert!(lo < y, "scanline must strictly descend");
                self.enter(Span::Devices);
                self.process_strip(lo, y, &mut scratch);
                self.exit_span(Span::Devices);
            }
            cursor = next;
        }

        self.count(
            Counter::UnresolvedLabels,
            scratch.pending_labels.len() as u64,
        );

        // Step 3: output devices and nets.
        self.enter(Span::Output);
        let (netlist, window) = self.finalize(name);
        self.exit_span(Span::Output);
        self.exit_span(Span::Extract);

        // The report is a view over the sweep's own counter aggregate.
        Extraction {
            netlist,
            report: self.counters.report(),
            window,
        }
    }

    /// Removes boxes whose bottom coincides with the scanline, sorts
    /// the incoming geometry by x, and merges it into the active
    /// lists. Returns the largest active bottom.
    fn insert_new_geometry(&mut self, y: Coord, s: &mut SweepScratch) -> Option<Coord> {
        // Distribute incoming boxes per layer.
        for layer in Layer::ALL {
            s.incoming[layer].clear();
        }
        for b in &s.new_boxes {
            if b.layer == Layer::Glass {
                continue; // overglass does not participate
            }
            debug_assert_eq!(b.rect.y_max, y);
            if b.rect.is_empty() {
                continue;
            }
            s.incoming[b.layer].push((Interval::new(b.rect.x_min, b.rect.x_max), b.rect.y_min));
        }

        let mut max_bottom: Option<Coord> = None;
        let mut total_active = 0usize;
        for layer in Layer::ALL {
            let list = &mut self.active[layer];
            let cached = &mut self.max_bottom[layer];
            // Exits: bottom coincides with the scanline. The sweep
            // stops at every bottom, so exits happen exactly when the
            // layer's cached maximum bottom is the current stop; the
            // retain pass recomputes the new maximum in the same scan.
            if *cached == y {
                let mut new_max = Coord::MIN;
                list.retain(|_, &bot| {
                    if bot < y {
                        new_max = new_max.max(bot);
                        true
                    } else {
                        debug_assert_eq!(bot, y, "missed an earlier exit");
                        false
                    }
                });
                *cached = new_max;
            }
            let fresh = &mut s.incoming[layer];
            if !fresh.is_empty() {
                sort_entries(fresh, self.options.sort, &mut s.bins);
                for &(_, bot) in fresh.iter() {
                    *cached = (*cached).max(bot);
                }
                list.merge_sorted(fresh);
            }
            if *cached != Coord::MIN {
                max_bottom = Some(match max_bottom {
                    Some(m) => m.max(*cached),
                    None => *cached,
                });
            }
            total_active += list.len();
        }
        if total_active > self.max_active_seen {
            self.max_active_seen = total_active;
            self.gauge(Counter::MaxActive, total_active as u64);
        }
        max_bottom
    }

    /// Processes one strip: builds coverage and fragments, links them
    /// to the previous strip, finds channels, contacts, and labels.
    fn process_strip(&mut self, lo: Coord, hi: Coord, s: &mut SweepScratch) {
        let height = hi - lo;
        debug_assert!(height > 0);

        let SweepScratch {
            pending_labels,
            cov,
            poly_diff,
            channels,
            diff,
            buried_joins,
            prev,
            cur,
            pairs,
            cut_metal,
            cut_poly,
            cut_diff,
            cut_pieces,
            ..
        } = s;

        // Layer coverage from the active lists (in lo order, so the
        // IntervalSet inserts are effectively appends).
        coverage_into(&self.active[Layer::Metal], &mut cov.metal);
        coverage_into(&self.active[Layer::Poly], &mut cov.poly);
        coverage_into(&self.active[Layer::Diffusion], &mut cov.diff_raw);
        coverage_into(&self.active[Layer::Buried], &mut cov.buried);
        coverage_into(&self.active[Layer::Implant], &mut cov.implant);
        coverage_into(&self.active[Layer::Cut], &mut cov.cut);

        // The paper's device algebra, on recycled sets: channels =
        // diff ∧ poly ∧ ¬buried, conducting diffusion = diff −
        // channels, buried contacts = diff ∧ poly ∧ buried.
        cov.diff_raw.intersection_into(&cov.poly, poly_diff);
        poly_diff.subtract_into(&cov.buried, channels);
        cov.diff_raw.subtract_into(channels, diff);
        poly_diff.intersection_into(&cov.buried, buried_joins);

        // Fragments with fresh handles; conducting fragments extend
        // their net's bounding box (and geometry when enabled).
        cur.y_top = hi;
        cur.y_bot = lo;
        cur.metal.clear();
        cur.poly.clear();
        cur.diff.clear();
        cur.channel.clear();
        for (set, layer, frags) in [
            (&cov.metal, Layer::Metal, &mut cur.metal),
            (&cov.poly, Layer::Poly, &mut cur.poly),
            (&*diff, Layer::Diffusion, &mut cur.diff),
        ] {
            for iv in set.iter() {
                let handle = self.nets.fresh();
                self.nets
                    .add_geometry(handle, layer, Rect::new(iv.lo, lo, iv.hi, hi));
                frags.push(Fragment { span: *iv, handle });
            }
        }
        for iv in channels.iter() {
            cur.channel.push(Fragment {
                span: *iv,
                handle: self.devices.fresh(Rect::new(iv.lo, lo, iv.hi, hi)),
            });
        }

        // Vertical links to the strip above (positive x-overlap).
        // Every pair shares an edge of the overlap's length: the two
        // fragments each counted it in their perimeter, so it is
        // subtracted once to keep the net's union perimeter exact.
        overlap_pairs_into(&prev.metal, &cur.metal, pairs);
        for &(a, b, len) in pairs.iter() {
            let root = self.nets.union(a, b);
            self.nets.sub_perimeter(root, Layer::Metal, len);
        }
        overlap_pairs_into(&prev.poly, &cur.poly, pairs);
        for &(a, b, len) in pairs.iter() {
            let root = self.nets.union(a, b);
            self.nets.sub_perimeter(root, Layer::Poly, len);
        }
        overlap_pairs_into(&prev.diff, &cur.diff, pairs);
        for &(a, b, len) in pairs.iter() {
            let root = self.nets.union(a, b);
            self.nets.sub_perimeter(root, Layer::Diffusion, len);
        }
        overlap_pairs_into(&prev.channel, &cur.channel, pairs);
        for &(a, b, _) in pairs.iter() {
            self.devices.union(a, b, &mut self.nets);
        }
        // Terminals along horizontal channel edges: diffusion above
        // channel, or channel above diffusion.
        overlap_pairs_into(&prev.diff, &cur.channel, pairs);
        for &(d, k, len) in pairs.iter() {
            self.devices.add_terminal_contact(k, d, len);
        }
        overlap_pairs_into(&prev.channel, &cur.diff, pairs);
        for &(k, d, len) in pairs.iter() {
            self.devices.add_terminal_contact(k, d, len);
        }

        // Per-channel work: gate poly, implant, vertical-edge
        // terminals.
        for k in &cur.channel {
            if let Some(p) = find_containing(&cur.poly, k.span) {
                self.devices.set_gate(k.handle, p.handle, &mut self.nets);
            }
            if cov.implant.intersects(&k.span) {
                self.devices.set_depletion(k.handle);
            }
            let (left, right) = abutting(&cur.diff, k.span);
            if let Some(f) = left {
                self.devices
                    .add_terminal_contact(k.handle, f.handle, height);
            }
            if let Some(f) = right {
                self.devices
                    .add_terminal_contact(k.handle, f.handle, height);
            }
        }

        // Buried contacts join poly to diffusion with no transistor.
        for bc in buried_joins.iter() {
            let mut first: Option<u32> = None;
            for f in overlapping(&cur.diff, *bc).chain(overlapping(&cur.poly, *bc)) {
                match first {
                    Some(a) => {
                        self.nets.union(a, f.handle);
                    }
                    None => first = Some(f.handle),
                }
            }
        }

        // Contact cuts join the conducting layers stacked above each
        // other *at the same position*: two fragments connect only
        // where both overlap the cut and each other (a wide cut does
        // not bridge laterally disjoint geometry).
        for c in cov.cut.iter() {
            cut_metal.clear();
            cut_metal.extend(overlapping(&cur.metal, *c).copied());
            cut_poly.clear();
            cut_poly.extend(overlapping(&cur.poly, *c).copied());
            cut_diff.clear();
            cut_diff.extend(overlapping(&cur.diff, *c).copied());
            for (above, below) in [
                (&*cut_metal, &*cut_poly),
                (&*cut_metal, &*cut_diff),
                (&*cut_poly, &*cut_diff),
            ] {
                for fa in above {
                    for fb in below {
                        let lo = fa.span.lo.max(fb.span.lo).max(c.lo);
                        let hi = fa.span.hi.min(fb.span.hi).min(c.hi);
                        if hi > lo {
                            self.nets.union(fa.handle, fb.handle);
                        }
                    }
                }
            }
            // Attribute the cut's area to the nets under it: per net
            // root, the union of the conducting spans clipped to the
            // cut, times the strip height. Layers stacked at the same
            // x were just unioned, so grouping by root de-duplicates
            // their overlap.
            cut_pieces.clear();
            for frags in [&*cut_metal, &*cut_poly, &*cut_diff] {
                for f in frags {
                    let lo = f.span.lo.max(c.lo);
                    let hi = f.span.hi.min(c.hi);
                    if hi > lo {
                        cut_pieces.push((self.nets.find(f.handle), lo, hi));
                    }
                }
            }
            cut_pieces.sort_unstable();
            let mut i = 0usize;
            while i < cut_pieces.len() {
                let (root, mut run_lo, mut run_hi) = cut_pieces[i];
                let mut len = 0;
                i += 1;
                while i < cut_pieces.len() && cut_pieces[i].0 == root {
                    let (_, lo2, hi2) = cut_pieces[i];
                    if lo2 > run_hi {
                        len += run_hi - run_lo;
                        run_lo = lo2;
                        run_hi = hi2;
                    } else {
                        run_hi = run_hi.max(hi2);
                    }
                    i += 1;
                }
                len += run_hi - run_lo;
                self.nets.add_cut_area(root, len * height);
            }
        }

        self.resolve_labels(pending_labels, lo, hi, cur);

        if let Some(window) = self.options.window {
            self.collect_boundary(cur, window);
        }

        self.count(Counter::Fragments, cur.fragment_count() as u64);
        self.note_unions();
        std::mem::swap(prev, cur);
    }

    /// Attaches user names to the nets under them.
    fn resolve_labels(
        &mut self,
        labels: &mut Vec<FlatLabel>,
        lo: Coord,
        hi: Coord,
        cur: &StripFragments,
    ) {
        if labels.is_empty() {
            return;
        }
        let mut unresolved = 0u64;
        let nets = &mut self.nets;
        labels.retain(|label| {
            if label.at.y > hi {
                // The sweep has passed this label without finding
                // geometry under it.
                unresolved += 1;
                return false;
            }
            if label.at.y < lo {
                return true; // a later strip will cover it
            }
            let candidates: &[&[Fragment]] = match label.layer {
                Some(Layer::Diffusion) => &[&cur.diff],
                Some(Layer::Poly) => &[&cur.poly],
                Some(Layer::Metal) => &[&cur.metal],
                // Labels on non-conducting layers or without a layer
                // bind to whatever conducting geometry is under them.
                _ => &[&cur.diff, &cur.poly, &cur.metal],
            };
            for list in candidates {
                let x = label.at.x;
                let idx = list.partition_point(|f| f.span.hi < x);
                if let Some(f) = list.get(idx) {
                    if f.span.lo <= x && x <= f.span.hi {
                        nets.add_name(f.handle, label.name.clone());
                        return false;
                    }
                }
            }
            // Keep boundary labels (y == lo) alive: geometry starting
            // exactly at the strip's bottom edge may carry them.
            label.at.y == lo
        });
        self.count(Counter::UnresolvedLabels, unresolved);
    }

    /// Records fragments touching the window boundary.
    fn collect_boundary(&mut self, cur: &StripFragments, window: Rect) {
        let lists: [(&[Fragment], Option<Layer>, bool); 4] = [
            (&cur.metal, Some(Layer::Metal), false),
            (&cur.poly, Some(Layer::Poly), false),
            (&cur.diff, Some(Layer::Diffusion), false),
            (&cur.channel, None, true),
        ];
        for (frags, layer, is_channel) in lists {
            for f in frags {
                if cur.y_top == window.y_max {
                    self.raw_contacts.push(RawContact {
                        face: Face::Top,
                        layer,
                        span: f.span,
                        handle: f.handle,
                        is_channel,
                    });
                }
                if cur.y_bot == window.y_min {
                    self.raw_contacts.push(RawContact {
                        face: Face::Bottom,
                        layer,
                        span: f.span,
                        handle: f.handle,
                        is_channel,
                    });
                }
                if f.span.lo == window.x_min {
                    self.raw_contacts.push(RawContact {
                        face: Face::Left,
                        layer,
                        span: Interval::new(cur.y_bot, cur.y_top),
                        handle: f.handle,
                        is_channel,
                    });
                }
                if f.span.hi == window.x_max {
                    self.raw_contacts.push(RawContact {
                        face: Face::Right,
                        layer,
                        span: Interval::new(cur.y_bot, cur.y_top),
                        handle: f.handle,
                        is_channel,
                    });
                }
            }
        }
    }

    /// Builds the output netlist, device list, and window interface.
    fn finalize(&mut self, name: &str) -> (Netlist, Option<WindowExtraction>) {
        let (net_map, net_count) = self.nets.compress();
        let mut netlist = Netlist::new();
        netlist.name = name.to_string();
        for _ in 0..net_count {
            netlist.add_net();
        }

        // Move per-root net data into the output. (Indexing is the
        // point here: h is a union-find handle.)
        let mut seen = vec![false; net_count];
        #[allow(clippy::needless_range_loop)] // h is a union-find handle
        for h in 0..net_map.len() {
            let dense = net_map[h] as usize;
            if seen[dense] {
                continue;
            }
            seen[dense] = true;
            let id = NetId(dense as u32);
            let data = self.nets.take_data(h as u32);
            for net_name in data.names {
                netlist.add_name(id, net_name);
            }
            if let Some(bb) = data.bbox {
                netlist.set_location(id, Point::new(bb.x_min, bb.y_max));
            }
            if !data.geometry.is_empty() {
                // Coalesce the strip-sliced fragments per layer.
                for layer in Layer::ALL {
                    let rects: Vec<Rect> = data
                        .geometry
                        .iter()
                        .filter(|(l, _)| *l == layer)
                        .map(|(_, r)| *r)
                        .collect();
                    for r in ace_geom::merge_boxes(&rects) {
                        netlist.add_geometry(id, layer, r);
                    }
                }
            }
            netlist.add_parasitics(id, &data.parasitics);
        }

        // Which devices are partial (window mode)?
        let mut partial_roots: Vec<u32> = self
            .raw_contacts
            .iter()
            .filter(|c| c.is_channel)
            .map(|c| c.handle)
            .collect();
        for r in &mut partial_roots {
            *r = self.devices.find(*r);
        }

        // Finalize devices in ascending root order.
        let mut device_index_by_root: HashMap<u32, usize> = HashMap::new();
        let mut details = Vec::new();
        for root in self.devices.roots() {
            let mut multi = false;
            let Some((device, acc)) =
                self.devices
                    .finalize(root, &mut self.nets, &net_map, &mut multi)
            else {
                continue;
            };
            if multi {
                self.count(Counter::MultiTerminalDevices, 1);
            }
            let index = netlist.device_count();
            device_index_by_root.insert(root, index);
            if self.options.window.is_some() {
                details.push(DeviceDetail {
                    area: acc.area,
                    bbox: acc.bbox.expect("finalized device has bbox"),
                    depletion: acc.depletion,
                    terminals: acc
                        .terminals
                        .iter()
                        .map(|&(h, len)| (NetId(net_map[self.nets.find(h) as usize]), len))
                        .collect(),
                    gate: device.gate,
                    partial: partial_roots.contains(&root),
                });
            }
            netlist.add_device(device);
        }

        self.note_unions();

        let window = self.options.window.map(|rect| {
            let mut contacts: Vec<BoundaryContact> = self
                .raw_contacts
                .iter()
                .filter_map(|raw| {
                    let signal = if raw.is_channel {
                        let root = self.devices.find(raw.handle);
                        BoundarySignal::Channel(*device_index_by_root.get(&root)?)
                    } else {
                        BoundarySignal::Net(NetId(net_map[self.nets.find(raw.handle) as usize]))
                    };
                    Some(BoundaryContact {
                        face: raw.face,
                        layer: raw.layer,
                        span: raw.span,
                        signal,
                    })
                })
                .collect();
            coalesce_contacts(&mut contacts);
            WindowExtraction {
                window: rect,
                contacts,
                device_details: details,
            }
        });

        (netlist, window)
    }
}

/// Rebuilds an [`IntervalSet`] from an active list's x extents
/// without allocating (the set keeps its capacity across strips).
fn coverage_into(active: &IntervalMap<Coord>, out: &mut IntervalSet) {
    out.clear();
    for iv in active.intervals() {
        out.insert(iv);
    }
}

/// Merges adjacent boundary contacts carrying the same signal on the
/// same face and layer.
fn coalesce_contacts(contacts: &mut Vec<BoundaryContact>) {
    // The key totally orders contacts (signal included), so the
    // unstable sort is deterministic.
    contacts.sort_unstable_by_key(|c| {
        let signal = match c.signal {
            BoundarySignal::Net(n) => (0u8, n.0 as usize),
            BoundarySignal::Channel(i) => (1u8, i),
        };
        (
            c.face,
            c.layer.map(|l| l.index()),
            c.span.lo,
            c.span.hi,
            signal,
        )
    });
    let mut write = 0usize;
    for read in 0..contacts.len() {
        if write > 0 {
            let prev = contacts[write - 1];
            let cur = contacts[read];
            if prev.face == cur.face
                && prev.layer == cur.layer
                && prev.signal == cur.signal
                && prev.span.hi >= cur.span.lo
            {
                contacts[write - 1].span = prev.span.hull(&cur.span);
                continue;
            }
        }
        contacts[write] = contacts[read];
        write += 1;
    }
    contacts.truncate(write);
}

/// Sorts a batch of incoming boxes by x (step 2.a).
fn sort_entries(
    entries: &mut [ActiveEntry],
    strategy: SortStrategy,
    bins: &mut Vec<Vec<ActiveEntry>>,
) {
    match strategy {
        SortStrategy::Insertion => {
            for i in 1..entries.len() {
                let key = entries[i];
                let mut j = i;
                while j > 0 && entries[j - 1].0.lo > key.0.lo {
                    entries[j] = entries[j - 1];
                    j -= 1;
                }
                entries[j] = key;
            }
        }
        SortStrategy::Bin => {
            bin_sort(entries, bins);
        }
    }
}

/// Bucket sort on the left x edge, with an unstable sort inside
/// buckets. Bucket storage is caller-owned and reused across stops.
fn bin_sort(entries: &mut [ActiveEntry], bins: &mut Vec<Vec<ActiveEntry>>) {
    let n = entries.len();
    if n < 2 {
        return;
    }
    let min = entries.iter().map(|e| e.0.lo).min().expect("non-empty");
    let max = entries.iter().map(|e| e.0.lo).max().expect("non-empty");
    if min == max {
        return;
    }
    if bins.len() < n {
        bins.resize_with(n, Vec::new);
    }
    let range = (max - min) as i128 + 1;
    for &e in entries.iter() {
        let idx = ((e.0.lo - min) as i128 * n as i128 / range) as usize;
        bins[idx.min(n - 1)].push(e);
    }
    let mut out = 0usize;
    for bucket in bins[..n].iter_mut() {
        bucket.sort_unstable_by_key(|e| e.0.lo);
        for &e in bucket.iter() {
            entries[out] = e;
            out += 1;
        }
        bucket.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(x_min: Coord, x_max: Coord) -> ActiveEntry {
        (Interval::new(x_min, x_max), 0)
    }

    #[test]
    fn insertion_sort_orders() {
        let mut v = vec![entry(5, 6), entry(1, 2), entry(3, 4), entry(1, 9)];
        sort_entries(&mut v, SortStrategy::Insertion, &mut Vec::new());
        let xs: Vec<Coord> = v.iter().map(|e| e.0.lo).collect();
        assert_eq!(xs, vec![1, 1, 3, 5]);
    }

    #[test]
    fn bin_sort_matches_insertion_sort() {
        let mut a: Vec<ActiveEntry> = (0..100)
            .map(|i| entry((i * 7919) % 251 - 100, (i * 7919) % 251 - 90))
            .collect();
        let mut b = a.clone();
        sort_entries(&mut a, SortStrategy::Insertion, &mut Vec::new());
        let mut bins = Vec::new();
        sort_entries(&mut b, SortStrategy::Bin, &mut bins);
        let xa: Vec<Coord> = a.iter().map(|x| x.0.lo).collect();
        let xb: Vec<Coord> = b.iter().map(|x| x.0.lo).collect();
        assert_eq!(xa, xb);
        // The reused buckets are left empty for the next stop.
        assert!(bins.iter().all(Vec::is_empty));
    }

    #[test]
    fn bin_sort_degenerate_cases() {
        let mut bins = Vec::new();
        let mut empty: Vec<ActiveEntry> = vec![];
        bin_sort(&mut empty, &mut bins);
        let mut single = vec![entry(5, 10)];
        bin_sort(&mut single, &mut bins);
        let mut same = vec![entry(5, 10), entry(5, 20), entry(5, 6)];
        bin_sort(&mut same, &mut bins);
        assert_eq!(same.len(), 3);
    }

    #[test]
    fn bin_sort_reuses_buckets_across_calls() {
        let mut bins = Vec::new();
        let mut v1: Vec<ActiveEntry> = (0..50).rev().map(|i| entry(i * 3, i * 3 + 1)).collect();
        bin_sort(&mut v1, &mut bins);
        let grown = bins.len();
        let mut v2: Vec<ActiveEntry> = (0..50).rev().map(|i| entry(i * 7, i * 7 + 1)).collect();
        bin_sort(&mut v2, &mut bins);
        assert_eq!(bins.len(), grown, "bucket storage did not regrow");
        assert!(v2.windows(2).all(|w| w[0].0.lo <= w[1].0.lo));
    }

    #[test]
    fn coalesce_contacts_merges_touching_same_signal() {
        let c = |lo, hi, id: u32| BoundaryContact {
            face: Face::Left,
            layer: Some(Layer::Metal),
            span: Interval::new(lo, hi),
            signal: BoundarySignal::Net(NetId(id)),
        };
        let mut v = vec![c(0, 10, 1), c(10, 20, 1), c(30, 40, 1), c(20, 30, 2)];
        coalesce_contacts(&mut v);
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].span, Interval::new(0, 20));
    }
}
