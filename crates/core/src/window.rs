use ace_geom::{Coord, Interval, Layer, Rect};
use ace_wirelist::NetId;

/// A face of a rectangular window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Face {
    /// `x == window.x_min`.
    Left,
    /// `x == window.x_max`.
    Right,
    /// `y == window.y_min`.
    Bottom,
    /// `y == window.y_max`.
    Top,
}

impl Face {
    /// The face this one composes against (left↔right, top↔bottom).
    pub const fn opposite(self) -> Face {
        match self {
            Face::Left => Face::Right,
            Face::Right => Face::Left,
            Face::Bottom => Face::Top,
            Face::Top => Face::Bottom,
        }
    }
}

/// What a boundary contact carries: a net on a conducting layer, or a
/// transistor channel cut by the boundary (a *partial transistor*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundarySignal {
    /// A conducting-layer net.
    Net(NetId),
    /// A channel; the payload indexes the window netlist's device
    /// list.
    Channel(usize),
}

/// One element of a window's interface-segment list: geometry
/// touching the window boundary.
///
/// "Associated with each element in the interface-segment list is
/// data about the extent of contact between the rectangle edge and
/// the boundary segment, and the identity of the signal carried by
/// the rectangle." (HEXT paper §3.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryContact {
    /// Which face of the window the contact lies on.
    pub face: Face,
    /// Conducting layer, or `None` for channel contacts.
    pub layer: Option<Layer>,
    /// Extent of contact along the face (x-interval for top/bottom
    /// faces, y-interval for left/right faces).
    pub span: Interval,
    /// The signal carried.
    pub signal: BoundarySignal,
}

/// Raw per-device accumulator data exposed in window mode so the
/// hierarchical extractor can merge partial transistors and recompute
/// length/width after composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceDetail {
    /// Total channel area inside this window.
    pub area: i64,
    /// Channel bounding box.
    pub bbox: Rect,
    /// `true` if implant was seen over the channel.
    pub depletion: bool,
    /// Diffusion terminal contacts `(net, edge length)` inside the
    /// window.
    pub terminals: Vec<(NetId, Coord)>,
    /// Gate net.
    pub gate: NetId,
    /// `true` if the channel touches the window boundary (a partial
    /// transistor whose final form depends on the neighbours).
    pub partial: bool,
}

/// Extra results produced when extracting with
/// [`crate::ExtractOptions::with_window`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowExtraction {
    /// The window rectangle.
    pub window: Rect,
    /// All boundary contacts, grouped by nothing in particular;
    /// consumers filter by face.
    pub contacts: Vec<BoundaryContact>,
    /// Per-device raw data, aligned with the window netlist's device
    /// list.
    pub device_details: Vec<DeviceDetail>,
}

impl WindowExtraction {
    /// Contacts on one face, sorted by span.
    pub fn face_contacts(&self, face: Face) -> Vec<BoundaryContact> {
        let mut v: Vec<BoundaryContact> = self
            .contacts
            .iter()
            .copied()
            .filter(|c| c.face == face)
            .collect();
        v.sort_by_key(|c| (c.span.lo, c.span.hi));
        v
    }

    /// Indexes of devices whose channel touches the boundary.
    pub fn partial_device_indexes(&self) -> Vec<usize> {
        self.device_details
            .iter()
            .enumerate()
            .filter(|(_, d)| d.partial)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_geom::Point;

    #[test]
    fn opposite_faces() {
        assert_eq!(Face::Left.opposite(), Face::Right);
        assert_eq!(Face::Top.opposite(), Face::Bottom);
        for f in [Face::Left, Face::Right, Face::Top, Face::Bottom] {
            assert_eq!(f.opposite().opposite(), f);
        }
    }

    #[test]
    fn face_contacts_filters_and_sorts() {
        let w = WindowExtraction {
            window: Rect::new(0, 0, 100, 100),
            contacts: vec![
                BoundaryContact {
                    face: Face::Top,
                    layer: Some(Layer::Metal),
                    span: Interval::new(50, 60),
                    signal: BoundarySignal::Net(NetId(1)),
                },
                BoundaryContact {
                    face: Face::Left,
                    layer: Some(Layer::Poly),
                    span: Interval::new(0, 10),
                    signal: BoundarySignal::Net(NetId(2)),
                },
                BoundaryContact {
                    face: Face::Top,
                    layer: None,
                    span: Interval::new(10, 20),
                    signal: BoundarySignal::Channel(0),
                },
            ],
            device_details: vec![DeviceDetail {
                area: 4,
                bbox: Rect::new(10, 90, 20, 100),
                depletion: false,
                terminals: vec![],
                gate: NetId(0),
                partial: true,
            }],
        };
        let top = w.face_contacts(Face::Top);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].span, Interval::new(10, 20));
        assert_eq!(w.partial_device_indexes(), vec![0]);
        // Silence unused warnings for Point import path consistency.
        let _ = Point::ORIGIN;
    }
}
