//! Property test: incremental re-extraction is indistinguishable
//! from from-scratch extraction.
//!
//! Random layouts evolve through random edit sequences; after every
//! [`IncrementalExtractor::apply`] the cached-and-stitched result
//! must describe the same circuit as a flat extraction of the
//! current layout. The comparison policy mirrors the conformance
//! harness: exact circuit isomorphism when the reference sweep saw
//! no multi-terminal devices, a device census otherwise.

use ace_core::{extract_flat, CircuitExtractor, ExtractOptions, IncrementalExtractor};
use ace_geom::{Layer, Point, Rect, LAMBDA};
use ace_layout::{FlatLayout, LayoutDiff};
use ace_wirelist::compare::same_circuit;
use ace_wirelist::Netlist;
use proptest::prelude::*;

fn layer() -> impl Strategy<Value = Layer> {
    prop::sample::select(vec![
        Layer::Diffusion,
        Layer::Poly,
        Layer::Metal,
        Layer::Cut,
    ])
}

/// λ-grid rectangles in a window small enough that random boxes
/// actually interact (wires, crossings, the occasional transistor).
fn rect() -> impl Strategy<Value = Rect> {
    (-24i64..24, -24i64..24, 1i64..8, 1i64..8).prop_map(|(x, y, w, h)| {
        Rect::new(x * LAMBDA, y * LAMBDA, (x + w) * LAMBDA, (y + h) * LAMBDA)
    })
}

fn label() -> impl Strategy<Value = (String, Point)> {
    (
        prop::sample::select(vec!["a", "b", "c", "out"]),
        -24i64..24,
        -24i64..24,
    )
        .prop_map(|(name, x, y)| (name.to_string(), Point::new(x * LAMBDA, y * LAMBDA)))
}

fn layout() -> impl Strategy<Value = FlatLayout> {
    (
        prop::collection::vec((layer(), rect()), 3..28),
        prop::collection::vec(label(), 0..3),
    )
        .prop_map(|(boxes, labels)| {
            let mut flat = FlatLayout::new();
            for (l, r) in boxes {
                flat.push_box(l, r);
            }
            for (name, at) in labels {
                flat.push_label(name, at, None);
            }
            flat
        })
}

/// Flat reference extraction plus the strictness the conformance
/// harness would grant it.
fn reference(flat: &FlatLayout) -> (Netlist, bool) {
    let full = extract_flat(flat.clone(), "ref", ExtractOptions::new()).expect("flat extraction");
    let strict = full.report.multi_terminal_devices == 0;
    let mut netlist = full.netlist;
    netlist.prune_floating_nets();
    (netlist, strict)
}

fn assert_same_as_full(inc: &mut IncrementalExtractor) -> Result<(), TestCaseError> {
    let (full, strict) = reference(&inc.layout().clone());
    let mut got = inc.extract("ref").expect("incremental extraction").netlist;
    got.prune_floating_nets();
    if strict {
        if let Err(diff) = same_circuit(&got, &full) {
            return Err(TestCaseError::fail(format!("incremental != full: {diff}")));
        }
    } else {
        prop_assert_eq!(got.device_count(), full.device_count());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn edit_sequences_match_full_extraction(
        seed in layout(),
        targets in prop::collection::vec(layout(), 1..4),
        bands in 1usize..5,
    ) {
        let mut inc = IncrementalExtractor::new(seed, bands);
        assert_same_as_full(&mut inc)?;
        for target in &targets {
            // Drive the session toward each target layout; between()
            // exercises adds, removals, and label churn in one diff.
            let diff = LayoutDiff::between(&inc.layout().clone(), target);
            inc.apply(&diff).expect("diff between live layouts applies");
            assert_same_as_full(&mut inc)?;
        }
    }

    #[test]
    fn cancelling_edits_cost_no_resweep(seed in layout(), boxes in prop::collection::vec((layer(), rect()), 1..6)) {
        let mut inc = IncrementalExtractor::new(seed, 4);
        inc.extract("ref").expect("seed extraction");

        // Add a handful of boxes and take them straight back out: the
        // content hashes return to their cached values, so the next
        // extraction must answer entirely from cache.
        let mut there = LayoutDiff::new();
        for (l, r) in &boxes {
            there.add_box(*l, *r);
        }
        let mut back = LayoutDiff::new();
        for (l, r) in &boxes {
            back.remove_box(*l, *r);
        }
        inc.apply(&there).expect("adds apply");
        inc.apply(&back).expect("removals apply");
        let report = inc.extract("ref").expect("re-extraction").report;
        prop_assert_eq!(report.bands_reswept, 0);
        prop_assert_eq!(inc.last_reswept(), &[] as &[usize]);
    }
}
