use std::fmt;

use crate::Coord;

/// A half-open 1-D interval `[lo, hi)` on a coordinate axis.
///
/// The scanline back-end reasons about the chip one horizontal strip
/// at a time; within a strip every piece of active geometry is just an
/// x-interval, and device recognition is interval algebra across the
/// interacting layers (diffusion ∧ poly ∧ ¬buried ⇒ channel).
///
/// # Examples
///
/// ```
/// use ace_geom::Interval;
///
/// let diff = Interval::new(0, 1000);
/// let poly = Interval::new(400, 600);
/// assert_eq!(diff.intersection(&poly), Some(poly));
/// assert!(diff.overlaps(&poly));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: Coord,
    /// Exclusive upper bound.
    pub hi: Coord,
}

impl Interval {
    /// Creates an interval.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi`.
    pub fn new(lo: Coord, hi: Coord) -> Self {
        debug_assert!(lo <= hi, "inverted interval: {lo} > {hi}");
        Interval { lo, hi }
    }

    /// Length of the interval.
    pub fn len(&self) -> Coord {
        self.hi - self.lo
    }

    /// `true` if the interval has zero length.
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// `true` if the interiors intersect.
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo < other.hi && other.lo < self.hi
    }

    /// `true` if the intervals overlap or share an endpoint
    /// (electrical abutment within a strip).
    pub fn connects(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// The shared sub-interval, if the interiors intersect.
    pub fn intersection(&self, other: &Interval) -> Option<Interval> {
        if self.overlaps(other) {
            Some(Interval::new(self.lo.max(other.lo), self.hi.min(other.hi)))
        } else {
            None
        }
    }

    /// Length of the shared sub-interval (zero when disjoint).
    pub fn overlap_len(&self, other: &Interval) -> Coord {
        (self.hi.min(other.hi) - self.lo.max(other.lo)).max(0)
    }

    /// The smallest interval covering both operands.
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }

    /// `true` if `x` lies in `[lo, hi)`.
    pub fn contains(&self, x: Coord) -> bool {
        self.lo <= x && x < self.hi
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

/// A normalized set of disjoint, sorted, non-abutting intervals.
///
/// Used to compute per-strip layer coverage: the union of all active
/// diffusion x-extents, the subtraction of buried contact regions from
/// potential channels, and so on.
///
/// # Examples
///
/// ```
/// use ace_geom::{Interval, IntervalSet};
///
/// let mut diff = IntervalSet::new();
/// diff.insert(Interval::new(0, 500));
/// diff.insert(Interval::new(500, 900));   // abuts: coalesced
/// diff.insert(Interval::new(1200, 1500));
/// assert_eq!(diff.iter().count(), 2);
/// assert_eq!(diff.total_len(), 1200);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntervalSet {
    // Invariant: sorted by lo, pairwise disjoint, no two abutting.
    spans: Vec<Interval>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IntervalSet { spans: Vec::new() }
    }

    /// Creates a set from arbitrary intervals, normalizing them.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut set = IntervalSet::new();
        for iv in iter {
            set.insert(iv);
        }
        set
    }

    /// `true` if the set covers nothing.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Number of maximal disjoint spans.
    pub fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Total covered length.
    pub fn total_len(&self) -> Coord {
        self.spans.iter().map(Interval::len).sum()
    }

    /// Iterates over the maximal disjoint spans in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, Interval> {
        self.spans.iter()
    }

    /// Removes every span, keeping the allocation for reuse (the
    /// scanline sweep rebuilds per-strip coverage into recycled sets).
    pub fn clear(&mut self) {
        self.spans.clear();
    }

    /// Inserts an interval, coalescing with overlapping/abutting spans.
    pub fn insert(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        // Find the range of existing spans that connect with `iv`.
        let start = self.spans.partition_point(|s| s.hi < iv.lo);
        let end = self.spans.partition_point(|s| s.lo <= iv.hi);
        if start == end {
            self.spans.insert(start, iv);
        } else {
            let merged = Interval::new(
                iv.lo.min(self.spans[start].lo),
                iv.hi.max(self.spans[end - 1].hi),
            );
            self.spans.splice(start..end, std::iter::once(merged));
        }
    }

    /// `true` if `x` lies in some span.
    pub fn contains(&self, x: Coord) -> bool {
        let idx = self.spans.partition_point(|s| s.hi <= x);
        idx < self.spans.len() && self.spans[idx].contains(x)
    }

    /// `true` if `iv` overlaps any span with positive length.
    pub fn intersects(&self, iv: &Interval) -> bool {
        let idx = self.spans.partition_point(|s| s.hi <= iv.lo);
        self.spans.get(idx).is_some_and(|s| s.lo < iv.hi)
    }

    /// Total overlap length between `iv` and the set.
    pub fn overlap_len(&self, iv: &Interval) -> Coord {
        let start = self.spans.partition_point(|s| s.hi <= iv.lo);
        self.spans[start..]
            .iter()
            .take_while(|s| s.lo < iv.hi)
            .map(|s| s.overlap_len(iv))
            .sum()
    }

    /// Intersection with another set.
    pub fn intersection(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = IntervalSet::new();
        self.intersection_into(other, &mut out);
        out
    }

    /// Intersection with another set, written into `out` (cleared
    /// first). Allocation-free once `out` has warmed up its capacity.
    pub fn intersection_into(&self, other: &IntervalSet, out: &mut IntervalSet) {
        out.spans.clear();
        let (mut i, mut j) = (0, 0);
        while i < self.spans.len() && j < other.spans.len() {
            let a = self.spans[i];
            let b = other.spans[j];
            if let Some(iv) = a.intersection(&b) {
                out.spans.push(iv);
            }
            if a.hi <= b.hi {
                i += 1;
            } else {
                j += 1;
            }
        }
    }

    /// Set difference `self − other`.
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = IntervalSet::new();
        self.subtract_into(other, &mut out);
        out
    }

    /// Set difference `self − other`, written into `out` (cleared
    /// first). Allocation-free once `out` has warmed up its capacity.
    pub fn subtract_into(&self, other: &IntervalSet, out: &mut IntervalSet) {
        out.spans.clear();
        let mut j = 0;
        for &a in &self.spans {
            let mut lo = a.lo;
            while j < other.spans.len() && other.spans[j].hi <= lo {
                j += 1;
            }
            let mut k = j;
            while k < other.spans.len() && other.spans[k].lo < a.hi {
                let b = other.spans[k];
                if b.lo > lo {
                    out.spans.push(Interval::new(lo, b.lo.min(a.hi)));
                }
                lo = lo.max(b.hi);
                if lo >= a.hi {
                    break;
                }
                k += 1;
            }
            if lo < a.hi {
                out.spans.push(Interval::new(lo, a.hi));
            }
        }
    }

    /// Union with another set.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = self.clone();
        for &iv in &other.spans {
            out.insert(iv);
        }
        out
    }
}

impl FromIterator<Interval> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        IntervalSet::from_intervals(iter)
    }
}

impl Extend<Interval> for IntervalSet {
    fn extend<I: IntoIterator<Item = Interval>>(&mut self, iter: I) {
        for iv in iter {
            self.insert(iv);
        }
    }
}

impl<'a> IntoIterator for &'a IntervalSet {
    type Item = &'a Interval;
    type IntoIter = std::slice::Iter<'a, Interval>;
    fn into_iter(self) -> Self::IntoIter {
        self.spans.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(pairs: &[(Coord, Coord)]) -> IntervalSet {
        pairs
            .iter()
            .map(|&(lo, hi)| Interval::new(lo, hi))
            .collect()
    }

    #[test]
    fn interval_basics() {
        let iv = Interval::new(10, 30);
        assert_eq!(iv.len(), 20);
        assert!(iv.contains(10));
        assert!(!iv.contains(30));
        assert!(!iv.is_empty());
        assert!(Interval::new(5, 5).is_empty());
    }

    #[test]
    fn interval_overlap_and_connect() {
        let a = Interval::new(0, 10);
        let b = Interval::new(10, 20);
        assert!(!a.overlaps(&b));
        assert!(a.connects(&b));
        assert_eq!(a.overlap_len(&b), 0);
        assert_eq!(a.hull(&b), Interval::new(0, 20));
        let c = Interval::new(5, 15);
        assert_eq!(a.intersection(&c), Some(Interval::new(5, 10)));
        assert_eq!(a.overlap_len(&c), 5);
    }

    #[test]
    fn insert_coalesces_overlap_and_abutment() {
        let mut s = IntervalSet::new();
        s.insert(Interval::new(0, 10));
        s.insert(Interval::new(20, 30));
        s.insert(Interval::new(10, 20)); // bridges both
        assert_eq!(s.span_count(), 1);
        assert_eq!(s.total_len(), 30);
    }

    #[test]
    fn insert_keeps_disjoint_spans() {
        let s = set(&[(0, 10), (20, 30), (40, 50)]);
        assert_eq!(s.span_count(), 3);
        assert!(s.contains(0));
        assert!(!s.contains(10));
        assert!(s.contains(25));
        assert!(!s.contains(35));
    }

    #[test]
    fn insert_empty_is_noop() {
        let mut s = set(&[(0, 10)]);
        s.insert(Interval::new(5, 5));
        assert_eq!(s.span_count(), 1);
        assert_eq!(s.total_len(), 10);
    }

    #[test]
    fn intersection_of_sets() {
        let a = set(&[(0, 10), (20, 30)]);
        let b = set(&[(5, 25)]);
        let c = a.intersection(&b);
        assert_eq!(c, set(&[(5, 10), (20, 25)]));
    }

    #[test]
    fn subtraction_of_sets() {
        let a = set(&[(0, 30)]);
        let b = set(&[(5, 10), (20, 25)]);
        assert_eq!(a.subtract(&b), set(&[(0, 5), (10, 20), (25, 30)]));
        // Subtracting everything leaves nothing.
        assert!(a.subtract(&a).is_empty());
        // Subtracting nothing is identity.
        assert_eq!(a.subtract(&IntervalSet::new()), a);
    }

    #[test]
    fn subtraction_clips_at_span_ends() {
        let a = set(&[(10, 20)]);
        let b = set(&[(0, 12), (18, 30)]);
        assert_eq!(a.subtract(&b), set(&[(12, 18)]));
    }

    #[test]
    fn union_of_sets() {
        let a = set(&[(0, 10)]);
        let b = set(&[(5, 15), (20, 25)]);
        assert_eq!(a.union(&b), set(&[(0, 15), (20, 25)]));
    }

    #[test]
    fn intersects_and_overlap_len() {
        let s = set(&[(0, 10), (20, 30)]);
        assert!(s.intersects(&Interval::new(5, 6)));
        assert!(s.intersects(&Interval::new(9, 21)));
        assert!(!s.intersects(&Interval::new(10, 20)));
        assert!(!s.intersects(&Interval::new(30, 40)));
        assert_eq!(s.overlap_len(&Interval::new(5, 25)), 5 + 5);
        assert_eq!(s.overlap_len(&Interval::new(10, 20)), 0);
    }

    #[test]
    fn channel_algebra_example() {
        // diffusion ∧ poly − buried = channel (the paper's device rule)
        let diff = set(&[(0, 1000)]);
        let poly = set(&[(200, 400), (600, 800)]);
        let buried = set(&[(600, 800)]);
        let channel = diff.intersection(&poly).subtract(&buried);
        assert_eq!(channel, set(&[(200, 400)]));
    }
}
