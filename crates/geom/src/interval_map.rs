use crate::{Coord, Interval};

/// A cache-friendly sorted map from [`Interval`]s to values, built
/// for the scanline sweep's per-layer *active lists*.
///
/// Layout is struct-of-arrays: the interval endpoints live in three
/// parallel `Vec<Coord>`s (`los`, `his`, and a running prefix-maximum
/// of `his`) and the payloads in a fourth, so the binary searches and
/// linear walks the sweep does at every scanline stop touch dense,
/// homogeneous memory instead of hopping across an array of structs
/// or a pointer-chased tree.
///
/// Invariants:
///
/// * entries are sorted by `lo` ascending; entries sharing a `lo`
///   keep insertion order (all queries key on `lo` alone, so the
///   relative order of ties is free);
/// * `max_his[i] == max(his[0..=i])` — a monotone prefix maximum.
///
/// The prefix maximum is what makes [`stab`](Self::stab) and
/// [`overlapping`](Self::overlapping) cheap: every entry ending at or
/// before the query point has `max_his` at most the query point, and
/// because the prefix maximum is monotone non-decreasing the *first*
/// possible hit is found by binary search. Locating an entry is
/// O(log n); insert/remove pay the usual contiguous-shift cost, which
/// on the sweep's sizes is a short `memmove` that beats heap-node
/// churn by a wide margin.
///
/// # Examples
///
/// ```
/// use ace_geom::{Interval, IntervalMap};
///
/// let mut map = IntervalMap::new();
/// map.insert(Interval::new(0, 100), 'a');
/// map.insert(Interval::new(50, 200), 'b');
/// map.insert(Interval::new(300, 400), 'c');
/// let hit: Vec<char> = map.stab(60).map(|(_, v)| *v).collect();
/// assert_eq!(hit, vec!['a', 'b']);
/// let over: Vec<char> = map
///     .overlapping(Interval::new(150, 350))
///     .map(|(_, v)| *v)
///     .collect();
/// assert_eq!(over, vec!['b', 'c']);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalMap<V> {
    los: Vec<Coord>,
    his: Vec<Coord>,
    max_his: Vec<Coord>,
    vals: Vec<V>,
}

impl<V> IntervalMap<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        IntervalMap {
            los: Vec::new(),
            his: Vec::new(),
            max_his: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty map with room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        IntervalMap {
            los: Vec::with_capacity(cap),
            his: Vec::with_capacity(cap),
            max_his: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.los.len()
    }

    /// `true` when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.los.is_empty()
    }

    /// Removes every entry, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.los.clear();
        self.his.clear();
        self.max_his.clear();
        self.vals.clear();
    }

    /// Recomputes the prefix maximum from `from` to the end.
    fn rebuild_max_from(&mut self, from: usize) {
        let mut run = if from == 0 {
            Coord::MIN
        } else {
            self.max_his[from - 1]
        };
        for i in from..self.his.len() {
            run = run.max(self.his[i]);
            self.max_his[i] = run;
        }
    }

    /// Inserts an entry, keeping the map sorted by `lo` (ties go
    /// after existing entries, preserving insertion order).
    pub fn insert(&mut self, iv: Interval, val: V) {
        let pos = self.los.partition_point(|&lo| lo <= iv.lo);
        self.los.insert(pos, iv.lo);
        self.his.insert(pos, iv.hi);
        self.max_his.insert(pos, iv.hi);
        self.vals.insert(pos, val);
        self.rebuild_max_from(pos);
    }

    /// Removes the first entry equal to `(iv, val)`; returns whether
    /// one was found.
    pub fn remove(&mut self, iv: Interval, val: &V) -> bool
    where
        V: PartialEq,
    {
        let start = self.los.partition_point(|&lo| lo < iv.lo);
        let end = self.los.partition_point(|&lo| lo <= iv.lo);
        for i in start..end {
            if self.his[i] == iv.hi && self.vals[i] == *val {
                self.los.remove(i);
                self.his.remove(i);
                self.max_his.remove(i);
                self.vals.remove(i);
                self.rebuild_max_from(i);
                return true;
            }
        }
        false
    }

    /// Keeps only entries for which `keep` returns `true`, preserving
    /// order; compacts in place.
    pub fn retain(&mut self, mut keep: impl FnMut(Interval, &V) -> bool) {
        let mut write = 0usize;
        let mut run = Coord::MIN;
        for read in 0..self.los.len() {
            if keep(
                Interval::new(self.los[read], self.his[read]),
                &self.vals[read],
            ) {
                self.los.swap(write, read);
                self.his.swap(write, read);
                self.vals.swap(write, read);
                run = run.max(self.his[write]);
                self.max_his[write] = run;
                write += 1;
            }
        }
        self.los.truncate(write);
        self.his.truncate(write);
        self.max_his.truncate(write);
        self.vals.truncate(write);
    }

    /// Iterates every entry in `lo` order.
    pub fn iter(&self) -> impl Iterator<Item = (Interval, &V)> + '_ {
        self.los
            .iter()
            .zip(&self.his)
            .zip(&self.vals)
            .map(|((&lo, &hi), v)| (Interval::new(lo, hi), v))
    }

    /// Iterates the intervals alone, in `lo` order.
    pub fn intervals(&self) -> impl Iterator<Item = Interval> + '_ {
        self.los
            .iter()
            .zip(&self.his)
            .map(|(&lo, &hi)| Interval::new(lo, hi))
    }

    /// The first index that could reach past `x`: every entry before
    /// it has `max_his <= x`, i.e. ends at or before `x`.
    fn first_reaching(&self, x: Coord) -> usize {
        self.max_his.partition_point(|&m| m <= x)
    }

    /// In-order iterator over entries whose interval contains `x`
    /// (half-open: `lo <= x < hi`).
    pub fn stab(&self, x: Coord) -> impl Iterator<Item = (Interval, &V)> + '_ {
        let start = self.first_reaching(x);
        let end = self.los.partition_point(|&lo| lo <= x);
        (start..end.max(start))
            .filter(move |&i| self.his[i] > x)
            .map(move |i| (Interval::new(self.los[i], self.his[i]), &self.vals[i]))
    }

    /// In-order iterator over entries overlapping `iv` with positive
    /// length (shared endpoints do not count, matching
    /// [`Interval::overlaps`]).
    pub fn overlapping(&self, iv: Interval) -> impl Iterator<Item = (Interval, &V)> + '_ {
        let start = self.first_reaching(iv.lo);
        let end = self.los.partition_point(|&lo| lo < iv.hi);
        (start..end.max(start))
            .filter(move |&i| self.his[i] > iv.lo)
            .map(move |i| (Interval::new(self.los[i], self.his[i]), &self.vals[i]))
    }

    /// Merges a batch already sorted by `lo` into the map in place —
    /// a backward two-finger merge over the SoA columns, so no
    /// temporary buffer is allocated (amortized `Vec` growth only).
    /// Equal `lo`s place batch entries after existing ones.
    ///
    /// # Panics
    ///
    /// Debug builds assert the batch is sorted by `lo`.
    pub fn merge_sorted(&mut self, batch: &[(Interval, V)])
    where
        V: Copy,
    {
        if batch.is_empty() {
            return;
        }
        debug_assert!(
            batch.windows(2).all(|w| w[0].0.lo <= w[1].0.lo),
            "batch must be sorted by lo"
        );
        let old = self.los.len();
        for &(iv, v) in batch {
            self.los.push(iv.lo);
            self.his.push(iv.hi);
            self.max_his.push(iv.hi);
            self.vals.push(v);
        }
        // Backward merge: fill from the end so existing entries are
        // read before being overwritten (the read index is always
        // strictly below the write index).
        let mut i = old;
        let mut j = batch.len();
        let mut k = old + batch.len();
        let mut first_changed = old;
        while j > 0 {
            k -= 1;
            if i > 0 && self.los[i - 1] > batch[j - 1].0.lo {
                i -= 1;
                self.los[k] = self.los[i];
                self.his[k] = self.his[i];
                self.vals[k] = self.vals[i];
            } else {
                j -= 1;
                let (iv, v) = batch[j];
                self.los[k] = iv.lo;
                self.his[k] = iv.hi;
                self.vals[k] = v;
                first_changed = k;
            }
        }
        self.rebuild_max_from(first_changed);
    }

    /// Checks the two structural invariants (sorted `lo`s, correct
    /// prefix maximum). Test support.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        let sorted = self.los.windows(2).all(|w| w[0] <= w[1]);
        let mut run = Coord::MIN;
        let maxes = self.his.iter().zip(&self.max_his).all(|(&hi, &m)| {
            run = run.max(hi);
            m == run
        });
        sorted && maxes && self.los.len() == self.his.len() && self.his.len() == self.vals.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(entries: &[(Coord, Coord, u32)]) -> IntervalMap<u32> {
        let mut m = IntervalMap::new();
        for &(lo, hi, v) in entries {
            m.insert(Interval::new(lo, hi), v);
        }
        m
    }

    fn stabbed(m: &IntervalMap<u32>, x: Coord) -> Vec<u32> {
        m.stab(x).map(|(_, v)| *v).collect()
    }

    #[test]
    fn insert_keeps_lo_order_with_stable_ties() {
        let m = map(&[(10, 20, 1), (0, 5, 2), (10, 30, 3), (10, 15, 4)]);
        let order: Vec<u32> = m.iter().map(|(_, v)| *v).collect();
        assert_eq!(order, vec![2, 1, 3, 4]);
        assert!(m.check_invariants());
    }

    #[test]
    fn stab_is_half_open_and_in_order() {
        let m = map(&[(0, 10, 1), (5, 20, 2), (10, 15, 3), (30, 40, 4)]);
        assert_eq!(stabbed(&m, 0), vec![1]);
        assert_eq!(stabbed(&m, 7), vec![1, 2]);
        // x = 10: [0,10) closed out, [10,15) opens.
        assert_eq!(stabbed(&m, 10), vec![2, 3]);
        assert_eq!(stabbed(&m, 25), Vec::<u32>::new());
        assert_eq!(stabbed(&m, 40), Vec::<u32>::new());
    }

    #[test]
    fn overlapping_needs_positive_length() {
        let m = map(&[(0, 10, 1), (10, 20, 2), (30, 40, 3)]);
        let hits: Vec<u32> = m
            .overlapping(Interval::new(10, 30))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(hits, vec![2]);
        let all: Vec<u32> = m
            .overlapping(Interval::new(5, 35))
            .map(|(_, v)| *v)
            .collect();
        assert_eq!(all, vec![1, 2, 3]);
    }

    #[test]
    fn remove_takes_first_matching_entry() {
        let mut m = map(&[(0, 10, 1), (0, 10, 2), (5, 15, 3)]);
        assert!(m.remove(Interval::new(0, 10), &2));
        assert!(!m.remove(Interval::new(0, 10), &2));
        assert_eq!(m.len(), 2);
        assert!(m.check_invariants());
        assert!(m.remove(Interval::new(5, 15), &3));
        assert!(m.remove(Interval::new(0, 10), &1));
        assert!(m.is_empty());
    }

    #[test]
    fn retain_compacts_and_rebuilds_prefix_max() {
        let mut m = map(&[(0, 100, 1), (10, 20, 2), (30, 40, 3), (50, 60, 4)]);
        m.retain(|_, &v| v != 1);
        assert_eq!(m.len(), 3);
        assert!(m.check_invariants());
        // With the long [0,100) gone, stab(45) hits nothing.
        assert_eq!(stabbed(&m, 45), Vec::<u32>::new());
        assert_eq!(stabbed(&m, 35), vec![3]);
    }

    #[test]
    fn merge_sorted_matches_individual_inserts() {
        let mut a = map(&[(0, 10, 1), (20, 30, 2), (40, 50, 3)]);
        let batch = [
            (Interval::new(5, 8), 10),
            (Interval::new(20, 60), 11),
            (Interval::new(45, 70), 12),
        ];
        a.merge_sorted(&batch);
        let mut b = map(&[(0, 10, 1), (20, 30, 2), (40, 50, 3)]);
        for &(iv, v) in &batch {
            b.insert(iv, v);
        }
        assert_eq!(a, b);
        assert!(a.check_invariants());
    }

    #[test]
    fn merge_sorted_into_empty_and_with_empty() {
        let mut m: IntervalMap<u32> = IntervalMap::new();
        m.merge_sorted(&[(Interval::new(0, 5), 1), (Interval::new(3, 9), 2)]);
        assert_eq!(m.len(), 2);
        m.merge_sorted(&[]);
        assert_eq!(m.len(), 2);
        assert!(m.check_invariants());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m = map(&[(0, 10, 1)]);
        let cap = m.los.capacity();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.los.capacity(), cap);
    }
}
