use std::fmt;
use std::ops::{Index, IndexMut};

/// The seven Mead–Conway NMOS mask layers.
///
/// ACE interprets the standard CIF NMOS layer names:
///
/// | CIF name | Layer | Role |
/// |----------|-------|------|
/// | `ND` | [`Layer::Diffusion`] | conducting; forms sources/drains and channel bottoms |
/// | `NP` | [`Layer::Poly`] | conducting; forms gates and wiring |
/// | `NM` | [`Layer::Metal`] | conducting; wiring |
/// | `NC` | [`Layer::Cut`] | contact cut: connects metal to poly/diffusion |
/// | `NI` | [`Layer::Implant`] | depletion implant: marks depletion-mode transistors |
/// | `NB` | [`Layer::Buried`] | buried contact: connects poly to diffusion, suppresses the transistor |
/// | `NG` | [`Layer::Glass`] | overglass openings (ignored by extraction) |
///
/// The paper: "Windows communicate with the external environment via
/// geometry on the conducting layers (metal, poly and diffusion) …
/// the non-conducting layers (implant, cut, buried and overglass) do
/// not carry any electrical signals."
///
/// # Examples
///
/// ```
/// use ace_geom::Layer;
///
/// assert_eq!(Layer::from_cif_name("ND"), Some(Layer::Diffusion));
/// assert_eq!(Layer::Poly.cif_name(), "NP");
/// assert!(Layer::Metal.is_conducting());
/// assert!(!Layer::Cut.is_conducting());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// `ND` — diffusion.
    Diffusion,
    /// `NP` — polysilicon.
    Poly,
    /// `NM` — metal.
    Metal,
    /// `NC` — contact cut.
    Cut,
    /// `NI` — depletion implant.
    Implant,
    /// `NB` — buried contact.
    Buried,
    /// `NG` — overglass.
    Glass,
}

/// Number of distinct [`Layer`] values.
pub const LAYER_COUNT: usize = 7;

impl Layer {
    /// All layers, in index order.
    pub const ALL: [Layer; LAYER_COUNT] = [
        Layer::Diffusion,
        Layer::Poly,
        Layer::Metal,
        Layer::Cut,
        Layer::Implant,
        Layer::Buried,
        Layer::Glass,
    ];

    /// The three conducting layers (carry electrical signals).
    pub const CONDUCTING: [Layer; 3] = [Layer::Diffusion, Layer::Poly, Layer::Metal];

    /// Dense index in `0..LAYER_COUNT`, for use with [`LayerMap`].
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Recovers a layer from its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= LAYER_COUNT`.
    pub fn from_index(idx: usize) -> Layer {
        Layer::ALL[idx]
    }

    /// The CIF layer name (`L NX;` command operand).
    pub const fn cif_name(self) -> &'static str {
        match self {
            Layer::Diffusion => "ND",
            Layer::Poly => "NP",
            Layer::Metal => "NM",
            Layer::Cut => "NC",
            Layer::Implant => "NI",
            Layer::Buried => "NB",
            Layer::Glass => "NG",
        }
    }

    /// Parses a CIF NMOS layer name. Returns `None` for unknown names.
    pub fn from_cif_name(name: &str) -> Option<Layer> {
        match name {
            "ND" => Some(Layer::Diffusion),
            "NP" => Some(Layer::Poly),
            "NM" => Some(Layer::Metal),
            "NC" => Some(Layer::Cut),
            "NI" => Some(Layer::Implant),
            "NB" => Some(Layer::Buried),
            "NG" => Some(Layer::Glass),
            _ => None,
        }
    }

    /// `true` for the signal-carrying layers (diffusion, poly, metal).
    pub const fn is_conducting(self) -> bool {
        matches!(self, Layer::Diffusion | Layer::Poly | Layer::Metal)
    }

    /// `true` for the four layers the device-recognition sweep
    /// consults (diffusion, poly, buried, implant).
    pub const fn is_device_layer(self) -> bool {
        matches!(
            self,
            Layer::Diffusion | Layer::Poly | Layer::Buried | Layer::Implant
        )
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.cif_name())
    }
}

/// A dense per-layer table: one `T` per [`Layer`].
///
/// The scanline back-end keeps one active list and one newGeometry
/// list per layer; `LayerMap` is the canonical container for that.
///
/// # Examples
///
/// ```
/// use ace_geom::{Layer, LayerMap};
///
/// let mut counts: LayerMap<u32> = LayerMap::default();
/// counts[Layer::Poly] += 1;
/// assert_eq!(counts[Layer::Poly], 1);
/// assert_eq!(counts[Layer::Metal], 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerMap<T> {
    slots: [T; LAYER_COUNT],
}

impl<T> LayerMap<T> {
    /// Builds a map by calling `f` for every layer.
    pub fn from_fn(mut f: impl FnMut(Layer) -> T) -> Self {
        LayerMap {
            slots: Layer::ALL.map(&mut f),
        }
    }

    /// Iterates over `(layer, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Layer, &T)> {
        Layer::ALL.iter().copied().zip(self.slots.iter())
    }

    /// Iterates over `(layer, value)` pairs mutably.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (Layer, &mut T)> {
        Layer::ALL.iter().copied().zip(self.slots.iter_mut())
    }
}

impl<T: Default> Default for LayerMap<T> {
    fn default() -> Self {
        LayerMap::from_fn(|_| T::default())
    }
}

impl<T> Index<Layer> for LayerMap<T> {
    type Output = T;
    fn index(&self, layer: Layer) -> &T {
        &self.slots[layer.index()]
    }
}

impl<T> IndexMut<Layer> for LayerMap<T> {
    fn index_mut(&mut self, layer: Layer) -> &mut T {
        &mut self.slots[layer.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cif_name_round_trip() {
        for layer in Layer::ALL {
            assert_eq!(Layer::from_cif_name(layer.cif_name()), Some(layer));
        }
        assert_eq!(Layer::from_cif_name("XX"), None);
        assert_eq!(Layer::from_cif_name(""), None);
    }

    #[test]
    fn index_round_trip() {
        for (i, layer) in Layer::ALL.into_iter().enumerate() {
            assert_eq!(layer.index(), i);
            assert_eq!(Layer::from_index(i), layer);
        }
    }

    #[test]
    fn conducting_classification() {
        assert!(Layer::Diffusion.is_conducting());
        assert!(Layer::Poly.is_conducting());
        assert!(Layer::Metal.is_conducting());
        for layer in [Layer::Cut, Layer::Implant, Layer::Buried, Layer::Glass] {
            assert!(!layer.is_conducting());
        }
    }

    #[test]
    fn device_layers_match_paper() {
        // "the four interacting layers (diffusion, poly, buried and implant)"
        let device: Vec<Layer> = Layer::ALL
            .into_iter()
            .filter(|l| l.is_device_layer())
            .collect();
        assert_eq!(
            device,
            vec![Layer::Diffusion, Layer::Poly, Layer::Implant, Layer::Buried]
                .into_iter()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn layer_map_indexing() {
        let mut m: LayerMap<Vec<u8>> = LayerMap::default();
        m[Layer::Buried].push(1);
        assert_eq!(m[Layer::Buried], vec![1]);
        assert!(m[Layer::Glass].is_empty());
        assert_eq!(m.iter().count(), LAYER_COUNT);
    }
}
