//! Integer geometry kernel for VLSI layout analysis.
//!
//! This crate is the substrate under the ACE circuit extractor
//! reproduction. Everything is integer arithmetic in *centimicrons*
//! (hundredths of a micron), the native unit of CIF (Caltech
//! Intermediate Form). A Mead–Conway NMOS λ of 2.5 µm is
//! [`LAMBDA`]` = 250` centimicrons.
//!
//! The kernel provides:
//!
//! * [`Point`] and [`Rect`] — the primitive layout element is the
//!   axis-aligned box, as in the paper ("N is the number of boxes in
//!   the artwork").
//! * [`Interval`] and [`IntervalSet`] — 1-D algebra used by the
//!   scanline back-end when it walks the active lists of several
//!   layers simultaneously.
//! * [`Transform`] — the orthogonal (manhattan-preserving) subset of
//!   CIF symbol-call transforms: translation, the two mirrors and the
//!   four axis rotations.
//! * [`Polygon`] and [`Wire`] fracturing — non-manhattan geometry is
//!   "split into a number of small aligned boxes that approximate the
//!   original object" (paper §3), exactly for manhattan input.
//! * [`Layer`] — the seven Mead–Conway NMOS mask layers.
//!
//! # Examples
//!
//! ```
//! use ace_geom::{Rect, Layer};
//!
//! let gate = Rect::new(0, 0, 400, 1200);
//! let channel = gate.intersection(&Rect::new(-600, 400, 1000, 800));
//! assert_eq!(channel, Some(Rect::new(0, 400, 400, 800)));
//! assert!(Layer::Poly.is_conducting());
//! assert!(!Layer::Implant.is_conducting());
//! ```

#![forbid(unsafe_code)]

mod interval;
mod interval_map;
mod layer;
mod merge;
mod point;
mod polygon;
mod rect;
mod roundflash;
mod transform;
mod wire;

pub use interval::{Interval, IntervalSet};
pub use interval_map::IntervalMap;
pub use layer::{Layer, LayerMap, LAYER_COUNT};
pub use merge::{merge_boxes, union_area, BoxMerger};
pub use point::Point;
pub use polygon::{fracture_polygon, fracture_polygon_default, Polygon};
pub use rect::Rect;
pub use roundflash::fracture_round_flash;
pub use transform::{Orientation, Transform};
pub use wire::{fracture_wire, Wire};

/// Layout coordinate in centimicrons (CIF's native unit).
pub type Coord = i64;

/// One Mead–Conway NMOS λ (2.5 µm) in centimicrons.
pub const LAMBDA: Coord = 250;
