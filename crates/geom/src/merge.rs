use crate::{Coord, Interval, IntervalSet, Rect};

/// Merges overlapping and abutting boxes into a canonical disjoint
/// cover of the same region.
///
/// This is the operation the back-end applies to each `newGeometry`
/// list: "Adjacent or overlapping boxes on the same layer are merged
/// together into one box" (paper §3). The result is a maximal-strip
/// decomposition: the region is cut at every distinct y boundary and
/// each strip holds maximal disjoint x-spans.
///
/// The output is sorted by `(y_min, x_min)` and covers exactly the
/// union of the input boxes, with no two output boxes overlapping.
///
/// # Examples
///
/// ```
/// use ace_geom::{merge_boxes, Rect};
///
/// let merged = merge_boxes(&[
///     Rect::new(0, 0, 10, 10),
///     Rect::new(10, 0, 20, 10), // abuts: coalesces
/// ]);
/// assert_eq!(merged, vec![Rect::new(0, 0, 20, 10)]);
/// ```
pub fn merge_boxes(boxes: &[Rect]) -> Vec<Rect> {
    let mut merger = BoxMerger::new();
    for b in boxes {
        merger.add(*b);
    }
    merger.finish()
}

/// Area of the union of a set of boxes (overlap counted once).
///
/// Used by tests to check that fracturing and merging preserve
/// coverage.
///
/// ```
/// use ace_geom::{union_area, Rect};
///
/// let a = Rect::new(0, 0, 10, 10);
/// let b = Rect::new(5, 0, 15, 10); // overlaps by 5×10
/// assert_eq!(union_area(&[a, b]), 150);
/// ```
pub fn union_area(boxes: &[Rect]) -> i64 {
    merge_boxes(boxes).iter().map(Rect::area).sum()
}

/// Incremental box-union builder.
///
/// Collects boxes, then produces a canonical disjoint strip cover via
/// [`BoxMerger::finish`]. Construction is O(B log B + S·K) for B boxes
/// producing S strips of K spans.
#[derive(Debug, Clone, Default)]
pub struct BoxMerger {
    boxes: Vec<Rect>,
}

impl BoxMerger {
    /// Creates an empty merger.
    pub fn new() -> Self {
        BoxMerger::default()
    }

    /// Adds one box. Empty boxes are ignored.
    pub fn add(&mut self, b: Rect) {
        if !b.is_empty() {
            self.boxes.push(b);
        }
    }

    /// Number of boxes added so far.
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// `true` if no boxes have been added.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    /// Produces the canonical disjoint cover, consuming the builder.
    pub fn finish(self) -> Vec<Rect> {
        if self.boxes.is_empty() {
            return Vec::new();
        }
        // Strip boundaries: all distinct y extremes.
        let mut ys: Vec<Coord> = Vec::with_capacity(self.boxes.len() * 2);
        for b in &self.boxes {
            ys.push(b.y_min);
            ys.push(b.y_max);
        }
        ys.sort_unstable();
        ys.dedup();

        // Boxes sorted by y_min for strip sweep.
        let mut sorted = self.boxes;
        sorted.sort_unstable_by_key(|b| b.y_min);

        let mut out = Vec::new();
        let mut start = 0usize;
        // Active set: boxes whose [y_min, y_max) spans the strip.
        let mut active: Vec<Rect> = Vec::new();
        for win in ys.windows(2) {
            let (y0, y1) = (win[0], win[1]);
            active.retain(|b| b.y_max > y0);
            while start < sorted.len() && sorted[start].y_min <= y0 {
                if sorted[start].y_max > y0 {
                    active.push(sorted[start]);
                }
                start += 1;
            }
            if active.is_empty() {
                continue;
            }
            let spans: IntervalSet = active
                .iter()
                .map(|b| Interval::new(b.x_min, b.x_max))
                .collect();
            for iv in spans.iter() {
                out.push(Rect::new(iv.lo, y0, iv.hi, y1));
            }
        }
        // Vertically coalesce strips with identical x-span stacking to
        // keep the cover small.
        coalesce_vertical(&mut out);
        out.sort_unstable_by_key(|b| (b.y_min, b.x_min));
        out
    }
}

/// Merges vertically abutting boxes with identical x-extents.
fn coalesce_vertical(boxes: &mut Vec<Rect>) {
    boxes.sort_unstable_by_key(|b| (b.x_min, b.x_max, b.y_min));
    let mut write = 0usize;
    for read in 0..boxes.len() {
        if write > 0 {
            let prev = boxes[write - 1];
            let cur = boxes[read];
            if prev.x_min == cur.x_min && prev.x_max == cur.x_max && prev.y_max == cur.y_min {
                boxes[write - 1] = Rect::new(prev.x_min, prev.y_min, prev.x_max, cur.y_max);
                continue;
            }
        }
        boxes[write] = boxes[read];
        write += 1;
    }
    boxes.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_boxes_survive() {
        let input = vec![Rect::new(0, 0, 10, 10), Rect::new(100, 100, 110, 110)];
        let merged = merge_boxes(&input);
        assert_eq!(merged.len(), 2);
        assert_eq!(union_area(&input), 200);
    }

    #[test]
    fn overlapping_boxes_coalesce() {
        let merged = merge_boxes(&[Rect::new(0, 0, 10, 10), Rect::new(5, 0, 15, 10)]);
        assert_eq!(merged, vec![Rect::new(0, 0, 15, 10)]);
    }

    #[test]
    fn vertical_abutment_coalesces() {
        let merged = merge_boxes(&[Rect::new(0, 0, 10, 10), Rect::new(0, 10, 10, 20)]);
        assert_eq!(merged, vec![Rect::new(0, 0, 10, 20)]);
    }

    #[test]
    fn cross_shape_cover_is_disjoint_and_exact() {
        // A plus sign: vertical bar × horizontal bar.
        let input = vec![Rect::new(40, 0, 60, 100), Rect::new(0, 40, 100, 60)];
        let merged = merge_boxes(&input);
        for (i, a) in merged.iter().enumerate() {
            for b in &merged[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
        // Union area: 20·100 + 100·20 − 20·20 overlap.
        assert_eq!(union_area(&input), 2000 + 2000 - 400);
    }

    #[test]
    fn duplicate_boxes_count_once() {
        let b = Rect::new(0, 0, 10, 10);
        assert_eq!(union_area(&[b, b, b]), 100);
        assert_eq!(merge_boxes(&[b, b]), vec![b]);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_boxes(&[]).is_empty());
        assert_eq!(union_area(&[]), 0);
        let mut m = BoxMerger::new();
        m.add(Rect::new(0, 0, 0, 10)); // empty box ignored
        assert!(m.is_empty());
        assert!(m.finish().is_empty());
    }

    #[test]
    fn contained_box_disappears() {
        let merged = merge_boxes(&[Rect::new(0, 0, 100, 100), Rect::new(10, 10, 20, 20)]);
        assert_eq!(merged, vec![Rect::new(0, 0, 100, 100)]);
    }

    #[test]
    fn staircase_strips() {
        let input = vec![
            Rect::new(0, 0, 30, 10),
            Rect::new(0, 10, 20, 20),
            Rect::new(0, 20, 10, 30),
        ];
        let merged = merge_boxes(&input);
        assert_eq!(union_area(&input), 300 + 200 + 100);
        // Already disjoint; cover must keep the same area.
        assert_eq!(merged.iter().map(Rect::area).sum::<i64>(), 600);
    }
}
