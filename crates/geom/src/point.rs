use std::fmt;
use std::ops::{Add, AddAssign, Neg, Sub, SubAssign};

use crate::Coord;

/// A point in layout space, in centimicrons.
///
/// # Examples
///
/// ```
/// use ace_geom::Point;
///
/// let a = Point::new(100, -50);
/// let b = Point::new(-25, 75);
/// assert_eq!(a + b, Point::new(75, 25));
/// assert_eq!(a - b, Point::new(125, -125));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: Coord,
    /// Vertical coordinate.
    pub y: Coord,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0, y: 0 };

    /// Creates a point from its coordinates.
    pub const fn new(x: Coord, y: Coord) -> Self {
        Point { x, y }
    }

    /// Manhattan (L1) distance to `other`.
    ///
    /// ```
    /// use ace_geom::Point;
    /// assert_eq!(Point::new(0, 0).manhattan_distance(Point::new(3, -4)), 7);
    /// ```
    pub fn manhattan_distance(self, other: Point) -> Coord {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Point {
    fn add_assign(&mut self, rhs: Point) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Point {
    fn sub_assign(&mut self, rhs: Point) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Neg for Point {
    type Output = Point;
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(Coord, Coord)> for Point {
    fn from((x, y): (Coord, Coord)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point::new(3, 4);
        let b = Point::new(-1, 2);
        assert_eq!(a + b, Point::new(2, 6));
        assert_eq!(a - b, Point::new(4, 2));
        assert_eq!(-a, Point::new(-3, -4));
        let mut c = a;
        c += b;
        assert_eq!(c, Point::new(2, 6));
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn origin_is_default() {
        assert_eq!(Point::default(), Point::ORIGIN);
    }

    #[test]
    fn manhattan_distance_is_symmetric() {
        let a = Point::new(10, 20);
        let b = Point::new(-5, 7);
        assert_eq!(a.manhattan_distance(b), b.manhattan_distance(a));
        assert_eq!(a.manhattan_distance(a), 0);
    }

    #[test]
    fn display_and_from_tuple() {
        let p: Point = (7, -3).into();
        assert_eq!(p.to_string(), "(7, -3)");
    }
}
