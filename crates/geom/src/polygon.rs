use std::fmt;

use crate::{Coord, Point, Rect, LAMBDA};

/// A simple polygon given by its vertex loop (CIF `P` command).
///
/// The interior is defined by the even–odd rule, matching CIF
/// semantics. Vertices may wind in either direction; the closing edge
/// from the last vertex back to the first is implicit.
///
/// # Examples
///
/// ```
/// use ace_geom::{Point, Polygon};
///
/// let tri = Polygon::new(vec![
///     Point::new(0, 0),
///     Point::new(1000, 0),
///     Point::new(0, 1000),
/// ]);
/// assert!(!tri.is_manhattan());
/// assert_eq!(tri.bounding_box().unwrap().area(), 1_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from its vertex loop.
    pub fn new(vertices: Vec<Point>) -> Self {
        Polygon { vertices }
    }

    /// The vertex loop.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// `true` if every edge is axis-parallel.
    pub fn is_manhattan(&self) -> bool {
        let n = self.vertices.len();
        (0..n).all(|i| {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            a.x == b.x || a.y == b.y
        })
    }

    /// Axis-aligned bounding box, or `None` for an empty vertex list.
    pub fn bounding_box(&self) -> Option<Rect> {
        let first = *self.vertices.first()?;
        let mut bb = Rect::new(first.x, first.y, first.x, first.y);
        for &v in &self.vertices[1..] {
            bb = Rect::new(
                bb.x_min.min(v.x),
                bb.y_min.min(v.y),
                bb.x_max.max(v.x),
                bb.y_max.max(v.y),
            );
        }
        Some(bb)
    }

    /// Twice the signed area (shoelace formula). Positive for
    /// counterclockwise winding.
    pub fn signed_area_doubled(&self) -> i64 {
        let n = self.vertices.len();
        (0..n)
            .map(|i| {
                let a = self.vertices[i];
                let b = self.vertices[(i + 1) % n];
                a.x * b.y - b.x * a.y
            })
            .sum()
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P")?;
        for v in &self.vertices {
            write!(f, " {} {}", v.x, v.y)?;
        }
        Ok(())
    }
}

/// Fractures a polygon into axis-aligned boxes.
///
/// This is the front-end's non-manhattan handling: "Before being
/// output, non-manhattan geometry is split into a number of small
/// aligned boxes that approximate the original object" (paper §3).
///
/// The polygon is cut into horizontal strips. Strip boundaries are the
/// distinct vertex y-coordinates; strips taller than `max_strip`
/// (λ for non-manhattan polygons) are subdivided so that sloped edges
/// are approximated to within λ. Within each strip, the interior at
/// the strip midline (even–odd rule) determines the output boxes, with
/// sloped edge crossings rounded to the nearest unit.
///
/// For a **manhattan** polygon the result is an *exact* rectangle
/// decomposition of the interior.
///
/// Returns an empty vector for degenerate (< 3 vertex) polygons.
///
/// # Examples
///
/// ```
/// use ace_geom::{fracture_polygon, Point, Polygon, Rect};
///
/// // An L-shape fractures exactly into two boxes.
/// let ell = Polygon::new(vec![
///     Point::new(0, 0),
///     Point::new(200, 0),
///     Point::new(200, 100),
///     Point::new(100, 100),
///     Point::new(100, 300),
///     Point::new(0, 300),
/// ]);
/// let boxes = fracture_polygon(&ell, ace_geom::LAMBDA);
/// let area: i64 = boxes.iter().map(Rect::area).sum();
/// assert_eq!(area, 200 * 100 + 100 * 200);
/// ```
pub fn fracture_polygon(poly: &Polygon, max_strip: Coord) -> Vec<Rect> {
    let verts = poly.vertices();
    if verts.len() < 3 {
        return Vec::new();
    }
    let manhattan = poly.is_manhattan();

    // Collect strip boundaries: all distinct vertex y's, plus λ-grid
    // subdivision for sloped polygons.
    let mut ys: Vec<Coord> = verts.iter().map(|v| v.y).collect();
    ys.sort_unstable();
    ys.dedup();
    if !manhattan {
        let mut refined = Vec::with_capacity(ys.len() * 2);
        for win in ys.windows(2) {
            let (lo, hi) = (win[0], win[1]);
            refined.push(lo);
            let step = max_strip.max(1);
            let mut y = lo + step;
            while y < hi {
                refined.push(y);
                y += step;
            }
        }
        refined.push(*ys.last().expect("non-empty"));
        ys = refined;
    }

    // Edges with non-zero vertical extent, as (y_lo, y_hi, x_at(y)).
    struct Edge {
        y_lo: Coord,
        y_hi: Coord,
        x_lo: Coord, // x at y_lo
        x_hi: Coord, // x at y_hi
    }
    let n = verts.len();
    let mut edges = Vec::with_capacity(n);
    for i in 0..n {
        let a = verts[i];
        let b = verts[(i + 1) % n];
        if a.y == b.y {
            continue; // horizontal edges never cross a strip midline
        }
        let (lo, hi) = if a.y < b.y { (a, b) } else { (b, a) };
        edges.push(Edge {
            y_lo: lo.y,
            y_hi: hi.y,
            x_lo: lo.x,
            x_hi: hi.x,
        });
    }

    let mut boxes = Vec::new();
    for win in ys.windows(2) {
        let (y0, y1) = (win[0], win[1]);
        if y0 == y1 {
            continue;
        }
        // Crossings at the strip midline. Use doubled coordinates so
        // the midline of an odd-height strip stays integral.
        let mid2 = y0 + y1; // 2 × midline y
        let mut xs: Vec<Coord> = Vec::new();
        for e in &edges {
            if 2 * e.y_lo <= mid2 && mid2 < 2 * e.y_hi {
                // x = x_lo + (x_hi - x_lo) * (mid - y_lo) / (y_hi - y_lo),
                // rounded to nearest; den > 0 since y_hi > y_lo.
                let x = if e.x_lo == e.x_hi {
                    e.x_lo // vertical edge: exact
                } else {
                    let num = (e.x_hi - e.x_lo) * (mid2 - 2 * e.y_lo);
                    let den = 2 * (e.y_hi - e.y_lo);
                    e.x_lo + (num + den / 2).div_euclid(den)
                };
                xs.push(x);
            }
        }
        xs.sort_unstable();
        // Even–odd: pair up crossings.
        for pair in xs.chunks_exact(2) {
            if pair[0] < pair[1] {
                boxes.push(Rect::new(pair[0], y0, pair[1], y1));
            }
        }
    }
    boxes
}

/// Convenience: fractures with the default λ strip height.
///
/// Exact for manhattan polygons; λ-accurate for sloped ones.
pub fn fracture_polygon_default(poly: &Polygon) -> Vec<Rect> {
    fracture_polygon(poly, LAMBDA)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_area(boxes: &[Rect]) -> i64 {
        boxes.iter().map(Rect::area).sum()
    }

    #[test]
    fn rectangle_fractures_to_itself() {
        let sq = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(100, 0),
            Point::new(100, 50),
            Point::new(0, 50),
        ]);
        let boxes = fracture_polygon(&sq, LAMBDA);
        assert_eq!(boxes, vec![Rect::new(0, 0, 100, 50)]);
    }

    #[test]
    fn l_shape_exact() {
        let ell = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(200, 0),
            Point::new(200, 100),
            Point::new(100, 100),
            Point::new(100, 300),
            Point::new(0, 300),
        ]);
        let boxes = fracture_polygon(&ell, LAMBDA);
        assert_eq!(total_area(&boxes), 200 * 100 + 100 * 200);
        // No box escapes the bounding box.
        let bb = ell.bounding_box().expect("non-empty");
        for b in &boxes {
            assert!(bb.contains_rect(b), "{b} outside {bb}");
        }
    }

    #[test]
    fn u_shape_produces_two_boxes_in_notch_strip() {
        // A "U": notch cut out of the top.
        let u = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(300, 0),
            Point::new(300, 200),
            Point::new(200, 200),
            Point::new(200, 100),
            Point::new(100, 100),
            Point::new(100, 200),
            Point::new(0, 200),
        ]);
        let boxes = fracture_polygon(&u, LAMBDA);
        assert_eq!(total_area(&boxes), 300 * 100 + 2 * (100 * 100));
        // The upper strip holds two disjoint boxes (the two prongs).
        let upper: Vec<&Rect> = boxes.iter().filter(|b| b.y_min == 100).collect();
        assert_eq!(upper.len(), 2);
    }

    #[test]
    fn clockwise_winding_gives_same_result() {
        let ccw = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(100, 0),
            Point::new(100, 100),
            Point::new(0, 100),
        ]);
        let mut verts = ccw.vertices().to_vec();
        verts.reverse();
        let cw = Polygon::new(verts);
        assert_eq!(
            fracture_polygon(&ccw, LAMBDA),
            fracture_polygon(&cw, LAMBDA)
        );
        assert!(ccw.signed_area_doubled() > 0);
        assert!(cw.signed_area_doubled() < 0);
    }

    #[test]
    fn triangle_approximation_covers_about_half() {
        let tri = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(10_000, 0),
            Point::new(0, 10_000),
        ]);
        let boxes = fracture_polygon(&tri, LAMBDA);
        let area = total_area(&boxes);
        let exact = 10_000_i64 * 10_000 / 2;
        let err = (area - exact).abs() as f64 / exact as f64;
        assert!(err < 0.05, "approximation error {err} too large");
        // Strips are λ-height at most.
        for b in &boxes {
            assert!(b.height() <= LAMBDA);
        }
    }

    #[test]
    fn degenerate_polygons_yield_nothing() {
        assert!(fracture_polygon(&Polygon::new(vec![]), LAMBDA).is_empty());
        assert!(fracture_polygon(&Polygon::new(vec![Point::new(0, 0)]), LAMBDA).is_empty());
        assert!(fracture_polygon(
            &Polygon::new(vec![Point::new(0, 0), Point::new(10, 10)]),
            LAMBDA
        )
        .is_empty());
    }

    #[test]
    fn boxes_are_disjoint() {
        let u = Polygon::new(vec![
            Point::new(0, 0),
            Point::new(300, 0),
            Point::new(300, 200),
            Point::new(200, 200),
            Point::new(200, 100),
            Point::new(100, 100),
            Point::new(100, 200),
            Point::new(0, 200),
        ]);
        let boxes = fracture_polygon(&u, LAMBDA);
        for (i, a) in boxes.iter().enumerate() {
            for b in &boxes[i + 1..] {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn display_round_trips_vertices() {
        let p = Polygon::new(vec![Point::new(1, 2), Point::new(3, 4), Point::new(5, 6)]);
        assert_eq!(p.to_string(), "P 1 2 3 4 5 6");
    }
}
