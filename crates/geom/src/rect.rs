use std::fmt;

use crate::{Coord, Point};

/// An axis-aligned rectangle — the primitive layout element ("box" in
/// the paper's terminology).
///
/// A rectangle is stored by its inclusive-exclusive coordinate bounds:
/// it covers the half-open region `[x_min, x_max) × [y_min, y_max)` of
/// the plane. Two boxes that share only an edge therefore *abut*
/// (electrically connected on a conducting layer) but do not
/// *overlap*.
///
/// Degenerate rectangles (zero width or height) are permitted as
/// values but are never produced by CIF instantiation; [`Rect::is_empty`]
/// reports them.
///
/// # Examples
///
/// ```
/// use ace_geom::Rect;
///
/// // CIF "B L400 W1200 C-600 -1400" — length (x) 400, width (y) 1200,
/// // centered at (-600, -1400):
/// let b = Rect::from_center_size(-600, -1400, 400, 1200);
/// assert_eq!(b, Rect::new(-800, -2000, -400, -800));
/// assert_eq!(b.area(), 400 * 1200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rect {
    /// Left edge.
    pub x_min: Coord,
    /// Bottom edge.
    pub y_min: Coord,
    /// Right edge.
    pub x_max: Coord,
    /// Top edge.
    pub y_max: Coord,
}

impl Rect {
    /// Creates a rectangle from its edge coordinates.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x_min > x_max` or `y_min > y_max`.
    pub fn new(x_min: Coord, y_min: Coord, x_max: Coord, y_max: Coord) -> Self {
        debug_assert!(x_min <= x_max, "inverted x bounds: {x_min} > {x_max}");
        debug_assert!(y_min <= y_max, "inverted y bounds: {y_min} > {y_max}");
        Rect {
            x_min,
            y_min,
            x_max,
            y_max,
        }
    }

    /// Creates a rectangle from a CIF-style center + length (x extent)
    /// + width (y extent) description.
    ///
    /// CIF box coordinates are twice the real value when lengths are
    /// odd; in practice CIF geometry is λ-aligned so `length` and
    /// `width` are always even here. Odd extents are rounded toward
    /// the lower-left corner.
    pub fn from_center_size(cx: Coord, cy: Coord, length: Coord, width: Coord) -> Self {
        let half_l = length / 2;
        let half_w = width / 2;
        Rect::new(
            cx - half_l,
            cy - half_w,
            cx - half_l + length,
            cy - half_w + width,
        )
    }

    /// Creates a rectangle from two opposite corner points, in any order.
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(a.x.min(b.x), a.y.min(b.y), a.x.max(b.x), a.y.max(b.y))
    }

    /// Horizontal extent (the CIF "length").
    pub fn width(&self) -> Coord {
        self.x_max - self.x_min
    }

    /// Vertical extent (the CIF "width").
    pub fn height(&self) -> Coord {
        self.y_max - self.y_min
    }

    /// Area of the rectangle.
    pub fn area(&self) -> i64 {
        self.width() * self.height()
    }

    /// Center point (rounded toward the lower left for odd extents).
    pub fn center(&self) -> Point {
        Point::new(
            self.x_min + self.width() / 2,
            self.y_min + self.height() / 2,
        )
    }

    /// Lower-left corner.
    pub fn lower_left(&self) -> Point {
        Point::new(self.x_min, self.y_min)
    }

    /// Upper-right corner.
    pub fn upper_right(&self) -> Point {
        Point::new(self.x_max, self.y_max)
    }

    /// `true` if the rectangle covers no area.
    pub fn is_empty(&self) -> bool {
        self.x_min >= self.x_max || self.y_min >= self.y_max
    }

    /// `true` if the interiors of the two rectangles intersect
    /// (sharing only an edge is *not* an overlap).
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x_min < other.x_max
            && other.x_min < self.x_max
            && self.y_min < other.y_max
            && other.y_min < self.y_max
    }

    /// `true` if the rectangles overlap **or** share edge contact of
    /// positive extent. Electrical connectivity on a conducting layer
    /// requires positive-length contact; touching at a single corner
    /// point does not connect.
    pub fn connects(&self, other: &Rect) -> bool {
        let x_contact = self.x_min.max(other.x_min) <= self.x_max.min(other.x_max);
        let y_contact = self.y_min.max(other.y_min) <= self.y_max.min(other.y_max);
        if !(x_contact && y_contact) {
            return false;
        }
        // Exclude pure corner contact: require positive extent on at
        // least one axis of the shared region.
        let x_extent = self.x_max.min(other.x_max) - self.x_min.max(other.x_min);
        let y_extent = self.y_max.min(other.y_max) - self.y_min.max(other.y_min);
        x_extent > 0 || y_extent > 0
    }

    /// The overlap region, if the interiors intersect.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if self.overlaps(other) {
            Some(Rect::new(
                self.x_min.max(other.x_min),
                self.y_min.max(other.y_min),
                self.x_max.min(other.x_max),
                self.y_max.min(other.y_max),
            ))
        } else {
            None
        }
    }

    /// The smallest rectangle containing both operands.
    pub fn bounding_union(&self, other: &Rect) -> Rect {
        Rect::new(
            self.x_min.min(other.x_min),
            self.y_min.min(other.y_min),
            self.x_max.max(other.x_max),
            self.y_max.max(other.y_max),
        )
    }

    /// `true` if `other` lies entirely inside (or on the boundary of) `self`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.x_min <= other.x_min
            && self.y_min <= other.y_min
            && self.x_max >= other.x_max
            && self.y_max >= other.y_max
    }

    /// `true` if the point lies inside the half-open region.
    pub fn contains_point(&self, p: Point) -> bool {
        self.x_min <= p.x && p.x < self.x_max && self.y_min <= p.y && p.y < self.y_max
    }

    /// `true` if the point lies inside or on the boundary (closed region).
    ///
    /// CIF `94` net labels are frequently placed exactly on box edges,
    /// so label resolution uses the closed test.
    pub fn contains_point_closed(&self, p: Point) -> bool {
        self.x_min <= p.x && p.x <= self.x_max && self.y_min <= p.y && p.y <= self.y_max
    }

    /// Translates the rectangle by `delta`.
    pub fn translate(&self, delta: Point) -> Rect {
        Rect::new(
            self.x_min + delta.x,
            self.y_min + delta.y,
            self.x_max + delta.x,
            self.y_max + delta.y,
        )
    }

    /// Expands the rectangle by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a negative margin inverts the bounds.
    pub fn inflate(&self, margin: Coord) -> Rect {
        Rect::new(
            self.x_min - margin,
            self.y_min - margin,
            self.x_max + margin,
            self.y_max + margin,
        )
    }

    /// Length of shared perimeter between the two rectangle boundaries.
    ///
    /// Used by the transistor width computation: the *source edge
    /// length* is the total contact length between the source net's
    /// diffusion and the channel.
    ///
    /// ```
    /// use ace_geom::Rect;
    /// let channel = Rect::new(0, 0, 400, 1200);
    /// let source = Rect::new(-600, 0, 0, 1200);  // abuts on the left
    /// assert_eq!(channel.contact_length(&source), 1200);
    /// ```
    pub fn contact_length(&self, other: &Rect) -> Coord {
        let x_overlap = (self.x_max.min(other.x_max) - self.x_min.max(other.x_min)).max(0);
        let y_overlap = (self.y_max.min(other.y_max) - self.y_min.max(other.y_min)).max(0);
        if self.overlaps(other) {
            // Overlapping boxes: treat the contact as the perimeter of
            // the shared region's longer axis; callers avoid this case
            // by fracturing into disjoint boxes first.
            x_overlap.max(y_overlap)
        } else if self.x_max == other.x_min || other.x_max == self.x_min {
            y_overlap
        } else if self.y_max == other.y_min || other.y_max == self.y_min {
            x_overlap
        } else {
            0
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}; {}, {}]",
            self.x_min, self.y_min, self.x_max, self.y_max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_center_size_matches_cif_semantics() {
        // The inverter wirelist's "B L400 W1200 C-600 -1400".
        let b = Rect::from_center_size(-600, -1400, 400, 1200);
        assert_eq!(b.x_min, -800);
        assert_eq!(b.x_max, -400);
        assert_eq!(b.y_min, -2000);
        assert_eq!(b.y_max, -800);
        assert_eq!(b.center(), Point::new(-600, -1400));
    }

    #[test]
    fn from_corners_any_order() {
        let a = Rect::from_corners(Point::new(5, 10), Point::new(-5, -10));
        let b = Rect::from_corners(Point::new(-5, 10), Point::new(5, -10));
        assert_eq!(a, b);
        assert_eq!(a, Rect::new(-5, -10, 5, 10));
    }

    #[test]
    fn overlap_excludes_edge_contact() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 0, 20, 10); // shares the x=10 edge
        assert!(!a.overlaps(&b));
        assert!(a.connects(&b));
        assert_eq!(a.intersection(&b), None);
    }

    #[test]
    fn corner_contact_does_not_connect() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 10, 20, 20); // touches only at (10,10)
        assert!(!a.connects(&b));
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 15, 15);
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 10, 10)));
        assert_eq!(a.bounding_union(&b), Rect::new(0, 0, 15, 15));
    }

    #[test]
    fn containment() {
        let outer = Rect::new(0, 0, 100, 100);
        let inner = Rect::new(10, 10, 90, 90);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
        assert!(outer.contains_point(Point::new(0, 0)));
        assert!(!outer.contains_point(Point::new(100, 100)));
        assert!(outer.contains_point_closed(Point::new(100, 100)));
    }

    #[test]
    fn translate_and_inflate() {
        let r = Rect::new(0, 0, 10, 20);
        assert_eq!(r.translate(Point::new(5, -5)), Rect::new(5, -5, 15, 15));
        assert_eq!(r.inflate(2), Rect::new(-2, -2, 12, 22));
    }

    #[test]
    fn contact_length_vertical_abutment() {
        let channel = Rect::new(0, 0, 400, 1200);
        let drain = Rect::new(0, 1200, 400, 2000); // abuts on top
        assert_eq!(channel.contact_length(&drain), 400);
    }

    #[test]
    fn contact_length_partial() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(10, 5, 20, 25); // abuts right, only 5 units shared
        assert_eq!(a.contact_length(&b), 5);
        // Disjoint boxes have no contact.
        let c = Rect::new(30, 0, 40, 10);
        assert_eq!(a.contact_length(&c), 0);
    }

    #[test]
    fn empty_rect() {
        assert!(Rect::new(0, 0, 0, 10).is_empty());
        assert!(Rect::new(0, 0, 10, 0).is_empty());
        assert!(!Rect::new(0, 0, 1, 1).is_empty());
        assert_eq!(Rect::default().area(), 0);
    }
}
