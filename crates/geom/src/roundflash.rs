//! CIF `R` (round flash) fracturing.
//!
//! A round flash is approximated by the octagon inscribed in its
//! circle and cut into horizontal strips like any other non-manhattan
//! shape. Unlike the generic [`crate::fracture_polygon`] path — whose
//! sloped-edge crossings round *to nearest*, which rounds the two
//! ±x.5 crossings of a symmetric corner strip in the same direction
//! and shifts the strip half a unit off center — this fracture
//! computes one half-width per strip and emits `[cx − hw, cx + hw]`,
//! so every output box is symmetric about the flash center by
//! construction.
//!
//! # Rounding rules
//!
//! * The radius is `⌊diameter / 2⌋`: an odd diameter loses its odd
//!   half-unit (CIF flash diameters are normally even multiples of
//!   the grid).
//! * The corner cut is `k = ⌊r·29/70⌋ ≈ r·(1 − 1/√2)`, matching the
//!   inscribed octagon.
//! * Each strip's half-width is the octagon's half-width at the strip
//!   midline, **rounded down** (inscribed): boxes never overhang the
//!   ideal octagon, and widths stay symmetric.
//! * Strip boundaries are mirrored about the center line, so the box
//!   set is symmetric under both x- and y-reflection through the
//!   center.

use crate::{Coord, Point, Rect};

/// Fractures a round flash of the given `diameter` centered at
/// `center` into boxes symmetric about the center.
///
/// Corner strips taller than `max_strip` are subdivided (the sloped
/// 45° corners are approximated to within `max_strip`, normally λ).
/// A flash smaller than 2 units across (`⌊diameter/2⌋ == 0`)
/// fractures to nothing.
///
/// # Examples
///
/// ```
/// use ace_geom::{fracture_round_flash, Point};
///
/// // Odd diameter: every box is still centered on the flash.
/// let boxes = fracture_round_flash(7, Point::new(100, 100), ace_geom::LAMBDA);
/// assert!(!boxes.is_empty());
/// for b in &boxes {
///     assert_eq!(100 - b.x_min, b.x_max - 100);
/// }
/// ```
pub fn fracture_round_flash(diameter: Coord, center: Point, max_strip: Coord) -> Vec<Rect> {
    let r = diameter / 2;
    if r <= 0 {
        return Vec::new();
    }
    let k = r * 29 / 70; // half the 45° corner cut
    let (cx, cy) = (center.x, center.y);

    // Strip boundaries for the upper half, mirrored to the lower:
    // the flat band edge (r − k) and the top (r), with the sloped
    // corner band subdivided to max_strip.
    let mut upper: Vec<Coord> = vec![r - k, r];
    let step = max_strip.max(1);
    let mut y = r - k + step;
    while y < r {
        upper.push(y);
        y += step;
    }
    upper.sort_unstable();
    upper.dedup();
    // The flat middle band is one strip (its half-width is constant,
    // so no subdivision is needed); corner bands mirror exactly.
    let mut ys: Vec<Coord> = upper.iter().map(|&dy| cy - dy).collect();
    ys.extend(upper.iter().map(|&dy| cy + dy));
    ys.sort_unstable();
    ys.dedup();

    let mut boxes = Vec::new();
    for win in ys.windows(2) {
        let (y0, y1) = (win[0], win[1]);
        // Octagon half-width at the strip midline, in doubled
        // coordinates: 2·hw = min(2r, 2(2r − k) − |2·dy|).
        let dy2 = (y0 + y1 - 2 * cy).abs();
        let hw2 = (2 * r).min(2 * (2 * r - k) - dy2);
        let hw = hw2 / 2; // round down: inscribed
        if hw > 0 {
            boxes.push(Rect::new(cx - hw, y0, cx + hw, y1));
        }
    }
    boxes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LAMBDA;

    /// Every box symmetric about the center in x, and the whole box
    /// set invariant under y-mirror through the center.
    fn assert_symmetric(diameter: Coord, center: Point) {
        let boxes = fracture_round_flash(diameter, center, LAMBDA);
        for b in &boxes {
            assert_eq!(
                center.x - b.x_min,
                b.x_max - center.x,
                "diameter {diameter}: {b:?} off-center in x"
            );
        }
        let mut mirrored: Vec<Rect> = boxes
            .iter()
            .map(|b| {
                Rect::new(
                    b.x_min,
                    2 * center.y - b.y_max,
                    b.x_max,
                    2 * center.y - b.y_min,
                )
            })
            .collect();
        let mut orig = boxes.clone();
        let key = |r: &Rect| (r.y_min, r.x_min, r.y_max, r.x_max);
        orig.sort_by_key(key);
        mirrored.sort_by_key(key);
        assert_eq!(orig, mirrored, "diameter {diameter}: not y-symmetric");
    }

    #[test]
    fn odd_and_even_diameters_fracture_symmetrically() {
        for d in [2, 3, 5, 7, 8, 99, 100, 1001, 5000] {
            assert_symmetric(d, Point::new(0, 0));
            assert_symmetric(d, Point::new(-137, 263));
        }
    }

    #[test]
    fn boxes_stay_inside_the_bounding_square() {
        let r = 2500;
        let boxes = fracture_round_flash(2 * r, Point::new(10, -20), LAMBDA);
        for b in &boxes {
            assert!(b.x_min >= 10 - r && b.x_max <= 10 + r, "{b:?}");
            assert!(b.y_min >= -20 - r && b.y_max <= -20 + r, "{b:?}");
        }
    }

    #[test]
    fn area_approximates_the_octagon() {
        // Octagon area = (2r)² − 2k² (four cut corners of area k²/2
        // each... with cut legs k each corner removes k²/2; total
        // 2k²). Fractured area must be within a few strips of it.
        let r: i64 = 2000;
        let k = r * 29 / 70;
        let boxes = fracture_round_flash(2 * r, Point::new(0, 0), 50);
        let area: i64 = boxes.iter().map(Rect::area).sum();
        let ideal = (2 * r) * (2 * r) - 2 * k * k;
        let err = (area - ideal).abs();
        assert!(err < ideal / 20, "area {area} vs ideal {ideal} (err {err})");
    }

    #[test]
    fn tiny_flashes_vanish() {
        assert!(fracture_round_flash(1, Point::new(0, 0), LAMBDA).is_empty());
        assert!(fracture_round_flash(0, Point::new(0, 0), LAMBDA).is_empty());
        let two = fracture_round_flash(2, Point::new(0, 0), LAMBDA);
        assert_eq!(two, vec![Rect::new(-1, -1, 1, 1)]);
    }
}
