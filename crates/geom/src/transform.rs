use std::fmt;

use crate::{Point, Rect};

/// One of the eight manhattan-preserving orientations: the four axis
/// rotations, optionally preceded by a mirror about the y-axis.
///
/// CIF symbol calls carry a transform list of translations (`T x y`),
/// mirrors (`MX`, `MY`) and rotations (`R a b`). The rotations that
/// appear in manhattan NMOS layouts are the four axis directions; an
/// arbitrary rotation vector would turn boxes into non-manhattan
/// polygons and is snapped by the CIF front-end (see
/// `ace-cif`). Composition of any sequence of axis rotations and
/// mirrors lands in this eight-element group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Orientation {
    /// Identity: `R 1 0`.
    #[default]
    R0,
    /// Quarter turn counterclockwise: `R 0 1`.
    R90,
    /// Half turn: `R -1 0`.
    R180,
    /// Three-quarter turn: `R 0 -1`.
    R270,
    /// Mirror in x (negate x), then `R0`: CIF `MX`.
    MxR0,
    /// Mirror in x, then quarter turn.
    MxR90,
    /// Mirror in x, then half turn (equals CIF `MY`).
    MxR180,
    /// Mirror in x, then three-quarter turn.
    MxR270,
}

impl Orientation {
    /// All eight orientations.
    pub const ALL: [Orientation; 8] = [
        Orientation::R0,
        Orientation::R90,
        Orientation::R180,
        Orientation::R270,
        Orientation::MxR0,
        Orientation::MxR90,
        Orientation::MxR180,
        Orientation::MxR270,
    ];

    fn decompose(self) -> (bool, u8) {
        match self {
            Orientation::R0 => (false, 0),
            Orientation::R90 => (false, 1),
            Orientation::R180 => (false, 2),
            Orientation::R270 => (false, 3),
            Orientation::MxR0 => (true, 0),
            Orientation::MxR90 => (true, 1),
            Orientation::MxR180 => (true, 2),
            Orientation::MxR270 => (true, 3),
        }
    }

    fn compose_parts(mirror: bool, quarter_turns: u8) -> Orientation {
        match (mirror, quarter_turns % 4) {
            (false, 0) => Orientation::R0,
            (false, 1) => Orientation::R90,
            (false, 2) => Orientation::R180,
            (false, _) => Orientation::R270,
            (true, 0) => Orientation::MxR0,
            (true, 1) => Orientation::MxR90,
            (true, 2) => Orientation::MxR180,
            (true, _) => Orientation::MxR270,
        }
    }

    /// Applies the orientation to a point about the origin.
    pub fn apply(self, p: Point) -> Point {
        let (mirror, turns) = self.decompose();
        let mut q = if mirror { Point::new(-p.x, p.y) } else { p };
        for _ in 0..turns {
            q = Point::new(-q.y, q.x);
        }
        q
    }

    /// The orientation `self ∘ other` (apply `other` first, then `self`).
    pub fn then(self, outer: Orientation) -> Orientation {
        let (m1, t1) = self.decompose();
        let (m2, t2) = outer.decompose();
        // outer(inner(p)): if outer mirrors, inner's rotation flips sign.
        let turns = if m2 { (4 - t1) % 4 + t2 } else { t1 + t2 };
        Orientation::compose_parts(m1 ^ m2, turns % 4)
    }

    /// The inverse orientation.
    pub fn inverse(self) -> Orientation {
        let (m, t) = self.decompose();
        if m {
            // Mirrors composed with rotations are involutions here:
            // (Mx ∘ R^t)⁻¹ = Mx ∘ R^t.
            self
        } else {
            Orientation::compose_parts(false, (4 - t) % 4)
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Orientation::R0 => "R0",
            Orientation::R90 => "R90",
            Orientation::R180 => "R180",
            Orientation::R270 => "R270",
            Orientation::MxR0 => "MX·R0",
            Orientation::MxR90 => "MX·R90",
            Orientation::MxR180 => "MX·R180",
            Orientation::MxR270 => "MX·R270",
        };
        f.write_str(s)
    }
}

/// A rigid layout transform: an [`Orientation`] about the origin
/// followed by a translation.
///
/// This is the net effect of a CIF symbol-call transform list. The
/// composition rule follows CIF: transforms listed left-to-right are
/// applied to the symbol's geometry in that order.
///
/// # Examples
///
/// ```
/// use ace_geom::{Orientation, Point, Rect, Transform};
///
/// // "T 100 0 MX" — mirror in x, then move right 100.
/// let t = Transform::identity()
///     .mirror_x()
///     .translate(Point::new(100, 0));
/// assert_eq!(t.apply_point(Point::new(10, 5)), Point::new(90, 5));
/// assert_eq!(
///     t.apply_rect(&Rect::new(0, 0, 10, 5)),
///     Rect::new(90, 0, 100, 5),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Transform {
    orientation: Orientation,
    translation: Point,
}

impl Transform {
    /// The identity transform.
    pub fn identity() -> Self {
        Transform::default()
    }

    /// A pure translation.
    pub fn from_translation(delta: Point) -> Self {
        Transform {
            orientation: Orientation::R0,
            translation: delta,
        }
    }

    /// A pure orientation about the origin.
    pub fn from_orientation(orientation: Orientation) -> Self {
        Transform {
            orientation,
            translation: Point::ORIGIN,
        }
    }

    /// The orientation component.
    pub fn orientation(&self) -> Orientation {
        self.orientation
    }

    /// The translation component.
    pub fn translation(&self) -> Point {
        self.translation
    }

    /// Appends a translation (CIF `T x y`).
    pub fn translate(self, delta: Point) -> Transform {
        Transform {
            orientation: self.orientation,
            translation: self.translation + delta,
        }
    }

    /// Appends a mirror about the y-axis, negating x (CIF `MX`).
    pub fn mirror_x(self) -> Transform {
        self.then_orientation(Orientation::MxR0)
    }

    /// Appends a mirror about the x-axis, negating y (CIF `MY`).
    pub fn mirror_y(self) -> Transform {
        self.then_orientation(Orientation::MxR180)
    }

    /// Appends a counterclockwise rotation by `quarter_turns × 90°`
    /// (CIF `R 0 1` is one quarter turn).
    pub fn rotate_quarter_turns(self, quarter_turns: u8) -> Transform {
        let o = match quarter_turns % 4 {
            0 => Orientation::R0,
            1 => Orientation::R90,
            2 => Orientation::R180,
            _ => Orientation::R270,
        };
        self.then_orientation(o)
    }

    fn then_orientation(self, outer: Orientation) -> Transform {
        Transform {
            orientation: self.orientation.then(outer),
            translation: outer.apply(self.translation),
        }
    }

    /// Composes: the result applies `self` first, then `outer`.
    ///
    /// This is the rule for nested symbol calls: a child instance's
    /// transform composed into its parent's.
    pub fn then(self, outer: Transform) -> Transform {
        Transform {
            orientation: self.orientation.then(outer.orientation),
            translation: outer.orientation.apply(self.translation) + outer.translation,
        }
    }

    /// The inverse transform.
    pub fn inverse(self) -> Transform {
        let inv = self.orientation.inverse();
        Transform {
            orientation: inv,
            translation: -inv.apply(self.translation),
        }
    }

    /// Maps a point.
    pub fn apply_point(&self, p: Point) -> Point {
        self.orientation.apply(p) + self.translation
    }

    /// Maps a rectangle (stays a rectangle under the orthogonal group).
    pub fn apply_rect(&self, r: &Rect) -> Rect {
        Rect::from_corners(
            self.apply_point(r.lower_left()),
            self.apply_point(r.upper_right()),
        )
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} + T({}, {})",
            self.orientation, self.translation.x, self.translation.y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_apply_matches_matrices() {
        let p = Point::new(3, 1);
        assert_eq!(Orientation::R0.apply(p), Point::new(3, 1));
        assert_eq!(Orientation::R90.apply(p), Point::new(-1, 3));
        assert_eq!(Orientation::R180.apply(p), Point::new(-3, -1));
        assert_eq!(Orientation::R270.apply(p), Point::new(1, -3));
        assert_eq!(Orientation::MxR0.apply(p), Point::new(-3, 1));
        assert_eq!(Orientation::MxR180.apply(p), Point::new(3, -1)); // = MY
    }

    #[test]
    fn orientation_composition_agrees_with_application() {
        let p = Point::new(5, 2);
        for a in Orientation::ALL {
            for b in Orientation::ALL {
                let composed = a.then(b);
                assert_eq!(composed.apply(p), b.apply(a.apply(p)), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn orientation_inverse() {
        let p = Point::new(7, -4);
        for o in Orientation::ALL {
            assert_eq!(o.inverse().apply(o.apply(p)), p, "o={o}");
            assert_eq!(o.then(o.inverse()), Orientation::R0, "o={o}");
        }
    }

    #[test]
    fn transform_translate_then_mirror() {
        // CIF semantics: operations apply in listed order.
        // "T 10 0 MX": translate, then mirror → x = -(x+10).
        let t = Transform::identity()
            .translate(Point::new(10, 0))
            .mirror_x();
        assert_eq!(t.apply_point(Point::new(1, 2)), Point::new(-11, 2));

        // "MX T 10 0": mirror, then translate → x = -x + 10.
        let t = Transform::identity()
            .mirror_x()
            .translate(Point::new(10, 0));
        assert_eq!(t.apply_point(Point::new(1, 2)), Point::new(9, 2));
    }

    #[test]
    fn transform_composition() {
        let inner = Transform::identity()
            .rotate_quarter_turns(1)
            .translate(Point::new(100, 0));
        let outer = Transform::identity()
            .mirror_y()
            .translate(Point::new(0, 50));
        let both = inner.then(outer);
        let p = Point::new(3, 4);
        assert_eq!(both.apply_point(p), outer.apply_point(inner.apply_point(p)));
    }

    #[test]
    fn transform_inverse_round_trip() {
        let t = Transform::identity()
            .mirror_x()
            .rotate_quarter_turns(3)
            .translate(Point::new(-17, 42));
        let p = Point::new(12, -9);
        assert_eq!(t.inverse().apply_point(t.apply_point(p)), p);
        assert_eq!(t.then(t.inverse()), Transform::identity());
    }

    #[test]
    fn rect_mapping_preserves_area() {
        let r = Rect::new(1, 2, 11, 5);
        for o in Orientation::ALL {
            let t = Transform::from_orientation(o).translate(Point::new(100, -7));
            let mapped = t.apply_rect(&r);
            assert_eq!(mapped.area(), r.area(), "o={o}");
        }
    }
}
