use std::fmt;

use crate::{fracture_polygon, Coord, Point, Polygon, Rect};

/// A CIF wire: a path of points drawn with a square pen of the given
/// width (CIF `W` command).
///
/// Each segment sweeps the pen along its length; CIF wires have
/// square, not rounded, ends, so a segment from `a` to `b` with width
/// `w` covers the rectangle of half-width `w/2` around the segment,
/// extended by `w/2` past both endpoints.
///
/// # Examples
///
/// ```
/// use ace_geom::{Point, Wire};
///
/// let w = Wire::new(400, vec![Point::new(0, 0), Point::new(2000, 0)]);
/// assert_eq!(w.width(), 400);
/// assert_eq!(w.path().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Wire {
    width: Coord,
    path: Vec<Point>,
}

impl Wire {
    /// Creates a wire from its pen width and path.
    pub fn new(width: Coord, path: Vec<Point>) -> Self {
        Wire { width, path }
    }

    /// Pen width.
    pub fn width(&self) -> Coord {
        self.width
    }

    /// Path points.
    pub fn path(&self) -> &[Point] {
        &self.path
    }

    /// `true` if every segment is axis-parallel.
    pub fn is_manhattan(&self) -> bool {
        self.path
            .windows(2)
            .all(|w| w[0].x == w[1].x || w[0].y == w[1].y)
    }
}

impl fmt::Display for Wire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W {}", self.width)?;
        for p in &self.path {
            write!(f, " {} {}", p.x, p.y)?;
        }
        Ok(())
    }
}

/// Converts a wire into boxes.
///
/// Manhattan segments become exact rectangles (with square end caps,
/// per CIF semantics). Diagonal segments are approximated by a
/// fractured parallelogram with strip height `max_strip`, mirroring
/// the front-end's treatment of non-manhattan polygons.
///
/// A single-point wire produces the square pen footprint at that
/// point. Returns an empty vector for an empty path or non-positive
/// width.
///
/// # Examples
///
/// ```
/// use ace_geom::{fracture_wire, Point, Rect, Wire, LAMBDA};
///
/// let w = Wire::new(400, vec![Point::new(0, 0), Point::new(2000, 0)]);
/// let boxes = fracture_wire(&w, LAMBDA);
/// assert_eq!(boxes, vec![Rect::new(-200, -200, 2200, 200)]);
/// ```
pub fn fracture_wire(wire: &Wire, max_strip: Coord) -> Vec<Rect> {
    if wire.width <= 0 || wire.path.is_empty() {
        return Vec::new();
    }
    let half = wire.width / 2;
    let mut boxes = Vec::new();

    if wire.path.len() == 1 {
        let p = wire.path[0];
        boxes.push(Rect::new(p.x - half, p.y - half, p.x + half, p.y + half));
        return boxes;
    }

    for seg in wire.path.windows(2) {
        let (a, b) = (seg[0], seg[1]);
        if a == b {
            boxes.push(Rect::new(a.x - half, a.y - half, a.x + half, a.y + half));
        } else if a.y == b.y {
            // Horizontal segment with square caps.
            let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
            boxes.push(Rect::new(x0 - half, a.y - half, x1 + half, a.y + half));
        } else if a.x == b.x {
            // Vertical segment with square caps.
            let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
            boxes.push(Rect::new(a.x - half, y0 - half, a.x + half, y1 + half));
        } else {
            // Diagonal: approximate the swept pen as a parallelogram
            // (pen corners offset perpendicular-ish by ±half on both
            // axes) and fracture it.
            let quad = Polygon::new(vec![
                Point::new(a.x - half, a.y - half),
                Point::new(a.x + half, a.y - half),
                Point::new(b.x + half, b.y - half),
                Point::new(b.x + half, b.y + half),
                Point::new(b.x - half, b.y + half),
                Point::new(a.x - half, a.y + half),
            ]);
            boxes.extend(fracture_polygon(&quad, max_strip));
        }
    }
    boxes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LAMBDA;

    #[test]
    fn horizontal_segment_has_square_caps() {
        let w = Wire::new(200, vec![Point::new(0, 0), Point::new(1000, 0)]);
        let boxes = fracture_wire(&w, LAMBDA);
        assert_eq!(boxes, vec![Rect::new(-100, -100, 1100, 100)]);
    }

    #[test]
    fn vertical_segment_has_square_caps() {
        let w = Wire::new(200, vec![Point::new(50, 0), Point::new(50, -800)]);
        let boxes = fracture_wire(&w, LAMBDA);
        assert_eq!(boxes, vec![Rect::new(-50, -900, 150, 100)]);
    }

    #[test]
    fn bend_covers_the_corner() {
        let w = Wire::new(
            200,
            vec![
                Point::new(0, 0),
                Point::new(1000, 0),
                Point::new(1000, 1000),
            ],
        );
        let boxes = fracture_wire(&w, LAMBDA);
        assert_eq!(boxes.len(), 2);
        // Corner region is covered by both segments (overlap is fine;
        // same-layer overlap merges in the extractor).
        let corner = Point::new(1000, 0);
        assert!(boxes.iter().all(|b| b.contains_point_closed(corner)));
    }

    #[test]
    fn single_point_wire_is_pen_footprint() {
        let w = Wire::new(400, vec![Point::new(10, 20)]);
        assert_eq!(
            fracture_wire(&w, LAMBDA),
            vec![Rect::new(-190, -180, 210, 220)]
        );
    }

    #[test]
    fn degenerate_wires_yield_nothing() {
        assert!(fracture_wire(&Wire::new(0, vec![Point::ORIGIN]), LAMBDA).is_empty());
        assert!(fracture_wire(&Wire::new(200, vec![]), LAMBDA).is_empty());
    }

    #[test]
    fn diagonal_segment_approximates_area() {
        let w = Wire::new(400, vec![Point::new(0, 0), Point::new(4000, 4000)]);
        let boxes = fracture_wire(&w, LAMBDA);
        assert!(!boxes.is_empty());
        // All boxes lie inside the inflated segment bounding box.
        let bb = Rect::new(-200, -200, 4200, 4200);
        for b in &boxes {
            assert!(bb.contains_rect(b), "{b}");
        }
        // Coverage should be near the parallelogram area (width·run + caps).
        let area: i64 = boxes.iter().map(Rect::area).sum();
        assert!(area > 0);
    }

    #[test]
    fn manhattan_detection() {
        assert!(Wire::new(
            100,
            vec![Point::new(0, 0), Point::new(5, 0), Point::new(5, 9)]
        )
        .is_manhattan());
        assert!(!Wire::new(100, vec![Point::new(0, 0), Point::new(5, 5)]).is_manhattan());
    }

    #[test]
    fn display_format() {
        let w = Wire::new(300, vec![Point::new(1, 2), Point::new(3, 4)]);
        assert_eq!(w.to_string(), "W 300 1 2 3 4");
    }
}
