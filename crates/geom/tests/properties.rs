//! Property-based tests for the geometry kernel.

use ace_geom::{
    fracture_polygon, fracture_wire, merge_boxes, union_area, Interval, IntervalMap, IntervalSet,
    Orientation, Point, Polygon, Rect, Transform, Wire, LAMBDA,
};
use proptest::prelude::*;

fn point() -> impl Strategy<Value = Point> {
    (-1000i64..1000, -1000i64..1000).prop_map(|(x, y)| Point::new(x, y))
}

fn orientation() -> impl Strategy<Value = Orientation> {
    prop::sample::select(Orientation::ALL.to_vec())
}

fn transform() -> impl Strategy<Value = Transform> {
    (orientation(), point()).prop_map(|(o, d)| Transform::from_orientation(o).translate(d))
}

fn rect() -> impl Strategy<Value = Rect> {
    (-500i64..500, -500i64..500, 1i64..200, 1i64..200)
        .prop_map(|(x, y, w, h)| Rect::new(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn transform_composition_is_application_order(
        a in transform(),
        b in transform(),
        p in point(),
    ) {
        prop_assert_eq!(a.then(b).apply_point(p), b.apply_point(a.apply_point(p)));
    }

    #[test]
    fn transform_inverse_round_trips(t in transform(), p in point(), r in rect()) {
        prop_assert_eq!(t.inverse().apply_point(t.apply_point(p)), p);
        prop_assert_eq!(t.inverse().apply_rect(&t.apply_rect(&r)), r);
        prop_assert_eq!(t.then(t.inverse()), Transform::identity());
    }

    #[test]
    fn transforms_preserve_area_and_incidence(
        t in transform(),
        a in rect(),
        b in rect(),
    ) {
        let ta = t.apply_rect(&a);
        let tb = t.apply_rect(&b);
        prop_assert_eq!(ta.area(), a.area());
        prop_assert_eq!(ta.overlaps(&tb), a.overlaps(&b));
        prop_assert_eq!(ta.connects(&tb), a.connects(&b));
        prop_assert_eq!(ta.contact_length(&tb), a.contact_length(&b));
    }

    #[test]
    fn orientation_group_is_closed_and_invertible(
        a in orientation(),
        b in orientation(),
        p in point(),
    ) {
        let c = a.then(b);
        prop_assert!(Orientation::ALL.contains(&c));
        prop_assert_eq!(c.apply(p), b.apply(a.apply(p)));
        prop_assert_eq!(a.then(a.inverse()), Orientation::R0);
    }

    #[test]
    fn rect_intersection_is_commutative_and_contained(a in rect(), b in rect()) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(i.area() > 0);
        }
        let hull = a.bounding_union(&b);
        prop_assert!(hull.contains_rect(&a) && hull.contains_rect(&b));
    }

    #[test]
    fn interval_set_laws(
        raw in prop::collection::vec((0i64..200, 1i64..40), 0..16)
    ) {
        let s: IntervalSet = raw
            .iter()
            .map(|&(lo, len)| Interval::new(lo, lo + len))
            .collect();
        // Normalization: spans sorted, disjoint, non-abutting.
        let spans: Vec<Interval> = s.iter().copied().collect();
        for w in spans.windows(2) {
            prop_assert!(w[0].hi < w[1].lo, "{:?}", spans);
        }
        // Identities.
        prop_assert_eq!(s.subtract(&s), IntervalSet::new());
        prop_assert_eq!(&s.union(&s), &s);
        prop_assert_eq!(&s.intersection(&s), &s);
        // Subtraction then union restores at least the original.
        let half: IntervalSet = spans.iter().step_by(2).copied().collect();
        prop_assert_eq!(&s.subtract(&half).union(&half), &s);
    }

    #[test]
    fn manhattan_wire_boxes_cover_the_path(
        width in 1i64..5,
        steps in prop::collection::vec((0i64..2, -4i64..5), 1..6),
    ) {
        // Build a manhattan path from alternating steps (λ units).
        let width = width * 2 * LAMBDA;
        let mut path = vec![Point::ORIGIN];
        let mut at = Point::ORIGIN;
        for (i, &(_, d)) in steps.iter().enumerate() {
            if d == 0 {
                continue;
            }
            if i % 2 == 0 {
                at.x += d * LAMBDA;
            } else {
                at.y += d * LAMBDA;
            }
            path.push(at);
        }
        let wire = Wire::new(width, path.clone());
        prop_assert!(wire.is_manhattan());
        let boxes = fracture_wire(&wire, LAMBDA);
        // Every path point is covered by some box.
        for p in &path {
            prop_assert!(
                boxes.iter().any(|b| b.contains_point_closed(*p)),
                "path point {p} uncovered"
            );
        }
        // Coverage is at least the pen footprint and at most the
        // swept hull.
        prop_assert!(union_area(&boxes) >= width * width);
    }

    #[test]
    fn rectilinear_polygon_fracture_matches_shoelace(
        steps in prop::collection::vec((1i64..4, 1i64..4), 1..6)
    ) {
        let mut verts = vec![Point::ORIGIN];
        let mut x = 0;
        let mut y = 0;
        for &(dx, dy) in &steps {
            x += dx * LAMBDA;
            verts.push(Point::new(x, y));
            y += dy * LAMBDA;
            verts.push(Point::new(x, y));
        }
        verts.push(Point::new(0, y));
        let poly = Polygon::new(verts);
        let boxes = fracture_polygon(&poly, LAMBDA);
        let covered: i64 = boxes.iter().map(Rect::area).sum();
        prop_assert_eq!(covered * 2, poly.signed_area_doubled().abs());
        prop_assert_eq!(union_area(&boxes), covered, "fragments overlap");
    }

    #[test]
    fn interval_map_matches_linear_oracle(
        // (kind, lo, len, val) in λ units: kind 0 inserts, 1 removes,
        // 2 queues for merge_sorted, 3 flushes the queued batch. The
        // tiny coordinate domain forces duplicate endpoints and
        // intervals touching exactly at λ boundaries.
        ops in prop::collection::vec((0u8..4, 0i64..16, 1i64..8, 0u32..4), 1..48),
        stabs in prop::collection::vec(-1i64..18, 1..8),
    ) {
        let mut map: IntervalMap<u32> = IntervalMap::new();
        let mut oracle: Vec<(Interval, u32)> = Vec::new();
        let mut batch: Vec<(Interval, u32)> = Vec::new();
        let flush = |map: &mut IntervalMap<u32>,
                         oracle: &mut Vec<(Interval, u32)>,
                         batch: &mut Vec<(Interval, u32)>| {
            batch.sort_by_key(|&(iv, _)| iv.lo);
            map.merge_sorted(batch);
            oracle.extend(batch.iter().copied());
            batch.clear();
        };
        for &(kind, lo, len, val) in &ops {
            let iv = Interval::new(lo * LAMBDA, (lo + len) * LAMBDA);
            match kind {
                0 => {
                    map.insert(iv, val);
                    oracle.push((iv, val));
                }
                1 => {
                    let removed = map.remove(iv, &val);
                    let pos = oracle.iter().position(|&(o, v)| o == iv && v == val);
                    prop_assert_eq!(removed, pos.is_some());
                    if let Some(p) = pos {
                        oracle.remove(p);
                    }
                }
                2 => batch.push((iv, val)),
                _ => flush(&mut map, &mut oracle, &mut batch),
            }
            prop_assert!(map.check_invariants());
        }
        flush(&mut map, &mut oracle, &mut batch);
        prop_assert!(map.check_invariants());

        // Contents agree as multisets, and iteration is in lo order.
        let got: Vec<_> = map.iter().map(|(iv, v)| (iv.lo, iv.hi, *v)).collect();
        for w in got.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "iter out of lo order: {:?}", got);
        }
        let mut got_sorted = got;
        let mut want: Vec<_> = oracle.iter().map(|&(iv, v)| (iv.lo, iv.hi, v)).collect();
        got_sorted.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got_sorted, want);

        // Stab and overlap queries agree with the naive linear scan.
        for &x in &stabs {
            let x = x * LAMBDA;
            let mut got: Vec<_> = map.stab(x).map(|(iv, v)| (iv.lo, iv.hi, *v)).collect();
            let mut want: Vec<_> = oracle
                .iter()
                .filter(|&&(iv, _)| iv.lo <= x && x < iv.hi)
                .map(|&(iv, v)| (iv.lo, iv.hi, v))
                .collect();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want, "stab({}) diverges from oracle", x);

            let q = Interval::new(x, x + 3 * LAMBDA);
            let mut got: Vec<_> = map.overlapping(q).map(|(iv, v)| (iv.lo, iv.hi, *v)).collect();
            let mut want: Vec<_> = oracle
                .iter()
                .filter(|&&(iv, _)| iv.lo < q.hi && iv.hi > q.lo)
                .map(|&(iv, v)| (iv.lo, iv.hi, v))
                .collect();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want, "overlapping({:?}) diverges from oracle", q);
        }
    }

    #[test]
    fn merge_boxes_is_canonical(boxes in prop::collection::vec(rect(), 0..16)) {
        let merged = merge_boxes(&boxes);
        // Same area, idempotent, order independent.
        prop_assert_eq!(union_area(&boxes), merged.iter().map(Rect::area).sum::<i64>());
        prop_assert_eq!(&merge_boxes(&merged), &merged);
        let mut reversed = boxes.clone();
        reversed.reverse();
        prop_assert_eq!(merge_boxes(&reversed), merged);
    }
}
