//! The `Compose` routine: merging two adjacent windows.
//!
//! "Adjacent windows are composed by the following steps: 1. Find all
//! pairs of boundary segments that touch from the two windows that
//! are to be merged. 2. For each pair of touching boundary segments,
//! step through the elements of the interface-segment lists (for
//! corresponding layers) and establish signal equivalences.
//! 3. Compute the interface for the new window." (HEXT §3.)
//!
//! Partial transistors whose channel fragments meet across the seam
//! are merged; once a device has no channel element left on the
//! composed window's outline it is completed and emitted into the new
//! window's circuit fragment.

use std::collections::HashMap;

use ace_core::Face;
use ace_geom::{merge_boxes, Interval, IntervalSet, Layer, Point, Rect};
use ace_wirelist::{HierNetlist, NetParasitics, PartDef, SubPart, UnionFind};

use crate::interface::{IfaceElem, IfaceSignal, PartialDevice, WindowCircuit};

/// `true` when the window carries no circuit at all: no nets, no
/// devices, no children, no interface, no partial transistors.
fn is_blank(hier: &HierNetlist, w: &WindowCircuit) -> bool {
    if !w.iface.is_empty() || !w.partials.is_empty() || w.net_count != 0 {
        return false;
    }
    let part = hier.part(w.part);
    part.net_count == 0 && part.devices.is_empty() && part.subparts.is_empty()
}

/// Composes `keep` (which owns all the circuitry) with the blank
/// window `blank`: the region grows and `keep`'s interface elements
/// facing the blank region become interior; the circuit fragment is
/// reused as is.
fn trivial_union(
    keep: &WindowCircuit,
    d_keep: Point,
    blank: &WindowCircuit,
    d_blank: Point,
) -> WindowCircuit {
    let region_blank: Vec<Rect> = blank.region.iter().map(|r| r.translate(d_blank)).collect();
    let cover_probe = WindowCircuit {
        region: region_blank.clone(),
        part: blank.part,
        net_count: 0,
        iface: vec![],
        partials: vec![],
    };
    let mut iface = Vec::with_capacity(keep.iface.len());
    for e in &keep.iface {
        let shifted = IfaceElem {
            face: e.face,
            at: match e.face {
                Face::Left | Face::Right => e.at + d_keep.x,
                Face::Top | Face::Bottom => e.at + d_keep.y,
            },
            span: match e.face {
                Face::Left | Face::Right => {
                    Interval::new(e.span.lo + d_keep.y, e.span.hi + d_keep.y)
                }
                Face::Top | Face::Bottom => {
                    Interval::new(e.span.lo + d_keep.x, e.span.hi + d_keep.x)
                }
            },
            ..*e
        };
        let cover: IntervalSet = match shifted.face {
            Face::Right => cover_probe.vertical_cover(shifted.at, true),
            Face::Left => cover_probe.vertical_cover(shifted.at, false),
            Face::Top => cover_probe.horizontal_cover(shifted.at, true),
            Face::Bottom => cover_probe.horizontal_cover(shifted.at, false),
        };
        if cover.is_empty() {
            iface.push(shifted);
            continue;
        }
        let mut span_set = IntervalSet::new();
        span_set.insert(shifted.span);
        for leftover in span_set.subtract(&cover).iter() {
            iface.push(IfaceElem {
                span: *leftover,
                ..shifted
            });
        }
    }
    let mut region: Vec<Rect> = keep.region.iter().map(|r| r.translate(d_keep)).collect();
    region.extend_from_slice(&region_blank);
    if region.len() > 64 {
        region = merge_boxes(&region);
    }
    WindowCircuit {
        region,
        part: keep.part,
        net_count: keep.net_count,
        iface,
        partials: Vec::new(),
    }
}

/// Counters produced by one compose operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComposeStats {
    /// Signal equivalences established across the seam.
    pub equivalences: u64,
    /// Interface-element pairs examined.
    pub elems_matched: u64,
    /// Partial transistors completed by this compose.
    pub partials_completed: u64,
}

/// Composes two windows into one.
///
/// `pa`/`pb` position the (origin-normalized) windows in a common
/// parent frame. The result is normalized so its lower-left corner is
/// at the origin; the caller places it at `Point::new(min(pa.x,pb.x),
/// min(pa.y,pb.y))`.
pub fn compose(
    hier: &mut HierNetlist,
    a: &WindowCircuit,
    pa: Point,
    b: &WindowCircuit,
    pb: Point,
    name: String,
) -> (WindowCircuit, ComposeStats) {
    let mut stats = ComposeStats::default();
    let pc = Point::new(pa.x.min(pb.x), pa.y.min(pb.y));
    let da = pa - pc;
    let db = pb - pc;

    // Fast path: merging with an empty window (a blank tile between
    // cells) establishes no equivalences and completes no devices —
    // the circuit fragment is reused and only the region/interface
    // change. Windows with partial transistors take the general path
    // (an interiorized channel element completes its device), and the
    // kept window must sit at the composed origin so its part's local
    // coordinate frame is preserved.
    if is_blank(hier, b) && a.partials.is_empty() && da == Point::ORIGIN {
        return (trivial_union(a, da, b, db), stats);
    }
    if is_blank(hier, a) && b.partials.is_empty() && db == Point::ORIGIN {
        return (trivial_union(b, db, a, da), stats);
    }

    // Local net space: A's exports then B's exports.
    let exports_a = hier.part(a.part).exports.clone();
    let exports_b = hier.part(b.part).exports.clone();
    let na = exports_a.len() as u32;
    let map_a: HashMap<u32, u32> = exports_a
        .iter()
        .enumerate()
        .map(|(i, &e)| (e, i as u32))
        .collect();
    let map_b: HashMap<u32, u32> = exports_b
        .iter()
        .enumerate()
        .map(|(i, &e)| (e, na + i as u32))
        .collect();
    let net_count = na + exports_b.len() as u32;

    // Translate interfaces into the composed frame with C-local nets.
    let shift_elem = |e: &IfaceElem, d: Point, map: &HashMap<u32, u32>, side: u32| IfaceElem {
        face: e.face,
        at: match e.face {
            Face::Left | Face::Right => e.at + d.x,
            Face::Top | Face::Bottom => e.at + d.y,
        },
        span: match e.face {
            Face::Left | Face::Right => Interval::new(e.span.lo + d.y, e.span.hi + d.y),
            Face::Top | Face::Bottom => Interval::new(e.span.lo + d.x, e.span.hi + d.x),
        },
        layer: e.layer,
        signal: match e.signal {
            IfaceSignal::Net(n) => IfaceSignal::Net(map[&n]),
            // Partial indices offset by side (B's partials follow A's).
            IfaceSignal::Channel(k) => IfaceSignal::Channel(side + k),
        },
    };
    let npa = a.partials.len() as u32;
    let elems_a: Vec<IfaceElem> = a
        .iface
        .iter()
        .map(|e| shift_elem(e, da, &map_a, 0))
        .collect();
    let elems_b: Vec<IfaceElem> = b
        .iface
        .iter()
        .map(|e| shift_elem(e, db, &map_b, npa))
        .collect();

    // Translated partials with C-local nets.
    let mut partials: Vec<PartialDevice> = Vec::new();
    let push_partials =
        |src: &[PartialDevice], d: Point, map: &HashMap<u32, u32>, out: &mut Vec<PartialDevice>| {
            for p in src {
                out.push(PartialDevice {
                    area: p.area,
                    bbox: p.bbox.translate(d),
                    depletion: p.depletion,
                    gate: map[&p.gate],
                    terminals: p.terminals.iter().map(|&(n, l)| (map[&n], l)).collect(),
                });
            }
        };
    push_partials(&a.partials, da, &map_a, &mut partials);
    push_partials(&b.partials, db, &map_b, &mut partials);

    // Step 1+2: match touching boundary elements.
    let mut net_uf = UnionFind::with_len(net_count as usize);
    let mut dev_uf = UnionFind::with_len(partials.len());
    let mut contact_additions: Vec<(u32, u32, i64)> = Vec::new(); // (partial, net, len)
                                                                  // Seam edges counted by both windows' perimeter totals; each
                                                                  // becomes a negative correction on the composed part.
    let mut seam_corrections: Vec<(u32, NetParasitics)> = Vec::new();
    for (fa, fb) in [
        (Face::Right, Face::Left),
        (Face::Left, Face::Right),
        (Face::Top, Face::Bottom),
        (Face::Bottom, Face::Top),
    ] {
        // Bucket B's elements by line coordinate.
        let mut by_line: HashMap<i64, Vec<&IfaceElem>> = HashMap::new();
        for e in elems_b.iter().filter(|e| e.face == fb) {
            by_line.entry(e.at).or_default().push(e);
        }
        for ea in elems_a.iter().filter(|e| e.face == fa) {
            let Some(cands) = by_line.get(&ea.at) else {
                continue;
            };
            for eb in cands {
                let overlap = ea.span.overlap_len(&eb.span);
                if overlap <= 0 {
                    continue;
                }
                stats.elems_matched += 1;
                match (ea.signal, eb.signal) {
                    (IfaceSignal::Net(x), IfaceSignal::Net(y)) => {
                        if ea.layer == eb.layer {
                            if net_uf.find(x) != net_uf.find(y) {
                                stats.equivalences += 1;
                            }
                            net_uf.union(x, y);
                            if let Some(layer) = ea.layer {
                                let mut corr = NetParasitics::default();
                                corr.sub_edge(layer, overlap);
                                seam_corrections.push((x, corr));
                            }
                        }
                    }
                    (IfaceSignal::Channel(x), IfaceSignal::Channel(y)) => {
                        dev_uf.union(x, y);
                    }
                    (IfaceSignal::Channel(k), IfaceSignal::Net(n))
                    | (IfaceSignal::Net(n), IfaceSignal::Channel(k)) => {
                        // Diffusion meeting a channel across the seam
                        // is a transistor terminal; poly/metal passing
                        // over a channel edge is handled by their own
                        // net elements.
                        let diff_layer = match (ea.signal, ea.layer, eb.layer) {
                            (IfaceSignal::Net(_), l, _) => l,
                            (_, _, l) => l,
                        };
                        if diff_layer == Some(Layer::Diffusion) {
                            contact_additions.push((k, n, overlap));
                        }
                    }
                }
            }
        }
    }

    // Merge partial device groups: gates of merged fragments are the
    // same signal.
    for i in 0..partials.len() as u32 {
        let root = dev_uf.find(i);
        if root != i {
            let ga = partials[root as usize].gate;
            let gb = partials[i as usize].gate;
            if net_uf.find(ga) != net_uf.find(gb) {
                stats.equivalences += 1;
            }
            net_uf.union(ga, gb);
        }
    }
    for (k, n, len) in contact_additions {
        let root = dev_uf.find(k) as usize;
        partials[root].terminals.push((n, len));
    }
    // Fold merged fragments into their roots.
    for i in 0..partials.len() as u32 {
        let root = dev_uf.find(i);
        if root != i {
            let absorbed = partials[i as usize].clone();
            partials[root as usize].absorb(&absorbed);
        }
    }

    // Step 3: the composed interface — each element survives where
    // the *other* window's region does not cover the space it faces.
    let region_a: Vec<Rect> = a.region.iter().map(|r| r.translate(da)).collect();
    let region_b: Vec<Rect> = b.region.iter().map(|r| r.translate(db)).collect();
    let mut region: Vec<Rect> = region_a.clone();
    region.extend_from_slice(&region_b);
    // Keep the region representation compact; covers stay exact.
    if region.len() > 64 {
        region = merge_boxes(&region);
    }
    let circ_a = WindowCircuit {
        region: region_a,
        part: a.part,
        net_count: 0,
        iface: vec![],
        partials: vec![],
    };
    let circ_b = WindowCircuit {
        region: region_b,
        part: b.part,
        net_count: 0,
        iface: vec![],
        partials: vec![],
    };

    let mut iface: Vec<IfaceElem> = Vec::new();
    let mut channel_exposed = vec![false; partials.len()];
    let survive = |e: &IfaceElem,
                   other: &WindowCircuit,
                   out: &mut Vec<IfaceElem>,
                   channel_exposed: &mut Vec<bool>,
                   net_uf: &mut UnionFind,
                   dev_uf: &mut UnionFind| {
        let cover: IntervalSet = match e.face {
            Face::Right => other.vertical_cover(e.at, true),
            Face::Left => other.vertical_cover(e.at, false),
            Face::Top => other.horizontal_cover(e.at, true),
            Face::Bottom => other.horizontal_cover(e.at, false),
        };
        let mut span_set = IntervalSet::new();
        span_set.insert(e.span);
        for leftover in span_set.subtract(&cover).iter() {
            let signal = match e.signal {
                IfaceSignal::Net(n) => IfaceSignal::Net(net_uf.find(n)),
                IfaceSignal::Channel(k) => {
                    let root = dev_uf.find(k);
                    channel_exposed[root as usize] = true;
                    IfaceSignal::Channel(root)
                }
            };
            out.push(IfaceElem {
                face: e.face,
                at: e.at,
                span: *leftover,
                layer: e.layer,
                signal,
            });
        }
    };
    for e in &elems_a {
        survive(
            e,
            &circ_b,
            &mut iface,
            &mut channel_exposed,
            &mut net_uf,
            &mut dev_uf,
        );
    }
    for e in &elems_b {
        survive(
            e,
            &circ_a,
            &mut iface,
            &mut channel_exposed,
            &mut net_uf,
            &mut dev_uf,
        );
    }

    // Split partials into still-exposed and completed.
    let mut completed_devices = Vec::new();
    let mut remaining: Vec<PartialDevice> = Vec::new();
    let mut new_partial_index: HashMap<u32, u32> = HashMap::new();
    for i in 0..partials.len() as u32 {
        if dev_uf.find(i) != i {
            continue; // merged into its root
        }
        let mut p = partials[i as usize].clone();
        // Canonicalize net references.
        p.gate = net_uf.find(p.gate);
        for t in &mut p.terminals {
            t.0 = net_uf.find(t.0);
        }
        if channel_exposed[i as usize] {
            new_partial_index.insert(i, remaining.len() as u32);
            remaining.push(p);
        } else {
            stats.partials_completed += 1;
            completed_devices.push(p.finalize());
        }
    }
    for e in &mut iface {
        if let IfaceSignal::Channel(k) = e.signal {
            e.signal = IfaceSignal::Channel(new_partial_index[&k]);
        }
    }
    iface.sort_by_key(|e| {
        (
            e.face as u8,
            e.at,
            e.span.lo,
            e.span.hi,
            e.layer.map(Layer::index),
        )
    });

    // Build the composed part.
    let mut equivalences = Vec::new();
    for x in 0..net_count {
        let root = net_uf.find(x);
        if root != x {
            equivalences.push((root, x));
        }
    }
    let mut exports: Vec<u32> = iface
        .iter()
        .filter_map(|e| match e.signal {
            IfaceSignal::Net(n) => Some(n),
            IfaceSignal::Channel(_) => None,
        })
        .collect();
    for p in &remaining {
        exports.push(p.gate);
        exports.extend(p.terminals.iter().map(|&(n, _)| n));
    }
    exports.sort_unstable();
    exports.dedup();

    let part = hier.add_part(PartDef {
        name,
        net_count,
        exports,
        devices: completed_devices,
        subparts: vec![
            SubPart {
                part: a.part,
                name: "P1".to_string(),
                loc_offset: da,
                net_map: exports_a
                    .iter()
                    .enumerate()
                    .map(|(i, &e)| (e, i as u32))
                    .collect(),
            },
            SubPart {
                part: b.part,
                name: "P2".to_string(),
                loc_offset: db,
                net_map: exports_b
                    .iter()
                    .enumerate()
                    .map(|(i, &e)| (e, na + i as u32))
                    .collect(),
            },
        ],
        equivalences,
        net_parasitics: seam_corrections,
        ..PartDef::default()
    });

    (
        WindowCircuit {
            region,
            part,
            net_count,
            iface,
            partials: remaining,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_window(hier: &mut HierNetlist, w: i64, h: i64) -> WindowCircuit {
        let part = hier.add_part(PartDef {
            name: "empty".into(),
            ..PartDef::default()
        });
        WindowCircuit {
            region: vec![Rect::new(0, 0, w, h)],
            part,
            net_count: 0,
            iface: vec![],
            partials: vec![],
        }
    }

    fn window_with_net(
        hier: &mut HierNetlist,
        w: i64,
        h: i64,
        elems: Vec<IfaceElem>,
    ) -> WindowCircuit {
        let nets: Vec<u32> = {
            let mut v: Vec<u32> = elems
                .iter()
                .filter_map(|e| match e.signal {
                    IfaceSignal::Net(n) => Some(n),
                    _ => None,
                })
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let part = hier.add_part(PartDef {
            name: "w".into(),
            net_count: nets.iter().max().map_or(0, |&m| m + 1),
            exports: nets,
            ..PartDef::default()
        });
        WindowCircuit {
            region: vec![Rect::new(0, 0, w, h)],
            part,
            net_count: 0,
            iface: elems,
            partials: vec![],
        }
    }

    fn metal_elem(face: Face, at: i64, lo: i64, hi: i64, net: u32) -> IfaceElem {
        IfaceElem {
            face,
            at,
            span: Interval::new(lo, hi),
            layer: Some(Layer::Metal),
            signal: IfaceSignal::Net(net),
        }
    }

    #[test]
    fn touching_nets_become_equivalent() {
        let mut hier = HierNetlist::new();
        // A has a metal edge on its right face; B on its left face.
        let a = window_with_net(
            &mut hier,
            100,
            100,
            vec![metal_elem(Face::Right, 100, 40, 60, 0)],
        );
        let b = window_with_net(
            &mut hier,
            100,
            100,
            vec![metal_elem(Face::Left, 0, 40, 60, 0)],
        );
        let (c, stats) = compose(
            &mut hier,
            &a,
            Point::new(0, 0),
            &b,
            Point::new(100, 0),
            "c".into(),
        );
        assert_eq!(stats.equivalences, 1);
        // The seam elements are interior now.
        assert!(c.iface.is_empty());
        let part = hier.part(c.part);
        assert_eq!(part.equivalences.len(), 1);
        assert_eq!(part.subparts.len(), 2);
    }

    #[test]
    fn non_touching_elements_survive() {
        let mut hier = HierNetlist::new();
        let a = window_with_net(
            &mut hier,
            100,
            100,
            vec![
                metal_elem(Face::Right, 100, 40, 60, 0),
                metal_elem(Face::Top, 100, 0, 30, 1),
            ],
        );
        let b = empty_window(&mut hier, 100, 100);
        // B sits on top of A: the Top elem interiorizes (faces B's
        // region), the Right elem survives.
        let (c, stats) = compose(
            &mut hier,
            &a,
            Point::new(0, 0),
            &b,
            Point::new(0, 100),
            "c".into(),
        );
        assert_eq!(stats.equivalences, 0);
        assert_eq!(c.iface.len(), 1);
        assert_eq!(c.iface[0].face, Face::Right);
        // Region is the 100×200 stack.
        assert_eq!(c.bounding_box(), Rect::new(0, 0, 100, 200));
    }

    #[test]
    fn partial_elem_coverage_splits_the_span() {
        let mut hier = HierNetlist::new();
        // A is 100 tall with a full-height right metal edge; B is a
        // 40-tall window abutting only the bottom part.
        let a = window_with_net(
            &mut hier,
            100,
            100,
            vec![metal_elem(Face::Right, 100, 0, 100, 0)],
        );
        let b = empty_window(&mut hier, 50, 40);
        let (c, _) = compose(
            &mut hier,
            &a,
            Point::new(0, 0),
            &b,
            Point::new(100, 0),
            "c".into(),
        );
        assert_eq!(c.iface.len(), 1);
        assert_eq!(c.iface[0].span, Interval::new(40, 100));
    }

    #[test]
    fn channel_fragments_merge_and_complete() {
        let mut hier = HierNetlist::new();
        // Each half-window holds half of a 400×400 channel cut at the
        // shared boundary: gate net 0, one diffusion terminal each
        // (net 1 left, net 1 right — distinct windows' nets).
        let make_half = |hier: &mut HierNetlist, face: Face, at: i64| {
            let part = hier.add_part(PartDef {
                name: "half".into(),
                net_count: 2,
                exports: vec![0, 1],
                ..PartDef::default()
            });
            WindowCircuit {
                region: vec![Rect::new(0, 0, 200, 800)],
                part,
                net_count: 2,
                iface: vec![
                    IfaceElem {
                        face,
                        at,
                        span: Interval::new(200, 600),
                        layer: None,
                        signal: IfaceSignal::Channel(0),
                    },
                    IfaceElem {
                        face,
                        at,
                        span: Interval::new(200, 600),
                        layer: Some(Layer::Poly),
                        signal: IfaceSignal::Net(0),
                    },
                ],
                partials: vec![PartialDevice {
                    area: 200 * 400,
                    bbox: Rect::new(0, 200, 200, 600),
                    depletion: false,
                    gate: 0,
                    terminals: vec![(1, 400)],
                }],
            }
        };
        let a = make_half(&mut hier, Face::Right, 200);
        let b = make_half(&mut hier, Face::Left, 0);
        let (c, stats) = compose(
            &mut hier,
            &a,
            Point::new(0, 0),
            &b,
            Point::new(200, 0),
            "c".into(),
        );
        assert_eq!(stats.partials_completed, 1);
        assert!(c.partials.is_empty());
        assert!(c.iface.is_empty());
        let part = hier.part(c.part);
        assert_eq!(part.devices.len(), 1);
        let d = &part.devices[0];
        // Merged channel: area 400×400, terminals 400+400 → W=400, L=400.
        assert_eq!((d.length, d.width), (400, 400));
        assert_ne!(d.source, d.drain);
        // Gate nets were unified.
        assert_eq!(part.equivalences.len(), 1);
    }

    #[test]
    fn channel_facing_empty_space_completes_without_terminal() {
        let mut hier = HierNetlist::new();
        let part = hier.add_part(PartDef {
            name: "half".into(),
            net_count: 2,
            exports: vec![0, 1],
            ..PartDef::default()
        });
        let a = WindowCircuit {
            region: vec![Rect::new(0, 0, 200, 800)],
            part,
            net_count: 2,
            iface: vec![IfaceElem {
                face: Face::Right,
                at: 200,
                span: Interval::new(200, 600),
                layer: None,
                signal: IfaceSignal::Channel(0),
            }],
            partials: vec![PartialDevice {
                area: 200 * 400,
                bbox: Rect::new(0, 200, 200, 600),
                depletion: false,
                gate: 0,
                terminals: vec![(1, 400)],
            }],
        };
        let b = empty_window(&mut hier, 200, 800);
        let (c, stats) = compose(
            &mut hier,
            &a,
            Point::new(0, 0),
            &b,
            Point::new(200, 0),
            "c".into(),
        );
        assert_eq!(stats.partials_completed, 1);
        let part = hier.part(c.part);
        assert_eq!(part.devices.len(), 1);
        // Single terminal → capacitor, same rule as the flat
        // extractor.
        assert_eq!(part.devices[0].kind, ace_wirelist::DeviceKind::Capacitor);
    }

    #[test]
    fn compose_is_position_independent() {
        let mut hier = HierNetlist::new();
        let a1 = window_with_net(
            &mut hier,
            10,
            10,
            vec![metal_elem(Face::Right, 10, 0, 10, 0)],
        );
        let b1 = window_with_net(&mut hier, 10, 10, vec![metal_elem(Face::Left, 0, 0, 10, 0)]);
        let (c1, _) = compose(
            &mut hier,
            &a1,
            Point::new(0, 0),
            &b1,
            Point::new(10, 0),
            "c".into(),
        );
        let (c2, _) = compose(
            &mut hier,
            &a1,
            Point::new(500, 700),
            &b1,
            Point::new(510, 700),
            "c".into(),
        );
        // Same normalized result (different part ids aside).
        assert_eq!(c1.region, c2.region);
        assert_eq!(c1.iface, c2.iface);
    }
}
