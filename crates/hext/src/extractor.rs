use std::collections::HashMap;
use std::time::Instant;

use ace_core::probe::{Counter, Lane, NullProbe, Probe, Span};
use ace_core::{CircuitExtractor, ExtractError, ExtractOptions, Extraction, ExtractionReport};
use ace_geom::{Point, Rect};
use ace_layout::{BuildLayoutError, EagerFeed, FlatLayout, Library};
use ace_wirelist::{HierNetlist, PartDef, SubPart};

use crate::compose::compose;
use crate::interface::{window_circuit_from_extraction, WindowCircuit};
use crate::report::HextReport;
use crate::windowing::{Content, WindowKey};

/// The result of a hierarchical extraction.
#[derive(Debug, Clone)]
pub struct HextExtraction {
    /// The hierarchical wirelist; flatten it for a flat netlist.
    pub hier: HierNetlist,
    /// Instrumentation (flat calls, compose calls, timings).
    pub report: HextReport,
}

/// Runs the hierarchical extractor over a layout library.
///
/// `name` becomes the wirelist title.
///
/// # Examples
///
/// ```
/// use ace_hext::extract_hierarchical;
/// use ace_layout::Library;
///
/// let lib = Library::from_cif_text(
///     "DS 1; L ND; B 500 2000 0 0; L NP; B 2000 500 0 0; DF;
///      C 1 T 0 0; C 1 T 5000 0; E",
/// )?;
/// let hext = extract_hierarchical(&lib, "pair");
/// assert_eq!(hext.hier.flatten().device_count(), 2);
/// // The two identical cells were extracted once.
/// assert_eq!(hext.report.flat_calls, hext.report.flat_calls.min(4));
/// # Ok::<(), ace_layout::BuildLayoutError>(())
/// ```
pub fn extract_hierarchical(lib: &Library, name: &str) -> HextExtraction {
    extract_hierarchical_probed(lib, name, &NullProbe)
}

/// [`extract_hierarchical`], reporting events to `probe` as it runs:
/// a [`Span::Window`] per primitive window (with the sweep's phase
/// spans nested inside), a [`Span::Compose`] per composition, and the
/// window/compose cache counters.
pub fn extract_hierarchical_probed(lib: &Library, name: &str, probe: &dyn Probe) -> HextExtraction {
    let mut store = SessionStore::default();
    let report = run_extraction(lib, &mut store, name, probe);
    HextExtraction {
        hier: store.hier,
        report,
    }
}

/// The shared window/compose memo tables plus the growing wirelist.
#[derive(Debug, Clone, Default)]
struct SessionStore {
    hier: HierNetlist,
    circuits: Vec<WindowCircuit>,
    window_table: HashMap<WindowKey, usize>,
    compose_table: HashMap<(usize, usize, Point), usize>,
}

/// A persistent hierarchical-extraction session, the "incremental
/// extractor" the ACE paper's conclusions point at ("the edge-based
/// algorithms are well suited for hierarchical and incremental
/// extractors").
///
/// The window and compose memo tables survive across
/// [`IncrementalExtractor::extract`] calls, keyed by *content* (deep
/// cell hashes), so re-extracting a chip after an edit only analyzes
/// the windows the edit actually changed — everything else is a cache
/// hit. This is the "few iterations of extracting, simulating, and
/// fixing bugs during a single two-hour session" workflow from the
/// paper's conclusions, with the session state doing the saving.
///
/// # Examples
///
/// ```
/// use ace_hext::IncrementalExtractor;
/// use ace_layout::Library;
///
/// let mut session = IncrementalExtractor::new();
/// let v1 = Library::from_cif_text(
///     "DS 1; L ND; B 500 2000 0 0; L NP; B 2000 500 0 0; DF;
///      C 1 T 0 0; C 1 T 5000 0; E",
/// )?;
/// let first = session.extract(&v1, "chip-v1");
/// assert_eq!(first.netlist.device_count(), 2);
///
/// // Edit: one more cell. Only the new arrangement is analyzed; the
/// // cell windows come from the session cache.
/// let v2 = Library::from_cif_text(
///     "DS 1; L ND; B 500 2000 0 0; L NP; B 2000 500 0 0; DF;
///      C 1 T 0 0; C 1 T 5000 0; C 1 T 10000 0; E",
/// )?;
/// let second = session.extract(&v2, "chip-v2");
/// assert_eq!(second.netlist.device_count(), 3);
/// assert!(second.report.window_cache_hits > 0);
/// # Ok::<(), ace_layout::BuildLayoutError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalExtractor {
    store: SessionStore,
}

/// One extraction performed inside an [`IncrementalExtractor`]
/// session.
#[derive(Debug, Clone)]
pub struct IncrementalRun {
    /// The flattened circuit of this run.
    pub netlist: ace_wirelist::Netlist,
    /// Instrumentation for this run only (cache hits count reuse of
    /// windows from *any* earlier run in the session).
    pub report: HextReport,
}

impl IncrementalExtractor {
    /// Creates an empty session.
    pub fn new() -> Self {
        IncrementalExtractor::default()
    }

    /// Extracts `lib`, reusing every window already analyzed in this
    /// session.
    pub fn extract(&mut self, lib: &Library, name: &str) -> IncrementalRun {
        self.extract_probed(lib, name, &NullProbe)
    }

    /// [`extract`](Self::extract), reporting events to `probe`.
    pub fn extract_probed(
        &mut self,
        lib: &Library,
        name: &str,
        probe: &dyn Probe,
    ) -> IncrementalRun {
        let report = run_extraction(lib, &mut self.store, name, probe);
        let mut netlist = self.store.hier.flatten();
        netlist.name = name.to_string();
        IncrementalRun { netlist, report }
    }

    /// The session-wide hierarchical wirelist (every window analyzed
    /// so far; the top points at the most recent extraction).
    pub fn wirelist(&self) -> &HierNetlist {
        &self.store.hier
    }

    /// Distinct windows in the session table.
    pub fn unique_windows(&self) -> u64 {
        self.store.circuits.len() as u64
    }
}

/// Runs one extraction against a (possibly pre-populated) store and
/// leaves the store's wirelist top pointing at the result.
fn run_extraction(
    lib: &Library,
    store: &mut SessionStore,
    name: &str,
    probe: &dyn Probe,
) -> HextReport {
    store.hier.name = name.to_string();
    let mut state = State {
        lib,
        store,
        report: HextReport::default(),
        probe,
    };

    let Some(content) = Content::chip(lib) else {
        // An empty chip: give the wirelist an empty top part.
        let top = state.store.hier.add_part(PartDef {
            name: "chip".to_string(),
            ..PartDef::default()
        });
        state.store.hier.set_top(top);
        return state.report;
    };

    let (idx, pos) = state.analyze(content);

    // Wrap the chip window in a final part that finishes whatever
    // partial transistors still touch the chip outline.
    let top_circ = state.store.circuits[idx].clone();
    let exports = state.store.hier.part(top_circ.part).exports.clone();
    let export_local: HashMap<u32, u32> = exports
        .iter()
        .enumerate()
        .map(|(i, &e)| (e, i as u32))
        .collect();
    let mut wrapper = PartDef {
        name: "chip".to_string(),
        net_count: exports.len() as u32,
        subparts: vec![SubPart {
            part: top_circ.part,
            name: "TOP".to_string(),
            loc_offset: pos,
            net_map: exports
                .iter()
                .enumerate()
                .map(|(i, &e)| (e, i as u32))
                .collect(),
        }],
        ..PartDef::default()
    };
    for p in &top_circ.partials {
        let mut local = p.clone();
        local.gate = export_local[&local.gate];
        for t in &mut local.terminals {
            t.0 = export_local[&t.0];
        }
        let mut device = local.finalize();
        device.location += pos;
        wrapper.devices.push(device);
    }
    let top = state.store.hier.add_part(wrapper);
    state.store.hier.set_top(top);
    state.report.unique_windows = state.store.circuits.len() as u64;
    state.report
}

/// Parses CIF text and extracts it hierarchically.
///
/// # Errors
///
/// Propagates CIF parse and layout-building errors.
pub fn extract_hierarchical_text(
    src: &str,
    name: &str,
) -> Result<HextExtraction, BuildLayoutError> {
    let lib = Library::from_cif_text(src)?;
    Ok(extract_hierarchical(&lib, name))
}

/// The hierarchical window/compose extractor as a
/// [`CircuitExtractor`] backend: extracts hierarchically, flattens
/// the wirelist, and reports an [`ExtractionReport`] synthesized from
/// the [`HextReport`].
pub struct HierarchicalExtractor {
    lib: Library,
}

impl HierarchicalExtractor {
    /// A backend over `lib`.
    pub fn new(lib: Library) -> Self {
        HierarchicalExtractor { lib }
    }
}

impl CircuitExtractor for HierarchicalExtractor {
    fn backend(&self) -> &'static str {
        "hext"
    }

    fn extract_probed(
        &mut self,
        name: &str,
        probe: &dyn Probe,
    ) -> Result<Extraction, ExtractError> {
        let hext = extract_hierarchical_probed(&self.lib, name, probe);
        let mut netlist = hext.hier.flatten();
        netlist.name = name.to_string();
        let report = ExtractionReport {
            boxes: hext.report.boxes_extracted,
            total_time: hext.report.front_end_time + hext.report.back_end_time,
            ..ExtractionReport::default()
        };
        Ok(Extraction {
            netlist,
            report,
            window: None,
        })
    }
}

struct State<'a> {
    lib: &'a Library,
    store: &'a mut SessionStore,
    report: HextReport,
    probe: &'a dyn Probe,
}

impl State<'_> {
    /// Analyzes one window, returning its circuit index and position
    /// (the window's lower-left corner in the caller's frame).
    fn analyze(&mut self, mut content: Content) -> (usize, Point) {
        let t_fe = Instant::now();
        let pos = Point::new(content.rect.x_min, content.rect.y_min);
        content.normalize();
        content.canonicalize(self.lib);
        let key = content.key(self.lib);
        self.report.front_end_time += t_fe.elapsed();

        if let Some(&idx) = self.store.window_table.get(&key) {
            self.report.window_cache_hits += 1;
            self.probe.add(Lane::MAIN, Counter::WindowCacheHits, 1);
            return (idx, pos);
        }

        let mut current = content;
        let idx = loop {
            if current.is_primitive() {
                break self.extract_primitive(&current);
            }
            // Slice the window around the current instances; when the
            // window cannot be subdivided further (a single cluster
            // spanning the whole window), expand the instances one
            // level and re-window.
            let t_fe = Instant::now();
            let mut subs = current.subdivide(self.lib);
            let no_progress = subs.len() == 1 && subs[0].rect == current.rect;
            if no_progress {
                current = current.expand_one_level(self.lib);
                self.report.front_end_time += t_fe.elapsed();
                continue;
            }
            // "the sub-windows are sorted by the lower-left corner,
            // bottom to top, left to right, and then visited in
            // sorted order."
            subs.sort_by_key(|s| (s.rect.y_min, s.rect.x_min));
            self.report.front_end_time += t_fe.elapsed();

            let mut acc: Option<(usize, Point)> = None;
            for sub in subs {
                let (i, p) = self.analyze(sub);
                acc = Some(match acc {
                    None => (i, p),
                    Some((ai, ap)) => self.compose_cached(ai, ap, i, p),
                });
            }
            break acc.expect("subdivide yields at least one window").0;
        };

        self.store.window_table.insert(key, idx);
        (idx, pos)
    }

    fn extract_primitive(&mut self, content: &Content) -> usize {
        let t = Instant::now();
        self.probe.enter(Lane::MAIN, Span::Window);
        let mut flat = FlatLayout::new();
        for &(layer, r) in &content.boxes {
            flat.push_box(layer, r);
        }
        for l in &content.labels {
            flat.push_label(l.name.clone(), l.at, l.layer);
        }
        let window = Rect::new(0, 0, content.rect.width(), content.rect.height());
        let mut feed = EagerFeed::from_flat(flat).with_probe(self.probe, Lane::MAIN);
        let extraction = ace_core::extract_feed_probed(
            &mut feed,
            "window",
            ExtractOptions::new().with_window(window),
            self.probe,
        )
        .expect("window extraction cannot fail");
        self.report.flat_calls += 1;
        self.probe.add(Lane::MAIN, Counter::FlatCalls, 1);
        self.report.boxes_extracted += extraction.report.boxes;

        let wx = extraction.window.as_ref().expect("window mode is on");
        let name = format!("Window{}", self.store.circuits.len());
        let (part_def, iface, partials) = window_circuit_from_extraction(&extraction, wx, name);
        let net_count = part_def.net_count;
        let part = self.store.hier.add_part(part_def);
        self.store.circuits.push(WindowCircuit {
            region: vec![window],
            part,
            net_count,
            iface,
            partials,
        });
        self.report.back_end_time += t.elapsed();
        self.probe.exit(Lane::MAIN, Span::Window);
        self.store.circuits.len() - 1
    }

    fn compose_cached(&mut self, ai: usize, ap: Point, bi: usize, bp: Point) -> (usize, Point) {
        let delta = bp - ap;
        let pc = Point::new(ap.x.min(bp.x), ap.y.min(bp.y));
        if let Some(&ci) = self.store.compose_table.get(&(ai, bi, delta)) {
            self.report.compose_cache_hits += 1;
            self.probe.add(Lane::MAIN, Counter::ComposeCacheHits, 1);
            return (ci, pc);
        }
        let t = Instant::now();
        self.probe.enter(Lane::MAIN, Span::Compose);
        let name = format!("Window{}", self.store.circuits.len());
        let store = &mut *self.store;
        let (circ, stats) = compose(
            &mut store.hier,
            &store.circuits[ai],
            ap - pc,
            &store.circuits[bi],
            bp - pc,
            name,
        );
        let elapsed = t.elapsed();
        self.probe.exit(Lane::MAIN, Span::Compose);
        self.report.compose_time += elapsed;
        self.report.back_end_time += elapsed;
        self.report.compose_calls += 1;
        self.probe.add(Lane::MAIN, Counter::ComposeCalls, 1);
        self.report.partials_completed += stats.partials_completed;
        self.store.circuits.push(circ);
        let ci = self.store.circuits.len() - 1;
        self.store.compose_table.insert((ai, bi, delta), ci);
        (ci, pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_core::{extract_library, ExtractOptions};
    use ace_wirelist::compare::same_circuit;

    fn check_equivalence(src: &str) -> (HextExtraction, ace_core::Extraction) {
        let lib = Library::from_cif_text(src).expect("valid CIF");
        let flat = extract_library(&lib, "chip", ExtractOptions::new()).expect("flat extracts");
        let hext = extract_hierarchical(&lib, "chip");
        let mut hflat = hext.hier.flatten();
        let mut fflat = flat.netlist.clone();
        hflat.prune_floating_nets();
        fflat.prune_floating_nets();
        if let Err(diff) = same_circuit(&fflat, &hflat) {
            panic!(
                "flat and hierarchical extraction disagree: {diff}\nflat: {} devices {} nets, hext: {} devices {} nets",
                fflat.device_count(),
                fflat.net_count(),
                hflat.device_count(),
                hflat.net_count()
            );
        }
        (hext, flat)
    }

    #[test]
    fn single_cell_round_trip() {
        check_equivalence("DS 1; L ND; B 500 2000 0 0; L NP; B 2000 500 0 0; DF; C 1 T 0 0; E");
    }

    #[test]
    fn two_identical_cells_extract_once() {
        let (hext, _) = check_equivalence(
            "DS 1; L ND; B 500 2000 0 0; L NP; B 2000 500 0 0; DF;
             C 1 T 0 0; C 1 T 5000 0; E",
        );
        // One unique primitive cell window; the empty tiles differ in
        // size so allow a handful of flat calls, but the second cell
        // must hit the window table.
        assert!(hext.report.window_cache_hits >= 1, "{:?}", hext.report);
    }

    #[test]
    fn inverter_chain_round_trip() {
        check_equivalence(&ace_workloads::cells::chained_inverters_cif(4));
    }

    #[test]
    fn square_array_round_trip_and_reuse() {
        let (hext, flat) = check_equivalence(&ace_workloads::array::square_array_cif(2));
        assert_eq!(flat.netlist.device_count(), 16);
        assert_eq!(hext.hier.instantiated_device_count(), 16);
        // The binary-tree array must reuse aggressively: far fewer
        // flat calls than cells.
        assert!(
            hext.report.flat_calls < 8,
            "expected heavy reuse, got {} flat calls",
            hext.report.flat_calls
        );
    }

    #[test]
    fn boundary_cut_transistor_is_reassembled() {
        // Two metal-only cells; a loose transistor straddles the
        // slicing line at the first cluster's right edge (x = 1000),
        // so its channel is cut into partial transistors that must
        // merge back during composition.
        check_equivalence(
            "DS 1; L NM; B 1000 1000 500 500; DF;
             C 1 T 0 0; C 1 T 5000 0;
             L ND; B 400 1000 1000 500;
             L NP; B 1000 400 1000 600;
             E",
        );
    }

    #[test]
    fn word_lines_crossing_many_windows_stay_one_net() {
        check_equivalence(&ace_workloads::array::memory_array_cif(3, 4));
    }

    #[test]
    fn chip_proxy_round_trip() {
        let spec = ace_workloads::chips::paper_chip("cherry")
            .expect("spec")
            .scaled(0.05);
        let chip = ace_workloads::chips::generate_chip(&spec);
        check_equivalence(&chip.cif);
    }

    #[test]
    fn empty_layout() {
        let hext = extract_hierarchical_text("E", "empty").expect("parse");
        assert_eq!(hext.hier.flatten().device_count(), 0);
        assert_eq!(hext.report.flat_calls, 0);
    }

    #[test]
    fn report_counts_activity() {
        let (hext, _) = check_equivalence(&ace_workloads::array::square_array_cif(2));
        assert!(hext.report.compose_calls > 0);
        assert!(hext.report.unique_windows > 0);
        assert!(hext.report.flat_calls > 0);
    }

    #[test]
    fn incremental_session_reuses_windows_across_runs() {
        use ace_workloads::array::memory_array_cif;
        let mut session = IncrementalExtractor::new();

        let v1 = Library::from_cif_text(&memory_array_cif(4, 4)).expect("valid");
        let first = session.extract(&v1, "v1");
        assert_eq!(first.netlist.device_count(), 16);
        let first_flat_calls = first.report.flat_calls;
        assert!(first_flat_calls > 0);

        // Grow the array by one row: the row windows are already in
        // the session cache, so almost no new flat extraction happens.
        let v2 = Library::from_cif_text(&memory_array_cif(5, 4)).expect("valid");
        let second = session.extract(&v2, "v2");
        assert_eq!(second.netlist.device_count(), 20);
        assert!(
            second.report.flat_calls <= first_flat_calls,
            "edit re-extraction must not redo old windows: {} vs {}",
            second.report.flat_calls,
            first_flat_calls
        );
        assert!(second.report.window_cache_hits > 0);

        // Both runs must match fresh flat extractions.
        for (lib, run) in [(&v1, &first), (&v2, &second)] {
            let flat = extract_library(lib, "f", ExtractOptions::new()).expect("flat extracts");
            let mut a = flat.netlist.clone();
            let mut b = run.netlist.clone();
            a.prune_floating_nets();
            b.prune_floating_nets();
            same_circuit(&a, &b).expect("incremental run matches flat extraction");
        }
    }

    #[test]
    fn incremental_identical_rerun_is_all_cache() {
        let lib =
            Library::from_cif_text(&ace_workloads::array::square_array_cif(2)).expect("valid");
        let mut session = IncrementalExtractor::new();
        let first = session.extract(&lib, "a");
        let second = session.extract(&lib, "a");
        assert_eq!(second.report.flat_calls, 0, "{:?}", second.report);
        assert_eq!(second.report.compose_calls, 0, "{:?}", second.report);
        assert_eq!(first.netlist.device_count(), second.netlist.device_count());
    }

    #[test]
    fn labels_survive_hierarchical_extraction() {
        let src = ace_workloads::cells::inverter_cif();
        let hext = extract_hierarchical_text(&src, "inv").expect("parse");
        let flat = hext.hier.flatten();
        for name in ["VDD", "GND", "OUT", "INP"] {
            assert!(flat.net_by_name(name).is_some(), "missing {name}");
        }
    }
}
