use ace_core::{BoundarySignal, Face, WindowExtraction};
use ace_geom::{Coord, Interval, Layer, Rect};
use ace_wirelist::{PartDef, PartId};

/// What one interface element carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfaceSignal {
    /// A conducting-layer net, as a local net id of the window's part.
    Net(u32),
    /// A transistor channel, as an index into the window's partial
    /// device list.
    Channel(u32),
}

/// One element of a window's interface-segment list.
///
/// "Associated with each boundary segment is information about its
/// endpoints, and a sorted list of rectangle edges (one list for each
/// of the conducting layers) touching the boundary segment … The
/// interface for a window also contains a list of partial
/// transistors." (HEXT §3.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfaceElem {
    /// Which side of the window the element faces.
    pub face: Face,
    /// The fixed coordinate of the boundary line: x for left/right
    /// faces, y for top/bottom faces (window-local coordinates).
    pub at: Coord,
    /// Contact extent along the boundary (y-interval for left/right,
    /// x-interval for top/bottom).
    pub span: Interval,
    /// Conducting layer, or `None` for channel elements.
    pub layer: Option<Layer>,
    /// The signal carried.
    pub signal: IfaceSignal,
}

// The partial-transistor record and its merge/finalize rules are
// shared with the band-parallel extractor and live in `ace-wirelist`.
pub use ace_wirelist::PartialDevice;

/// One analyzed window: its region, circuit fragment (a part of the
/// output hierarchical wirelist), interface, and unfinished partial
/// transistors.
///
/// Coordinates are window-local: the region's lower-left corner is at
/// the origin, which is what makes identical windows hash equal and
/// lets one `WindowCircuit` be instantiated at many positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowCircuit {
    /// The covered region as disjoint rectangles (a single rect for
    /// primitive windows; composed windows may be "complex" —
    /// non-rectangular but hole-free).
    pub region: Vec<Rect>,
    /// The circuit fragment in the output wirelist.
    pub part: PartId,
    /// Number of local nets in `part` (cached from the PartDef).
    pub net_count: u32,
    /// Interface elements, sorted by (face, at, span).
    pub iface: Vec<IfaceElem>,
    /// Partial transistors, indexed by [`IfaceSignal::Channel`].
    pub partials: Vec<PartialDevice>,
}

impl WindowCircuit {
    /// Bounding box of the region.
    pub fn bounding_box(&self) -> Rect {
        let mut it = self.region.iter();
        let first = *it.next().expect("window region is non-empty");
        it.fold(first, |acc, r| acc.bounding_union(r))
    }

    /// The y-intervals along which the region covers the space
    /// immediately **right** of the vertical line `x` (when
    /// `right_of`), or immediately left of it otherwise. Used to
    /// decide which parts of a neighbour's boundary become interior
    /// after composition.
    pub fn vertical_cover(&self, x: Coord, right_of: bool) -> ace_geom::IntervalSet {
        self.region
            .iter()
            .filter(|r| {
                if right_of {
                    r.x_min <= x && x < r.x_max
                } else {
                    r.x_min < x && x <= r.x_max
                }
            })
            .map(|r| Interval::new(r.y_min, r.y_max))
            .collect()
    }

    /// The x-intervals along which the region covers the space
    /// immediately **above** the horizontal line `y` (when
    /// `above`), or immediately below it otherwise.
    pub fn horizontal_cover(&self, y: Coord, above: bool) -> ace_geom::IntervalSet {
        self.region
            .iter()
            .filter(|r| {
                if above {
                    r.y_min <= y && y < r.y_max
                } else {
                    r.y_min < y && y <= r.y_max
                }
            })
            .map(|r| Interval::new(r.x_min, r.x_max))
            .collect()
    }
}

/// Converts a window-mode flat extraction into a [`PartDef`] plus the
/// window's interface and partial transistors.
///
/// Completed devices stay inside the part; partial devices (those the
/// boundary cuts) are pulled out into [`PartialDevice`] records, and
/// every net referenced by the interface or a partial device is
/// exported.
pub fn window_circuit_from_extraction(
    extraction: &ace_core::Extraction,
    window: &WindowExtraction,
    part_name: String,
) -> (PartDef, Vec<IfaceElem>, Vec<PartialDevice>) {
    let netlist = &extraction.netlist;
    let mut part = PartDef {
        name: part_name,
        net_count: netlist.net_count() as u32,
        ..PartDef::default()
    };
    for (id, net) in netlist.nets() {
        for name in &net.names {
            part.net_names.push((id.0, name.clone()));
        }
        if let Some(at) = net.location {
            part.net_locations.push((id.0, at));
        }
        if !net.parasitics.is_zero() {
            part.net_parasitics.push((id.0, net.parasitics));
        }
    }

    // Split devices into completed (stay in the part) and partial.
    let mut partials: Vec<PartialDevice> = Vec::new();
    let mut partial_index: Vec<Option<u32>> = vec![None; netlist.device_count()];
    for (i, device) in netlist.devices().iter().enumerate() {
        let detail = &window.device_details[i];
        if detail.partial {
            partial_index[i] = Some(partials.len() as u32);
            partials.push(PartialDevice {
                area: detail.area,
                bbox: detail.bbox,
                depletion: detail.depletion,
                gate: detail.gate.0,
                terminals: detail.terminals.iter().map(|&(n, l)| (n.0, l)).collect(),
            });
        } else {
            part.devices.push(device.clone());
        }
    }

    // Interface elements, with the face line coordinate attached.
    let rect = window.window;
    let mut iface: Vec<IfaceElem> = window
        .contacts
        .iter()
        .map(|c| {
            let at = match c.face {
                Face::Left => rect.x_min,
                Face::Right => rect.x_max,
                Face::Bottom => rect.y_min,
                Face::Top => rect.y_max,
            };
            let signal = match c.signal {
                BoundarySignal::Net(n) => IfaceSignal::Net(n.0),
                BoundarySignal::Channel(device) => IfaceSignal::Channel(
                    partial_index[device].expect("boundary channel implies partial"),
                ),
            };
            IfaceElem {
                face: c.face,
                at,
                span: c.span,
                layer: c.layer,
                signal,
            }
        })
        .collect();
    iface.sort_by_key(|e| (e.face as u8, e.at, e.span.lo, e.span.hi));

    // Exports: interface nets + nets referenced by partial devices.
    let mut exports: Vec<u32> = iface
        .iter()
        .filter_map(|e| match e.signal {
            IfaceSignal::Net(n) => Some(n),
            IfaceSignal::Channel(_) => None,
        })
        .collect();
    for p in &partials {
        exports.push(p.gate);
        exports.extend(p.terminals.iter().map(|&(n, _)| n));
    }
    exports.sort_unstable();
    exports.dedup();
    part.exports = exports;

    (part, iface, partials)
}

#[cfg(test)]
mod tests {
    use super::*;

    // PartialDevice's finalize/absorb tests live with the struct in
    // ace-wirelist (crates/wirelist/src/partial.rs).

    #[test]
    fn covers_report_adjacent_coverage() {
        use ace_geom::IntervalSet;
        let set = |pairs: &[(Coord, Coord)]| -> IntervalSet {
            pairs
                .iter()
                .map(|&(lo, hi)| Interval::new(lo, hi))
                .collect()
        };
        let w = WindowCircuit {
            region: vec![Rect::new(0, 0, 10, 10), Rect::new(10, 0, 20, 5)],
            part: PartId(0),
            net_count: 0,
            iface: vec![],
            partials: vec![],
        };
        assert_eq!(w.bounding_box(), Rect::new(0, 0, 20, 10));
        // Coverage right of x=0: the full left column.
        assert_eq!(w.vertical_cover(0, true), set(&[(0, 10)]));
        // Coverage right of x=10: only the lower rect continues.
        assert_eq!(w.vertical_cover(10, true), set(&[(0, 5)]));
        // Coverage left of x=10: the upper rect.
        assert_eq!(w.vertical_cover(10, false), set(&[(0, 10)]));
        // Coverage above y=0 spans both rects (coalesced).
        assert_eq!(w.horizontal_cover(0, true), set(&[(0, 20)]));
        // Nothing below y=0.
        assert!(w.horizontal_cover(0, false).is_empty());
    }
}
