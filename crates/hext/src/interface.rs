use ace_core::{BoundarySignal, Face, WindowExtraction};
use ace_geom::{Coord, Interval, Layer, Point, Rect};
use ace_wirelist::{Device, DeviceKind, NetId, PartDef, PartId};

/// What one interface element carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfaceSignal {
    /// A conducting-layer net, as a local net id of the window's part.
    Net(u32),
    /// A transistor channel, as an index into the window's partial
    /// device list.
    Channel(u32),
}

/// One element of a window's interface-segment list.
///
/// "Associated with each boundary segment is information about its
/// endpoints, and a sorted list of rectangle edges (one list for each
/// of the conducting layers) touching the boundary segment … The
/// interface for a window also contains a list of partial
/// transistors." (HEXT §3.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IfaceElem {
    /// Which side of the window the element faces.
    pub face: Face,
    /// The fixed coordinate of the boundary line: x for left/right
    /// faces, y for top/bottom faces (window-local coordinates).
    pub at: Coord,
    /// Contact extent along the boundary (y-interval for left/right,
    /// x-interval for top/bottom).
    pub span: Interval,
    /// Conducting layer, or `None` for channel elements.
    pub layer: Option<Layer>,
    /// The signal carried.
    pub signal: IfaceSignal,
}

/// A transistor whose channel touches the window boundary; its final
/// form "is determined by the contents of the windows adjacent to the
/// partial transistor".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialDevice {
    /// Channel area inside this window.
    pub area: i64,
    /// Channel bounding box (window-local).
    pub bbox: Rect,
    /// `true` if implant covers the channel.
    pub depletion: bool,
    /// Gate net (local net id).
    pub gate: u32,
    /// Diffusion terminal contacts `(local net, edge length)`.
    pub terminals: Vec<(u32, Coord)>,
}

impl PartialDevice {
    /// Finalizes the (merged) partial transistor with the same rules
    /// as the flat extractor: width is the mean of the two largest
    /// distinct-net terminal contacts, length is area / width, and a
    /// channel with fewer than two distinct terminals is a capacitor.
    pub fn finalize(&self) -> Device {
        let mut terminals = self.terminals.clone();
        terminals.sort_unstable_by_key(|&(net, _)| net);
        terminals.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 += a.1;
                true
            } else {
                false
            }
        });
        terminals.sort_unstable_by_key(|&(_, len)| -len);

        let gate = NetId(self.gate);
        let (kind, source, drain, width) = match terminals.len() {
            0 => {
                let side = integer_sqrt(self.area).max(1);
                (DeviceKind::Capacitor, gate, gate, side)
            }
            1 => {
                let n = NetId(terminals[0].0);
                (DeviceKind::Capacitor, n, n, terminals[0].1.max(1))
            }
            _ => {
                let s = NetId(terminals[0].0);
                let d = NetId(terminals[1].0);
                let kind = if self.depletion {
                    DeviceKind::Depletion
                } else {
                    DeviceKind::Enhancement
                };
                (kind, s, d, ((terminals[0].1 + terminals[1].1) / 2).max(1))
            }
        };
        Device {
            kind,
            gate,
            source,
            drain,
            length: (self.area / width).max(1),
            width,
            location: Point::new(self.bbox.x_min, self.bbox.y_max),
            channel_geometry: Vec::new(),
        }
    }

    /// Merges another partial transistor's contribution into this one
    /// (the two channel fragments are the same device).
    pub fn absorb(&mut self, other: &PartialDevice) {
        self.area += other.area;
        self.bbox = self.bbox.bounding_union(&other.bbox);
        self.depletion |= other.depletion;
        self.terminals.extend_from_slice(&other.terminals);
        // Gate nets are unified by the caller's equivalences; keep
        // ours.
    }
}

fn integer_sqrt(v: i64) -> i64 {
    if v <= 0 {
        return 0;
    }
    let mut x = (v as f64).sqrt() as i64;
    while (x + 1) * (x + 1) <= v {
        x += 1;
    }
    while x * x > v {
        x -= 1;
    }
    x
}

/// One analyzed window: its region, circuit fragment (a part of the
/// output hierarchical wirelist), interface, and unfinished partial
/// transistors.
///
/// Coordinates are window-local: the region's lower-left corner is at
/// the origin, which is what makes identical windows hash equal and
/// lets one `WindowCircuit` be instantiated at many positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowCircuit {
    /// The covered region as disjoint rectangles (a single rect for
    /// primitive windows; composed windows may be "complex" —
    /// non-rectangular but hole-free).
    pub region: Vec<Rect>,
    /// The circuit fragment in the output wirelist.
    pub part: PartId,
    /// Number of local nets in `part` (cached from the PartDef).
    pub net_count: u32,
    /// Interface elements, sorted by (face, at, span).
    pub iface: Vec<IfaceElem>,
    /// Partial transistors, indexed by [`IfaceSignal::Channel`].
    pub partials: Vec<PartialDevice>,
}

impl WindowCircuit {
    /// Bounding box of the region.
    pub fn bounding_box(&self) -> Rect {
        let mut it = self.region.iter();
        let first = *it.next().expect("window region is non-empty");
        it.fold(first, |acc, r| acc.bounding_union(r))
    }

    /// The y-intervals along which the region covers the space
    /// immediately **right** of the vertical line `x` (when
    /// `right_of`), or immediately left of it otherwise. Used to
    /// decide which parts of a neighbour's boundary become interior
    /// after composition.
    pub fn vertical_cover(&self, x: Coord, right_of: bool) -> ace_geom::IntervalSet {
        self.region
            .iter()
            .filter(|r| {
                if right_of {
                    r.x_min <= x && x < r.x_max
                } else {
                    r.x_min < x && x <= r.x_max
                }
            })
            .map(|r| Interval::new(r.y_min, r.y_max))
            .collect()
    }

    /// The x-intervals along which the region covers the space
    /// immediately **above** the horizontal line `y` (when
    /// `above`), or immediately below it otherwise.
    pub fn horizontal_cover(&self, y: Coord, above: bool) -> ace_geom::IntervalSet {
        self.region
            .iter()
            .filter(|r| {
                if above {
                    r.y_min <= y && y < r.y_max
                } else {
                    r.y_min < y && y <= r.y_max
                }
            })
            .map(|r| Interval::new(r.x_min, r.x_max))
            .collect()
    }
}

/// Converts a window-mode flat extraction into a [`PartDef`] plus the
/// window's interface and partial transistors.
///
/// Completed devices stay inside the part; partial devices (those the
/// boundary cuts) are pulled out into [`PartialDevice`] records, and
/// every net referenced by the interface or a partial device is
/// exported.
pub fn window_circuit_from_extraction(
    extraction: &ace_core::Extraction,
    window: &WindowExtraction,
    part_name: String,
) -> (PartDef, Vec<IfaceElem>, Vec<PartialDevice>) {
    let netlist = &extraction.netlist;
    let mut part = PartDef {
        name: part_name,
        net_count: netlist.net_count() as u32,
        ..PartDef::default()
    };
    for (id, net) in netlist.nets() {
        for name in &net.names {
            part.net_names.push((id.0, name.clone()));
        }
        if let Some(at) = net.location {
            part.net_locations.push((id.0, at));
        }
    }

    // Split devices into completed (stay in the part) and partial.
    let mut partials: Vec<PartialDevice> = Vec::new();
    let mut partial_index: Vec<Option<u32>> = vec![None; netlist.device_count()];
    for (i, device) in netlist.devices().iter().enumerate() {
        let detail = &window.device_details[i];
        if detail.partial {
            partial_index[i] = Some(partials.len() as u32);
            partials.push(PartialDevice {
                area: detail.area,
                bbox: detail.bbox,
                depletion: detail.depletion,
                gate: detail.gate.0,
                terminals: detail.terminals.iter().map(|&(n, l)| (n.0, l)).collect(),
            });
        } else {
            part.devices.push(device.clone());
        }
    }

    // Interface elements, with the face line coordinate attached.
    let rect = window.window;
    let mut iface: Vec<IfaceElem> = window
        .contacts
        .iter()
        .map(|c| {
            let at = match c.face {
                Face::Left => rect.x_min,
                Face::Right => rect.x_max,
                Face::Bottom => rect.y_min,
                Face::Top => rect.y_max,
            };
            let signal = match c.signal {
                BoundarySignal::Net(n) => IfaceSignal::Net(n.0),
                BoundarySignal::Channel(device) => IfaceSignal::Channel(
                    partial_index[device].expect("boundary channel implies partial"),
                ),
            };
            IfaceElem {
                face: c.face,
                at,
                span: c.span,
                layer: c.layer,
                signal,
            }
        })
        .collect();
    iface.sort_by_key(|e| (e.face as u8, e.at, e.span.lo, e.span.hi));

    // Exports: interface nets + nets referenced by partial devices.
    let mut exports: Vec<u32> = iface
        .iter()
        .filter_map(|e| match e.signal {
            IfaceSignal::Net(n) => Some(n),
            IfaceSignal::Channel(_) => None,
        })
        .collect();
    for p in &partials {
        exports.push(p.gate);
        exports.extend(p.terminals.iter().map(|&(n, _)| n));
    }
    exports.sort_unstable();
    exports.dedup();
    part.exports = exports;

    (part, iface, partials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finalize_two_terminals() {
        let p = PartialDevice {
            area: 400 * 400,
            bbox: Rect::new(0, 0, 400, 400),
            depletion: false,
            gate: 0,
            terminals: vec![(1, 400), (2, 400)],
        };
        let d = p.finalize();
        assert_eq!(d.kind, DeviceKind::Enhancement);
        assert_eq!((d.length, d.width), (400, 400));
        assert_eq!(d.location, Point::new(0, 400));
    }

    #[test]
    fn finalize_dedupes_terminals_by_net() {
        let p = PartialDevice {
            area: 800,
            bbox: Rect::new(0, 0, 40, 20),
            depletion: true,
            gate: 0,
            terminals: vec![(1, 10), (1, 10), (2, 20)],
        };
        let d = p.finalize();
        assert_eq!(d.kind, DeviceKind::Depletion);
        assert_eq!(d.width, (20 + 20) / 2);
    }

    #[test]
    fn finalize_single_terminal_is_capacitor() {
        let p = PartialDevice {
            area: 100,
            bbox: Rect::new(0, 0, 10, 10),
            depletion: false,
            gate: 3,
            terminals: vec![(7, 10)],
        };
        let d = p.finalize();
        assert_eq!(d.kind, DeviceKind::Capacitor);
        assert_eq!(d.source, d.drain);
        assert_eq!(d.source, NetId(7));
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = PartialDevice {
            area: 100,
            bbox: Rect::new(0, 0, 10, 10),
            depletion: false,
            gate: 0,
            terminals: vec![(1, 5)],
        };
        let b = PartialDevice {
            area: 200,
            bbox: Rect::new(10, 0, 30, 10),
            depletion: true,
            gate: 9,
            terminals: vec![(2, 5)],
        };
        a.absorb(&b);
        assert_eq!(a.area, 300);
        assert_eq!(a.bbox, Rect::new(0, 0, 30, 10));
        assert!(a.depletion);
        assert_eq!(a.terminals.len(), 2);
        assert_eq!(a.gate, 0); // caller handles gate equivalence
    }

    #[test]
    fn covers_report_adjacent_coverage() {
        use ace_geom::IntervalSet;
        let set = |pairs: &[(Coord, Coord)]| -> IntervalSet {
            pairs.iter().map(|&(lo, hi)| Interval::new(lo, hi)).collect()
        };
        let w = WindowCircuit {
            region: vec![Rect::new(0, 0, 10, 10), Rect::new(10, 0, 20, 5)],
            part: PartId(0),
            net_count: 0,
            iface: vec![],
            partials: vec![],
        };
        assert_eq!(w.bounding_box(), Rect::new(0, 0, 20, 10));
        // Coverage right of x=0: the full left column.
        assert_eq!(w.vertical_cover(0, true), set(&[(0, 10)]));
        // Coverage right of x=10: only the lower rect continues.
        assert_eq!(w.vertical_cover(10, true), set(&[(0, 5)]));
        // Coverage left of x=10: the upper rect.
        assert_eq!(w.vertical_cover(10, false), set(&[(0, 10)]));
        // Coverage above y=0 spans both rects (coalesced).
        assert_eq!(w.horizontal_cover(0, true), set(&[(0, 20)]));
        // Nothing below y=0.
        assert!(w.horizontal_cover(0, false).is_empty());
    }
}
