//! HEXT: a hierarchical circuit extractor built on ACE.
//!
//! Implements the companion paper "HEXT: A Hierarchical Circuit
//! Extractor" (Gupta & Hon): the layout is transformed into a set of
//! non-overlapping rectangular *windows*; identical windows are
//! recognized and extracted only once; each unique primitive window
//! is analyzed by the modified flat extractor (`ace-core` in window
//! mode), which also computes an *interface* — per-face
//! interface-segment lists plus *partial transistors* whose channels
//! the boundary cuts. Adjacent windows are then composed: touching
//! boundary segments establish signal equivalences, partial
//! transistors merge (and complete once no channel touches the
//! remaining outline), and the result is a hierarchical wirelist.
//!
//! The pipeline:
//!
//! 1. **Front-end** ([`Content`]) — "Find all distinct
//!    non-overlapping windows. Determine how these windows should be
//!    composed to cover the entire chip." Symbol instances are
//!    expanded one level at a time; overlapping bounding boxes are
//!    clustered (the Newell–Fitzpatrick disjoint transformation) and
//!    the window is sliced around them; loose geometry is clipped at
//!    window boundaries. Windows are memoized by normalized content.
//! 2. **Back-end** ([`WindowCircuit`] + compose) — primitive (geometry-only) windows
//!    go to the flat extractor; `Compose` merges adjacent windows
//!    along their touching boundary segments. Compose results are
//!    memoized by (window, window, relative offset), which is what
//!    yields the paper's O(√N) behaviour on regular arrays.
//! 3. **Output** — a hierarchical wirelist ([`ace_wirelist::HierNetlist`])
//!    with one `DefPart` per unique window; flattening it reproduces
//!    the flat extractor's circuit exactly (the integration tests
//!    check netlist isomorphism).
//!
//! # Examples
//!
//! ```
//! use ace_hext::extract_hierarchical;
//! use ace_layout::Library;
//!
//! let lib = Library::from_cif_text(&ace_workloads::array::square_array_cif(2))?;
//! let hext = extract_hierarchical(&lib, "array");
//! assert_eq!(hext.hier.instantiated_device_count(), 16);
//! let flat = hext.hier.flatten();
//! assert_eq!(flat.device_count(), 16);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod compose;
mod extractor;
mod interface;
mod report;
mod windowing;

pub use compose::ComposeStats;
pub use extractor::{
    extract_hierarchical, extract_hierarchical_probed, extract_hierarchical_text, HextExtraction,
    HierarchicalExtractor, IncrementalExtractor, IncrementalRun,
};
pub use interface::{IfaceElem, IfaceSignal, PartialDevice, WindowCircuit};
pub use report::HextReport;
pub use windowing::{Content, WindowKey};
