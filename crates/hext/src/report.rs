use std::fmt;
use std::time::Duration;

/// Instrumentation for one hierarchical extraction.
///
/// The counters mirror HEXT Table 5-2 ("Calls to flat extractor",
/// "Calls to compose routine", "% of time spent in composing") plus
/// the memoization statistics that explain them.
#[derive(Debug, Clone, Copy, Default)]
pub struct HextReport {
    /// Front-end time: windowing, clustering, slicing, hashing.
    pub front_end_time: Duration,
    /// Back-end time: flat extraction + composition.
    pub back_end_time: Duration,
    /// Portion of back-end time spent in the compose routine.
    pub compose_time: Duration,
    /// Executed flat-extractor calls (unique primitive windows).
    pub flat_calls: u64,
    /// Primitive-window references satisfied by the window table.
    pub window_cache_hits: u64,
    /// Executed compose operations.
    pub compose_calls: u64,
    /// Compose references satisfied by the compose cache.
    pub compose_cache_hits: u64,
    /// Distinct windows in the table (primitive and composed).
    pub unique_windows: u64,
    /// Total boxes handed to the flat extractor across all calls.
    pub boxes_extracted: u64,
    /// Partial transistors completed during composition.
    pub partials_completed: u64,
}

impl HextReport {
    /// Total extraction time (front-end + back-end).
    pub fn total_time(&self) -> Duration {
        self.front_end_time + self.back_end_time
    }

    /// Fraction of back-end time spent composing (Table 5-2's last
    /// column), in percent.
    pub fn compose_percent(&self) -> f64 {
        let back = self.back_end_time.as_secs_f64();
        if back == 0.0 {
            0.0
        } else {
            100.0 * self.compose_time.as_secs_f64() / back
        }
    }
}

impl fmt::Display for HextReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "front-end {:?}, back-end {:?} ({:.0}% composing)",
            self.front_end_time,
            self.back_end_time,
            self.compose_percent()
        )?;
        write!(
            f,
            "flat calls {} (+{} cached), composes {} (+{} cached), {} unique windows",
            self.flat_calls,
            self.window_cache_hits,
            self.compose_calls,
            self.compose_cache_hits,
            self.unique_windows
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_percent_handles_zero() {
        let r = HextReport::default();
        assert_eq!(r.compose_percent(), 0.0);
    }

    #[test]
    fn compose_percent_computes_fraction() {
        let r = HextReport {
            back_end_time: Duration::from_secs(10),
            compose_time: Duration::from_secs(7),
            ..HextReport::default()
        };
        assert!((r.compose_percent() - 70.0).abs() < 1e-9);
        assert_eq!(r.total_time(), Duration::from_secs(10));
    }

    #[test]
    fn display_mentions_counters() {
        let s = HextReport::default().to_string();
        assert!(s.contains("flat calls"));
        assert!(s.contains("composing"));
    }
}
