//! The HEXT front-end: window contents, clustering, and slicing.
//!
//! "The front-end divides the window into a set of sub-windows and
//! then applies the algorithm to each sub-window recursively. …
//! Whenever the bounding boxes of two or more symbols overlap, create
//! a new window using the boundaries of the bounding boxes to define
//! the edges. … Slice the original window into a set of sub-windows,
//! using the sub-windows found in step 3 for guidance." (HEXT §3,
//! Figure 3-1.)

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use ace_geom::{Coord, Layer, Point, Rect, Transform};
use ace_layout::{CellId, FlatLabel, Library};

/// Content hash used to recognize redundant windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowKey(pub u64);

/// The contents of one window, in window-local or parent coordinates
/// depending on context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Content {
    /// The window rectangle.
    pub rect: Rect,
    /// Loose geometry (already clipped to `rect`).
    pub boxes: Vec<(Layer, Rect)>,
    /// Unexpanded symbol instances.
    pub instances: Vec<(CellId, Transform)>,
    /// Net labels inside the window.
    pub labels: Vec<FlatLabel>,
}

impl Content {
    /// The whole-chip content of a library's top cell.
    pub fn chip(lib: &Library) -> Option<Content> {
        let top = lib.cell(lib.top());
        let rect = lib.bounding_box()?;
        Some(Content {
            rect,
            boxes: top.boxes().to_vec(),
            instances: top
                .instances()
                .iter()
                .map(|i| (i.cell, i.transform))
                .collect(),
            labels: top
                .labels()
                .iter()
                .map(|l| FlatLabel {
                    name: l.name.clone(),
                    at: l.at,
                    layer: l.layer,
                })
                .collect(),
        })
    }

    /// `true` when the window contains only geometry and can go to
    /// the flat extractor.
    pub fn is_primitive(&self) -> bool {
        self.instances.is_empty()
    }

    /// `true` when the window holds nothing at all.
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty() && self.instances.is_empty() && self.labels.is_empty()
    }

    /// Translates everything so the window's lower-left corner is at
    /// the origin; returns the shift that was applied.
    pub fn normalize(&mut self) -> Point {
        let shift = -Point::new(self.rect.x_min, self.rect.y_min);
        if shift == Point::ORIGIN {
            return Point::ORIGIN;
        }
        self.rect = self.rect.translate(shift);
        for (_, r) in &mut self.boxes {
            *r = r.translate(shift);
        }
        for (_, t) in &mut self.instances {
            *t = t.translate(shift);
        }
        for l in &mut self.labels {
            l.at += shift;
        }
        shift
    }

    /// Canonical sort of the content lists (so keys are order
    /// independent). Instances sort by their cells' *content hashes*,
    /// which are stable across libraries.
    pub fn canonicalize(&mut self, lib: &Library) {
        self.boxes.sort_unstable();
        self.instances.sort_unstable_by_key(|&(cell, t)| {
            (
                lib.cell(cell).content_hash(),
                t.translation(),
                t.orientation() as u8,
            )
        });
        self.labels
            .sort_unstable_by(|a, b| (&a.name, a.at, a.layer).cmp(&(&b.name, b.at, b.layer)));
    }

    /// Content hash of a normalized, canonicalized window. Instances
    /// hash by their cells' deep content hashes, so identical windows
    /// from *different* libraries (or different extraction runs) hash
    /// equal — the basis for incremental extraction.
    pub fn key(&self, lib: &Library) -> WindowKey {
        let mut h = DefaultHasher::new();
        (self.rect.width(), self.rect.height()).hash(&mut h);
        for (layer, r) in &self.boxes {
            (layer.index(), r.x_min, r.y_min, r.x_max, r.y_max).hash(&mut h);
        }
        0xB0u8.hash(&mut h);
        for (cell, t) in &self.instances {
            (
                lib.cell(*cell).content_hash(),
                t.translation().x,
                t.translation().y,
                t.orientation() as u8,
            )
                .hash(&mut h);
        }
        0xB1u8.hash(&mut h);
        for l in &self.labels {
            (&l.name, l.at.x, l.at.y, l.layer.map(Layer::index)).hash(&mut h);
        }
        WindowKey(h.finish())
    }

    /// Replaces every instance by its cell's contents, one level deep
    /// (HEXT §3 step 2).
    pub fn expand_one_level(&self, lib: &Library) -> Content {
        let mut out = Content {
            rect: self.rect,
            boxes: self.boxes.clone(),
            instances: Vec::new(),
            labels: self.labels.clone(),
        };
        for &(cell, t) in &self.instances {
            let c = lib.cell(cell);
            for &(layer, r) in c.boxes() {
                out.boxes.push((layer, t.apply_rect(&r)));
            }
            for label in c.labels() {
                out.labels.push(FlatLabel {
                    name: label.name.clone(),
                    at: t.apply_point(label.at),
                    layer: label.layer,
                });
            }
            for inst in c.instances() {
                out.instances.push((inst.cell, inst.transform.then(t)));
            }
        }
        out
    }

    /// Subdivides the window around its instances: overlapping
    /// instance bounding boxes become clusters (one window each), and
    /// the remaining area is sliced into band-aligned tiles. Loose
    /// geometry is clipped at the window edges; every sub-window's
    /// rect is returned in this content's coordinates.
    ///
    /// # Panics
    ///
    /// Panics if called on a primitive window (no instances).
    pub fn subdivide(&self, lib: &Library) -> Vec<Content> {
        assert!(
            !self.instances.is_empty(),
            "subdivide requires instances; primitive windows go to the flat extractor"
        );

        // Instance bounding boxes, clipped to the window.
        let inst_bbox: Vec<Rect> = self
            .instances
            .iter()
            .map(|&(cell, t)| {
                let bb = lib
                    .cell(cell)
                    .bounding_box()
                    .expect("instantiated cells have bounding boxes");
                t.apply_rect(&bb)
            })
            .collect();

        // Cluster overlapping bounding boxes (Newell–Fitzpatrick
        // disjoint transformation). Iterate a sweep until stable.
        let mut cluster_of: Vec<usize> = (0..inst_bbox.len()).collect();
        let mut cluster_rect = inst_bbox.clone();
        loop {
            let mut changed = false;
            // Sort active cluster ids by x_min.
            let mut ids: Vec<usize> = (0..cluster_rect.len())
                .filter(|&i| cluster_of.contains(&i))
                .collect();
            ids.sort_unstable_by_key(|&i| cluster_rect[i].x_min);
            let mut active: Vec<usize> = Vec::new();
            for &i in &ids {
                let r = cluster_rect[i];
                active.retain(|&j| cluster_rect[j].x_max > r.x_min);
                let mut merged_into = None;
                for &j in &active {
                    if cluster_rect[j].overlaps(&r) {
                        merged_into = Some(j);
                        break;
                    }
                }
                if let Some(j) = merged_into {
                    cluster_rect[j] = cluster_rect[j].bounding_union(&r);
                    for c in cluster_of.iter_mut() {
                        if *c == i {
                            *c = j;
                        }
                    }
                    changed = true;
                } else {
                    active.push(i);
                }
            }
            if !changed {
                break;
            }
        }
        let mut clusters: Vec<usize> = cluster_of.clone();
        clusters.sort_unstable();
        clusters.dedup();

        // Horizontal bands from cluster y-bounds.
        let mut ys: Vec<Coord> = vec![self.rect.y_min, self.rect.y_max];
        for &c in &clusters {
            ys.push(
                cluster_rect[c]
                    .y_min
                    .clamp(self.rect.y_min, self.rect.y_max),
            );
            ys.push(
                cluster_rect[c]
                    .y_max
                    .clamp(self.rect.y_min, self.rect.y_max),
            );
        }
        ys.sort_unstable();
        ys.dedup();

        // Build windows: one per cluster, plus leftover tiles.
        let mut windows: Vec<Content> = Vec::new();
        // cluster id → window index.
        let mut window_of_cluster = std::collections::HashMap::new();
        for &c in &clusters {
            window_of_cluster.insert(c, windows.len());
            windows.push(Content {
                rect: cluster_rect[c],
                boxes: Vec::new(),
                instances: Vec::new(),
                labels: Vec::new(),
            });
        }
        // Band segment maps: (y0, y1, Vec<(x0, x1, window_idx)>).
        // (band y0, band y1, segments of (x0, x1, window index)).
        type BandSegments = Vec<(Coord, Coord, usize)>;
        let mut bands: Vec<(Coord, Coord, BandSegments)> = Vec::new();
        for band in ys.windows(2) {
            let (y0, y1) = (band[0], band[1]);
            if y0 == y1 {
                continue;
            }
            // Clusters spanning this band.
            let mut xs: Vec<Coord> = vec![self.rect.x_min, self.rect.x_max];
            let mut in_band: Vec<usize> = Vec::new();
            for &c in &clusters {
                let r = cluster_rect[c];
                if r.y_min <= y0 && y1 <= r.y_max {
                    xs.push(r.x_min.clamp(self.rect.x_min, self.rect.x_max));
                    xs.push(r.x_max.clamp(self.rect.x_min, self.rect.x_max));
                    in_band.push(c);
                }
            }
            xs.sort_unstable();
            xs.dedup();
            let mut segments = Vec::new();
            for seg in xs.windows(2) {
                let (x0, x1) = (seg[0], seg[1]);
                if x0 == x1 {
                    continue;
                }
                // Which cluster owns this segment?
                let owner = in_band
                    .iter()
                    .find(|&&c| cluster_rect[c].x_min <= x0 && x1 <= cluster_rect[c].x_max)
                    .copied();
                let idx = match owner {
                    Some(c) => window_of_cluster[&c],
                    None => {
                        windows.push(Content {
                            rect: Rect::new(x0, y0, x1, y1),
                            boxes: Vec::new(),
                            instances: Vec::new(),
                            labels: Vec::new(),
                        });
                        windows.len() - 1
                    }
                };
                segments.push((x0, x1, idx));
            }
            bands.push((y0, y1, segments));
        }

        // Instances into their cluster's window.
        for (i, &(cell, t)) in self.instances.iter().enumerate() {
            let idx = window_of_cluster[&cluster_of[i]];
            windows[idx].instances.push((cell, t));
        }

        // Clip loose geometry into the windows it overlaps.
        for &(layer, r) in &self.boxes {
            for (y0, y1, segments) in &bands {
                if r.y_max <= *y0 || r.y_min >= *y1 {
                    continue;
                }
                for &(x0, x1, idx) in segments {
                    if r.x_max <= x0 || r.x_min >= x1 {
                        continue;
                    }
                    // Clip against the band segment, then against the
                    // owning window (cluster windows span several
                    // segments; pieces falling in the same window on
                    // adjacent bands are separate clipped boxes, which
                    // the extractor re-merges).
                    let clip = Rect::new(
                        r.x_min.max(x0),
                        r.y_min.max(*y0),
                        r.x_max.min(x1),
                        r.y_max.min(*y1),
                    );
                    if !clip.is_empty() {
                        windows[idx].boxes.push((layer, clip));
                    }
                }
            }
        }

        // Labels by position.
        for l in &self.labels {
            let band = bands
                .iter()
                .find(|(y0, y1, _)| *y0 <= l.at.y && l.at.y < *y1)
                .or(bands.last());
            if let Some((_, _, segments)) = band {
                let seg = segments
                    .iter()
                    .find(|(x0, x1, _)| *x0 <= l.at.x && l.at.x < *x1)
                    .or(segments.last());
                if let Some(&(_, _, idx)) = seg {
                    windows[idx].labels.push(l.clone());
                }
            }
        }

        windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> Library {
        Library::from_cif_text(src).expect("valid CIF")
    }

    #[test]
    fn chip_content_collects_top_level() {
        let l = lib("DS 1; L ND; B 4 4 0 0; DF; C 1 T 10 10; L NM; B 4 4 100 100; 94 X 100 100; E");
        let c = Content::chip(&l).expect("non-empty");
        assert_eq!(c.instances.len(), 1);
        assert_eq!(c.boxes.len(), 1);
        assert_eq!(c.labels.len(), 1);
        assert!(!c.is_primitive());
    }

    #[test]
    fn normalize_shifts_to_origin_and_key_matches() {
        let l = lib("DS 1; L ND; B 4 4 0 0; DF; C 1 T 1000 2000; C 1 T 5000 2000; E");
        let c = Content::chip(&l).unwrap();
        let windows = c.subdivide(&l);
        // Two cluster windows with identical content.
        let mut keys: Vec<WindowKey> = windows
            .iter()
            .filter(|w| !w.instances.is_empty())
            .map(|w| {
                let mut w = w.clone();
                w.normalize();
                w.canonicalize(&l);
                w.key(&l)
            })
            .collect();
        assert_eq!(keys.len(), 2);
        keys.dedup();
        assert_eq!(keys.len(), 1, "identical cells must hash equal");
    }

    #[test]
    fn different_orientations_hash_differently() {
        let l = lib("DS 1; L ND; B 4 8 0 0; DF; C 1 T 1000 1000; C 1 R 0 1 T 5000 1000; E");
        let c = Content::chip(&l).unwrap();
        let windows = c.subdivide(&l);
        let keys: Vec<WindowKey> = windows
            .iter()
            .filter(|w| !w.instances.is_empty())
            .map(|w| {
                let mut w = w.clone();
                w.normalize();
                w.canonicalize(&l);
                w.key(&l)
            })
            .collect();
        assert_eq!(keys.len(), 2);
        assert_ne!(keys[0], keys[1]);
    }

    #[test]
    fn expansion_descends_one_level() {
        let l = lib("DS 1; L ND; B 4 4 0 0; DF;
             DS 2; C 1 T 0 0; C 1 T 100 0; DF;
             C 2 T 1000 1000; E");
        let c = Content::chip(&l).unwrap();
        let e = c.expand_one_level(&l);
        // The call to symbol 2 became two calls to symbol 1.
        assert_eq!(e.instances.len(), 2);
        assert!(e.boxes.is_empty());
        let ee = e.expand_one_level(&l);
        assert_eq!(ee.instances.len(), 0);
        assert_eq!(ee.boxes.len(), 2);
    }

    #[test]
    fn overlapping_instances_cluster_together() {
        let l = lib("DS 1; L ND; B 1000 1000 500 500; DF;
             C 1 T 0 0; C 1 T 500 0; C 1 T 5000 0; E");
        let c = Content::chip(&l).unwrap();
        let windows = c.subdivide(&l);
        let clusters: Vec<&Content> = windows.iter().filter(|w| !w.instances.is_empty()).collect();
        assert_eq!(clusters.len(), 2);
        let sizes: Vec<usize> = {
            let mut v: Vec<usize> = clusters.iter().map(|w| w.instances.len()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sizes, vec![1, 2]);
    }

    #[test]
    fn loose_geometry_is_clipped_at_window_edges() {
        // A wire crossing the gap between two cells gets split.
        let l = lib("DS 1; L ND; B 1000 1000 500 500; DF;
             C 1 T 0 0; C 1 T 4000 0;
             L NM; B 6000 200 2500 500; E");
        let c = Content::chip(&l).unwrap();
        let windows = c.subdivide(&l);
        let total_wire_pieces: usize = windows
            .iter()
            .map(|w| w.boxes.iter().filter(|(l, _)| *l == Layer::Metal).count())
            .sum();
        assert!(
            total_wire_pieces >= 3,
            "wire must split: {total_wire_pieces}"
        );
        // Coverage is preserved.
        let area: i64 = windows
            .iter()
            .flat_map(|w| w.boxes.iter())
            .filter(|(l, _)| *l == Layer::Metal)
            .map(|(_, r)| r.area())
            .sum();
        assert_eq!(area, 6000 * 200);
        // Every piece lies inside its window.
        for w in &windows {
            for (_, r) in &w.boxes {
                assert!(w.rect.contains_rect(r), "{r} outside {}", w.rect);
            }
        }
    }

    #[test]
    fn windows_tile_the_parent() {
        let l = lib("DS 1; L ND; B 1000 1000 500 500; DF;
             C 1 T 0 0; C 1 T 3000 2000; L NM; B 200 200 4900 100; E");
        let c = Content::chip(&l).unwrap();
        let windows = c.subdivide(&l);
        let covered: i64 = windows.iter().map(|w| w.rect.area()).sum();
        assert_eq!(covered, c.rect.area(), "windows must tile the parent");
        // And be pairwise disjoint.
        for (i, a) in windows.iter().enumerate() {
            for b in &windows[i + 1..] {
                assert!(!a.rect.overlaps(&b.rect), "{} overlaps {}", a.rect, b.rect);
            }
        }
    }

    #[test]
    fn labels_are_routed_to_their_window() {
        let l = lib("DS 1; L ND; B 1000 1000 500 500; DF;
             C 1 T 0 0; C 1 T 4000 0; 94 SIG 4500 500; E");
        let c = Content::chip(&l).unwrap();
        let windows = c.subdivide(&l);
        let with_label: Vec<&Content> = windows.iter().filter(|w| !w.labels.is_empty()).collect();
        assert_eq!(with_label.len(), 1);
        assert!(with_label[0].rect.contains_point(Point::new(4500, 500)));
    }
}
