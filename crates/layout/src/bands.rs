//! Horizontal band partitioning for parallel extraction.
//!
//! The scanline sweep is inherently sequential, but a flat layout can
//! be cut into K horizontal bands that are swept concurrently and then
//! stitched back together along the seams (the HEXT idea applied to
//! bands instead of cells). This module does the geometric half of
//! that: picking seam lines and clipping the layout into per-band
//! [`FlatLayout`]s.
//!
//! Cut lines are always chosen from the multiset of existing box
//! edges. That keeps the banded strip structure identical to the flat
//! sweep's (the flat scanline already stops at every box edge), so a
//! band extraction sees exactly the strips the flat extraction saw —
//! which is what makes the stitched result canonically equal.

use ace_geom::{Coord, Rect};

use crate::flatten::{FlatLabel, FlatLayout};

/// The output of [`partition_bands`]: one clipped layout per band,
/// bottom to top, plus the labels that sit exactly on a seam.
#[derive(Debug, Clone, Default)]
pub struct BandPartition {
    /// The interior seam lines, ascending. `bands.len() == cuts.len() + 1`.
    pub cuts: Vec<Coord>,
    /// Clipped per-band layouts, ordered bottom to top: band `i` spans
    /// `[lo_i, cuts[i]]` where `lo_0` is the chip bottom and the last
    /// band ends at the chip top.
    pub bands: Vec<FlatLayout>,
    /// Labels whose y coordinate falls exactly on an interior cut.
    /// Both adjacent bands could claim them, so the stitcher resolves
    /// them against the seam's boundary contacts instead (mirroring
    /// the flat sweep, which tries the strip above first).
    pub seam_labels: Vec<FlatLabel>,
}

/// Picks up to `bands - 1` interior seam lines for a layout.
///
/// Seams sit at quantiles of the sorted box-edge multiset, so dense
/// regions get proportionally narrower bands (the sweep's work is
/// driven by edge count, not by area). Degenerate layouts — fewer
/// distinct interior edges than requested seams — yield fewer cuts,
/// possibly none.
///
/// # Examples
///
/// ```
/// use ace_geom::{Layer, Rect};
/// use ace_layout::{band_cuts, FlatLayout};
///
/// let mut flat = FlatLayout::new();
/// for i in 0..8 {
///     flat.push_box(Layer::Metal, Rect::new(0, i * 100, 50, i * 100 + 100));
/// }
/// let cuts = band_cuts(&flat, 4);
/// assert_eq!(cuts, vec![200, 400, 600]);
/// ```
pub fn band_cuts(flat: &FlatLayout, bands: usize) -> Vec<Coord> {
    let Some(bb) = flat.bounding_box() else {
        return Vec::new();
    };
    if bands <= 1 {
        return Vec::new();
    }
    let mut edges: Vec<Coord> = flat
        .boxes()
        .iter()
        .flat_map(|b| [b.rect.y_min, b.rect.y_max])
        .collect();
    edges.sort_unstable();
    let mut cuts: Vec<Coord> = (1..bands)
        .map(|i| edges[(i * edges.len() / bands).min(edges.len() - 1)])
        .collect();
    cuts.dedup();
    cuts.retain(|&c| bb.y_min < c && c < bb.y_max);
    cuts
}

/// Clips a layout into horizontal bands along the given seam lines
/// (ascending, strictly inside the layout's y-extent).
///
/// A box spanning a seam is clipped into both bands, so each band's
/// window extraction reports it as a boundary contact on the seam
/// face; a box that merely *touches* a seam enters only the band it
/// has interior extent in. Labels go to the band that contains them;
/// labels exactly on a seam are set aside for the stitcher.
pub fn partition_bands(flat: &FlatLayout, cuts: &[Coord]) -> BandPartition {
    debug_assert!(cuts.windows(2).all(|w| w[0] < w[1]), "cuts must ascend");
    let band_count = cuts.len() + 1;
    let mut bands = vec![FlatLayout::new(); band_count];
    let mut seam_labels = Vec::new();

    for b in flat.boxes() {
        route_box(cuts, b.rect, |band, clipped| {
            bands[band].push_box(b.layer, clipped);
        });
    }

    for label in flat.labels() {
        match route_label(cuts, label.at.y) {
            None => seam_labels.push(label.clone()),
            Some(band) => bands[band].push_label(label.name.clone(), label.at, label.layer),
        }
    }

    BandPartition {
        cuts: cuts.to_vec(),
        bands,
        seam_labels,
    }
}

/// Calls `emit(band, clipped)` for every band slice of one box —
/// the exact per-box routing [`partition_bands`] applies, factored
/// out so incremental band maintenance clips edits identically. A
/// box spanning a seam emits into both neighbours; one merely
/// touching a seam emits only where it has interior extent.
pub fn route_box(cuts: &[Coord], rect: Rect, mut emit: impl FnMut(usize, Rect)) {
    // Bands [first..=last] have interior overlap with the box.
    let first = cuts.partition_point(|&c| c <= rect.y_min);
    let last = cuts.partition_point(|&c| c < rect.y_max);
    for band in first..=last {
        let lo = if band == 0 {
            rect.y_min
        } else {
            cuts[band - 1]
        };
        let hi = if band == cuts.len() {
            rect.y_max
        } else {
            cuts[band]
        };
        let mut clipped = rect;
        clipped.y_min = clipped.y_min.max(lo);
        clipped.y_max = clipped.y_max.min(hi);
        if clipped.y_min < clipped.y_max {
            emit(band, clipped);
        }
    }
}

/// The band a label at height `y` belongs to, or `None` when it sits
/// exactly on a seam (the stitcher's job to resolve) — again the
/// routing [`partition_bands`] applies, shared with incremental band
/// maintenance.
pub fn route_label(cuts: &[Coord], y: Coord) -> Option<usize> {
    if cuts.binary_search(&y).is_ok() {
        None
    } else {
        Some(cuts.partition_point(|&c| c < y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_geom::{Layer, Point, Rect};

    fn stack(n: i64) -> FlatLayout {
        let mut flat = FlatLayout::new();
        for i in 0..n {
            flat.push_box(Layer::Poly, Rect::new(0, i * 10, 5, i * 10 + 10));
        }
        flat
    }

    #[test]
    fn cuts_fall_on_edges_and_stay_interior() {
        let flat = stack(10);
        for k in 2..6 {
            let cuts = band_cuts(&flat, k);
            assert!(cuts.len() <= k - 1);
            for c in &cuts {
                assert!(c % 10 == 0, "cut {c} is not a box edge");
                assert!(0 < *c && *c < 100);
            }
            assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn no_cuts_for_empty_or_single_band() {
        assert!(band_cuts(&FlatLayout::new(), 4).is_empty());
        assert!(band_cuts(&stack(10), 1).is_empty());
        // One box has no interior edge to cut at.
        assert!(band_cuts(&stack(1), 4).is_empty());
    }

    #[test]
    fn straddling_boxes_are_clipped_into_both_bands() {
        let mut flat = FlatLayout::new();
        flat.push_box(Layer::Diffusion, Rect::new(0, 0, 10, 100));
        flat.push_box(Layer::Metal, Rect::new(20, 0, 30, 40));
        let p = partition_bands(&flat, &[40]);
        assert_eq!(p.bands.len(), 2);
        // The tall box splits at the seam...
        assert_eq!(p.bands[0].boxes()[0].rect, Rect::new(0, 0, 10, 40));
        assert_eq!(p.bands[1].boxes()[0].rect, Rect::new(0, 40, 10, 100));
        // ...the touching box enters only the lower band.
        assert_eq!(p.bands[0].boxes().len(), 2);
        assert_eq!(p.bands[1].boxes().len(), 1);
    }

    #[test]
    fn clipped_area_is_preserved_per_layer() {
        let flat = stack(12);
        let cuts = band_cuts(&flat, 5);
        let p = partition_bands(&flat, &cuts);
        let total: i64 = p
            .bands
            .iter()
            .flat_map(|b| b.boxes())
            .map(|b| b.rect.area())
            .sum();
        let original: i64 = flat.boxes().iter().map(|b| b.rect.area()).sum();
        assert_eq!(total, original);
    }

    #[test]
    fn labels_route_to_their_band_or_the_seam() {
        let mut flat = stack(10);
        flat.push_label("low", Point::new(1, 5), None);
        flat.push_label("seam", Point::new(1, 40), None);
        flat.push_label("high", Point::new(1, 95), Some(Layer::Poly));
        let p = partition_bands(&flat, &[40]);
        assert_eq!(p.bands[0].labels().len(), 1);
        assert_eq!(p.bands[0].labels()[0].name, "low");
        assert_eq!(p.bands[1].labels().len(), 1);
        assert_eq!(p.bands[1].labels()[0].name, "high");
        assert_eq!(p.seam_labels.len(), 1);
        assert_eq!(p.seam_labels[0].name, "seam");
    }
}
