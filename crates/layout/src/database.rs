use std::collections::BTreeMap;

use ace_cif::{CifFile, Command, Shape, SymbolId};
use ace_geom::{
    fracture_polygon, fracture_round_flash, fracture_wire, Layer, Point, Rect, Transform, LAMBDA,
};

use crate::error::BuildLayoutError;

/// Index of a [`Cell`] within its [`Library`].
pub type CellId = usize;

/// A placed child cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instance {
    /// The instantiated cell.
    pub cell: CellId,
    /// Placement transform (child coordinates → parent coordinates).
    pub transform: Transform,
}

/// A net-name label inside a cell (from a CIF `94` command).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelDef {
    /// The user-defined signal name.
    pub name: String,
    /// Position in cell coordinates.
    pub at: Point,
    /// Optional layer restriction.
    pub layer: Option<Layer>,
}

/// One cell of the layout database: fractured primitive boxes, labels,
/// and child instances.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cell {
    name: String,
    symbol: Option<SymbolId>,
    boxes: Vec<(Layer, Rect)>,
    labels: Vec<LabelDef>,
    instances: Vec<Instance>,
    bbox: Option<Rect>,
    content_hash: u64,
}

impl Cell {
    /// Human-readable name (CIF `9` extension, or `S<id>`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Originating CIF symbol id, if any.
    pub fn symbol(&self) -> Option<SymbolId> {
        self.symbol
    }

    /// The cell's own (already fractured) boxes.
    pub fn boxes(&self) -> &[(Layer, Rect)] {
        &self.boxes
    }

    /// The cell's own labels.
    pub fn labels(&self) -> &[LabelDef] {
        &self.labels
    }

    /// Child instances.
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// Bounding box of the cell including all children, or `None` for
    /// an empty cell.
    pub fn bounding_box(&self) -> Option<Rect> {
        self.bbox
    }

    /// Structural hash of the cell's *full* contents — geometry,
    /// labels, and all descendants with their placements. Two cells
    /// hash equal exactly when their fully-instantiated artwork is
    /// identical, independently of which [`Library`] they live in or
    /// what their symbol ids are. This is what lets the hierarchical
    /// extractor reuse window analyses across extraction runs
    /// (incremental extraction).
    pub fn content_hash(&self) -> u64 {
        self.content_hash
    }
}

/// The layout database: all cells plus a designated top cell.
///
/// Built from a parsed [`CifFile`]; geometry is fractured into
/// manhattan boxes during construction, so consumers only ever see
/// `(Layer, Rect)` pairs.
///
/// # Examples
///
/// ```
/// use ace_layout::Library;
///
/// let lib = Library::from_cif_text("
///     DS 1; 9 bit; L ND; B 400 400 0 0; DF;
///     C 1 T 0 0;
///     C 1 T 1000 0;
///     E
/// ")?;
/// assert_eq!(lib.cell(lib.top()).instances().len(), 2);
/// assert_eq!(lib.instantiated_box_count(), 2);
/// # Ok::<(), ace_layout::BuildLayoutError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Library {
    cells: Vec<Cell>,
    top: CellId,
}

impl Library {
    /// Builds a library from a parsed CIF file.
    ///
    /// Top-level commands become a synthetic cell named `(top)`.
    ///
    /// # Errors
    ///
    /// [`BuildLayoutError::UnknownSymbol`] if a call references an
    /// undefined symbol; [`BuildLayoutError::RecursiveSymbol`] if the
    /// call graph has a cycle.
    pub fn from_cif(file: &CifFile) -> Result<Library, BuildLayoutError> {
        let mut ids: BTreeMap<SymbolId, CellId> = BTreeMap::new();
        for (i, &id) in file.symbols().keys().enumerate() {
            ids.insert(id, i);
        }
        let top = ids.len();

        let mut cells: Vec<Cell> = Vec::with_capacity(ids.len() + 1);
        for def in file.symbols().values() {
            let mut cell = build_cell(&def.items, &ids)?;
            cell.symbol = Some(def.id);
            cell.name = def
                .cell_name()
                .map(str::to_owned)
                .unwrap_or_else(|| format!("S{}", def.id));
            cells.push(cell);
        }
        let mut top_cell = build_cell(file.top_level(), &ids)?;
        top_cell.name = "(top)".to_string();
        cells.push(top_cell);

        let mut lib = Library { cells, top };
        lib.check_acyclic()?;
        lib.compute_bounding_boxes();
        lib.compute_content_hashes();
        Ok(lib)
    }

    /// Convenience: parse CIF text and build the library.
    ///
    /// # Errors
    ///
    /// Propagates parse errors and the errors of [`Library::from_cif`].
    pub fn from_cif_text(src: &str) -> Result<Library, BuildLayoutError> {
        Library::from_cif(&ace_cif::parse(src)?)
    }

    /// The top cell's id.
    pub fn top(&self) -> CellId {
        self.top
    }

    /// Looks up a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id]
    }

    /// All cells, topologically unordered.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Finds a cell by its CIF symbol id.
    pub fn cell_by_symbol(&self, symbol: SymbolId) -> Option<CellId> {
        self.cells.iter().position(|c| c.symbol == Some(symbol))
    }

    /// Bounding box of the whole chip (the top cell).
    pub fn bounding_box(&self) -> Option<Rect> {
        self.cells[self.top].bbox
    }

    /// Total number of boxes in the fully-instantiated chip — the
    /// paper's `N`. Counted with multiplicity but without expanding
    /// anything (pure arithmetic over the DAG).
    pub fn instantiated_box_count(&self) -> u64 {
        let mut memo: Vec<Option<u64>> = vec![None; self.cells.len()];
        self.count_boxes(self.top, &mut memo)
    }

    fn count_boxes(&self, id: CellId, memo: &mut Vec<Option<u64>>) -> u64 {
        if let Some(n) = memo[id] {
            return n;
        }
        let cell = &self.cells[id];
        let mut n = cell.boxes.len() as u64;
        for inst in &cell.instances {
            n += self.count_boxes(inst.cell, memo);
        }
        memo[id] = Some(n);
        n
    }

    fn check_acyclic(&self) -> Result<(), BuildLayoutError> {
        // Colors: 0 = white, 1 = on stack, 2 = done.
        let mut color = vec![0u8; self.cells.len()];
        // Iterative DFS to survive deep hierarchies.
        for start in 0..self.cells.len() {
            if color[start] != 0 {
                continue;
            }
            let mut stack: Vec<(CellId, usize)> = vec![(start, 0)];
            color[start] = 1;
            while let Some(&mut (id, ref mut next)) = stack.last_mut() {
                let cell = &self.cells[id];
                if *next < cell.instances.len() {
                    let child = cell.instances[*next].cell;
                    *next += 1;
                    match color[child] {
                        0 => {
                            color[child] = 1;
                            stack.push((child, 0));
                        }
                        1 => {
                            let sym = self.cells[child].symbol.unwrap_or(0);
                            return Err(BuildLayoutError::RecursiveSymbol(sym));
                        }
                        _ => {}
                    }
                } else {
                    color[id] = 2;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    fn compute_bounding_boxes(&mut self) {
        // Topological (children-first) evaluation via iterative DFS.
        let n = self.cells.len();
        let mut done = vec![false; n];
        for start in 0..n {
            if done[start] {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((id, children_done)) = stack.pop() {
                if done[id] {
                    continue;
                }
                if children_done {
                    let mut bb: Option<Rect> = None;
                    for &(_, r) in &self.cells[id].boxes {
                        bb = Some(match bb {
                            Some(acc) => acc.bounding_union(&r),
                            None => r,
                        });
                    }
                    // Labels extend the bbox too: the lazy feed
                    // releases a cell's labels when the scanline
                    // reaches the bbox top, so every label must lie
                    // within it.
                    for label in &self.cells[id].labels {
                        let p = Rect::new(label.at.x, label.at.y, label.at.x, label.at.y);
                        bb = Some(match bb {
                            Some(acc) => acc.bounding_union(&p),
                            None => p,
                        });
                    }
                    let insts = self.cells[id].instances.clone();
                    for inst in insts {
                        if let Some(child_bb) = self.cells[inst.cell].bbox {
                            let mapped = inst.transform.apply_rect(&child_bb);
                            bb = Some(match bb {
                                Some(acc) => acc.bounding_union(&mapped),
                                None => mapped,
                            });
                        }
                    }
                    self.cells[id].bbox = bb;
                    done[id] = true;
                } else {
                    stack.push((id, true));
                    for inst in &self.cells[id].instances {
                        if !done[inst.cell] {
                            stack.push((inst.cell, false));
                        }
                    }
                }
            }
        }
    }
}

impl Library {
    fn compute_content_hashes(&mut self) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        // Children-first order falls out of the same DFS used for
        // bounding boxes.
        let n = self.cells.len();
        let mut done = vec![false; n];
        for start in 0..n {
            if done[start] {
                continue;
            }
            let mut stack = vec![(start, false)];
            while let Some((id, children_done)) = stack.pop() {
                if done[id] {
                    continue;
                }
                if children_done {
                    let mut h = DefaultHasher::new();
                    let cell = &self.cells[id];
                    let mut boxes = cell.boxes.clone();
                    boxes.sort_unstable();
                    for (layer, r) in boxes {
                        (layer.index(), r.x_min, r.y_min, r.x_max, r.y_max).hash(&mut h);
                    }
                    0xAAu8.hash(&mut h);
                    let mut labels: Vec<_> = cell
                        .labels
                        .iter()
                        .map(|l| (l.name.clone(), l.at, l.layer.map(Layer::index)))
                        .collect();
                    labels.sort();
                    for (name, at, layer) in labels {
                        (name, at.x, at.y, layer).hash(&mut h);
                    }
                    0xABu8.hash(&mut h);
                    let mut children: Vec<_> = cell
                        .instances
                        .iter()
                        .map(|i| {
                            (
                                self.cells[i.cell].content_hash,
                                i.transform.translation(),
                                i.transform.orientation() as u8,
                            )
                        })
                        .collect();
                    children.sort();
                    for (hash, t, o) in children {
                        (hash, t.x, t.y, o).hash(&mut h);
                    }
                    self.cells[id].content_hash = h.finish();
                    done[id] = true;
                } else {
                    stack.push((id, true));
                    for inst in &self.cells[id].instances {
                        if !done[inst.cell] {
                            stack.push((inst.cell, false));
                        }
                    }
                }
            }
        }
    }
}

fn build_cell(
    items: &[Command],
    ids: &BTreeMap<SymbolId, CellId>,
) -> Result<Cell, BuildLayoutError> {
    let mut cell = Cell::default();
    for cmd in items {
        match cmd {
            Command::Geometry { layer, shape } => {
                fracture_shape(shape, |r| cell.boxes.push((*layer, r)));
            }
            Command::Call { symbol, transform } => {
                let &target = ids
                    .get(symbol)
                    .ok_or(BuildLayoutError::UnknownSymbol(*symbol))?;
                cell.instances.push(Instance {
                    cell: target,
                    transform: *transform,
                });
            }
            Command::Label { name, at, layer } => {
                cell.labels.push(LabelDef {
                    name: name.clone(),
                    at: *at,
                    layer: *layer,
                });
            }
            Command::CellName(_) | Command::UserExtension(_) => {}
        }
    }
    Ok(cell)
}

/// Fractures one CIF shape into manhattan boxes.
fn fracture_shape(shape: &Shape, mut emit: impl FnMut(Rect)) {
    match shape {
        Shape::Box(r) => emit(*r),
        Shape::Polygon(p) => {
            for r in fracture_polygon(p, LAMBDA) {
                emit(r);
            }
        }
        Shape::Wire(w) => {
            for r in fracture_wire(w, LAMBDA) {
                emit(r);
            }
        }
        Shape::RoundFlash { diameter, center } => {
            // Octagon inscribed in the flash circle, cut into strips
            // symmetric about the center (see
            // `ace_geom::fracture_round_flash` for the rounding
            // rules — the generic polygon path shifted odd-diameter
            // flashes half a unit off center).
            for b in fracture_round_flash(*diameter, *center, LAMBDA) {
                emit(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_hierarchy() {
        let lib = Library::from_cif_text(
            "DS 1; 9 leaf; L ND; B 400 400 0 200; DF;
             DS 2; 9 pair; C 1 T 0 0; C 1 T 1000 0; DF;
             C 2 T 0 0; C 2 T 0 2000; E",
        )
        .unwrap();
        assert_eq!(lib.cells().len(), 3); // leaf, pair, (top)
        let leaf = lib.cell_by_symbol(1).unwrap();
        assert_eq!(lib.cell(leaf).name(), "leaf");
        assert_eq!(lib.cell(leaf).boxes().len(), 1);
        assert_eq!(lib.instantiated_box_count(), 4);
    }

    #[test]
    fn bounding_boxes_include_children() {
        let lib = Library::from_cif_text(
            "DS 1; L ND; B 400 400 0 0; DF;
             C 1 T 0 0; C 1 T 1000 500; E",
        )
        .unwrap();
        assert_eq!(lib.bounding_box(), Some(Rect::new(-200, -200, 1200, 700)));
    }

    #[test]
    fn bounding_boxes_respect_transforms() {
        let lib = Library::from_cif_text(
            "DS 1; L ND; B 400 100 300 0; DF;
             C 1 R 0 1; E", // rotate 90°: x-extent becomes y-extent
        )
        .unwrap();
        // Cell box: [100,-50;500,50]. R90 maps to [-50,100;50,500].
        assert_eq!(lib.bounding_box(), Some(Rect::new(-50, 100, 50, 500)));
    }

    #[test]
    fn unknown_symbol_is_an_error() {
        let err = Library::from_cif_text("C 99 T 0 0; E").unwrap_err();
        assert_eq!(err, BuildLayoutError::UnknownSymbol(99));
    }

    #[test]
    fn recursion_is_an_error() {
        // 1 calls 2 calls 1. Parsing is fine; building must fail.
        let err =
            Library::from_cif_text("DS 1; C 2 T 0 0; DF; DS 2; C 1 T 0 0; DF; C 1; E").unwrap_err();
        assert!(matches!(err, BuildLayoutError::RecursiveSymbol(_)));
    }

    #[test]
    fn polygons_and_wires_are_fractured() {
        let lib = Library::from_cif_text(
            "L NM; P 0 0 300 0 300 100 100 100 100 300 0 300; W 100 0 0 1000 0; E",
        )
        .unwrap();
        let cell = lib.cell(lib.top());
        assert!(cell.boxes().len() >= 3); // ≥2 from the L, 1 from the wire
        for (layer, _) in cell.boxes() {
            assert_eq!(*layer, Layer::Metal);
        }
    }

    #[test]
    fn round_flash_becomes_octagon_boxes() {
        let lib = Library::from_cif_text("L NC; R 1000 0 0; E").unwrap();
        let cell = lib.cell(lib.top());
        assert!(!cell.boxes().is_empty());
        let bb = lib.bounding_box().unwrap();
        assert!(Rect::new(-500, -500, 500, 500).contains_rect(&bb));
        // Covers most of the circle's area.
        let area: i64 = cell.boxes().iter().map(|(_, r)| r.area()).sum();
        assert!(area > 700_000, "octagon area {area} too small");
    }

    #[test]
    fn labels_are_recorded() {
        let lib = Library::from_cif_text("94 VDD 10 20 NM; E").unwrap();
        let cell = lib.cell(lib.top());
        assert_eq!(cell.labels().len(), 1);
        assert_eq!(cell.labels()[0].name, "VDD");
        assert_eq!(cell.labels()[0].layer, Some(Layer::Metal));
    }

    #[test]
    fn empty_library_has_no_bbox() {
        let lib = Library::from_cif_text("E").unwrap();
        assert_eq!(lib.bounding_box(), None);
        assert_eq!(lib.instantiated_box_count(), 0);
    }

    #[test]
    fn content_hashes_are_library_independent() {
        // The same cell defined in two different libraries (different
        // symbol ids, different sibling cells) hashes identically.
        let a =
            Library::from_cif_text("DS 1; L ND; B 4 4 0 0; L NP; B 8 2 0 0; DF; C 1; E").unwrap();
        let b = Library::from_cif_text(
            "DS 7; L NM; B 2 2 50 50; DF;
             DS 9; L NP; B 8 2 0 0; L ND; B 4 4 0 0; DF;
             C 9; C 7; E",
        )
        .unwrap();
        let ha = a.cell(a.cell_by_symbol(1).unwrap()).content_hash();
        let hb = b.cell(b.cell_by_symbol(9).unwrap()).content_hash();
        assert_eq!(ha, hb, "same content must hash equal across libraries");
        let other = b.cell(b.cell_by_symbol(7).unwrap()).content_hash();
        assert_ne!(ha, other);
    }

    #[test]
    fn content_hashes_cover_descendants() {
        let a = Library::from_cif_text("DS 1; L ND; B 4 4 0 0; DF; DS 2; C 1 T 10 0; DF; C 2; E")
            .unwrap();
        let b = Library::from_cif_text("DS 1; L ND; B 4 4 0 0; DF; DS 2; C 1 T 20 0; DF; C 2; E")
            .unwrap();
        // The leaf is identical, the parent differs (child placement).
        let leaf = |l: &Library| l.cell(l.cell_by_symbol(1).unwrap()).content_hash();
        let parent = |l: &Library| l.cell(l.cell_by_symbol(2).unwrap()).content_hash();
        assert_eq!(leaf(&a), leaf(&b));
        assert_ne!(parent(&a), parent(&b));
    }

    #[test]
    fn deep_shared_hierarchy_counts_boxes_without_blowup() {
        // 2^20 boxes via 20 levels of doubling — must count instantly.
        let mut src = String::from("DS 1; L ND; B 4 4 0 0; DF;");
        for i in 2..=21 {
            src.push_str(&format!(
                "DS {i}; C {p} T 0 0; C {p} T 10 0; DF;",
                p = i - 1
            ));
        }
        src.push_str("C 21; E");
        let lib = Library::from_cif_text(&src).unwrap();
        assert_eq!(lib.instantiated_box_count(), 1 << 20);
    }
}
