//! Layout diffs: the edit vocabulary of incremental re-extraction.
//!
//! A [`LayoutDiff`] is a multiset delta between two [`FlatLayout`]s —
//! boxes added, boxes removed, labels added, labels removed. It is
//! what an editor hands `ace_core`'s incremental extractor after a
//! change: the extractor applies the diff to its retained layout and
//! re-sweeps only the bands whose content actually changed.
//!
//! Diffs are *multiset* deltas, not positional patches: two identical
//! boxes are two copies, and removing one leaves the other. Order
//! within a layout is irrelevant (the sweep re-sorts), so a diff
//! never records reordering.
//!
//! # Examples
//!
//! ```
//! use ace_geom::{Layer, Rect};
//! use ace_layout::{FlatLayout, LayoutDiff};
//!
//! let mut old = FlatLayout::new();
//! old.push_box(Layer::Metal, Rect::new(0, 0, 100, 100));
//! let mut new = old.clone();
//! new.push_box(Layer::Poly, Rect::new(0, 200, 100, 300));
//!
//! let diff = LayoutDiff::between(&old, &new);
//! assert_eq!(diff.boxes_added.len(), 1);
//! assert!(diff.boxes_removed.is_empty());
//!
//! let mut patched = old.clone();
//! diff.apply_to(&mut patched)?;
//! assert_eq!(LayoutDiff::between(&patched, &new).is_empty(), true);
//! # Ok::<(), ace_layout::DiffError>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;

use ace_geom::{Layer, Point, Rect};

use crate::flatten::{FlatLabel, FlatLayout, LayerBox};

/// A multiset delta between two flat layouts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LayoutDiff {
    /// Boxes present in the new layout but not the old.
    pub boxes_added: Vec<LayerBox>,
    /// Boxes present in the old layout but not the new.
    pub boxes_removed: Vec<LayerBox>,
    /// Labels present in the new layout but not the old.
    pub labels_added: Vec<FlatLabel>,
    /// Labels present in the old layout but not the new.
    pub labels_removed: Vec<FlatLabel>,
}

/// Applying a diff failed: a removal named a box or label the layout
/// does not contain. The layout is left partially patched; callers
/// treating application as transactional should apply to a clone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffError {
    /// `boxes_removed` entry absent from the layout.
    MissingBox(LayerBox),
    /// `labels_removed` entry absent from the layout.
    MissingLabel(FlatLabel),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::MissingBox(b) => {
                write!(
                    f,
                    "diff removes a box the layout lacks: {:?} {}",
                    b.layer, b.rect
                )
            }
            DiffError::MissingLabel(l) => {
                write!(
                    f,
                    "diff removes a label the layout lacks: '{}' at {}",
                    l.name, l.at
                )
            }
        }
    }
}

impl std::error::Error for DiffError {}

impl LayoutDiff {
    /// An empty diff.
    pub fn new() -> Self {
        LayoutDiff::default()
    }

    /// No additions and no removals.
    pub fn is_empty(&self) -> bool {
        self.boxes_added.is_empty()
            && self.boxes_removed.is_empty()
            && self.labels_added.is_empty()
            && self.labels_removed.is_empty()
    }

    /// Total number of edits recorded (a moved box counts twice:
    /// one removal plus one addition).
    pub fn len(&self) -> usize {
        self.boxes_added.len()
            + self.boxes_removed.len()
            + self.labels_added.len()
            + self.labels_removed.len()
    }

    /// Records a box addition.
    pub fn add_box(&mut self, layer: Layer, rect: Rect) {
        self.boxes_added.push(LayerBox { layer, rect });
    }

    /// Records a box removal.
    pub fn remove_box(&mut self, layer: Layer, rect: Rect) {
        self.boxes_removed.push(LayerBox { layer, rect });
    }

    /// Records a box move (one removal plus one addition).
    pub fn move_box(&mut self, layer: Layer, from: Rect, to: Rect) {
        self.remove_box(layer, from);
        self.add_box(layer, to);
    }

    /// Records a label addition.
    pub fn add_label(&mut self, name: impl Into<String>, at: Point, layer: Option<Layer>) {
        self.labels_added.push(FlatLabel {
            name: name.into(),
            at,
            layer,
        });
    }

    /// Records a label removal.
    pub fn remove_label(&mut self, name: impl Into<String>, at: Point, layer: Option<Layer>) {
        self.labels_removed.push(FlatLabel {
            name: name.into(),
            at,
            layer,
        });
    }

    /// The multiset delta turning `old` into `new`: a box or label
    /// appearing `a` times in `old` and `b` times in `new` yields
    /// `b - a` additions (or `a - b` removals). The result is minimal:
    /// nothing both added and removed, and applying it to `old` gives
    /// a layout multiset-equal to `new`.
    pub fn between(old: &FlatLayout, new: &FlatLayout) -> LayoutDiff {
        let mut diff = LayoutDiff::new();

        let mut box_counts: BTreeMap<(Layer, Rect), i64> = BTreeMap::new();
        for b in old.boxes() {
            *box_counts.entry((b.layer, b.rect)).or_insert(0) -= 1;
        }
        for b in new.boxes() {
            *box_counts.entry((b.layer, b.rect)).or_insert(0) += 1;
        }
        for ((layer, rect), count) in box_counts {
            for _ in 0..count.abs() {
                if count > 0 {
                    diff.add_box(layer, rect);
                } else {
                    diff.remove_box(layer, rect);
                }
            }
        }

        let mut label_counts: BTreeMap<(&str, Point, Option<Layer>), i64> = BTreeMap::new();
        for l in old.labels() {
            *label_counts.entry((&l.name, l.at, l.layer)).or_insert(0) -= 1;
        }
        for l in new.labels() {
            *label_counts.entry((&l.name, l.at, l.layer)).or_insert(0) += 1;
        }
        for ((name, at, layer), count) in label_counts {
            for _ in 0..count.abs() {
                if count > 0 {
                    diff.add_label(name, at, layer);
                } else {
                    diff.remove_label(name, at, layer);
                }
            }
        }

        diff
    }

    /// Applies the diff to a layout in place: removals first (one
    /// bulk pass each for boxes and labels, so a large diff costs
    /// O(layout + diff), not O(layout × diff)), then additions.
    ///
    /// # Errors
    ///
    /// [`DiffError`] when a removal names a box or label the layout
    /// does not contain; the layout may then be partially patched.
    pub fn apply_to(&self, layout: &mut FlatLayout) -> Result<(), DiffError> {
        if let Some(missing) = layout.remove_boxes_bulk(&self.boxes_removed) {
            return Err(DiffError::MissingBox(missing));
        }
        if let Some(missing) = layout.remove_labels_bulk(&self.labels_removed) {
            return Err(DiffError::MissingLabel(missing));
        }
        for b in &self.boxes_added {
            layout.push_box(b.layer, b.rect);
        }
        for l in &self.labels_added {
            layout.push_label(l.name.clone(), l.at, l.layer);
        }
        Ok(())
    }

    /// The y-extent touched by the diff's box edits, if any — the
    /// union of added and removed box spans. Label-only diffs return
    /// `None` (labels are points with no extent of their own).
    pub fn dirty_y_range(&self) -> Option<(ace_geom::Coord, ace_geom::Coord)> {
        self.boxes_added
            .iter()
            .chain(&self.boxes_removed)
            .map(|b| (b.rect.y_min, b.rect.y_max))
            .reduce(|(lo, hi), (a, b)| (lo.min(a), hi.max(b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_box_layout() -> FlatLayout {
        let mut flat = FlatLayout::new();
        flat.push_box(Layer::Metal, Rect::new(0, 0, 100, 100));
        flat.push_box(Layer::Poly, Rect::new(0, 200, 100, 300));
        flat.push_label("out", Point::new(50, 50), Some(Layer::Metal));
        flat
    }

    /// Order-insensitive equality between two layouts.
    fn same_multiset(a: &FlatLayout, b: &FlatLayout) -> bool {
        LayoutDiff::between(a, b).is_empty()
    }

    #[test]
    fn between_then_apply_round_trips() {
        let old = two_box_layout();
        let mut new = old.clone();
        new.remove_box(Layer::Metal, Rect::new(0, 0, 100, 100));
        new.push_box(Layer::Metal, Rect::new(0, 500, 100, 600));
        new.push_label("in", Point::new(10, 250), None);
        new.remove_label("out", Point::new(50, 50), Some(Layer::Metal));

        let diff = LayoutDiff::between(&old, &new);
        assert_eq!(diff.boxes_added.len(), 1);
        assert_eq!(diff.boxes_removed.len(), 1);
        assert_eq!(diff.labels_added.len(), 1);
        assert_eq!(diff.labels_removed.len(), 1);

        let mut patched = old.clone();
        diff.apply_to(&mut patched).unwrap();
        assert!(same_multiset(&patched, &new));
    }

    #[test]
    fn identical_layouts_diff_empty_regardless_of_order() {
        let a = two_box_layout();
        let mut b = FlatLayout::new();
        // Same content, reversed insertion order.
        b.push_label("out", Point::new(50, 50), Some(Layer::Metal));
        b.push_box(Layer::Poly, Rect::new(0, 200, 100, 300));
        b.push_box(Layer::Metal, Rect::new(0, 0, 100, 100));
        let diff = LayoutDiff::between(&a, &b);
        assert!(diff.is_empty());
        assert_eq!(diff.len(), 0);
    }

    #[test]
    fn duplicates_are_multiset_counted() {
        let mut old = FlatLayout::new();
        let r = Rect::new(0, 0, 10, 10);
        old.push_box(Layer::Cut, r);
        old.push_box(Layer::Cut, r);
        let mut new = FlatLayout::new();
        new.push_box(Layer::Cut, r);

        let diff = LayoutDiff::between(&old, &new);
        assert_eq!(diff.boxes_removed.len(), 1);
        assert!(diff.boxes_added.is_empty());

        // Removing one copy leaves the other.
        let mut patched = old.clone();
        diff.apply_to(&mut patched).unwrap();
        assert_eq!(patched.boxes().len(), 1);
    }

    #[test]
    fn applying_a_bad_removal_is_an_error() {
        let mut layout = FlatLayout::new();
        layout.push_box(Layer::Metal, Rect::new(0, 0, 10, 10));
        let mut diff = LayoutDiff::new();
        diff.remove_box(Layer::Poly, Rect::new(0, 0, 10, 10)); // wrong layer
        let err = diff.apply_to(&mut layout).unwrap_err();
        assert!(matches!(err, DiffError::MissingBox(_)));
        assert!(err.to_string().contains("box"));

        let mut diff = LayoutDiff::new();
        diff.remove_label("ghost", Point::new(5, 5), None);
        let err = diff.apply_to(&mut layout).unwrap_err();
        assert!(matches!(err, DiffError::MissingLabel(_)));
    }

    #[test]
    fn moves_and_dirty_range() {
        let mut diff = LayoutDiff::new();
        diff.move_box(
            Layer::Diffusion,
            Rect::new(0, 100, 10, 200),
            Rect::new(0, 700, 10, 800),
        );
        assert_eq!(diff.len(), 2);
        assert_eq!(diff.dirty_y_range(), Some((100, 800)));

        let mut labels_only = LayoutDiff::new();
        labels_only.add_label("a", Point::new(0, 0), None);
        assert_eq!(labels_only.dirty_y_range(), None);
    }
}
