use std::error::Error;
use std::fmt;

use ace_cif::ParseCifError;

/// Error produced while building a [`crate::Library`] from CIF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildLayoutError {
    /// The CIF text itself was malformed.
    Parse(ParseCifError),
    /// A call referenced a symbol id with no `DS` definition.
    UnknownSymbol(u32),
    /// The symbol call graph contains a cycle.
    RecursiveSymbol(u32),
}

impl fmt::Display for BuildLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildLayoutError::Parse(e) => write!(f, "{e}"),
            BuildLayoutError::UnknownSymbol(id) => {
                write!(f, "call to undefined symbol {id}")
            }
            BuildLayoutError::RecursiveSymbol(id) => {
                write!(f, "symbol {id} calls itself (possibly indirectly)")
            }
        }
    }
}

impl Error for BuildLayoutError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildLayoutError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseCifError> for BuildLayoutError {
    fn from(e: ParseCifError) -> Self {
        BuildLayoutError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(BuildLayoutError::UnknownSymbol(7)
            .to_string()
            .contains("undefined symbol 7"));
        assert!(BuildLayoutError::RecursiveSymbol(3)
            .to_string()
            .contains("symbol 3"));
    }
}
