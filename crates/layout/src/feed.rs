use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ace_geom::{Coord, Transform};

use crate::database::{CellId, Library};
use crate::flatten::{FlatLabel, FlatLayout, LayerBox};
use crate::probe::{Counter, Lane, NullProbe, Probe};

/// Source of scan-ordered geometry for the back-end.
///
/// The back-end asks "what is the highest box top you have not given
/// me yet?" ([`GeometryFeed::peek_top`]) and then fetches "all
/// geometry whose top coincides with the scanline"
/// ([`GeometryFeed::pop_at`]) — exactly the paper's step 2.a.
///
/// Labels are surfaced through [`GeometryFeed::drain_new_labels`] as
/// the source discovers them. Both feeds discover every label before
/// the first [`GeometryFeed::peek_top`]: a `94` label must be visible
/// to the back-end no later than the scanline's first stop, or a
/// label above the geometry the sweep is currently processing could
/// be dropped (the sweep drops labels the scanline has passed) or
/// bound against the wrong strip, depending on expansion order.
pub trait GeometryFeed {
    /// Top edge of the highest unfetched box, or `None` when drained.
    fn peek_top(&mut self) -> Option<Coord>;

    /// Appends every box whose `y_max == y` to `out`. Call with the
    /// value just returned by [`GeometryFeed::peek_top`].
    fn pop_at(&mut self, y: Coord, out: &mut Vec<LayerBox>);

    /// Moves all newly discovered labels into `out`.
    fn drain_new_labels(&mut self, out: &mut Vec<FlatLabel>);

    /// Instrumentation counters.
    fn stats(&self) -> FeedStats;
}

/// Instrumentation for the front-end ablation (lazy vs eager).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FeedStats {
    /// Boxes handed to the back-end.
    pub boxes_emitted: u64,
    /// Symbol instances expanded (lazy feed only).
    pub instances_expanded: u64,
    /// High-water mark of the pending queue.
    pub max_pending: usize,
}

enum PendingKind {
    Box(LayerBox),
    Instance(CellId, Transform),
}

struct Pending {
    y_top: Coord,
    kind: PendingKind,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on y_top; on ties, instances sort above boxes so
        // they are expanded before the boxes at that level are
        // reported.
        let rank = |k: &PendingKind| match k {
            PendingKind::Instance(..) => 1u8,
            PendingKind::Box(_) => 0,
        };
        self.y_top
            .cmp(&other.y_top)
            .then_with(|| rank(&self.kind).cmp(&rank(&other.kind)))
    }
}

/// The lazy front-end: yields boxes in descending-top order,
/// expanding a symbol instance only when the scanline reaches the top
/// of its bounding box.
///
/// "If there exists a CIF symbol which lies completely below the
/// scanline, the front-end does not have to expand that cell to
/// determine that all geometry inside it is below the scanline. In
/// this way the complete geometry of the chip is never instantiated
/// (so never sorted) at the same time." (paper §4.)
///
/// **Labels are the exception to laziness.** They used to be
/// released only when their cell was expanded, which made correct
/// binding depend on two distant invariants: cell bounding boxes
/// being extended to cover label positions, and the back-end
/// happening to settle the heap before each strip. A label inside a
/// not-yet-expanded instance could then be dropped or bound to the
/// wrong net depending on scanline order. Labels are sparse, so the
/// feed now collects all of them up front with a dedicated tree walk
/// that skips label-free subtrees — geometry stays lazy, labels
/// don't.
///
/// # Examples
///
/// ```
/// use ace_layout::{GeometryFeed, LazyFeed, Library};
///
/// let lib = Library::from_cif_text(
///     "DS 1; L ND; B 10 10 0 0; DF; C 1 T 0 0; C 1 T 0 -100; E",
/// )?;
/// let mut feed = LazyFeed::new(&lib);
/// assert_eq!(feed.peek_top(), Some(5));
/// let mut out = Vec::new();
/// feed.pop_at(5, &mut out);
/// assert_eq!(out.len(), 1); // the lower instance is still unexpanded
/// assert_eq!(feed.peek_top(), Some(-95));
/// # Ok::<(), ace_layout::BuildLayoutError>(())
/// ```
pub struct LazyFeed<'a> {
    lib: &'a Library,
    heap: BinaryHeap<Pending>,
    new_labels: Vec<FlatLabel>,
    stats: FeedStats,
    probe: &'a dyn Probe,
    lane: Lane,
}

impl<'a> LazyFeed<'a> {
    /// Creates a feed over the library's top cell.
    pub fn new(lib: &'a Library) -> Self {
        LazyFeed::over_cell(lib, lib.top())
    }

    /// Creates a feed over one specific cell.
    pub fn over_cell(lib: &'a Library, cell: CellId) -> Self {
        let mut feed = LazyFeed {
            lib,
            heap: BinaryHeap::new(),
            new_labels: Vec::new(),
            stats: FeedStats::default(),
            probe: &NullProbe,
            lane: Lane::MAIN,
        };
        let mut has_labels = vec![None; lib.cells().len()];
        feed.collect_labels(cell, Transform::identity(), &mut has_labels);
        feed.push_cell_contents(cell, Transform::identity());
        feed
    }

    /// Whether `cell` or anything it instantiates carries a label,
    /// memoized per cell (the instance DAG can repeat cells).
    fn subtree_has_labels(&self, cell: CellId, memo: &mut [Option<bool>]) -> bool {
        if let Some(known) = memo[cell] {
            return known;
        }
        // Break instantiation cycles defensively (the library rejects
        // them at build time): a cell currently under evaluation
        // contributes nothing new.
        memo[cell] = Some(false);
        let c = self.lib.cell(cell);
        let has = !c.labels().is_empty()
            || c.instances()
                .iter()
                .any(|i| self.subtree_has_labels(i.cell, memo));
        memo[cell] = Some(has);
        has
    }

    /// Collects every label under `cell` into `new_labels` up front,
    /// pruning label-free subtrees (laziness is for geometry; labels
    /// must all be known before the sweep's first stop).
    fn collect_labels(&mut self, cell: CellId, t: Transform, memo: &mut [Option<bool>]) {
        let c = self.lib.cell(cell);
        for label in c.labels() {
            self.new_labels.push(FlatLabel {
                name: label.name.clone(),
                at: t.apply_point(label.at),
                layer: label.layer,
            });
        }
        for inst in c.instances() {
            if self.subtree_has_labels(inst.cell, memo) {
                self.collect_labels(inst.cell, inst.transform.then(t), memo);
            }
        }
    }

    /// Attaches a probe; expansion and emission counters are reported
    /// on `lane` from here on.
    pub fn with_probe(mut self, probe: &'a dyn Probe, lane: Lane) -> Self {
        self.probe = probe;
        self.lane = lane;
        probe.gauge(lane, Counter::PendingPeak, self.stats.max_pending as u64);
        self
    }

    fn push_cell_contents(&mut self, cell: CellId, t: Transform) {
        let c = self.lib.cell(cell);
        for &(layer, r) in c.boxes() {
            let rect = t.apply_rect(&r);
            self.heap.push(Pending {
                y_top: rect.y_max,
                kind: PendingKind::Box(LayerBox { layer, rect }),
            });
        }
        // Labels were already collected up front by `collect_labels`;
        // expansion pushes geometry and child instances only.
        for inst in c.instances() {
            let placed = inst.transform.then(t);
            if let Some(bb) = self.lib.cell(inst.cell).bounding_box() {
                self.heap.push(Pending {
                    y_top: placed.apply_rect(&bb).y_max,
                    kind: PendingKind::Instance(inst.cell, placed),
                });
            }
        }
        if self.heap.len() > self.stats.max_pending {
            self.stats.max_pending = self.heap.len();
            self.probe
                .gauge(self.lane, Counter::PendingPeak, self.heap.len() as u64);
        }
    }

    /// Expands instances at the heap top until it is a box (or
    /// empty). With `bound = Some(y)`, instances whose bounding-box
    /// top is below `y` are left unexpanded — the scanline has not
    /// reached them yet.
    fn settle(&mut self, bound: Option<Coord>) {
        while let Some(top) = self.heap.peek() {
            match top.kind {
                PendingKind::Box(_) => return,
                PendingKind::Instance(cell, t) => {
                    if bound.is_some_and(|y| top.y_top < y) {
                        return;
                    }
                    self.heap.pop();
                    self.stats.instances_expanded += 1;
                    self.probe.add(self.lane, Counter::InstancesExpanded, 1);
                    self.push_cell_contents(cell, t);
                }
            }
        }
    }
}

impl GeometryFeed for LazyFeed<'_> {
    fn peek_top(&mut self) -> Option<Coord> {
        self.settle(None);
        self.heap.peek().map(|p| p.y_top)
    }

    fn pop_at(&mut self, y: Coord, out: &mut Vec<LayerBox>) {
        let mut popped = 0u64;
        loop {
            self.settle(Some(y));
            match self.heap.peek() {
                Some(p) if p.y_top == y => {
                    if let Some(Pending {
                        kind: PendingKind::Box(b),
                        ..
                    }) = self.heap.pop()
                    {
                        self.stats.boxes_emitted += 1;
                        popped += 1;
                        out.push(b);
                    }
                }
                _ => break,
            }
        }
        if popped > 0 {
            self.probe.add(self.lane, Counter::FeedBoxes, popped);
        }
    }

    fn drain_new_labels(&mut self, out: &mut Vec<FlatLabel>) {
        out.append(&mut self.new_labels);
    }

    fn stats(&self) -> FeedStats {
        self.stats
    }
}

/// The eager front-end: flattens the whole chip, sorts once, feeds
/// from the sorted list. Baseline for the lazy-vs-eager ablation.
pub struct EagerFeed<'p> {
    boxes: Vec<LayerBox>, // sorted by descending y_max
    next: usize,
    labels: Vec<FlatLabel>,
    stats: FeedStats,
    probe: &'p dyn Probe,
    lane: Lane,
}

impl<'p> EagerFeed<'p> {
    /// Flattens and sorts a library's top cell.
    pub fn new(lib: &Library) -> Self {
        EagerFeed::from_flat(FlatLayout::from_library(lib))
    }

    /// Builds a feed from an existing flat layout.
    pub fn from_flat(mut flat: FlatLayout) -> Self {
        flat.sort_for_scan();
        let boxes: Vec<LayerBox> = flat.boxes().to_vec();
        let labels = flat.labels().to_vec();
        let max_pending = boxes.len();
        EagerFeed {
            boxes,
            next: 0,
            labels,
            stats: FeedStats {
                boxes_emitted: 0,
                instances_expanded: 0,
                max_pending,
            },
            probe: &NullProbe,
            lane: Lane::MAIN,
        }
    }

    /// Attaches a probe; emission counters are reported on `lane`.
    pub fn with_probe(mut self, probe: &'p dyn Probe, lane: Lane) -> Self {
        self.probe = probe;
        self.lane = lane;
        probe.gauge(lane, Counter::PendingPeak, self.stats.max_pending as u64);
        self
    }
}

impl GeometryFeed for EagerFeed<'_> {
    fn peek_top(&mut self) -> Option<Coord> {
        self.boxes.get(self.next).map(|b| b.rect.y_max)
    }

    fn pop_at(&mut self, y: Coord, out: &mut Vec<LayerBox>) {
        let mut popped = 0u64;
        while let Some(b) = self.boxes.get(self.next) {
            if b.rect.y_max != y {
                break;
            }
            out.push(*b);
            self.next += 1;
            self.stats.boxes_emitted += 1;
            popped += 1;
        }
        if popped > 0 {
            self.probe.add(self.lane, Counter::FeedBoxes, popped);
        }
    }

    fn drain_new_labels(&mut self, out: &mut Vec<FlatLabel>) {
        out.append(&mut self.labels);
    }

    fn stats(&self) -> FeedStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_geom::Layer;

    fn drain_all(feed: &mut impl GeometryFeed) -> Vec<LayerBox> {
        let mut all = Vec::new();
        while let Some(y) = feed.peek_top() {
            let before = all.len();
            feed.pop_at(y, &mut all);
            assert!(all.len() > before, "pop_at made no progress at y={y}");
        }
        all
    }

    const SRC: &str = "DS 1; 9 leaf; L ND; B 100 100 0 0; L NP; B 20 300 0 0; DF;
         DS 2; C 1 T 0 0; C 1 T 500 -200; DF;
         C 2 T 0 0; C 2 T 2000 1000; L NM; B 5000 200 1000 800; E";

    #[test]
    fn lazy_and_eager_agree() {
        let lib = Library::from_cif_text(SRC).unwrap();
        let mut lazy = LazyFeed::new(&lib);
        let mut eager = EagerFeed::new(&lib);
        let mut a = drain_all(&mut lazy);
        let mut b = drain_all(&mut eager);
        let key = |x: &LayerBox| (x.layer, x.rect);
        a.sort_by_key(key);
        b.sort_by_key(key);
        assert_eq!(a, b);
        assert_eq!(a.len() as u64, lib.instantiated_box_count());
    }

    #[test]
    fn feed_is_monotonically_descending() {
        let lib = Library::from_cif_text(SRC).unwrap();
        let mut feed = LazyFeed::new(&lib);
        let mut last: Option<Coord> = None;
        while let Some(y) = feed.peek_top() {
            if let Some(prev) = last {
                assert!(y < prev, "tops must strictly descend: {y} after {prev}");
            }
            let mut out = Vec::new();
            feed.pop_at(y, &mut out);
            assert!(out.iter().all(|b| b.rect.y_max == y));
            last = Some(y);
        }
    }

    #[test]
    fn lazy_feed_does_not_expand_cells_below_scanline() {
        // Two instances: one at the top, one far below. After popping
        // the top one's geometry, the second must still be pending.
        let lib =
            Library::from_cif_text("DS 1; L ND; B 10 10 0 0; DF; C 1 T 0 0; C 1 T 0 -10000; E")
                .unwrap();
        let mut feed = LazyFeed::new(&lib);
        let y = feed.peek_top().unwrap();
        let mut out = Vec::new();
        feed.pop_at(y, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(feed.stats().instances_expanded, 1);
        assert_eq!(feed.peek_top(), Some(-9995));
        assert_eq!(feed.stats().instances_expanded, 2);
    }

    #[test]
    fn instance_labels_are_available_before_any_expansion() {
        // Regression: labels inside not-yet-expanded instances used
        // to surface only on expansion, so a label's visibility
        // depended on scanline order. All labels must be available
        // up front, before the first peek, with instance transforms
        // applied — while the geometry stays unexpanded.
        let lib = Library::from_cif_text(
            "DS 1; L ND; B 10 10 0 0; 94 sig 0 0; DF; C 1 T 0 -500; 94 top 5 5; E",
        )
        .unwrap();
        let mut feed = LazyFeed::new(&lib);
        let mut labels = Vec::new();
        feed.drain_new_labels(&mut labels);
        assert_eq!(labels.len(), 2, "{labels:?}");
        labels.sort_by(|a, b| a.name.cmp(&b.name));
        assert_eq!(labels[0].name, "sig");
        assert_eq!(labels[0].at, ace_geom::Point::new(0, -500));
        assert_eq!(labels[1].name, "top");
        // Label collection must not have expanded the instance.
        assert_eq!(feed.stats().instances_expanded, 0);
        let y = feed.peek_top().unwrap(); // forces expansion
        assert_eq!(y, -495);
        feed.drain_new_labels(&mut labels);
        assert_eq!(labels.len(), 2, "expansion must not re-emit labels");
    }

    #[test]
    fn label_collection_prunes_label_free_subtrees_and_transforms() {
        // Cell 1 has no labels anywhere below it; cell 2's label is
        // mirrored in y by the call transform. Nested: cell 3 wraps
        // cell 2, composing transforms.
        let lib = Library::from_cif_text(
            "DS 1; L ND; B 10 10 0 0; DF;
             DS 2; L NM; B 10 10 0 0; 94 deep 3 4; DF;
             DS 3; C 2 M Y T 0 100; DF;
             C 1 T 0 0; C 3 T 1000 0; E",
        )
        .unwrap();
        let mut feed = LazyFeed::new(&lib);
        let mut labels = Vec::new();
        feed.drain_new_labels(&mut labels);
        assert_eq!(labels.len(), 1);
        assert_eq!(labels[0].name, "deep");
        // M Y flips y: (3, 4) → (3, -4); then T 0 100 → (3, 96);
        // then top-level T 1000 0 → (1003, 96).
        assert_eq!(labels[0].at, ace_geom::Point::new(1003, 96));
        assert_eq!(feed.stats().instances_expanded, 0);
    }

    #[test]
    fn eager_feed_counts_boxes() {
        let lib = Library::from_cif_text(SRC).unwrap();
        let mut feed = EagerFeed::new(&lib);
        let n = drain_all(&mut feed).len() as u64;
        assert_eq!(feed.stats().boxes_emitted, n);
        assert_eq!(feed.stats().max_pending as u64, n);
    }

    #[test]
    fn layers_are_preserved() {
        let lib = Library::from_cif_text(SRC).unwrap();
        let mut feed = LazyFeed::new(&lib);
        let all = drain_all(&mut feed);
        assert!(all.iter().any(|b| b.layer == Layer::Diffusion));
        assert!(all.iter().any(|b| b.layer == Layer::Poly));
        assert!(all.iter().any(|b| b.layer == Layer::Metal));
    }

    #[test]
    fn empty_library_feeds_nothing() {
        let lib = Library::from_cif_text("E").unwrap();
        let mut feed = LazyFeed::new(&lib);
        assert_eq!(feed.peek_top(), None);
        let mut eager = EagerFeed::new(&lib);
        assert_eq!(eager.peek_top(), None);
    }
}
