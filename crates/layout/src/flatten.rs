use ace_geom::{Coord, Layer, Point, Rect, Transform};

use crate::database::{CellId, Library};

/// One fully-instantiated box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerBox {
    /// Mask layer.
    pub layer: Layer,
    /// Absolute chip coordinates.
    pub rect: Rect,
}

/// One fully-instantiated net label, in absolute coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatLabel {
    /// Signal name.
    pub name: String,
    /// Absolute position.
    pub at: Point,
    /// Optional layer restriction.
    pub layer: Option<Layer>,
}

/// A fully-instantiated (flat) layout: every box and label of the
/// chip in absolute coordinates.
///
/// This is the representation the raster baselines and the eager
/// front-end work from. For large regular chips it is much bigger
/// than the hierarchical [`Library`] — that asymmetry is the whole
/// point of the HEXT paper.
///
/// # Examples
///
/// ```
/// use ace_layout::{FlatLayout, Library};
///
/// let lib = Library::from_cif_text("
///     DS 1; L ND; B 400 400 0 0; DF;
///     C 1 T 0 0; C 1 T 1000 0; E
/// ")?;
/// let flat = FlatLayout::from_library(&lib);
/// assert_eq!(flat.boxes().len(), 2);
/// # Ok::<(), ace_layout::BuildLayoutError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlatLayout {
    boxes: Vec<LayerBox>,
    labels: Vec<FlatLabel>,
}

impl FlatLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        FlatLayout::default()
    }

    /// Fully instantiates a library's top cell.
    pub fn from_library(lib: &Library) -> FlatLayout {
        FlatLayout::from_cell(lib, lib.top())
    }

    /// Fully instantiates one cell of a library.
    pub fn from_cell(lib: &Library, cell: CellId) -> FlatLayout {
        let mut flat = FlatLayout::new();
        // Iterative DFS over (cell, transform) placements.
        let mut stack = vec![(cell, Transform::identity())];
        while let Some((id, t)) = stack.pop() {
            let c = lib.cell(id);
            for &(layer, r) in c.boxes() {
                flat.boxes.push(LayerBox {
                    layer,
                    rect: t.apply_rect(&r),
                });
            }
            for label in c.labels() {
                flat.labels.push(FlatLabel {
                    name: label.name.clone(),
                    at: t.apply_point(label.at),
                    layer: label.layer,
                });
            }
            for inst in c.instances() {
                stack.push((inst.cell, inst.transform.then(t)));
            }
        }
        flat
    }

    /// The instantiated boxes.
    pub fn boxes(&self) -> &[LayerBox] {
        &self.boxes
    }

    /// The instantiated labels.
    pub fn labels(&self) -> &[FlatLabel] {
        &self.labels
    }

    /// Adds one box.
    pub fn push_box(&mut self, layer: Layer, rect: Rect) {
        self.boxes.push(LayerBox { layer, rect });
    }

    /// Adds one label.
    pub fn push_label(&mut self, name: impl Into<String>, at: Point, layer: Option<Layer>) {
        self.labels.push(FlatLabel {
            name: name.into(),
            at,
            layer,
        });
    }

    /// Removes one box equal to `(layer, rect)`; returns whether a
    /// match existed. Duplicates are a multiset: one call removes one
    /// copy. Box order is not preserved (callers that need scan order
    /// re-sort with [`sort_for_scan`](Self::sort_for_scan)).
    pub fn remove_box(&mut self, layer: Layer, rect: Rect) -> bool {
        match self
            .boxes
            .iter()
            .position(|b| b.layer == layer && b.rect == rect)
        {
            Some(i) => {
                self.boxes.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Removes one label equal to `(name, at, layer)`; returns whether
    /// a match existed. Like [`remove_box`](Self::remove_box), one
    /// call removes one copy of a duplicated label.
    pub fn remove_label(&mut self, name: &str, at: Point, layer: Option<Layer>) -> bool {
        match self
            .labels
            .iter()
            .position(|l| l.name == name && l.at == at && l.layer == layer)
        {
            Some(i) => {
                self.labels.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Removes every entry of `remove` (as a multiset) in one pass —
    /// O(layout + remove), where repeated [`remove_box`](Self::remove_box)
    /// calls would be O(layout × remove). Returns the first entry
    /// that had no match, if any — matched entries are removed even
    /// then. Box order is not preserved.
    pub fn remove_boxes_bulk(&mut self, remove: &[LayerBox]) -> Option<LayerBox> {
        use std::collections::HashMap;
        if remove.is_empty() {
            return None;
        }
        let mut want: HashMap<(Layer, Rect), usize> = HashMap::new();
        let (mut y_lo, mut y_hi) = (Coord::MAX, Coord::MIN);
        for b in remove {
            y_lo = y_lo.min(b.rect.y_min);
            y_hi = y_hi.max(b.rect.y_max);
            *want.entry((b.layer, b.rect)).or_insert(0) += 1;
        }
        self.boxes.retain(|b| {
            // A match equals a removal entry exactly, so anything
            // outside the removal set's y-extent keeps without the
            // hash lookup — the dominant cost when a small diff hits
            // a large layout.
            if b.rect.y_min < y_lo || b.rect.y_max > y_hi {
                return true;
            }
            match want.get_mut(&(b.layer, b.rect)) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    false
                }
                _ => true,
            }
        });
        remove
            .iter()
            .find(|b| want.get(&(b.layer, b.rect)).is_some_and(|n| *n > 0))
            .copied()
    }

    /// Label counterpart of [`remove_boxes_bulk`](Self::remove_boxes_bulk).
    pub fn remove_labels_bulk(&mut self, remove: &[FlatLabel]) -> Option<FlatLabel> {
        use std::collections::HashMap;
        if remove.is_empty() {
            return None;
        }
        let mut want: HashMap<&str, HashMap<(Point, Option<Layer>), usize>> = HashMap::new();
        let (mut y_lo, mut y_hi) = (Coord::MAX, Coord::MIN);
        for l in remove {
            y_lo = y_lo.min(l.at.y);
            y_hi = y_hi.max(l.at.y);
            *want
                .entry(l.name.as_str())
                .or_default()
                .entry((l.at, l.layer))
                .or_insert(0) += 1;
        }
        let mut kept = Vec::with_capacity(self.labels.len());
        for l in self.labels.drain(..) {
            if l.at.y < y_lo || l.at.y > y_hi {
                kept.push(l);
                continue;
            }
            let hit = want
                .get_mut(l.name.as_str())
                .and_then(|m| m.get_mut(&(l.at, l.layer)))
                .filter(|n| **n > 0);
            match hit {
                Some(n) => *n -= 1,
                None => kept.push(l),
            }
        }
        self.labels = kept;
        remove
            .iter()
            .find(|l| {
                want.get(l.name.as_str())
                    .and_then(|m| m.get(&(l.at, l.layer)))
                    .is_some_and(|n| *n > 0)
            })
            .cloned()
    }

    /// Bounding box of all boxes (labels excluded).
    pub fn bounding_box(&self) -> Option<Rect> {
        let mut it = self.boxes.iter();
        let first = it.next()?.rect;
        Some(it.fold(first, |acc, b| acc.bounding_union(&b.rect)))
    }

    /// Sorts boxes by descending top edge (the front-end's output
    /// order), breaking ties by ascending x.
    pub fn sort_for_scan(&mut self) {
        self.boxes.sort_unstable_by(|a, b| {
            b.rect
                .y_max
                .cmp(&a.rect.y_max)
                .then(a.rect.x_min.cmp(&b.rect.x_min))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Library;

    #[test]
    fn flattening_applies_nested_transforms() {
        let lib = Library::from_cif_text(
            "DS 1; L ND; B 100 100 50 50; DF;
             DS 2; C 1 T 1000 0; DF;
             C 2 T 0 2000; E",
        )
        .unwrap();
        let flat = FlatLayout::from_library(&lib);
        assert_eq!(flat.boxes().len(), 1);
        assert_eq!(flat.boxes()[0].rect, Rect::new(1000, 2000, 1100, 2100));
    }

    #[test]
    fn flattening_transforms_labels() {
        let lib = Library::from_cif_text(
            "DS 1; 94 out 10 10 NP; DF;
             C 1 T 500 500; C 1 T 900 900; E",
        )
        .unwrap();
        let flat = FlatLayout::from_library(&lib);
        let mut positions: Vec<Point> = flat.labels().iter().map(|l| l.at).collect();
        positions.sort();
        assert_eq!(positions, vec![Point::new(510, 510), Point::new(910, 910)]);
    }

    #[test]
    fn mirror_transform_flattens_correctly() {
        let lib = Library::from_cif_text(
            "DS 1; L NP; B 100 100 100 0; DF;
             C 1 M X; E",
        )
        .unwrap();
        let flat = FlatLayout::from_library(&lib);
        // Box [50,-50;150,50] mirrored in x → [-150,-50;-50,50].
        assert_eq!(flat.boxes()[0].rect, Rect::new(-150, -50, -50, 50));
    }

    #[test]
    fn sort_for_scan_orders_by_descending_top() {
        let lib =
            Library::from_cif_text("L ND; B 10 10 0 0; B 10 10 0 100; B 10 10 50 100; E").unwrap();
        let mut flat = FlatLayout::from_library(&lib);
        flat.sort_for_scan();
        let tops: Vec<i64> = flat.boxes().iter().map(|b| b.rect.y_max).collect();
        assert_eq!(tops, vec![105, 105, 5]);
        assert!(flat.boxes()[0].rect.x_min < flat.boxes()[1].rect.x_min);
    }

    #[test]
    fn counts_match_library_arithmetic() {
        let lib = Library::from_cif_text(
            "DS 1; L ND; B 4 4 0 0; B 4 4 10 0; DF;
             DS 2; C 1 T 0 0; C 1 T 100 0; C 1 T 200 0; DF;
             C 2; C 2 T 0 100; E",
        )
        .unwrap();
        let flat = FlatLayout::from_library(&lib);
        assert_eq!(flat.boxes().len() as u64, lib.instantiated_box_count());
        assert_eq!(flat.boxes().len(), 12);
    }
}
