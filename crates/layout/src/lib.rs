//! Hierarchical layout database and the ACE *front-end*.
//!
//! "The front-end consists of routines which parse, instantiate and
//! sort the CIF file. The front-end builds an internal database so
//! that geometry can be output in order from top to bottom. Before
//! being output, non-manhattan geometry is split into a number of
//! small aligned boxes that approximate the original object."
//! (paper §3.)
//!
//! The pieces:
//!
//! * [`Library`] / [`Cell`] — the internal database built from a
//!   parsed CIF file: per-cell fractured boxes, labels, and child
//!   instances, with bounding boxes computed bottom-up.
//! * [`LazyFeed`] — the paper's front-end proper. It yields boxes
//!   sorted by descending top edge *without ever instantiating the
//!   whole chip*: a symbol instance is expanded only when the
//!   scanline reaches the top of its bounding box ("recursively
//!   expands only those cells that intersect the current scanline",
//!   §4).
//! * [`EagerFeed`] — the ablation baseline: flatten everything first,
//!   sort once, then feed.
//! * [`FlatLayout`] — a fully-instantiated box list, used by the
//!   raster baselines and the tests.
//! * [`LayoutDiff`] — multiset deltas between flat layouts (boxes and
//!   labels added/removed), the edit vocabulary `ace_core`'s
//!   incremental extractor consumes.
//! * [`probe`] — the [`Probe`] trait the whole pipeline reports
//!   through; the feeds emit box/expansion counters on it.
//!
//! # Examples
//!
//! ```
//! use ace_layout::{GeometryFeed, LazyFeed, Library};
//!
//! let lib = Library::from_cif_text("
//!     DS 1; L ND; B 400 1600 0 0; DF;
//!     C 1 T 0 0; C 1 T 1000 0;
//!     E
//! ")?;
//! let mut feed = LazyFeed::new(&lib);
//! let mut out = Vec::new();
//! let y = feed.peek_top().expect("geometry present");
//! feed.pop_at(y, &mut out);
//! assert_eq!(out.len(), 2); // both instances top out at the same y
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod bands;
mod database;
mod diff;
mod error;
mod feed;
mod flatten;
pub mod probe;

pub use bands::{band_cuts, partition_bands, route_box, route_label, BandPartition};
pub use database::{Cell, CellId, Instance, LabelDef, Library};
pub use diff::{DiffError, LayoutDiff};
pub use error::BuildLayoutError;
pub use feed::{EagerFeed, FeedStats, GeometryFeed, LazyFeed};
pub use flatten::{FlatLabel, FlatLayout, LayerBox};
pub use probe::{Counter, Lane, NullProbe, Probe, Span};
