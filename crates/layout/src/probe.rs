//! The observability layer's core: a [`Probe`] receives span
//! enter/exit events and monotonic counter events from every stage of
//! the extraction pipeline — the geometry feeds here in `ace-layout`,
//! the scanline sweep and band stitcher in `ace-core`, the
//! window/compose pipeline in `ace-hext`, and the raster baselines in
//! `ace-raster`.
//!
//! The trait lives in this crate (the lowest layer that emits events)
//! so the feeds can report without depending on the extractor; the
//! sinks that aggregate events into reports live in
//! `ace_core::probe`, which re-exports everything here.
//!
//! Probes take `&self` and must be [`Sync`]: one probe instance is
//! shared by every band worker of a parallel extraction, each tagging
//! its events with its own [`Lane`]. Implementations that record
//! state use interior mutability. [`NullProbe`] is the zero-cost
//! default — every method is an empty default body, so an
//! uninstrumented extraction pays only a devirtualized no-op call.
//!
//! Probes that need timing measure it themselves (e.g. capture
//! `Instant::now()` in `enter`/`exit`); the emitting code never
//! touches the clock on the null path.

use std::fmt;

/// The execution lane an event belongs to: the main thread, or one
/// band worker of a parallel extraction.
///
/// Lanes map 1:1 onto threads today (band *i* runs on its own worker)
/// and become the `tid` of Chrome-trace output, giving one track per
/// band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lane(pub u32);

impl Lane {
    /// The main (sequential) lane.
    pub const MAIN: Lane = Lane(0);

    /// The lane of band `index` (0 = bottom band).
    pub fn band(index: usize) -> Lane {
        Lane(index as u32 + 1)
    }

    /// The band index behind this lane, or `None` for the main lane.
    pub fn band_index(self) -> Option<usize> {
        (self.0 > 0).then(|| self.0 as usize - 1)
    }
}

impl fmt::Display for Lane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.band_index() {
            None => f.write_str("main"),
            Some(i) => write!(f, "band {i}"),
        }
    }
}

/// A nested region of work, bracketed by [`Probe::enter`] and
/// [`Probe::exit`].
///
/// The four sweep phases ([`Span::FrontEnd`] … [`Span::Output`])
/// reproduce the paper's §5 time distribution; the rest bracket the
/// pipeline stages around them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Span {
    /// One whole extraction run (entered once per lane).
    Extract,
    /// Parsing/instantiating/sorting inside the geometry feed (§5
    /// "parsing, interpreting and sorting the CIF file").
    FrontEnd,
    /// Entering new geometry into the active lists.
    Insert,
    /// Computing devices, nets, and contacts over a strip.
    Devices,
    /// Storage allocation, output construction, initialization.
    Output,
    /// One band worker's whole sweep (parallel extraction).
    Band,
    /// Stitching band seams back into one circuit.
    Stitch,
    /// One HEXT window's primitive extraction.
    Window,
    /// One HEXT compose of two adjacent windows.
    Compose,
    /// One raster-baseline grid scan.
    Raster,
}

impl Span {
    /// All spans, in declaration order.
    pub const ALL: [Span; 10] = [
        Span::Extract,
        Span::FrontEnd,
        Span::Insert,
        Span::Devices,
        Span::Output,
        Span::Band,
        Span::Stitch,
        Span::Window,
        Span::Compose,
        Span::Raster,
    ];

    /// Stable kebab-case name (used as the Chrome-trace event name).
    pub const fn name(self) -> &'static str {
        match self {
            Span::Extract => "extract",
            Span::FrontEnd => "front-end",
            Span::Insert => "insert-geometry",
            Span::Devices => "compute-devices",
            Span::Output => "output",
            Span::Band => "band-sweep",
            Span::Stitch => "stitch",
            Span::Window => "window",
            Span::Compose => "compose",
            Span::Raster => "raster-scan",
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A monotonic quantity reported through [`Probe::add`] (a running
/// total) or [`Probe::gauge`] (a high-water mark).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    // -- scanline sweep --
    /// Boxes received from the front-end (the paper's N).
    Boxes,
    /// Scanline stops made.
    ScanlineStops,
    /// Fragments created across all strips.
    Fragments,
    /// Net union operations performed.
    NetUnions,
    /// Labels that did not land on conducting geometry.
    UnresolvedLabels,
    /// Devices whose channel touched more than two diffusion nets.
    MultiTerminalDevices,
    /// High-water mark of the total active-list length (gauge).
    MaxActive,
    // -- band stitcher --
    /// Boundary contacts collected on all interior seams.
    SeamContacts,
    /// Contact pairs with positive overlap examined across seams.
    PairsMatched,
    /// Net equivalences established across seams.
    SeamNetUnions,
    /// Channel-fragment pairs united into one device.
    DeviceMerges,
    /// Diffusion terminal contacts added to partial devices.
    TerminalContacts,
    /// Partial devices finalized after merging.
    PartialsCompleted,
    // -- work-stealing band scheduler --
    /// Bands run by a worker other than their chunk's owner.
    BandsStolen,
    /// Total nanoseconds workers spent finished while the slowest
    /// worker was still running.
    StealWaitNs,
    // -- incremental re-extraction cache --
    /// Bands answered from the incremental cache (hash unchanged).
    BandsReused,
    /// Bands re-swept because their content hash changed.
    BandsReswept,
    /// Estimated bytes held by the incremental band cache (gauge).
    CacheBytes,
    // -- geometry feeds --
    /// Boxes handed to the back-end by a feed.
    FeedBoxes,
    /// Symbol instances expanded (lazy feed).
    InstancesExpanded,
    /// High-water mark of the feed's pending queue (gauge).
    PendingPeak,
    // -- HEXT window/compose pipeline --
    /// Primitive windows extracted with the flat engine.
    FlatCalls,
    /// Windows answered from the content-keyed memo table.
    WindowCacheHits,
    /// Window pairs composed.
    ComposeCalls,
    /// Compositions answered from the memo table.
    ComposeCacheHits,
    // -- raster baselines --
    /// Grid rows scanned.
    RowsScanned,
    /// Runs visited (run-encoded scan).
    RunsVisited,
    /// Cells visited (full-grid scan).
    CellsVisited,
    // -- lint pass (ace_lint) --
    /// Diagnostics emitted by the ERC lint pass.
    LintsEmitted,
    /// Wall-clock nanoseconds spent in the lint pass.
    LintTimeNs,
}

impl Counter {
    /// Stable kebab-case name.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::Boxes => "boxes",
            Counter::ScanlineStops => "scanline-stops",
            Counter::Fragments => "fragments",
            Counter::NetUnions => "net-unions",
            Counter::UnresolvedLabels => "unresolved-labels",
            Counter::MultiTerminalDevices => "multi-terminal-devices",
            Counter::MaxActive => "max-active",
            Counter::SeamContacts => "seam-contacts",
            Counter::PairsMatched => "pairs-matched",
            Counter::SeamNetUnions => "seam-net-unions",
            Counter::DeviceMerges => "device-merges",
            Counter::TerminalContacts => "terminal-contacts",
            Counter::PartialsCompleted => "partials-completed",
            Counter::BandsStolen => "bands-stolen",
            Counter::StealWaitNs => "steal-wait-ns",
            Counter::BandsReused => "bands-reused",
            Counter::BandsReswept => "bands-reswept",
            Counter::CacheBytes => "cache-bytes",
            Counter::FeedBoxes => "feed-boxes",
            Counter::InstancesExpanded => "instances-expanded",
            Counter::PendingPeak => "pending-peak",
            Counter::FlatCalls => "flat-calls",
            Counter::WindowCacheHits => "window-cache-hits",
            Counter::ComposeCalls => "compose-calls",
            Counter::ComposeCacheHits => "compose-cache-hits",
            Counter::RowsScanned => "rows-scanned",
            Counter::RunsVisited => "runs-visited",
            Counter::CellsVisited => "cells-visited",
            Counter::LintsEmitted => "lints-emitted",
            Counter::LintTimeNs => "lint-time-ns",
        }
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Receiver for extraction events.
///
/// All methods default to no-ops, so a sink only implements what it
/// cares about; [`NullProbe`] implements nothing and costs nothing.
/// One probe instance may receive events from several threads at
/// once (one lane per band worker), hence `&self` receivers and the
/// [`Sync`] bound.
pub trait Probe: Sync {
    /// A span of work begins on `lane`.
    fn enter(&self, lane: Lane, span: Span) {
        let _ = (lane, span);
    }

    /// The innermost open `span` on `lane` ends.
    fn exit(&self, lane: Lane, span: Span) {
        let _ = (lane, span);
    }

    /// Adds `delta` to a running total.
    fn add(&self, lane: Lane, counter: Counter, delta: u64) {
        let _ = (lane, counter, delta);
    }

    /// Reports the current value of a high-water counter; sinks keep
    /// the maximum seen.
    fn gauge(&self, lane: Lane, counter: Counter, value: u64) {
        let _ = (lane, counter, value);
    }
}

/// The zero-cost default probe: every event is a no-op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {}

impl<P: Probe + ?Sized> Probe for &P {
    fn enter(&self, lane: Lane, span: Span) {
        (**self).enter(lane, span);
    }
    fn exit(&self, lane: Lane, span: Span) {
        (**self).exit(lane, span);
    }
    fn add(&self, lane: Lane, counter: Counter, delta: u64) {
        (**self).add(lane, counter, delta);
    }
    fn gauge(&self, lane: Lane, counter: Counter, value: u64) {
        (**self).gauge(lane, counter, value);
    }
}

/// A pair of probes fans every event out to both — the tee used to
/// observe an extraction with, say, a Chrome trace *and* a summary
/// table in one run.
impl<A: Probe, B: Probe> Probe for (A, B) {
    fn enter(&self, lane: Lane, span: Span) {
        self.0.enter(lane, span);
        self.1.enter(lane, span);
    }
    fn exit(&self, lane: Lane, span: Span) {
        self.0.exit(lane, span);
        self.1.exit(lane, span);
    }
    fn add(&self, lane: Lane, counter: Counter, delta: u64) {
        self.0.add(lane, counter, delta);
        self.1.add(lane, counter, delta);
    }
    fn gauge(&self, lane: Lane, counter: Counter, value: u64) {
        self.0.gauge(lane, counter, value);
        self.1.gauge(lane, counter, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Recorder {
        events: Mutex<Vec<String>>,
    }

    impl Probe for Recorder {
        fn enter(&self, lane: Lane, span: Span) {
            self.events.lock().unwrap().push(format!("{lane}>{span}"));
        }
        fn add(&self, _lane: Lane, counter: Counter, delta: u64) {
            self.events
                .lock()
                .unwrap()
                .push(format!("{counter}+{delta}"));
        }
    }

    #[test]
    fn null_probe_accepts_everything() {
        let p = NullProbe;
        p.enter(Lane::MAIN, Span::Extract);
        p.add(Lane::band(3), Counter::Boxes, 7);
        p.gauge(Lane::MAIN, Counter::MaxActive, 9);
        p.exit(Lane::MAIN, Span::Extract);
    }

    #[test]
    fn lanes_round_trip() {
        assert_eq!(Lane::MAIN.band_index(), None);
        assert_eq!(Lane::band(0).band_index(), Some(0));
        assert_eq!(Lane::band(5), Lane(6));
        assert_eq!(Lane::MAIN.to_string(), "main");
        assert_eq!(Lane::band(2).to_string(), "band 2");
    }

    #[test]
    fn pair_fans_out_to_both() {
        let a = Recorder::default();
        let b = Recorder::default();
        let tee = (&a, &b);
        tee.enter(Lane::MAIN, Span::Stitch);
        tee.add(Lane::MAIN, Counter::SeamContacts, 2);
        // Default no-op methods still dispatch without effect.
        tee.exit(Lane::MAIN, Span::Stitch);
        for r in [&a, &b] {
            let events = r.events.lock().unwrap();
            assert_eq!(*events, vec!["main>stitch", "seam-contacts+2"]);
        }
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let names: std::collections::BTreeSet<&str> = Span::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), Span::ALL.len());
    }
}
