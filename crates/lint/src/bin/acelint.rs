//! `acelint` — ERC lint for CIF layouts.
//!
//! Extracts each input with the flat reference backend, runs the
//! [`ace_lint`] rule registry, and reports diagnostics as text or
//! SARIF 2.1.0. Also maintains the golden lint snapshots CI checks:
//!
//! ```text
//! acelint chip.cif                              # text diagnostics
//! acelint chip.cif --format sarif > chip.sarif  # SARIF 2.1.0 log
//! acelint corpus/*.cif --snapshot lints.txt     # compare to golden
//! acelint corpus/*.cif --record-snapshot lints.txt
//! ```
//!
//! Exit status: 0 when clean (or only notes/warnings), 1 when any
//! error-severity diagnostic fires or a snapshot comparison fails,
//! 2 on usage, I/O, or CIF parse errors.

use std::path::Path;
use std::process::ExitCode;

use ace_core::ExtractOptions;
use ace_layout::{Library, NullProbe};
use ace_lint::emit::{check_snapshot, merge_snapshot, parse_snapshot};
use ace_lint::{
    extract_library_linted, sarif_report, Diagnostic, LintConfig, RuleId, SarifCase, Severity,
};

const USAGE: &str = "\
usage: acelint FILE... [OPTIONS]

Extracts each CIF file and runs the ERC rule registry over the result.

options:
    --format text|sarif      output format (default: text)
    --allow RULE             disable a rule (repeatable)
    --warn RULE              set a rule's severity to warning (repeatable)
    --deny RULE              set a rule's severity to error (repeatable)
    --min-dim N              minimum channel W/L in centimicrons (default: 500)
    --snapshot FILE          compare diagnostics against a golden snapshot
    --record-snapshot FILE   write (merge) diagnostics into a snapshot
    --quiet                  only print the summary line
    --list-rules             print the rule registry and exit
    -h, --help               print this help

exit status: 0 clean or warnings only; 1 errors or snapshot mismatch;
2 usage, I/O, or parse failure.
";

enum Format {
    Text,
    Sarif,
}

struct Args {
    files: Vec<String>,
    format: Format,
    config: LintConfig,
    snapshot: Option<String>,
    record_snapshot: Option<String>,
    quiet: bool,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = std::env::args().skip(1);
    let mut files = Vec::new();
    let mut format = Format::Text;
    let mut config = LintConfig::new();
    let mut snapshot = None;
    let mut record_snapshot = None;
    let mut quiet = false;
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or(format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(None);
            }
            "--list-rules" => {
                for rule in RuleId::ALL {
                    println!(
                        "{:<20} {:<8} {}",
                        rule.name(),
                        rule.default_severity().name(),
                        rule.short_description()
                    );
                }
                return Ok(None);
            }
            "--format" => {
                format = match need(&mut args, "--format")?.as_str() {
                    "text" => Format::Text,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--allow" | "--warn" | "--deny" => {
                let name = need(&mut args, &arg)?;
                let rule = RuleId::from_name(&name)
                    .ok_or(format!("unknown rule `{name}` (try --list-rules)"))?;
                config = match arg.as_str() {
                    "--allow" => config.allow(rule),
                    "--warn" => config.warn(rule),
                    _ => config.deny(rule),
                };
            }
            "--min-dim" => {
                let value = need(&mut args, "--min-dim")?;
                let dim = value
                    .parse()
                    .map_err(|_| format!("--min-dim needs an integer, got `{value}`"))?;
                config = config.with_min_channel_dim(dim);
            }
            "--snapshot" => snapshot = Some(need(&mut args, "--snapshot")?),
            "--record-snapshot" => record_snapshot = Some(need(&mut args, "--record-snapshot")?),
            "--quiet" => quiet = true,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return Err("no input files".into());
    }
    Ok(Some(Args {
        files,
        format,
        config,
        snapshot,
        record_snapshot,
        quiet,
    }))
}

/// One linted input file.
struct Case {
    /// Snapshot section key: the file stem.
    stem: String,
    /// As given on the command line; the SARIF artifact URI.
    uri: String,
    source: String,
    diagnostics: Vec<Diagnostic>,
}

fn lint_file(path: &str, config: &LintConfig) -> Result<Case, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lib = Library::from_cif_text(&source).map_err(|e| format!("{path}: {e}"))?;
    let stem = Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    let linted = extract_library_linted(
        &lib,
        &stem,
        ExtractOptions::default().with_lints(),
        config,
        &NullProbe,
    )
    .map_err(|e| format!("{path}: {e}"))?;
    Ok(Case {
        stem,
        uri: path.to_string(),
        source,
        diagnostics: linted.diagnostics,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("acelint: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut cases = Vec::new();
    for file in &args.files {
        match lint_file(file, &args.config) {
            Ok(case) => cases.push(case),
            Err(msg) => {
                eprintln!("acelint: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = &args.record_snapshot {
        let existing = std::fs::read_to_string(path).unwrap_or_default();
        let updates: Vec<(String, Vec<Diagnostic>)> = cases
            .iter()
            .map(|c| (c.stem.clone(), c.diagnostics.clone()))
            .collect();
        let merged = merge_snapshot(&existing, &updates);
        if let Err(e) = std::fs::write(path, merged) {
            eprintln!("acelint: {path}: {e}");
            return ExitCode::from(2);
        }
        println!("recorded {} section(s) into {path}", cases.len());
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.snapshot {
        let stored = match std::fs::read_to_string(path) {
            Ok(text) => parse_snapshot(&text),
            Err(e) => {
                eprintln!("acelint: {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let mut mismatches = 0usize;
        for case in &cases {
            if let Err(msg) = check_snapshot(&stored, &case.stem, &case.diagnostics) {
                eprintln!("acelint: {msg}");
                mismatches += 1;
            }
        }
        if mismatches > 0 {
            eprintln!(
                "acelint: {mismatches} of {} file(s) diverge from {path}",
                cases.len()
            );
            return ExitCode::from(1);
        }
        println!("{} file(s) match {path}", cases.len());
        return ExitCode::SUCCESS;
    }

    match args.format {
        Format::Sarif => {
            let sarif_cases: Vec<SarifCase> = cases
                .iter()
                .map(|c| SarifCase {
                    uri: &c.uri,
                    source: Some(&c.source),
                    diagnostics: &c.diagnostics,
                })
                .collect();
            print!("{}", sarif_report(&sarif_cases));
        }
        Format::Text => {
            let mut errors = 0usize;
            let mut total = 0usize;
            for case in &cases {
                for diag in &case.diagnostics {
                    total += 1;
                    if diag.severity == Severity::Error {
                        errors += 1;
                    }
                    if !args.quiet {
                        println!("{}: {}", case.uri, diag.render());
                    }
                }
            }
            println!(
                "{total} diagnostic(s), {errors} error(s) in {} file(s)",
                cases.len()
            );
        }
    }

    let any_error = cases
        .iter()
        .flat_map(|c| &c.diagnostics)
        .any(|d| d.severity == Severity::Error);
    if any_error {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
