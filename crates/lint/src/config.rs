//! Per-rule enable/severity configuration.

use ace_geom::{Coord, LAMBDA};

use crate::diag::{RuleId, Severity, RULE_COUNT};

/// Configuration for a lint run: which rules fire, at what severity,
/// and the rule parameters (supply name sets, minimum channel
/// dimension).
///
/// The override vocabulary follows clippy/rustc: [`LintConfig::allow`]
/// disables a rule, [`LintConfig::warn`] and [`LintConfig::deny`]
/// re-enable it at the given severity.
///
/// # Examples
///
/// ```
/// use ace_lint::{LintConfig, RuleId, Severity};
///
/// let config = LintConfig::new()
///     .allow(RuleId::DepletionPullup)
///     .deny(RuleId::UndrivenNet);
/// assert!(!config.is_enabled(RuleId::DepletionPullup));
/// assert_eq!(config.severity_of(RuleId::UndrivenNet), Severity::Error);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    enabled: [bool; RULE_COUNT],
    severity: [Severity; RULE_COUNT],
    /// Net names recognised as power rails.
    pub vdd_names: Vec<String>,
    /// Net names recognised as ground rails.
    pub gnd_names: Vec<String>,
    /// Channel W/L below which `zero-wl-device` flags a transistor.
    /// Defaults to the Mead–Conway minimum feature size, `2λ`.
    pub min_channel_dim: Coord,
    /// `overloaded-net` threshold: the wire capacitance (aF) a net
    /// may carry per unit of total driver strength (Σ W/L over its
    /// channel-terminal devices) before the rule fires.
    pub overload_cap_af_per_drive: i64,
}

impl LintConfig {
    /// All rules enabled at their default severities.
    pub fn new() -> LintConfig {
        let mut severity = [Severity::Warning; RULE_COUNT];
        for rule in RuleId::ALL {
            severity[rule.index()] = rule.default_severity();
        }
        LintConfig {
            enabled: [true; RULE_COUNT],
            severity,
            vdd_names: ["VDD!", "VDD", "Vdd", "vdd", "POWER"]
                .map(String::from)
                .to_vec(),
            gnd_names: ["GND!", "GND", "Gnd", "gnd", "VSS!", "VSS"]
                .map(String::from)
                .to_vec(),
            min_channel_dim: 2 * LAMBDA,
            overload_cap_af_per_drive: 50_000,
        }
    }

    /// Disables `rule`.
    pub fn allow(mut self, rule: RuleId) -> LintConfig {
        self.enabled[rule.index()] = false;
        self
    }

    /// Enables `rule` at [`Severity::Warning`].
    pub fn warn(mut self, rule: RuleId) -> LintConfig {
        self.enabled[rule.index()] = true;
        self.severity[rule.index()] = Severity::Warning;
        self
    }

    /// Enables `rule` at [`Severity::Error`].
    pub fn deny(mut self, rule: RuleId) -> LintConfig {
        self.enabled[rule.index()] = true;
        self.severity[rule.index()] = Severity::Error;
        self
    }

    /// Sets the minimum channel dimension for `zero-wl-device`.
    pub fn with_min_channel_dim(mut self, dim: Coord) -> LintConfig {
        self.min_channel_dim = dim;
        self
    }

    /// Sets the `overloaded-net` capacitance-per-drive threshold.
    pub fn with_overload_threshold(mut self, af_per_drive: i64) -> LintConfig {
        self.overload_cap_af_per_drive = af_per_drive;
        self
    }

    /// Replaces the supply name sets for `supply-short`.
    pub fn with_supply_names(mut self, vdd: Vec<String>, gnd: Vec<String>) -> LintConfig {
        self.vdd_names = vdd;
        self.gnd_names = gnd;
        self
    }

    /// Whether `rule` is enabled.
    pub fn is_enabled(&self, rule: RuleId) -> bool {
        self.enabled[rule.index()]
    }

    /// The effective severity of `rule` (meaningful when enabled).
    pub fn severity_of(&self, rule: RuleId) -> Severity {
        self.severity[rule.index()]
    }

    /// Whether `name` is a power-rail name.
    pub fn is_vdd_name(&self, name: &str) -> bool {
        self.vdd_names.iter().any(|n| n == name)
    }

    /// Whether `name` is a ground-rail name.
    pub fn is_gnd_name(&self, name: &str) -> bool {
        self.gnd_names.iter().any(|n| n == name)
    }
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_rule_table() {
        let config = LintConfig::new();
        for rule in RuleId::ALL {
            assert!(config.is_enabled(rule), "{rule} should default on");
            assert_eq!(config.severity_of(rule), rule.default_severity());
        }
        assert_eq!(config.min_channel_dim, 500);
        assert!(config.is_vdd_name("VDD!"));
        assert!(config.is_gnd_name("VSS"));
        assert!(!config.is_vdd_name("OUT"));
    }

    #[test]
    fn overrides_compose() {
        let config = LintConfig::new()
            .allow(RuleId::DanglingCut)
            .deny(RuleId::ConflictingLabels)
            .warn(RuleId::FloatingGate)
            .with_min_channel_dim(0);
        assert!(!config.is_enabled(RuleId::DanglingCut));
        assert_eq!(
            config.severity_of(RuleId::ConflictingLabels),
            Severity::Error
        );
        assert_eq!(config.severity_of(RuleId::FloatingGate), Severity::Warning);
        assert_eq!(config.min_channel_dim, 0);
        // warn after allow re-enables.
        let config = config.warn(RuleId::DanglingCut);
        assert!(config.is_enabled(RuleId::DanglingCut));
    }
}
