//! The diagnostic model: rules, severities, spans, and ordering.
//!
//! A [`Diagnostic`] is deliberately *backend-stable*: it never embeds
//! a [`ace_wirelist::NetId`] or a net's representative location, both
//! of which depend on extraction order (flat vs. lazy vs. banded).
//! Spans anchor on things every backend agrees on — device channel
//! locations, layout label positions, and contact rectangles — so the
//! same chip yields the same diagnostic multiset no matter which
//! extractor produced the netlist.

use std::fmt;

use ace_geom::{Point, Rect};

/// Severity of a [`Diagnostic`].
///
/// The names mirror SARIF 2.1.0 `level` values, so [`Severity::name`]
/// can be emitted verbatim in both the text and SARIF renderers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational; never affects the CLI exit status.
    Note,
    /// Suspicious but not definitely wrong.
    Warning,
    /// Almost certainly a layout bug; makes `acelint` exit non-zero.
    Error,
}

impl Severity {
    /// The lowercase name (also the SARIF `level`).
    pub const fn name(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses a severity name as printed by [`Severity::name`].
    pub fn from_name(name: &str) -> Option<Severity> {
        match name {
            "note" => Some(Severity::Note),
            "warning" => Some(Severity::Warning),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The built-in ERC rules, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// A device gate on a net with no label and no source/drain
    /// connection anywhere: the gate can never be driven.
    FloatingGate,
    /// A single electrical net carrying both a power and a ground
    /// label (`VDD!` merged with `GND!`).
    SupplyShort,
    /// An unnamed net that reaches exactly one source/drain terminal
    /// and no gate: a dead-end stub that can neither drive nor load.
    UndrivenNet,
    /// A device whose channel is degenerate (zero W/L from
    /// zero-length terminal edges) or narrower than the minimum
    /// feature size.
    ZeroWlDevice,
    /// A contact cut overlapping fewer than two conducting layers, or
    /// a buried contact that does not bridge poly and diffusion.
    DanglingCut,
    /// A depletion-mode device whose gate is tied to neither terminal
    /// — not the standard NMOS pullup configuration.
    DepletionPullup,
    /// One label name attached to two or more distinct nets.
    ConflictingLabels,
    /// A net whose accumulated wire capacitance exceeds what its
    /// channel-terminal drivers can plausibly charge: more than
    /// [`crate::LintConfig::overload_cap_af_per_drive`] attofarads
    /// per unit of total driver W/L.
    OverloadedNet,
}

/// Number of built-in rules.
pub const RULE_COUNT: usize = 8;

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; RULE_COUNT] = [
        RuleId::FloatingGate,
        RuleId::SupplyShort,
        RuleId::UndrivenNet,
        RuleId::ZeroWlDevice,
        RuleId::DanglingCut,
        RuleId::DepletionPullup,
        RuleId::ConflictingLabels,
        RuleId::OverloadedNet,
    ];

    /// Dense index in `0..RULE_COUNT`.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The stable kebab-case rule id used in reports and on the CLI.
    pub const fn name(self) -> &'static str {
        match self {
            RuleId::FloatingGate => "floating-gate",
            RuleId::SupplyShort => "supply-short",
            RuleId::UndrivenNet => "undriven-net",
            RuleId::ZeroWlDevice => "zero-wl-device",
            RuleId::DanglingCut => "dangling-cut",
            RuleId::DepletionPullup => "depletion-pullup",
            RuleId::ConflictingLabels => "conflicting-labels",
            RuleId::OverloadedNet => "overloaded-net",
        }
    }

    /// Parses a rule id as printed by [`RuleId::name`].
    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }

    /// The severity a fresh [`crate::LintConfig`] assigns this rule.
    pub const fn default_severity(self) -> Severity {
        match self {
            RuleId::FloatingGate => Severity::Error,
            RuleId::SupplyShort => Severity::Error,
            RuleId::UndrivenNet => Severity::Warning,
            RuleId::ZeroWlDevice => Severity::Error,
            RuleId::DanglingCut => Severity::Warning,
            RuleId::DepletionPullup => Severity::Warning,
            RuleId::ConflictingLabels => Severity::Warning,
            RuleId::OverloadedNet => Severity::Warning,
        }
    }

    /// One-line rule summary (SARIF `shortDescription`).
    pub const fn short_description(self) -> &'static str {
        match self {
            RuleId::FloatingGate => {
                "device gate on an unlabeled net with no source/drain connection"
            }
            RuleId::SupplyShort => "power and ground labels merged onto one electrical net",
            RuleId::UndrivenNet => "unnamed net reaching only a single source/drain terminal",
            RuleId::ZeroWlDevice => "degenerate or sub-minimum channel dimensions",
            RuleId::DanglingCut => "contact that fails to bridge two layers",
            RuleId::DepletionPullup => "depletion device with gate tied to neither terminal",
            RuleId::ConflictingLabels => "one label name on two or more distinct nets",
            RuleId::OverloadedNet => "wire capacitance far beyond the attached drivers' strength",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a [`LintSpan`] points in the layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// A single position (device location, label position).
    At(Point),
    /// An area (a contact box).
    Area(Rect),
}

impl Anchor {
    /// A total order so diagnostic output is deterministic: points
    /// before areas, then lexicographic coordinates.
    pub fn sort_key(&self) -> (u8, i64, i64, i64, i64) {
        match *self {
            Anchor::At(p) => (0, p.x, p.y, p.x, p.y),
            Anchor::Area(r) => (1, r.x_min, r.y_min, r.x_max, r.y_max),
        }
    }
}

impl fmt::Display for Anchor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Anchor::At(p) => write!(f, "({}, {})", p.x, p.y),
            Anchor::Area(r) => write!(f, "({}, {})-({}, {})", r.x_min, r.y_min, r.x_max, r.y_max),
        }
    }
}

/// A labeled pointer into the layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintSpan {
    /// CIF coordinates the span points at.
    pub anchor: Anchor,
    /// What the anchor is ("gate of nEnh", "also 'X'", …).
    pub label: String,
    /// The net name involved, when there is one — lets the SARIF
    /// emitter recover the `94` label's source line via
    /// [`ace_cif::label_line`].
    pub name: Option<String>,
}

impl LintSpan {
    /// A span at a point with no associated net name.
    pub fn at(p: Point, label: impl Into<String>) -> LintSpan {
        LintSpan {
            anchor: Anchor::At(p),
            label: label.into(),
            name: None,
        }
    }

    /// A span covering a rectangle.
    pub fn area(r: Rect, label: impl Into<String>) -> LintSpan {
        LintSpan {
            anchor: Anchor::Area(r),
            label: label.into(),
            name: None,
        }
    }

    /// Attaches a net name for source-line recovery.
    pub fn named(mut self, name: impl Into<String>) -> LintSpan {
        self.name = Some(name.into());
        self
    }
}

/// One ERC finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: RuleId,
    /// Effective severity (after [`crate::LintConfig`] overrides).
    pub severity: Severity,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// The main span — what the finding is about.
    pub primary: LintSpan,
    /// Secondary spans (the other conflicting label, the ground half
    /// of a supply short, …).
    pub related: Vec<LintSpan>,
}

impl Diagnostic {
    /// Renders the canonical single-line text form, also used by the
    /// golden snapshots: `severity[rule] @ anchor: message`.
    pub fn render(&self) -> String {
        format!(
            "{}[{}] @ {}: {}",
            self.severity.name(),
            self.rule.name(),
            self.primary.anchor,
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Sorts diagnostics into the canonical report order: rule, then
/// primary anchor, then message. The order is independent of netlist
/// iteration order, which is what makes snapshots and cross-backend
/// comparison meaningful.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.rule.index(), a.primary.anchor.sort_key(), &a.message).cmp(&(
            b.rule.index(),
            b.primary.anchor.sort_key(),
            &b.message,
        ))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::from_name(rule.name()), Some(rule));
            assert_eq!(rule.index(), RuleId::ALL[rule.index()].index());
        }
        assert_eq!(RuleId::from_name("no-such-rule"), None);
    }

    #[test]
    fn severity_names_round_trip() {
        for sev in [Severity::Note, Severity::Warning, Severity::Error] {
            assert_eq!(Severity::from_name(sev.name()), Some(sev));
        }
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn render_is_stable() {
        let d = Diagnostic {
            rule: RuleId::FloatingGate,
            severity: Severity::Error,
            message: "floating gate".into(),
            primary: LintSpan::at(Point::new(250, -500), "gate"),
            related: vec![],
        };
        assert_eq!(
            d.render(),
            "error[floating-gate] @ (250, -500): floating gate"
        );
        let a = Diagnostic {
            rule: RuleId::DanglingCut,
            severity: Severity::Warning,
            message: "dangling".into(),
            primary: LintSpan::area(Rect::new(0, 0, 250, 250), "cut"),
            related: vec![],
        };
        assert_eq!(
            a.render(),
            "warning[dangling-cut] @ (0, 0)-(250, 250): dangling"
        );
    }

    #[test]
    fn sorting_is_rule_then_anchor_then_message() {
        let mk = |rule: RuleId, x: i64, msg: &str| Diagnostic {
            rule,
            severity: rule.default_severity(),
            message: msg.into(),
            primary: LintSpan::at(Point::new(x, 0), "x"),
            related: vec![],
        };
        let mut diags = vec![
            mk(RuleId::ConflictingLabels, 0, "b"),
            mk(RuleId::FloatingGate, 500, "a"),
            mk(RuleId::FloatingGate, 0, "z"),
            mk(RuleId::FloatingGate, 0, "a"),
        ];
        sort_diagnostics(&mut diags);
        let order: Vec<(&str, i64, &str)> = diags
            .iter()
            .map(|d| {
                let Anchor::At(p) = d.primary.anchor else {
                    unreachable!()
                };
                (d.rule.name(), p.x, d.message.as_str())
            })
            .collect();
        assert_eq!(
            order,
            vec![
                ("floating-gate", 0, "a"),
                ("floating-gate", 0, "z"),
                ("floating-gate", 500, "a"),
                ("conflicting-labels", 0, "b"),
            ]
        );
    }
}
