//! Text rendering and the golden-snapshot format.
//!
//! A snapshot file pins the expected diagnostics for a set of
//! layouts. The format is line-oriented so diffs read well in review:
//!
//! ```text
//! == leaf-nand-perturbed
//! error[zero-wl-device] @ (0, 750): sub-minimum channel: …
//! == labeled-mesh
//! (clean)
//! ```
//!
//! Sections are sorted by key; a clean section is recorded explicitly
//! with `(clean)` so "no diagnostics" is distinguishable from "never
//! linted".

use std::collections::BTreeMap;

use crate::diag::Diagnostic;

/// Marker line for a section with zero diagnostics.
pub const CLEAN_MARKER: &str = "(clean)";

/// Renders diagnostics one per line (callers sort via
/// [`crate::sort_diagnostics`]; [`crate::lint`] output already is).
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    out
}

/// The canonical snapshot lines for one section.
pub fn section_lines(diags: &[Diagnostic]) -> Vec<String> {
    if diags.is_empty() {
        vec![CLEAN_MARKER.to_string()]
    } else {
        diags.iter().map(Diagnostic::render).collect()
    }
}

/// Parses a snapshot file into `section key -> expected lines`.
///
/// Unknown leading text (before the first `== ` header) and blank
/// lines are ignored, so the file can carry a comment banner.
pub fn parse_snapshot(text: &str) -> BTreeMap<String, Vec<String>> {
    let mut sections: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        if let Some(key) = line.strip_prefix("== ") {
            let key = key.trim().to_string();
            sections.entry(key.clone()).or_default();
            current = Some(key);
        } else if let Some(key) = &current {
            let line = line.trim_end();
            if !line.is_empty() {
                sections
                    .get_mut(key)
                    .expect("section exists")
                    .push(line.to_string());
            }
        }
    }
    sections
}

/// Renders sections back into snapshot text, sorted by key.
pub fn render_snapshot(sections: &BTreeMap<String, Vec<String>>) -> String {
    let mut out = String::new();
    for (key, lines) in sections {
        out.push_str("== ");
        out.push_str(key);
        out.push('\n');
        if lines.is_empty() {
            out.push_str(CLEAN_MARKER);
            out.push('\n');
        } else {
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out
}

/// Merges freshly recorded sections into an existing snapshot,
/// replacing matching keys and keeping everything else.
pub fn merge_snapshot(existing: &str, updates: &[(String, Vec<Diagnostic>)]) -> String {
    let mut sections = parse_snapshot(existing);
    for (key, diags) in updates {
        sections.insert(key.clone(), section_lines(diags));
    }
    render_snapshot(&sections)
}

/// Checks `diags` against the stored section for `key`.
///
/// A missing section is a failure (run with `--record-snapshot` to
/// add it); stored sections for other keys are ignored, so one file
/// can cover a whole corpus while a run checks a subset.
pub fn check_snapshot(
    snapshot: &BTreeMap<String, Vec<String>>,
    key: &str,
    diags: &[Diagnostic],
) -> Result<(), String> {
    let Some(expected) = snapshot.get(key) else {
        return Err(format!("no snapshot section `== {key}` (record it first)"));
    };
    let got = section_lines(diags);
    // A stored section may or may not use the explicit clean marker.
    let expected_norm: Vec<&str> = if expected.is_empty() {
        vec![CLEAN_MARKER]
    } else {
        expected.iter().map(String::as_str).collect()
    };
    let got_norm: Vec<&str> = got.iter().map(String::as_str).collect();
    if expected_norm == got_norm {
        return Ok(());
    }
    let mut msg = format!("snapshot mismatch for `{key}`:\n");
    for line in &expected_norm {
        if !got_norm.contains(line) {
            msg.push_str(&format!("  - {line}\n"));
        }
    }
    for line in &got_norm {
        if !expected_norm.contains(line) {
            msg.push_str(&format!("  + {line}\n"));
        }
    }
    if msg.ends_with(":\n") {
        msg.push_str("  (same lines, different order)\n");
    }
    Err(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{LintSpan, RuleId, Severity};
    use ace_geom::Point;

    fn diag(msg: &str) -> Diagnostic {
        Diagnostic {
            rule: RuleId::FloatingGate,
            severity: Severity::Error,
            message: msg.into(),
            primary: LintSpan::at(Point::new(0, 0), "x"),
            related: vec![],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let updates = vec![
            ("b".to_string(), vec![diag("two")]),
            ("a".to_string(), vec![]),
        ];
        let text = merge_snapshot("", &updates);
        assert_eq!(
            text,
            "== a\n(clean)\n== b\nerror[floating-gate] @ (0, 0): two\n"
        );
        let parsed = parse_snapshot(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["a"], vec![CLEAN_MARKER.to_string()]);
        assert!(check_snapshot(&parsed, "a", &[]).is_ok());
        assert!(check_snapshot(&parsed, "b", &[diag("two")]).is_ok());
    }

    #[test]
    fn merge_preserves_unrelated_sections() {
        let base = "== keep\nerror[floating-gate] @ (0, 0): old\n";
        let text = merge_snapshot(base, &[("new".to_string(), vec![diag("fresh")])]);
        let parsed = parse_snapshot(&text);
        assert_eq!(parsed.len(), 2);
        assert!(check_snapshot(&parsed, "keep", &[diag("old")]).is_ok());
        assert!(check_snapshot(&parsed, "new", &[diag("fresh")]).is_ok());
    }

    #[test]
    fn mismatches_are_reported_with_diff_lines() {
        let parsed = parse_snapshot("== k\nerror[floating-gate] @ (0, 0): stored\n");
        let err = check_snapshot(&parsed, "k", &[diag("actual")]).unwrap_err();
        assert!(
            err.contains("- error[floating-gate] @ (0, 0): stored"),
            "{err}"
        );
        assert!(
            err.contains("+ error[floating-gate] @ (0, 0): actual"),
            "{err}"
        );
        let missing = check_snapshot(&parsed, "absent", &[]).unwrap_err();
        assert!(missing.contains("no snapshot section"), "{missing}");
    }

    #[test]
    fn render_text_is_one_line_per_diagnostic() {
        assert_eq!(render_text(&[]), "");
        let text = render_text(&[diag("a"), diag("b")]);
        assert_eq!(text.lines().count(), 2);
    }
}
