//! The rule engine: runs every enabled rule over an extracted
//! circuit plus its source layout.
//!
//! The entry points, from lowest to highest level:
//!
//! * [`lint`] — pure function from `(netlist, layout, config)` to a
//!   sorted diagnostic list.
//! * [`lint_extraction`] — the same, but timed and reported: bumps
//!   the [`Counter::LintsEmitted`] / [`Counter::LintTimeNs`] probe
//!   counters and folds both into the extraction's
//!   [`ace_core::ExtractionReport`].
//! * [`extract_library_linted`] / [`extract_text_linted`] — extract
//!   then lint in one call, honouring
//!   [`ace_core::ExtractOptions::lints`].

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use ace_core::{extract_library_probed, ExtractError, ExtractOptions, Extraction};
use ace_geom::{Layer, LayerMap, Point, Rect};
use ace_layout::probe::{Counter, Lane, Probe};
use ace_layout::{FlatLayout, Library, NullProbe};
use ace_wirelist::{DeviceDim, DeviceKind, Netlist};

use crate::config::LintConfig;
use crate::diag::{sort_diagnostics, Diagnostic, LintSpan, RuleId};

/// Everything the rules look at, precomputed once per run.
struct Ctx<'a> {
    netlist: &'a Netlist,
    layout: &'a FlatLayout,
    config: &'a LintConfig,
    /// Per-net count of gate terminals.
    gate_attach: Vec<u32>,
    /// Per-net count of source/drain terminals (a capacitor's merged
    /// terminal counts twice).
    sd_attach: Vec<u32>,
    /// Layout label positions per name, sorted and deduplicated —
    /// the backend-stable way to anchor a diagnostic on a net name.
    label_pos: BTreeMap<&'a str, Vec<Point>>,
}

impl<'a> Ctx<'a> {
    fn new(netlist: &'a Netlist, layout: &'a FlatLayout, config: &'a LintConfig) -> Ctx<'a> {
        let n = netlist.net_count();
        let mut gate_attach = vec![0u32; n];
        let mut sd_attach = vec![0u32; n];
        for d in netlist.devices() {
            gate_attach[d.gate.0 as usize] += 1;
            sd_attach[d.source.0 as usize] += 1;
            sd_attach[d.drain.0 as usize] += 1;
        }
        let mut label_pos: BTreeMap<&str, Vec<Point>> = BTreeMap::new();
        for label in layout.labels() {
            label_pos
                .entry(label.name.as_str())
                .or_default()
                .push(label.at);
        }
        for positions in label_pos.values_mut() {
            positions.sort_by_key(|p| (p.x, p.y));
            positions.dedup();
        }
        Ctx {
            netlist,
            layout,
            config,
            gate_attach,
            sd_attach,
            label_pos,
        }
    }

    /// The canonical (smallest) layout position of a label name.
    fn anchor_for(&self, name: &str) -> Point {
        self.label_pos
            .get(name)
            .and_then(|ps| ps.first().copied())
            .unwrap_or(Point::new(0, 0))
    }

    fn emit(
        &self,
        out: &mut Vec<Diagnostic>,
        rule: RuleId,
        message: String,
        primary: LintSpan,
        related: Vec<LintSpan>,
    ) {
        out.push(Diagnostic {
            rule,
            severity: self.config.severity_of(rule),
            message,
            primary,
            related,
        });
    }
}

/// Runs every enabled rule and returns the diagnostics in canonical
/// order (rule, then anchor, then message).
///
/// `layout` must be the flat instantiation of the same design the
/// netlist was extracted from; the geometric rules (`dangling-cut`)
/// and the label anchors read it directly.
///
/// The result is independent of box feed order, band count, and
/// backend: diagnostics anchor only on device locations, label
/// positions, and layout rectangles, never on [`ace_wirelist::NetId`]s.
///
/// # Examples
///
/// ```
/// use ace_layout::{FlatLayout, Library};
/// use ace_lint::{lint, LintConfig, RuleId};
///
/// // A transistor whose gate poly carries no label and connects to
/// // nothing else: the gate floats.
/// let lib = Library::from_cif_text("
///     L ND; B 500 2000 250 1000;
///     L NP; B 1500 500 750 1000;
///     94 A 250 250 ND; 94 B 250 1750 ND;
///     E
/// ")?;
/// let ex = ace_core::extract_library(&lib, "t", Default::default())?;
/// let diags = lint(&ex.netlist, &FlatLayout::from_library(&lib), &LintConfig::new());
/// assert_eq!(diags.len(), 1);
/// assert_eq!(diags[0].rule, RuleId::FloatingGate);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lint(netlist: &Netlist, layout: &FlatLayout, config: &LintConfig) -> Vec<Diagnostic> {
    let ctx = Ctx::new(netlist, layout, config);
    let mut out = Vec::new();
    for rule in RuleId::ALL {
        if !config.is_enabled(rule) {
            continue;
        }
        match rule {
            RuleId::FloatingGate => floating_gate(&ctx, &mut out),
            RuleId::SupplyShort => supply_short(&ctx, &mut out),
            RuleId::UndrivenNet => undriven_net(&ctx, &mut out),
            RuleId::ZeroWlDevice => zero_wl_device(&ctx, &mut out),
            RuleId::DanglingCut => dangling_cut(&ctx, &mut out),
            RuleId::DepletionPullup => depletion_pullup(&ctx, &mut out),
            RuleId::ConflictingLabels => conflicting_labels(&ctx, &mut out),
            RuleId::OverloadedNet => overloaded_net(&ctx, &mut out),
        }
    }
    sort_diagnostics(&mut out);
    out
}

fn floating_gate(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    for d in ctx.netlist.devices() {
        let gate = ctx.netlist.net(d.gate);
        if gate.names.is_empty() && ctx.sd_attach[d.gate.0 as usize] == 0 {
            ctx.emit(
                out,
                RuleId::FloatingGate,
                format!(
                    "floating gate: {} gate net has no label and no source/drain connection",
                    d.kind.part_name()
                ),
                LintSpan::at(d.location, format!("gate of {}", d.kind.part_name())),
                vec![],
            );
        }
    }
}

fn supply_short(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    for (_, net) in ctx.netlist.nets() {
        let mut vdd: Vec<&str> = net
            .names
            .iter()
            .map(String::as_str)
            .filter(|n| ctx.config.is_vdd_name(n))
            .collect();
        let mut gnd: Vec<&str> = net
            .names
            .iter()
            .map(String::as_str)
            .filter(|n| ctx.config.is_gnd_name(n))
            .collect();
        vdd.sort_unstable();
        gnd.sort_unstable();
        if let (Some(&v), Some(&g)) = (vdd.first(), gnd.first()) {
            ctx.emit(
                out,
                RuleId::SupplyShort,
                format!("supply short: labels '{v}' and '{g}' are on the same electrical net"),
                LintSpan::at(ctx.anchor_for(v), format!("'{v}' label here")).named(v),
                vec![LintSpan::at(ctx.anchor_for(g), format!("'{g}' label here")).named(g)],
            );
        }
    }
}

fn undriven_net(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    for (id, net) in ctx.netlist.nets() {
        let idx = id.0 as usize;
        if !net.names.is_empty() || ctx.gate_attach[idx] != 0 || ctx.sd_attach[idx] != 1 {
            continue;
        }
        // Exactly one terminal means exactly one device (a capacitor
        // would contribute two); anchor on it.
        let owner = ctx
            .netlist
            .devices()
            .iter()
            .filter(|d| d.source == id || d.drain == id)
            .min_by_key(|d| (d.location.x, d.location.y));
        if let Some(d) = owner {
            ctx.emit(
                out,
                RuleId::UndrivenNet,
                format!(
                    "undriven net: unnamed net reaches only one source/drain terminal of the {} here",
                    d.kind.part_name()
                ),
                LintSpan::at(d.location, "sole terminal"),
                vec![],
            );
        }
    }
}

fn zero_wl_device(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    let min = ctx.config.min_channel_dim;
    for d in ctx.netlist.devices() {
        match d.dim() {
            DeviceDim::Degenerate => ctx.emit(
                out,
                RuleId::ZeroWlDevice,
                format!(
                    "degenerate channel: {} has zero-length source/drain edges (W and L are undefined)",
                    d.kind.part_name()
                ),
                LintSpan::at(d.location, "channel"),
                vec![],
            ),
            DeviceDim::Channel { length, width }
                if d.kind != DeviceKind::Capacitor && (width < min || length < min) =>
            {
                ctx.emit(
                    out,
                    RuleId::ZeroWlDevice,
                    format!(
                        "sub-minimum channel: {} has W={width} L={length} (minimum feature is {min})",
                        d.kind.part_name()
                    ),
                    LintSpan::at(d.location, "channel"),
                    vec![],
                );
            }
            DeviceDim::Channel { .. } => {}
        }
    }
}

fn dangling_cut(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    // Index conducting geometry once; each contact then probes the
    // three lists. Overlap means *interior* intersection (half-open
    // rects), matching the extractor's connectivity semantics.
    let mut conducting: LayerMap<Vec<Rect>> = LayerMap::default();
    for b in ctx.layout.boxes() {
        if b.layer.is_conducting() {
            conducting[b.layer].push(b.rect);
        }
    }
    let touches = |layer: Layer, r: &Rect| conducting[layer].iter().any(|c| c.overlaps(r));
    for b in ctx.layout.boxes() {
        match b.layer {
            Layer::Cut => {
                let bridged = Layer::CONDUCTING
                    .iter()
                    .filter(|&&l| touches(l, &b.rect))
                    .count();
                if bridged < 2 {
                    ctx.emit(
                        out,
                        RuleId::DanglingCut,
                        format!(
                            "dangling cut: contact overlaps {bridged} conducting layer(s); a cut must bridge two"
                        ),
                        LintSpan::area(b.rect, "contact cut"),
                        vec![],
                    );
                }
            }
            Layer::Buried => {
                let poly = touches(Layer::Poly, &b.rect);
                let diff = touches(Layer::Diffusion, &b.rect);
                if !(poly && diff) {
                    let missing = match (poly, diff) {
                        (false, false) => "neither poly nor diffusion",
                        (true, false) => "poly but not diffusion",
                        (false, true) => "diffusion but not poly",
                        (true, true) => unreachable!(),
                    };
                    ctx.emit(
                        out,
                        RuleId::DanglingCut,
                        format!(
                            "dangling buried contact: overlaps {missing}; it must bridge poly and diffusion"
                        ),
                        LintSpan::area(b.rect, "buried contact"),
                        vec![],
                    );
                }
            }
            _ => {}
        }
    }
}

fn depletion_pullup(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    for d in ctx.netlist.devices() {
        if d.kind == DeviceKind::Depletion && d.gate != d.source && d.gate != d.drain {
            ctx.emit(
                out,
                RuleId::DepletionPullup,
                "depletion device is not gate-tied: the gate connects to neither source nor drain"
                    .to_string(),
                LintSpan::at(d.location, "depletion channel"),
                vec![],
            );
        }
    }
}

fn conflicting_labels(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    let mut by_name: BTreeMap<&str, BTreeSet<u32>> = BTreeMap::new();
    for (id, net) in ctx.netlist.nets() {
        for name in &net.names {
            by_name.entry(name.as_str()).or_default().insert(id.0);
        }
    }
    for (name, ids) in by_name {
        if ids.len() < 2 {
            continue;
        }
        let positions = ctx.label_pos.get(name).cloned().unwrap_or_default();
        let primary_at = positions.first().copied().unwrap_or(Point::new(0, 0));
        let related = positions
            .iter()
            .skip(1)
            .map(|&p| LintSpan::at(p, format!("also '{name}'")).named(name))
            .collect();
        ctx.emit(
            out,
            RuleId::ConflictingLabels,
            format!(
                "conflicting labels: '{name}' names {} distinct nets",
                ids.len()
            ),
            LintSpan::at(primary_at, format!("'{name}' label here")).named(name),
            related,
        );
    }
}

fn overloaded_net(ctx: &Ctx, out: &mut Vec<Diagnostic>) {
    use ace_wirelist::parasitics::{net_capacitance_af, ParasiticParams};

    let params = ParasiticParams::nmos();
    let threshold = ctx.config.overload_cap_af_per_drive;
    for (id, net) in ctx.netlist.nets() {
        // Supply rails are driven externally; their (large) wire load
        // is expected.
        if net
            .names
            .iter()
            .any(|n| ctx.config.is_vdd_name(n) || ctx.config.is_gnd_name(n))
        {
            continue;
        }
        let cap_af = net_capacitance_af(&net.parasitics, &params);
        if cap_af <= 0 {
            continue;
        }
        // Total drive strength in milli-(W/L) over channel-terminal
        // devices; anchor on the smallest-location driver, which is
        // backend-stable (never the NetId).
        let mut drive_milli: i64 = 0;
        let mut anchor: Option<Point> = None;
        for d in ctx.netlist.devices() {
            if d.kind == DeviceKind::Capacitor || (d.source != id && d.drain != id) {
                continue;
            }
            if d.length > 0 {
                drive_milli += d.width * 1000 / d.length;
            }
            if anchor.is_none_or(|p| (d.location.x, d.location.y) < (p.x, p.y)) {
                anchor = Some(d.location);
            }
        }
        let (Some(at), true) = (anchor, drive_milli > 0) else {
            continue;
        };
        if (cap_af as i128) * 1000 > (threshold as i128) * (drive_milli as i128) {
            ctx.emit(
                out,
                RuleId::OverloadedNet,
                format!(
                    "overloaded net: {cap_af} aF of wire load against total driver \
                     strength W/L = {}.{:03}",
                    drive_milli / 1000,
                    drive_milli % 1000
                ),
                LintSpan::at(at, "driver channel here"),
                vec![],
            );
        }
    }
}

/// An extraction bundled with the diagnostics its lint pass produced.
#[derive(Debug, Clone)]
pub struct Linted {
    /// The extraction (netlist + report + optional window interface).
    pub extraction: Extraction,
    /// Sorted ERC diagnostics; empty when linting was disabled.
    pub diagnostics: Vec<Diagnostic>,
}

/// Lints an existing extraction, timing the pass and recording it:
/// the probe receives [`Counter::LintsEmitted`] and
/// [`Counter::LintTimeNs`] on [`Lane::MAIN`], and the extraction's
/// report gains the same numbers in `lints_emitted` / `lint_time`.
pub fn lint_extraction(
    extraction: &mut Extraction,
    layout: &FlatLayout,
    config: &LintConfig,
    probe: &dyn Probe,
) -> Vec<Diagnostic> {
    let start = Instant::now();
    let diagnostics = lint(&extraction.netlist, layout, config);
    let elapsed = start.elapsed();
    probe.add(Lane::MAIN, Counter::LintsEmitted, diagnostics.len() as u64);
    probe.add(Lane::MAIN, Counter::LintTimeNs, elapsed.as_nanos() as u64);
    extraction.report.lints_emitted += diagnostics.len() as u64;
    extraction.report.lint_time += elapsed;
    diagnostics
}

/// Extracts `name` from `lib`, then lints when
/// [`ExtractOptions::lints`] is set (see
/// [`ExtractOptions::with_lints`]).
pub fn extract_library_linted(
    lib: &Library,
    name: &str,
    options: ExtractOptions,
    config: &LintConfig,
    probe: &dyn Probe,
) -> Result<Linted, ExtractError> {
    let mut extraction = extract_library_probed(lib, name, options, probe)?;
    let diagnostics = if options.lints {
        let layout = FlatLayout::from_library(lib);
        lint_extraction(&mut extraction, &layout, config, probe)
    } else {
        Vec::new()
    };
    Ok(Linted {
        extraction,
        diagnostics,
    })
}

/// [`extract_library_linted`] for CIF text.
pub fn extract_text_linted(
    src: &str,
    options: ExtractOptions,
    config: &LintConfig,
) -> Result<Linted, ExtractError> {
    let lib = Library::from_cif_text(src)?;
    extract_library_linted(&lib, "cif-text", options, config, &NullProbe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use ace_wirelist::Device;

    fn run(src: &str) -> Vec<Diagnostic> {
        run_with(src, &LintConfig::new())
    }

    fn run_with(src: &str, config: &LintConfig) -> Vec<Diagnostic> {
        let lib = Library::from_cif_text(src).expect("parse");
        let ex = ace_core::extract_library(&lib, "t", ExtractOptions::default()).expect("extract");
        lint(&ex.netlist, &FlatLayout::from_library(&lib), config)
    }

    /// One vertical-diffusion / horizontal-poly transistor with a
    /// 500x500 channel at (0, 750).
    const TRANSISTOR: &str = "L ND; B 500 2000 250 1000; L NP; B 1500 500 750 1000;";

    #[test]
    fn clean_transistor_is_quiet() {
        let diags = run(&format!(
            "{TRANSISTOR} 94 IN 1250 1000 NP; 94 A 250 250 ND; 94 B 250 1750 ND; E"
        ));
        assert_eq!(diags, vec![], "fully labeled transistor should be clean");
    }

    #[test]
    fn floating_gate_fires_on_unlabeled_unconnected_gate() {
        let diags = run(&format!(
            "{TRANSISTOR} 94 A 250 250 ND; 94 B 250 1750 ND; E"
        ));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::FloatingGate);
        assert_eq!(diags[0].severity, Severity::Error);
        // Anchor is the device's recorded channel location.
        assert_eq!(
            diags[0].render(),
            "error[floating-gate] @ (0, 1250): floating gate: nEnh gate net has no label and no source/drain connection"
        );
    }

    #[test]
    fn supply_short_fires_on_merged_rails() {
        let diags = run("L NM; B 2000 500 1000 250; 94 VDD! 250 250 NM; 94 GND! 1750 250 NM; E");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::SupplyShort);
        assert_eq!(
            diags[0].render(),
            "error[supply-short] @ (250, 250): supply short: labels 'VDD!' and 'GND!' are on the same electrical net"
        );
        assert_eq!(diags[0].related.len(), 1);
        assert_eq!(diags[0].primary.name.as_deref(), Some("VDD!"));
        assert_eq!(diags[0].related[0].name.as_deref(), Some("GND!"));
    }

    #[test]
    fn undriven_net_fires_on_unnamed_stub() {
        let diags = run(&format!(
            "{TRANSISTOR} 94 IN 1250 1000 NP; 94 OUT 250 1750 ND; E"
        ));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::UndrivenNet);
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn zero_wl_fires_on_sub_minimum_channel() {
        // 1λ-wide diffusion: W = 250 < 2λ = 500.
        let diags = run("L ND; B 250 2000 125 1000; L NP; B 1500 500 750 1000; \
             94 G 1250 1000 NP; 94 A 125 250 ND; 94 B 125 1750 ND; E");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::ZeroWlDevice);
        assert!(
            diags[0].message.contains("W=250 L=500"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn zero_wl_fires_on_degenerate_device() {
        // The extraction paths guard zero-length edges away, so build
        // the pathological device directly.
        let mut nl = Netlist::new();
        let g = nl.add_net();
        let s = nl.add_net();
        let d = nl.add_net();
        for (id, name) in [(g, "G"), (s, "S"), (d, "D")] {
            nl.add_name(id, name);
        }
        nl.add_device(Device {
            kind: DeviceKind::Enhancement,
            gate: g,
            source: s,
            drain: d,
            length: 0,
            width: 0,
            location: Point::new(1000, 2000),
            channel_geometry: vec![],
        });
        let diags = lint(&nl, &FlatLayout::new(), &LintConfig::new());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::ZeroWlDevice);
        assert!(diags[0].message.contains("degenerate channel"));
        assert_eq!(diags[0].primary.anchor.sort_key().1, 1000);
    }

    #[test]
    fn dangling_cut_fires_on_single_layer_contact() {
        let diags = run("L NM; B 1000 500 500 250; L NC; B 250 250 375 375; 94 M 875 250 NM; E");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::DanglingCut);
        assert_eq!(
            diags[0].render(),
            "warning[dangling-cut] @ (250, 250)-(500, 500): dangling cut: contact overlaps 1 conducting layer(s); a cut must bridge two"
        );
    }

    #[test]
    fn dangling_cut_fires_on_lopsided_buried_contact() {
        let diags = run("L NP; B 500 500 250 250; L NB; B 250 250 250 250; E");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::DanglingCut);
        assert!(
            diags[0].message.contains("poly but not diffusion"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn healthy_cut_is_quiet() {
        let diags = run("L NM; B 1000 500 500 250; L NP; B 1000 500 500 250; \
             L NC; B 250 250 375 375; 94 M 875 250 NM; E");
        assert_eq!(diags, vec![], "metal-to-poly cut should be clean");
    }

    #[test]
    fn depletion_pullup_fires_on_untied_gate() {
        let diags = run(&format!(
            "{TRANSISTOR} L NI; B 1000 1000 250 1000; \
             94 G 1250 1000 NP; 94 S 250 250 ND; 94 D 250 1750 ND; E"
        ));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::DepletionPullup);
    }

    #[test]
    fn conflicting_labels_fires_once_per_name() {
        let diags = run("L NM; B 500 500 250 250; B 500 500 1750 250; \
             94 X 250 250 NM; 94 X 1750 250 NM; E");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::ConflictingLabels);
        assert_eq!(
            diags[0].render(),
            "warning[conflicting-labels] @ (250, 250): conflicting labels: 'X' names 2 distinct nets"
        );
        assert_eq!(diags[0].related.len(), 1);
    }

    #[test]
    fn overloaded_net_fires_on_huge_wire_with_weak_driver() {
        // A minimum-size transistor whose drain runs into an enormous
        // metal plate (160λ x 160λ ≈ 0.8 pF): far beyond what a
        // W/L = 1 channel can charge.
        let src = "L ND; B 500 2000 250 1000; L NP; B 1500 500 750 1000; \
             L NC; B 250 250 250 1875; L NM; B 40000 40000 20250 21750; \
             94 G 1250 1000 NP; 94 S 250 250 ND; 94 OUT 250 1500 ND; E";
        let diags = run(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RuleId::OverloadedNet);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(
            diags[0].message.contains("W/L = 1.000"),
            "{}",
            diags[0].message
        );
        // Raising the threshold silences it.
        let quiet = run_with(src, &LintConfig::new().with_overload_threshold(i64::MAX));
        assert_eq!(quiet, vec![]);
    }

    #[test]
    fn modest_wiring_is_not_overloaded() {
        // The plain labeled transistor from `clean_transistor_is_quiet`
        // carries realistic wiring: no overload at the default
        // threshold.
        let diags = run(&format!(
            "{TRANSISTOR} 94 IN 1250 1000 NP; 94 A 250 250 ND; 94 B 250 1750 ND; E"
        ));
        assert_eq!(diags, vec![]);
    }

    #[test]
    fn allow_disables_and_deny_escalates() {
        let src = format!("{TRANSISTOR} 94 A 250 250 ND; 94 B 250 1750 ND; E");
        let off = run_with(&src, &LintConfig::new().allow(RuleId::FloatingGate));
        assert_eq!(off, vec![]);
        let src = format!("{TRANSISTOR} 94 IN 1250 1000 NP; 94 OUT 250 1750 ND; E");
        let deny = run_with(&src, &LintConfig::new().deny(RuleId::UndrivenNet));
        assert_eq!(deny.len(), 1);
        assert_eq!(deny[0].severity, Severity::Error);
    }

    #[test]
    fn lint_is_insensitive_to_pruning() {
        // A layout with an isolated unlabeled metal scrap: pruning
        // removes its net, diagnostics must not change.
        let src =
            format!("{TRANSISTOR} L NM; B 250 250 5000 5000; 94 A 250 250 ND; 94 B 250 1750 ND; E");
        let lib = Library::from_cif_text(&src).unwrap();
        let ex = ace_core::extract_library(&lib, "t", ExtractOptions::default()).unwrap();
        let layout = FlatLayout::from_library(&lib);
        let before = lint(&ex.netlist, &layout, &LintConfig::new());
        let mut pruned = ex.netlist.clone();
        pruned.prune_floating_nets();
        let after = lint(&pruned, &layout, &LintConfig::new());
        assert_eq!(before, after);
        assert_eq!(before.len(), 1, "{before:?}");
        assert_eq!(before[0].rule, RuleId::FloatingGate);
    }

    #[test]
    fn lint_extraction_times_and_counts() {
        let src = format!("{TRANSISTOR} 94 A 250 250 ND; 94 B 250 1750 ND; E");
        let linted = extract_text_linted(
            &src,
            ExtractOptions::default().with_lints(),
            &LintConfig::new(),
        )
        .unwrap();
        assert_eq!(linted.diagnostics.len(), 1);
        assert_eq!(linted.extraction.report.lints_emitted, 1);
        assert!(linted.extraction.report.lint_time.as_nanos() > 0);
        // Without the option the lint pass is skipped entirely.
        let plain =
            extract_text_linted(&src, ExtractOptions::default(), &LintConfig::new()).unwrap();
        assert_eq!(plain.diagnostics, vec![]);
        assert_eq!(plain.extraction.report.lints_emitted, 0);
    }

    #[test]
    fn counter_probe_carries_lint_totals() {
        let src = format!("{TRANSISTOR} 94 A 250 250 ND; 94 B 250 1750 ND; E");
        let lib = Library::from_cif_text(&src).unwrap();
        let probe = ace_core::CounterProbe::new();
        let linted = extract_library_linted(
            &lib,
            "t",
            ExtractOptions::default().with_lints(),
            &LintConfig::new(),
            &probe,
        )
        .unwrap();
        let report = probe.report();
        assert_eq!(report.lints_emitted, linted.diagnostics.len() as u64);
        assert!(report.lint_time.as_nanos() > 0);
    }

    #[test]
    fn unnamed_net_id_never_leaks_into_output() {
        // NetId Display is "N<index>"; rule messages must never embed
        // it (spans would then differ across backends).
        let src = format!("{TRANSISTOR} E");
        let lib = Library::from_cif_text(&src).unwrap();
        let ex = ace_core::extract_library(&lib, "t", ExtractOptions::default()).unwrap();
        let diags = lint(
            &ex.netlist,
            &FlatLayout::from_library(&lib),
            &LintConfig::new(),
        );
        assert!(!diags.is_empty());
        for d in &diags {
            assert!(
                !d.message.contains(" N0") && !d.message.contains(" N1"),
                "message leaks a net id: {}",
                d.message
            );
        }
    }
}
