//! Electrical rule checking (ERC) for extracted NMOS circuits.
//!
//! ACE's output is "a wirelist identifying each transistor, its size
//! and the electrical nodes connected to it" (paper §1) — exactly the
//! artifact a static checker wants. This crate runs a fixed registry
//! of NMOS sanity rules over an [`ace_core::Extraction`] plus its
//! source layout and emits spanned [`Diagnostic`]s that point back at
//! CIF coordinates, net names, and device locations.
//!
//! The rules (see [`RuleId`]):
//!
//! | rule | default | fires when |
//! |------|---------|------------|
//! | `floating-gate` | error | a gate net has no label and no source/drain connection |
//! | `supply-short` | error | one net carries both a power and a ground label |
//! | `undriven-net` | warning | an unnamed net reaches exactly one source/drain terminal |
//! | `zero-wl-device` | error | a channel is degenerate or below the minimum feature size |
//! | `dangling-cut` | warning | a contact fails to bridge two layers |
//! | `depletion-pullup` | warning | a depletion gate ties to neither terminal |
//! | `conflicting-labels` | warning | one name labels two or more distinct nets |
//!
//! Diagnostics are *backend-stable*: anchored on device locations,
//! label positions, and layout rectangles — never on net ids — so the
//! conformance harness can require identical rule multisets from all
//! five extraction backends.
//!
//! Output formats: single-line text (also the golden-snapshot
//! format, [`render_text`]) and SARIF 2.1.0 ([`to_sarif`]), checked
//! by a built-in structural validator ([`validate_sarif`]).
//!
//! The `acelint` binary fronts all of it:
//!
//! ```text
//! cargo run -p ace_lint -- chip.cif --format sarif
//! ```
//!
//! # Examples
//!
//! ```
//! use ace_core::ExtractOptions;
//! use ace_lint::{extract_text_linted, LintConfig, RuleId};
//!
//! let linted = extract_text_linted(
//!     "L ND; B 500 2000 250 1000;
//!      L NP; B 1500 500 750 1000;
//!      94 A 250 250 ND; 94 B 250 1750 ND;
//!      E",
//!     ExtractOptions::default().with_lints(),
//!     &LintConfig::new(),
//! )?;
//! assert_eq!(linted.diagnostics.len(), 1);
//! assert_eq!(linted.diagnostics[0].rule, RuleId::FloatingGate);
//! assert_eq!(linted.extraction.report.lints_emitted, 1);
//! # Ok::<(), ace_core::ExtractError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod config;
mod diag;
pub mod emit;
mod engine;
pub mod sarif;

pub use config::LintConfig;
pub use diag::{sort_diagnostics, Anchor, Diagnostic, LintSpan, RuleId, Severity, RULE_COUNT};
pub use emit::render_text;
pub use engine::{extract_library_linted, extract_text_linted, lint, lint_extraction, Linted};
pub use sarif::{sarif_report, to_sarif, validate_sarif, SarifCase};
