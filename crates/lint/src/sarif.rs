//! SARIF 2.1.0 output and a structural validator for it.
//!
//! The emitter is hand-rolled (the workspace is offline; no serde).
//! To keep it honest, [`validate_sarif`] re-parses emitted JSON with
//! a small built-in parser and checks the shape the SARIF 2.1.0
//! schema requires of a minimal static-analysis log: `version`,
//! `$schema`, one run with a named driver and a rule table, and
//! results whose `ruleId`/`level`/`message`/`locations` are
//! well-formed. CI runs the validator over real `acelint` output.
//!
//! Region mapping: a CIF layout has no meaningful "column", so a
//! result's `region` carries only `startLine` — the line of the `94`
//! label command the span names, recovered via
//! [`ace_cif::label_line`] when the CIF source text is available.
//! Spans without a net name (device locations, contact boxes) carry
//! their chip coordinates in the result's `properties.anchor` bag
//! instead.

use crate::diag::{Diagnostic, LintSpan, RuleId};

/// Diagnostics for one artifact (CIF file) of a SARIF report.
#[derive(Debug, Clone, Copy)]
pub struct SarifCase<'a> {
    /// Artifact URI (usually the CIF file path as given on the CLI).
    pub uri: &'a str,
    /// The CIF source text, when available — enables `startLine`
    /// regions for spans that carry a net name.
    pub source: Option<&'a str>,
    /// The diagnostics to report, in canonical order.
    pub diagnostics: &'a [Diagnostic],
}

/// The `$schema` URI emitted in every report.
pub const SARIF_SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Renders a complete SARIF 2.1.0 log with one run covering all
/// `cases`.
pub fn sarif_report(cases: &[SarifCase]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"$schema\": {},\n", json_str(SARIF_SCHEMA)));
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"acelint\",\n");
    out.push_str(&format!(
        "          \"version\": {},\n",
        json_str(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str("          \"informationUri\": \"https://example.invalid/ace\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in RuleId::ALL.into_iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}, \
             \"defaultConfiguration\": {{\"level\": {}}}}}{}\n",
            json_str(rule.name()),
            json_str(rule.short_description()),
            json_str(rule.default_severity().name()),
            if i + 1 < RuleId::ALL.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    let total: usize = cases.iter().map(|c| c.diagnostics.len()).sum();
    let mut emitted = 0usize;
    for case in cases {
        for diag in case.diagnostics {
            emitted += 1;
            out.push_str(&render_result(case, diag, emitted < total));
        }
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn render_result(case: &SarifCase, diag: &Diagnostic, comma: bool) -> String {
    let mut out = String::new();
    out.push_str("        {\n");
    out.push_str(&format!(
        "          \"ruleId\": {},\n          \"ruleIndex\": {},\n          \"level\": {},\n",
        json_str(diag.rule.name()),
        diag.rule.index(),
        json_str(diag.severity.name())
    ));
    out.push_str(&format!(
        "          \"message\": {{\"text\": {}}},\n",
        json_str(&diag.message)
    ));
    out.push_str(&format!(
        "          \"locations\": [{}],\n",
        render_location(case, &diag.primary, false)
    ));
    if !diag.related.is_empty() {
        let related: Vec<String> = diag
            .related
            .iter()
            .map(|span| render_location(case, span, true))
            .collect();
        out.push_str(&format!(
            "          \"relatedLocations\": [{}],\n",
            related.join(", ")
        ));
    }
    out.push_str(&format!(
        "          \"properties\": {{\"anchor\": {}}}\n",
        json_str(&diag.primary.anchor.to_string())
    ));
    out.push_str(if comma { "        },\n" } else { "        }\n" });
    out
}

fn render_location(case: &SarifCase, span: &LintSpan, with_message: bool) -> String {
    let region = span
        .name
        .as_deref()
        .and_then(|name| case.source.and_then(|src| ace_cif::label_line(src, name)))
        .map(|line| format!(", \"region\": {{\"startLine\": {line}}}"))
        .unwrap_or_default();
    let message = if with_message {
        format!(", \"message\": {{\"text\": {}}}", json_str(&span.label))
    } else {
        String::new()
    };
    format!(
        "{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}{region}}}{message}}}",
        json_str(case.uri)
    )
}

/// [`sarif_report`] for a single artifact.
pub fn to_sarif(uri: &str, source: Option<&str>, diagnostics: &[Diagnostic]) -> String {
    sarif_report(&[SarifCase {
        uri,
        source,
        diagnostics,
    }])
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------
// Structural validation
// ---------------------------------------------------------------

/// Checks that `json` parses and has the shape of a SARIF 2.1.0
/// static-analysis log. Returns the first problem found.
pub fn validate_sarif(json: &str) -> Result<(), String> {
    let root = parse_json(json)?;
    if root.get("$schema").and_then(Json::as_str).is_none() {
        return Err("missing string $schema".into());
    }
    match root.get("version").and_then(Json::as_str) {
        Some("2.1.0") => {}
        other => return Err(format!("version must be \"2.1.0\", got {other:?}")),
    }
    let runs = root
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or("missing runs array")?;
    if runs.is_empty() {
        return Err("runs array is empty".into());
    }
    for (i, run) in runs.iter().enumerate() {
        validate_run(run).map_err(|e| format!("runs[{i}]: {e}"))?;
    }
    Ok(())
}

fn validate_run(run: &Json) -> Result<(), String> {
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .ok_or("missing tool.driver")?;
    if driver.get("name").and_then(Json::as_str).is_none() {
        return Err("missing tool.driver.name".into());
    }
    let rules = driver
        .get("rules")
        .and_then(Json::as_arr)
        .ok_or("missing tool.driver.rules array")?;
    let mut rule_ids = Vec::new();
    for (i, rule) in rules.iter().enumerate() {
        let id = rule
            .get("id")
            .and_then(Json::as_str)
            .ok_or(format!("rules[{i}]: missing id"))?;
        if rule
            .get("shortDescription")
            .and_then(|d| d.get("text"))
            .and_then(Json::as_str)
            .is_none()
        {
            return Err(format!("rules[{i}]: missing shortDescription.text"));
        }
        rule_ids.push(id.to_string());
    }
    let results = run
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("missing results array")?;
    for (i, result) in results.iter().enumerate() {
        validate_result(result, &rule_ids).map_err(|e| format!("results[{i}]: {e}"))?;
    }
    Ok(())
}

fn validate_result(result: &Json, rule_ids: &[String]) -> Result<(), String> {
    let rule_id = result
        .get("ruleId")
        .and_then(Json::as_str)
        .ok_or("missing ruleId")?;
    if !rule_ids.iter().any(|r| r == rule_id) {
        return Err(format!("ruleId {rule_id:?} not in driver rule table"));
    }
    match result.get("level").and_then(Json::as_str) {
        Some("none" | "note" | "warning" | "error") => {}
        other => return Err(format!("bad level {other:?}")),
    }
    if result
        .get("message")
        .and_then(|m| m.get("text"))
        .and_then(Json::as_str)
        .is_none()
    {
        return Err("missing message.text".into());
    }
    let locations = result
        .get("locations")
        .and_then(Json::as_arr)
        .ok_or("missing locations array")?;
    if locations.is_empty() {
        return Err("locations array is empty".into());
    }
    for (i, loc) in locations.iter().enumerate() {
        validate_location(loc).map_err(|e| format!("locations[{i}]: {e}"))?;
    }
    if let Some(related) = result.get("relatedLocations").and_then(Json::as_arr) {
        for (i, loc) in related.iter().enumerate() {
            validate_location(loc).map_err(|e| format!("relatedLocations[{i}]: {e}"))?;
        }
    }
    Ok(())
}

fn validate_location(loc: &Json) -> Result<(), String> {
    let phys = loc
        .get("physicalLocation")
        .ok_or("missing physicalLocation")?;
    if phys
        .get("artifactLocation")
        .and_then(|a| a.get("uri"))
        .and_then(Json::as_str)
        .is_none()
    {
        return Err("missing artifactLocation.uri".into());
    }
    if let Some(region) = phys.get("region") {
        match region.get("startLine").and_then(Json::as_num) {
            Some(line) if line >= 1.0 && line.fract() == 0.0 => {}
            other => return Err(format!("bad region.startLine {other:?}")),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------
// Minimal JSON parser (validation-only; not a public API)
// ---------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or(format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Multibyte UTF-8 sequences pass through intact.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected , or ] at byte {}, found {other:?}",
                        self.pos
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected , or }} at byte {}, found {other:?}",
                        self.pos
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{LintSpan, Severity};
    use ace_geom::{Point, Rect};

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                rule: RuleId::SupplyShort,
                severity: Severity::Error,
                message: "supply short: labels 'VDD!' and 'GND!' are on the same electrical net"
                    .into(),
                primary: LintSpan::at(Point::new(250, 250), "'VDD!' label here").named("VDD!"),
                related: vec![
                    LintSpan::at(Point::new(1750, 250), "'GND!' label here").named("GND!")
                ],
            },
            Diagnostic {
                rule: RuleId::DanglingCut,
                severity: Severity::Warning,
                message: "dangling cut with a \"quoted\"\nand multiline twist \\o/".into(),
                primary: LintSpan::area(Rect::new(0, 0, 250, 250), "contact cut"),
                related: vec![],
            },
        ]
    }

    #[test]
    fn emitted_sarif_validates() {
        let src = "L NM; B 2000 500 1000 250;\n94 VDD! 250 250 NM;\n94 GND! 1750 250 NM;\nE";
        let json = to_sarif("chip.cif", Some(src), &sample());
        validate_sarif(&json).expect("emitted SARIF must validate");
        // The named span maps to its `94` source line.
        assert!(json.contains("\"startLine\": 2"), "{json}");
        // Escapes survive a round-trip through the parser.
        let parsed = parse_json(&json).unwrap();
        let results = parsed.get("runs").unwrap().as_arr().unwrap()[0]
            .get("results")
            .unwrap()
            .as_arr()
            .unwrap();
        assert_eq!(results.len(), 2);
        let text = results[1]
            .get("message")
            .unwrap()
            .get("text")
            .unwrap()
            .as_str()
            .unwrap();
        assert_eq!(
            text,
            "dangling cut with a \"quoted\"\nand multiline twist \\o/"
        );
    }

    #[test]
    fn empty_report_validates() {
        let json = sarif_report(&[]);
        validate_sarif(&json).expect("empty report is still a valid log");
        assert!(json.contains("\"version\": \"2.1.0\""));
    }

    #[test]
    fn multi_case_report_keeps_uris_apart() {
        let a = sample();
        let json = sarif_report(&[
            SarifCase {
                uri: "a.cif",
                source: None,
                diagnostics: &a[..1],
            },
            SarifCase {
                uri: "b.cif",
                source: None,
                diagnostics: &a[1..],
            },
        ]);
        validate_sarif(&json).unwrap();
        assert!(json.contains("\"uri\": \"a.cif\""));
        assert!(json.contains("\"uri\": \"b.cif\""));
    }

    #[test]
    fn validator_rejects_malformed_logs() {
        assert!(validate_sarif("not json").is_err());
        assert!(validate_sarif("{}").unwrap_err().contains("$schema"));
        let wrong_version = r#"{"$schema": "s", "version": "2.0.0", "runs": []}"#;
        assert!(validate_sarif(wrong_version).unwrap_err().contains("2.1.0"));
        let no_runs = r#"{"$schema": "s", "version": "2.1.0", "runs": []}"#;
        assert!(validate_sarif(no_runs).unwrap_err().contains("empty"));
        let bad_level = r#"{"$schema": "s", "version": "2.1.0", "runs": [{
            "tool": {"driver": {"name": "t", "rules": [
                {"id": "r", "shortDescription": {"text": "d"}}]}},
            "results": [{"ruleId": "r", "level": "fatal",
                "message": {"text": "m"},
                "locations": [{"physicalLocation": {"artifactLocation": {"uri": "u"}}}]}]}]}"#;
        assert!(validate_sarif(bad_level).unwrap_err().contains("level"));
        let unknown_rule = bad_level
            .replace("\"fatal\"", "\"error\"")
            .replace("\"ruleId\": \"r\"", "\"ruleId\": \"mystery\"");
        assert!(validate_sarif(&unknown_rule)
            .unwrap_err()
            .contains("not in driver rule table"));
        let bad_line = bad_level.replace("\"fatal\"", "\"error\"").replace(
            "{\"artifactLocation\": {\"uri\": \"u\"}}",
            "{\"artifactLocation\": {\"uri\": \"u\"}, \"region\": {\"startLine\": 0}}",
        );
        assert!(validate_sarif(&bad_line).unwrap_err().contains("startLine"));
    }

    #[test]
    fn json_parser_handles_the_corners() {
        let parsed =
            parse_json(r#"{"a": [1, -2.5e2, true, false, null], "b": "\u0041\t"}"#).unwrap();
        let arr = parsed.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_num(), Some(-250.0));
        assert_eq!(parsed.get("b").unwrap().as_str(), Some("A\t"));
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("[1] trailing").is_err());
    }
}
