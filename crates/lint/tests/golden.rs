//! Golden lint snapshots.
//!
//! Two snapshot families live in `conformance/corpus/lints.txt`:
//!
//! * one section per `conformance/corpus/*.cif` replay layout, keyed
//!   by file stem — the same sections `scripts/check.sh` verifies
//!   through `acelint --snapshot`;
//! * one `violation:<rule>` section per `ace_workloads::violations`
//!   layout, pinning that each layout trips exactly its rule.
//!
//! Regenerate after an intentional rule change with:
//!
//! ```text
//! ACE_LINT_RECORD=1 cargo test -p ace_lint --test golden
//! ```

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use ace_core::ExtractOptions;
use ace_layout::{FlatLayout, Library};
use ace_lint::emit::{check_snapshot, merge_snapshot, parse_snapshot};
use ace_lint::{lint, Diagnostic, LintConfig, RuleId};
use ace_workloads::violations;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../conformance/corpus")
}

fn snapshot_path() -> PathBuf {
    corpus_dir().join("lints.txt")
}

fn lint_cif(src: &str) -> Vec<Diagnostic> {
    let lib = Library::from_cif_text(src).expect("corpus CIF parses");
    let ex = ace_core::extract_library(&lib, "golden", ExtractOptions::default())
        .expect("corpus CIF extracts");
    lint(
        &ex.netlist,
        &FlatLayout::from_library(&lib),
        &LintConfig::new(),
    )
}

/// Every `(section key, diagnostics)` pair the snapshot pins.
fn compute_sections() -> Vec<(String, Vec<Diagnostic>)> {
    let mut sections = Vec::new();
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "cif"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus has layouts");
    for path in files {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        sections.push((stem, lint_cif(&src)));
    }
    for (rule, cif) in violations::all() {
        sections.push((format!("violation:{rule}"), lint_cif(&cif)));
    }
    sections
}

#[test]
fn lint_output_matches_the_golden_snapshot() {
    let sections = compute_sections();
    if std::env::var_os("ACE_LINT_RECORD").is_some() {
        let merged = merge_snapshot("", &sections);
        std::fs::write(snapshot_path(), merged).expect("write snapshot");
        return;
    }
    let stored = parse_snapshot(
        &std::fs::read_to_string(snapshot_path())
            .expect("conformance/corpus/lints.txt exists (ACE_LINT_RECORD=1 to create)"),
    );
    let mut failures = Vec::new();
    for (key, diags) in &sections {
        if let Err(msg) = check_snapshot(&stored, key, diags) {
            failures.push(msg);
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
    // And nothing stale points the other way: every stored section
    // still corresponds to a layout we just linted.
    let live: BTreeSet<&str> = sections.iter().map(|(k, _)| k.as_str()).collect();
    for key in stored.keys() {
        assert!(
            live.contains(key.as_str()),
            "stale snapshot section `== {key}` (ACE_LINT_RECORD=1 to refresh)"
        );
    }
}

#[test]
fn each_violation_layout_trips_exactly_its_rule() {
    for (rule, cif) in violations::all() {
        let expected = RuleId::from_name(rule).expect("violations use real rule names");
        let diags = lint_cif(&cif);
        assert!(!diags.is_empty(), "{rule}: layout produced no diagnostics");
        let fired: BTreeSet<RuleId> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(
            fired,
            BTreeSet::from([expected]),
            "{rule}: expected only that rule, got {diags:?}"
        );
    }
}

#[test]
fn every_rule_is_exercised_by_a_violation_layout() {
    let covered: BTreeSet<RuleId> = violations::all()
        .iter()
        .map(|(rule, _)| RuleId::from_name(rule).unwrap())
        .collect();
    let all: BTreeSet<RuleId> = RuleId::ALL.into_iter().collect();
    assert_eq!(covered, all, "every rule needs a violations layout");
}
