//! Property: lint output is invariant under box-feed order and band
//! count.
//!
//! Diagnostics anchor on device locations, label positions, and
//! layout rectangles — none of which depend on the order geometry was
//! fed to the extractor or on how many bands the parallel backend
//! used. This test permutes the flat box list and varies the band
//! count, then demands a bit-identical diagnostic list.

use ace_core::ExtractOptions;
use ace_layout::{FlatLayout, Library};
use ace_lint::{lint, Diagnostic, LintConfig};
use ace_workloads::{cells, mesh, violations};
use proptest::prelude::*;

/// The layout pool: every single-rule violation plus known-clean and
/// device-dense designs.
fn pool() -> Vec<String> {
    let mut cifs: Vec<String> = violations::all().into_iter().map(|(_, cif)| cif).collect();
    cifs.push(cells::inverter_cif());
    cifs.push(cells::four_inverters_cif());
    cifs.push(mesh::mesh_cif(3));
    cifs
}

/// A deterministic permutation: rotate by `rot`, optionally reverse.
fn permute(layout: &FlatLayout, rot: usize, reverse: bool) -> FlatLayout {
    let boxes = layout.boxes();
    let mut order: Vec<usize> = (0..boxes.len()).collect();
    let len = order.len();
    if len > 0 {
        order.rotate_left(rot % len);
    }
    if reverse {
        order.reverse();
    }
    let mut out = FlatLayout::new();
    for i in order {
        out.push_box(boxes[i].layer, boxes[i].rect);
    }
    for label in layout.labels() {
        out.push_label(label.name.clone(), label.at, label.layer);
    }
    out
}

fn diags_of(netlist: &ace_wirelist::Netlist, layout: &FlatLayout) -> Vec<Diagnostic> {
    lint(netlist, layout, &LintConfig::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lint_survives_feed_order_and_band_count(
        case in 0..10usize,
        rot in 0..13usize,
        reverse in 0..2usize,
        bands in 1..4usize,
    ) {
        let reverse = reverse == 1;
        let cifs = pool();
        let cif = &cifs[case % cifs.len()];
        let lib = Library::from_cif_text(cif).expect("pool CIF parses");
        let layout = FlatLayout::from_library(&lib);

        // Baseline: flat reference extraction, canonical feed order.
        let base = ace_core::extract_flat(layout.clone(), "base", ExtractOptions::default())
            .expect("flat extraction");
        let expected = diags_of(&base.netlist, &layout);

        // Variant: permuted feed into the banded backend.
        let permuted = permute(&layout, rot, reverse);
        let options = if bands > 1 {
            ExtractOptions::default().with_bands(bands)
        } else {
            ExtractOptions::default()
        };
        let variant = ace_core::extract_flat(permuted.clone(), "variant", options)
            .expect("variant extraction");

        // The diagnostic list must match whether the lint pass reads
        // the canonical or the permuted layout.
        prop_assert_eq!(&diags_of(&variant.netlist, &layout), &expected);
        prop_assert_eq!(&diags_of(&variant.netlist, &permuted), &expected);
    }
}
