//! The raster baselines as [`CircuitExtractor`] backends, so the
//! cross-extractor comparisons and benches can drive Partlist and
//! Cifplot through the same interface as the scanline sweeps.

use ace_core::probe::Probe;
use ace_core::{CircuitExtractor, ExtractError, Extraction, ExtractionReport};
use ace_geom::Coord;
use ace_layout::FlatLayout;

use crate::cifplot::extract_cifplot_probed;
use crate::partlist::extract_partlist_probed;
use crate::report::RasterExtraction;

/// Lifts a raster result into the shared [`Extraction`] shape: the
/// raster extractors have no phase breakdown or sweep counters, so
/// only the fields that translate are filled.
fn lift(raster: RasterExtraction, flat: &FlatLayout) -> Extraction {
    let report = ExtractionReport {
        boxes: flat.boxes().len() as u64,
        scanline_stops: raster.report.rows,
        unresolved_labels: raster.report.unresolved_labels,
        total_time: raster.report.total_time,
        ..ExtractionReport::default()
    };
    Extraction {
        netlist: raster.netlist,
        report,
        window: None,
    }
}

/// The run-encoded raster-scan extractor as a backend.
pub struct PartlistExtractor {
    flat: FlatLayout,
    pitch: Coord,
}

impl PartlistExtractor {
    /// A Partlist-style extractor over `flat` at grid pitch `pitch`.
    pub fn new(flat: FlatLayout, pitch: Coord) -> Self {
        PartlistExtractor { flat, pitch }
    }
}

impl CircuitExtractor for PartlistExtractor {
    fn backend(&self) -> &'static str {
        "partlist"
    }

    fn extract_probed(
        &mut self,
        name: &str,
        probe: &dyn Probe,
    ) -> Result<Extraction, ExtractError> {
        let raster = extract_partlist_probed(&self.flat, name, self.pitch, probe);
        Ok(lift(raster, &self.flat))
    }
}

/// The naive full-grid extractor as a backend.
pub struct CifplotExtractor {
    flat: FlatLayout,
    pitch: Coord,
}

impl CifplotExtractor {
    /// A Cifplot-style extractor over `flat` at grid pitch `pitch`.
    pub fn new(flat: FlatLayout, pitch: Coord) -> Self {
        CifplotExtractor { flat, pitch }
    }
}

impl CircuitExtractor for CifplotExtractor {
    fn backend(&self) -> &'static str {
        "cifplot"
    }

    fn extract_probed(
        &mut self,
        name: &str,
        probe: &dyn Probe,
    ) -> Result<Extraction, ExtractError> {
        let raster = extract_cifplot_probed(&self.flat, name, self.pitch, probe);
        Ok(lift(raster, &self.flat))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_geom::LAMBDA;
    use ace_layout::Library;

    #[test]
    fn raster_backends_fit_the_trait() {
        let lib = Library::from_cif_text("L ND; B 500 2000 0 0; L NP; B 2000 500 0 0; E").unwrap();
        let flat = FlatLayout::from_library(&lib);
        let mut backends: Vec<Box<dyn CircuitExtractor>> = vec![
            Box::new(PartlistExtractor::new(flat.clone(), LAMBDA)),
            Box::new(CifplotExtractor::new(flat, LAMBDA)),
        ];
        for b in &mut backends {
            let r = b.extract("t").unwrap();
            assert_eq!(r.netlist.device_count(), 1, "{}", b.backend());
            assert!(r.report.boxes > 0);
        }
    }
}
