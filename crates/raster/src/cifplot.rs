use std::time::Instant;

use ace_core::probe::{Counter, Lane, NullProbe, Probe, Span};
use ace_core::{DeviceTable, NetTable};
use ace_geom::{Coord, Layer};
use ace_layout::FlatLayout;

use crate::finalize::build_netlist;
use crate::grid::{rasterize, CellMask};
use crate::report::{RasterExtraction, RasterReport};

const NONE: u32 = u32::MAX;

/// Per-cell handle planes for one row.
#[derive(Debug, Clone)]
struct RowHandles {
    metal: Vec<u32>,
    poly: Vec<u32>,
    diff: Vec<u32>,
    channel: Vec<u32>,
}

impl RowHandles {
    fn new(cols: usize) -> Self {
        RowHandles {
            metal: vec![NONE; cols],
            poly: vec![NONE; cols],
            diff: vec![NONE; cols],
            channel: vec![NONE; cols],
        }
    }

    fn clear(&mut self) {
        self.metal.fill(NONE);
        self.poly.fill(NONE);
        self.diff.fill(NONE);
        self.channel.fill(NONE);
    }
}

/// Naive full-grid raster extraction (Cifplot-style cost profile).
///
/// Every cell of the chip's bounding grid is materialized and
/// visited, including empty space — the behaviour the paper contrasts
/// ACE against ("a lot of time is wasted scanning over grid squares
/// where no information is to be gained", §2). The circuit produced
/// is identical to [`crate::extract_partlist`]'s; only the work
/// differs.
///
/// # Examples
///
/// ```
/// use ace_layout::{FlatLayout, Library};
/// use ace_raster::extract_cifplot;
///
/// let lib = Library::from_cif_text(
///     "L ND; B 500 2000 0 0; L NP; B 2000 500 0 0; E",
/// )?;
/// let r = extract_cifplot(&FlatLayout::from_library(&lib), "t", 250);
/// assert_eq!(r.netlist.device_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn extract_cifplot(flat: &FlatLayout, name: &str, pitch: Coord) -> RasterExtraction {
    extract_cifplot_probed(flat, name, pitch, &NullProbe)
}

/// [`extract_cifplot`], reporting events to `probe` as it runs: one
/// [`Span::Raster`] around the scan, with per-row
/// [`Counter::RowsScanned`] / [`Counter::CellsVisited`] counters.
pub fn extract_cifplot_probed(
    flat: &FlatLayout,
    name: &str,
    pitch: Coord,
    probe: &dyn Probe,
) -> RasterExtraction {
    let t0 = Instant::now();
    probe.enter(Lane::MAIN, Span::Raster);
    let grid = rasterize(flat, pitch);
    let cols = grid.cols.max(0) as usize;
    let mut nets = NetTable::new(false);
    let mut devices = DeviceTable::new(false);
    let mut report = RasterReport::default();

    let mut labels: Vec<(usize, i64, Option<Layer>, &str)> = flat
        .labels()
        .iter()
        .map(|l| {
            let (r, c) = grid.locate(l.at.x, l.at.y);
            (r, c, l.layer, l.name.as_str())
        })
        .collect();
    labels.sort_by_key(|&(r, c, _, _)| (r, c));
    let mut next_label = 0usize;

    let mut masks: Vec<CellMask> = vec![CellMask::EMPTY; cols];
    let mut above = RowHandles::new(cols);
    let mut here = RowHandles::new(cols);

    for (r, runs) in grid.rows.iter().enumerate() {
        report.rows += 1;
        probe.add(Lane::MAIN, Counter::RowsScanned, 1);
        probe.add(Lane::MAIN, Counter::CellsVisited, cols as u64);
        // Materialize the full row (this is the deliberate
        // inefficiency).
        masks.fill(CellMask::EMPTY);
        for run in runs {
            for c in run.c0.max(0)..run.c1.min(cols as i64) {
                masks[c as usize] = run.mask;
            }
        }
        here.clear();

        #[allow(clippy::needless_range_loop)] // visiting every cell is the point
        for c in 0..cols {
            report.cells_visited += 1;
            let mask = masks[c];
            if mask.is_empty() {
                continue;
            }
            let rect = grid.cell_rect(r, c as i64, c as i64 + 1);

            // Allocate or inherit per-layer handles, connecting to
            // the left and top cells of the L-shaped window.
            let take = |present: bool,
                        layer: Layer,
                        plane: fn(&RowHandles) -> &Vec<u32>,
                        nets: &mut NetTable|
             -> u32 {
                if !present {
                    return NONE;
                }
                let left = if c > 0 { plane(&here)[c - 1] } else { NONE };
                let top = plane(&above)[c];
                let n = if left != NONE {
                    left
                } else if top != NONE {
                    top
                } else {
                    nets.fresh()
                };
                if left != NONE && top != NONE {
                    nets.union(left, top);
                }
                nets.add_geometry(n, layer, rect);
                // add_geometry counts the cell's full perimeter;
                // remove the edges shared with occupied neighbors.
                if left != NONE {
                    nets.sub_perimeter(n, layer, pitch);
                }
                if top != NONE {
                    nets.sub_perimeter(n, layer, pitch);
                }
                n
            };
            let metal = take(
                mask.has(Layer::Metal),
                Layer::Metal,
                |h| &h.metal,
                &mut nets,
            );
            let poly = take(mask.has(Layer::Poly), Layer::Poly, |h| &h.poly, &mut nets);
            let diff = take(
                mask.has_conducting_diff(),
                Layer::Diffusion,
                |h| &h.diff,
                &mut nets,
            );

            let channel = if mask.is_channel() {
                let left = if c > 0 { here.channel[c - 1] } else { NONE };
                let top = above.channel[c];
                let d = if left != NONE {
                    devices.add_channel(left, rect);
                    left
                } else if top != NONE {
                    devices.add_channel(top, rect);
                    top
                } else {
                    devices.fresh(rect)
                };
                if left != NONE && top != NONE {
                    devices.union(left, top, &mut nets);
                }
                devices.set_gate(d, poly, &mut nets);
                if mask.has(Layer::Implant) {
                    devices.set_depletion(d);
                }
                // Terminals: conducting diffusion to the left/top.
                if c > 0 && here.diff[c - 1] != NONE {
                    devices.add_terminal_contact(d, here.diff[c - 1], pitch);
                }
                if above.diff[c] != NONE {
                    devices.add_terminal_contact(d, above.diff[c], pitch);
                }
                d
            } else {
                // A diffusion cell bordering a channel on its left or
                // top contributes the symmetric terminal edges.
                if diff != NONE {
                    if c > 0 && here.channel[c - 1] != NONE {
                        devices.add_terminal_contact(here.channel[c - 1], diff, pitch);
                    }
                    if above.channel[c] != NONE {
                        devices.add_terminal_contact(above.channel[c], diff, pitch);
                    }
                }
                NONE
            };

            if mask.is_buried_contact() {
                nets.union(diff, poly);
            }
            if mask.has(Layer::Cut) {
                let conducting: Vec<u32> = [metal, poly, diff]
                    .into_iter()
                    .filter(|&h| h != NONE)
                    .collect();
                for pair in conducting.windows(2) {
                    nets.union(pair[0], pair[1]);
                }
                // The cell is cut ∩ conducting; any conducting
                // handle reaches the merged root.
                if let Some(&n) = conducting.first() {
                    nets.add_cut_area(n, pitch * pitch);
                }
            }

            here.metal[c] = metal;
            here.poly[c] = poly;
            here.diff[c] = diff;
            here.channel[c] = channel;
        }

        while next_label < labels.len() && labels[next_label].0 == r {
            let (_, col, layer, lname) = labels[next_label];
            next_label += 1;
            let c = col.clamp(0, cols as i64 - 1) as usize;
            let handle = match layer {
                Some(Layer::Metal) => here.metal[c],
                Some(Layer::Poly) => here.poly[c],
                Some(Layer::Diffusion) => here.diff[c],
                _ => [here.diff[c], here.poly[c], here.metal[c]]
                    .into_iter()
                    .find(|&h| h != NONE)
                    .unwrap_or(NONE),
            };
            if handle != NONE {
                nets.add_name(handle, lname);
            } else {
                report.unresolved_labels += 1;
            }
        }

        std::mem::swap(&mut above, &mut here);
    }
    report.unresolved_labels += (labels.len() - next_label) as u64;
    probe.add(
        Lane::MAIN,
        Counter::UnresolvedLabels,
        report.unresolved_labels,
    );

    let netlist = build_netlist(nets, devices, name);
    report.total_time = t0.elapsed();
    probe.exit(Lane::MAIN, Span::Raster);
    RasterExtraction { netlist, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_geom::LAMBDA;
    use ace_layout::Library;

    fn run(src: &str) -> RasterExtraction {
        let lib = Library::from_cif_text(src).expect("parse");
        extract_cifplot(&FlatLayout::from_library(&lib), "test", LAMBDA)
    }

    #[test]
    fn single_transistor() {
        let r = run("L ND; B 500 2000 0 0; L NP; B 2000 500 0 0; E");
        assert_eq!(r.netlist.device_count(), 1);
        let d = &r.netlist.devices()[0];
        assert_eq!((d.length, d.width), (500, 500));
    }

    #[test]
    fn visits_every_cell_including_empty_space() {
        // Two tiny boxes far apart: the full-grid scan pays for the
        // emptiness between them.
        let r = run("L NM; B 250 250 125 125; B 250 250 10125 125; E");
        assert_eq!(r.report.cells_visited, 41); // 41 columns × 1 row
        assert_eq!(r.netlist.device_count(), 0);
    }

    #[test]
    fn agrees_with_partlist() {
        let src = "
            L ND; B 500 3000 250 0;
            L NP; B 1500 500 250 -750;
            L NP; B 500 500 250 750;
            L NI; B 750 750 250 750;
            L NM; B 1000 500 250 1250;
            L NC; B 250 250 250 1250;
            94 A 250 1250 NM;
            E";
        let lib = Library::from_cif_text(src).unwrap();
        let flat = FlatLayout::from_library(&lib);
        let a = extract_cifplot(&flat, "x", LAMBDA);
        let b = crate::extract_partlist(&flat, "x", LAMBDA);
        ace_wirelist::compare::same_circuit(&a.netlist, &b.netlist)
            .expect("cifplot and partlist agree");
        assert!(a.report.cells_visited > b.report.runs_visited);
    }

    #[test]
    fn labels_resolve() {
        let r = run("L NM; B 1000 1000 0 0; 94 SIG 0 0; E");
        assert!(r.netlist.net_by_name("SIG").is_some());
        assert_eq!(r.report.unresolved_labels, 0);
    }

    #[test]
    fn empty_layout() {
        let r = run("E");
        assert_eq!(r.report.cells_visited, 0);
        assert_eq!(r.netlist.device_count(), 0);
    }
}
