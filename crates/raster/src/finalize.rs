//! Shared output construction for the raster baselines.

use ace_core::{DeviceTable, NetTable};
use ace_geom::Point;
use ace_wirelist::{NetId, Netlist};

/// Builds the output netlist from filled net/device tables, using the
/// same width/length rules as the scanline extractor so the baselines
/// are directly comparable.
pub(crate) fn build_netlist(mut nets: NetTable, mut devices: DeviceTable, name: &str) -> Netlist {
    let (map, net_count) = nets.compress();
    let mut netlist = Netlist::new();
    netlist.name = name.to_string();
    for _ in 0..net_count {
        netlist.add_net();
    }
    let mut seen = vec![false; net_count];
    #[allow(clippy::needless_range_loop)] // h is a union-find handle
    for h in 0..map.len() {
        let dense = map[h] as usize;
        if seen[dense] {
            continue;
        }
        seen[dense] = true;
        let id = NetId(dense as u32);
        let data = nets.take_data(h as u32);
        for net_name in data.names {
            netlist.add_name(id, net_name);
        }
        if let Some(bb) = data.bbox {
            netlist.set_location(id, Point::new(bb.x_min, bb.y_max));
        }
        netlist.add_parasitics(id, &data.parasitics);
    }
    for root in devices.roots() {
        let mut multi = false;
        if let Some((device, _)) = devices.finalize(root, &mut nets, &map, &mut multi) {
            netlist.add_device(device);
        }
    }
    netlist
}
