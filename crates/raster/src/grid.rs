use std::collections::BTreeMap;

use ace_geom::{Coord, Layer, Rect};
use ace_layout::FlatLayout;

/// Which layers cover one raster cell, as a bitmask by
/// [`Layer::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellMask(pub u8);

impl CellMask {
    /// The empty mask.
    pub const EMPTY: CellMask = CellMask(0);

    /// Adds a layer.
    pub fn with(self, layer: Layer) -> CellMask {
        CellMask(self.0 | (1 << layer.index()))
    }

    /// `true` if the layer covers the cell.
    pub fn has(self, layer: Layer) -> bool {
        self.0 & (1 << layer.index()) != 0
    }

    /// `true` if nothing covers the cell.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Transistor channel: diffusion ∧ poly ∧ ¬buried.
    pub fn is_channel(self) -> bool {
        self.has(Layer::Diffusion) && self.has(Layer::Poly) && !self.has(Layer::Buried)
    }

    /// Conducting diffusion: diffusion that is not channel.
    pub fn has_conducting_diff(self) -> bool {
        self.has(Layer::Diffusion) && !self.is_channel()
    }

    /// Buried contact: diffusion ∧ poly ∧ buried.
    pub fn is_buried_contact(self) -> bool {
        self.has(Layer::Diffusion) && self.has(Layer::Poly) && self.has(Layer::Buried)
    }
}

/// One maximal same-mask span of cells within a row: cells
/// `[c0, c1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Run {
    /// First cell column.
    pub c0: i64,
    /// One past the last cell column.
    pub c1: i64,
    /// Layer coverage of every cell in the run.
    pub mask: CellMask,
}

impl Run {
    /// Number of cells in the run.
    pub fn len(&self) -> i64 {
        self.c1 - self.c0
    }

    /// `true` for a degenerate empty run.
    pub fn is_empty(&self) -> bool {
        self.c0 >= self.c1
    }
}

/// A rasterized layout: one run list per grid row, top row first.
///
/// Cell `(row r, column c)` covers the square
/// `[origin.x + c·pitch, …+pitch) × [top − (r+1)·pitch, top − r·pitch)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowRuns {
    /// Raster pitch in centimicrons (λ for the paper's baselines).
    pub pitch: Coord,
    /// x coordinate of cell column 0's left edge.
    pub origin_x: Coord,
    /// y coordinate of the top row's top edge.
    pub top_y: Coord,
    /// Column count.
    pub cols: i64,
    /// Row run lists, topmost row first; runs sorted by `c0`, empty
    /// cells omitted.
    pub rows: Vec<Vec<Run>>,
}

impl RowRuns {
    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The rectangle covered by cells `[c0, c1)` of row `r`.
    pub fn cell_rect(&self, r: usize, c0: i64, c1: i64) -> Rect {
        Rect::new(
            self.origin_x + c0 * self.pitch,
            self.top_y - (r as i64 + 1) * self.pitch,
            self.origin_x + c1 * self.pitch,
            self.top_y - r as i64 * self.pitch,
        )
    }

    /// Maps a point to `(row, column)` indexes, clamped to the grid.
    pub fn locate(&self, x: Coord, y: Coord) -> (usize, i64) {
        let col = (x - self.origin_x)
            .div_euclid(self.pitch)
            .clamp(0, (self.cols - 1).max(0));
        let from_top = (self.top_y - 1 - y).div_euclid(self.pitch);
        let row = from_top.clamp(0, (self.rows.len() as i64 - 1).max(0)) as usize;
        (row, col)
    }
}

/// Rasterizes a flat layout at the given pitch.
///
/// Every box is snapped outward to cell boundaries (exact for
/// λ-aligned layouts, conservative otherwise). Glass is ignored, as
/// in the scanline extractor.
///
/// # Panics
///
/// Panics if `pitch <= 0`.
pub fn rasterize(flat: &FlatLayout, pitch: Coord) -> RowRuns {
    assert!(pitch > 0, "raster pitch must be positive");
    let Some(bbox) = flat.bounding_box() else {
        return RowRuns {
            pitch,
            origin_x: 0,
            top_y: 0,
            cols: 0,
            rows: Vec::new(),
        };
    };
    let origin_x = bbox.x_min.div_euclid(pitch) * pitch;
    let bottom_y = bbox.y_min.div_euclid(pitch) * pitch;
    let top_y = (bbox.y_max + pitch - 1).div_euclid(pitch) * pitch;
    let cols = (bbox.x_max - origin_x + pitch - 1).div_euclid(pitch).max(1);
    let row_count = ((top_y - bottom_y) / pitch).max(1) as usize;

    // (top_row, bottom_row_exclusive, c0, c1, layer) per box, with row
    // 0 at the top.
    struct Span {
        r0: usize,
        r1: usize,
        c0: i64,
        c1: i64,
        layer: Layer,
    }
    let mut spans: Vec<Span> = flat
        .boxes()
        .iter()
        .filter(|b| b.layer != Layer::Glass && !b.rect.is_empty())
        .map(|b| {
            let c0 = (b.rect.x_min - origin_x).div_euclid(pitch);
            let c1 = ((b.rect.x_max - origin_x) + pitch - 1)
                .div_euclid(pitch)
                .max(c0 + 1);
            let r0 = ((top_y - b.rect.y_max).div_euclid(pitch)).max(0) as usize;
            let r1 = (((top_y - b.rect.y_min) + pitch - 1).div_euclid(pitch) as usize)
                .max(r0 + 1)
                .min(row_count);
            Span {
                r0,
                r1,
                c0,
                c1,
                layer: b.layer,
            }
        })
        .collect();
    spans.sort_unstable_by_key(|s| s.r0);

    let mut rows = Vec::with_capacity(row_count);
    let mut active: Vec<usize> = Vec::new();
    let mut next = 0usize;
    for r in 0..row_count {
        while next < spans.len() && spans[next].r0 <= r {
            active.push(next);
            next += 1;
        }
        active.retain(|&i| spans[i].r1 > r);

        // Boundary events → constant-mask runs.
        let mut deltas: BTreeMap<i64, [i32; 7]> = BTreeMap::new();
        for &i in &active {
            let s = &spans[i];
            deltas.entry(s.c0).or_default()[s.layer.index()] += 1;
            deltas.entry(s.c1).or_default()[s.layer.index()] -= 1;
        }
        let mut runs = Vec::new();
        let mut counts = [0i32; 7];
        let mut last_c: Option<i64> = None;
        let mut last_mask = CellMask::EMPTY;
        for (&c, d) in &deltas {
            if let Some(c0) = last_c {
                if !last_mask.is_empty() && c > c0 {
                    runs.push(Run {
                        c0,
                        c1: c,
                        mask: last_mask,
                    });
                }
            }
            for (k, dk) in d.iter().enumerate() {
                counts[k] += dk;
            }
            let mut mask = CellMask::EMPTY;
            for (k, &n) in counts.iter().enumerate() {
                if n > 0 {
                    mask = mask.with(Layer::from_index(k));
                }
            }
            last_c = Some(c);
            last_mask = mask;
        }
        rows.push(runs);
    }

    RowRuns {
        pitch,
        origin_x,
        top_y,
        cols,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_geom::LAMBDA;
    use ace_layout::Library;

    fn flat(src: &str) -> FlatLayout {
        FlatLayout::from_library(&Library::from_cif_text(src).expect("parse"))
    }

    #[test]
    fn mask_operations() {
        let m = CellMask::EMPTY.with(Layer::Diffusion).with(Layer::Poly);
        assert!(m.is_channel());
        assert!(!m.has_conducting_diff());
        let m = m.with(Layer::Buried);
        assert!(!m.is_channel());
        assert!(m.is_buried_contact());
        assert!(m.has_conducting_diff());
        assert!(CellMask::EMPTY.is_empty());
    }

    #[test]
    fn single_box_rasterizes_exactly() {
        // 4λ × 2λ box, λ-aligned.
        let f = flat("L ND; B 1000 500 500 250; E"); // [0,0,1000,500]
        let g = rasterize(&f, LAMBDA);
        assert_eq!(g.row_count(), 2);
        assert_eq!(g.cols, 4);
        for row in &g.rows {
            assert_eq!(row.len(), 1);
            assert_eq!((row[0].c0, row[0].c1), (0, 4));
            assert!(row[0].mask.has(Layer::Diffusion));
        }
        assert_eq!(g.cell_rect(0, 0, 4), Rect::new(0, 250, 1000, 500));
    }

    #[test]
    fn overlapping_layers_merge_masks() {
        // Poly crossing diffusion: the crossing cells carry both.
        let f = flat("L ND; B 500 1500 250 750; L NP; B 1500 500 750 750; E");
        let g = rasterize(&f, LAMBDA);
        assert_eq!(g.row_count(), 6);
        // Middle rows: poly [0..6), diffusion [0..2)? Actually diff is
        // x∈[0,500]→cells [0,2), poly x∈[0,1500]→cells [0,6).
        let middle = &g.rows[3]; // within the poly band
        let channel_cells: i64 = middle
            .iter()
            .filter(|r| r.mask.is_channel())
            .map(Run::len)
            .sum();
        assert_eq!(channel_cells, 2);
    }

    #[test]
    fn gaps_produce_separate_runs() {
        let f = flat("L NM; B 500 250 250 125; B 500 250 1750 125; E");
        let g = rasterize(&f, LAMBDA);
        assert_eq!(g.row_count(), 1);
        assert_eq!(g.rows[0].len(), 2);
        assert!(g.rows[0][0].c1 < g.rows[0][1].c0);
    }

    #[test]
    fn unaligned_boxes_snap_outward() {
        let f = flat("L NM; B 100 100 50 50; E"); // [0,0,100,100] sub-λ
        let g = rasterize(&f, LAMBDA);
        assert_eq!(g.row_count(), 1);
        assert_eq!(g.rows[0][0].len(), 1);
    }

    #[test]
    fn locate_maps_points_to_cells() {
        let f = flat("L NM; B 1000 500 500 250; E");
        let g = rasterize(&f, LAMBDA);
        // Interior point.
        let (r, c) = g.locate(300, 100);
        assert_eq!((r, c), (1, 1));
        // Top-left corner clamps into the grid.
        let (r, c) = g.locate(0, 500);
        assert_eq!((r, c), (0, 0));
    }

    #[test]
    fn empty_layout_rasterizes_empty() {
        let f = FlatLayout::new();
        let g = rasterize(&f, LAMBDA);
        assert_eq!(g.row_count(), 0);
        assert_eq!(g.cols, 0);
    }
}
