//! Baseline raster-scan circuit extractors.
//!
//! ACE's evaluation (paper Table 5-2) compares it against two older
//! extractors, both reimplemented here from their published
//! algorithms:
//!
//! * [`extract_partlist`] — a *run-encoded raster-scan* extractor in
//!   the style of Partlist (Baker 1980, Wendorf 1980): "the chip is
//!   examined in a raster-scan order (left to right, top to bottom)
//!   looking through an L-shaped window containing three raster
//!   elements" (§2). The run encoding compresses constant spans
//!   within each λ-pitch row, but the scan still pauses at *every
//!   grid row* a box spans — which is exactly why ACE beats it:
//!   "a raster-based extractor … must visit each and every grid
//!   square spanned by the box" (§5).
//! * [`extract_cifplot`] — a naive full-grid extractor with the cost
//!   profile of Berkeley's `cifplot -w` analysis (Fitzpatrick 1981):
//!   every cell of the chip's bounding grid is materialized and
//!   visited, empty space included.
//!
//! Both produce the same circuits as `ace-core` on λ-aligned layouts
//! (the integration tests cross-validate all three), while exhibiting
//! the cost profiles the paper reports.
//!
//! # Examples
//!
//! ```
//! use ace_layout::{FlatLayout, Library};
//! use ace_raster::extract_partlist;
//!
//! let lib = Library::from_cif_text(
//!     "L ND; B 500 2000 0 0; L NP; B 2000 500 0 0; E",
//! )?;
//! let flat = FlatLayout::from_library(&lib);
//! let result = extract_partlist(&flat, "gate", ace_geom::LAMBDA);
//! assert_eq!(result.netlist.device_count(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod backend;
mod cifplot;
mod finalize;
mod grid;
mod partlist;
mod report;

pub use backend::{CifplotExtractor, PartlistExtractor};
pub use cifplot::{extract_cifplot, extract_cifplot_probed};
pub use grid::{CellMask, RowRuns, Run};
pub use partlist::{extract_partlist, extract_partlist_probed};
pub use report::{RasterExtraction, RasterReport};
