use std::time::Instant;

use ace_core::probe::{Counter, Lane, NullProbe, Probe, Span};
use ace_core::{DeviceTable, NetTable};
use ace_geom::{Coord, Layer};
use ace_layout::FlatLayout;

use crate::finalize::build_netlist;
use crate::grid::{rasterize, Run};
use crate::report::{RasterExtraction, RasterReport};

/// Net/device handles carried by one run.
#[derive(Debug, Clone, Copy, Default)]
struct RunHandles {
    c0: i64,
    c1: i64,
    metal: Option<u32>,
    poly: Option<u32>,
    diff: Option<u32>,
    channel: Option<u32>,
}

/// Run-encoded raster-scan extraction (Partlist-style).
///
/// The layout is rasterized at `pitch` (λ in the paper) and scanned
/// top-to-bottom, left-to-right. Within a row, constant-coverage
/// spans are processed as *runs*; the L-shaped window becomes "this
/// run, the run to its left, and the overlapping runs of the row
/// above". Connectivity, device recognition, and the width/length
/// rules are identical to the scanline extractor, so on λ-aligned
/// layouts both produce the same circuit — only the amount of work
/// differs.
///
/// # Examples
///
/// ```
/// use ace_layout::{FlatLayout, Library};
/// use ace_raster::extract_partlist;
///
/// let lib = Library::from_cif_text(
///     "L ND; B 500 2000 0 0; L NP; B 2000 500 0 0; E",
/// )?;
/// let r = extract_partlist(&FlatLayout::from_library(&lib), "t", 250);
/// assert_eq!(r.netlist.device_count(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn extract_partlist(flat: &FlatLayout, name: &str, pitch: Coord) -> RasterExtraction {
    extract_partlist_probed(flat, name, pitch, &NullProbe)
}

/// [`extract_partlist`], reporting events to `probe` as it runs: one
/// [`Span::Raster`] around the scan, with per-row
/// [`Counter::RowsScanned`] / [`Counter::RunsVisited`] counters.
pub fn extract_partlist_probed(
    flat: &FlatLayout,
    name: &str,
    pitch: Coord,
    probe: &dyn Probe,
) -> RasterExtraction {
    let t0 = Instant::now();
    probe.enter(Lane::MAIN, Span::Raster);
    let grid = rasterize(flat, pitch);
    let mut nets = NetTable::new(false);
    let mut devices = DeviceTable::new(false);
    let mut report = RasterReport::default();

    // Labels mapped onto the grid, sorted by row.
    let mut labels: Vec<(usize, i64, Option<Layer>, &str)> = flat
        .labels()
        .iter()
        .map(|l| {
            let (r, c) = grid.locate(l.at.x, l.at.y);
            (r, c, l.layer, l.name.as_str())
        })
        .collect();
    labels.sort_by_key(|&(r, c, _, _)| (r, c));
    let mut next_label = 0usize;

    let mut prev: Vec<RunHandles> = Vec::new();
    for (r, runs) in grid.rows.iter().enumerate() {
        report.rows += 1;
        probe.add(Lane::MAIN, Counter::RowsScanned, 1);
        probe.add(Lane::MAIN, Counter::RunsVisited, runs.len() as u64);
        let mut cur: Vec<RunHandles> = Vec::with_capacity(runs.len());

        for run in runs {
            report.runs_visited += 1;
            let h = process_run(&grid, r, run, &mut nets, &mut devices, pitch, cur.last());
            cur.push(h);
        }

        link_rows(&prev, &cur, pitch, &mut nets, &mut devices);

        // Resolve this row's labels.
        while next_label < labels.len() && labels[next_label].0 == r {
            let (_, col, layer, lname) = labels[next_label];
            next_label += 1;
            let handle = cur
                .iter()
                .find(|h| h.c0 <= col && col < h.c1)
                .and_then(|h| match layer {
                    Some(Layer::Metal) => h.metal,
                    Some(Layer::Poly) => h.poly,
                    Some(Layer::Diffusion) => h.diff,
                    _ => h.diff.or(h.poly).or(h.metal),
                });
            match handle {
                Some(n) => nets.add_name(n, lname),
                None => report.unresolved_labels += 1,
            }
        }

        prev = cur;
    }
    report.unresolved_labels += (labels.len() - next_label) as u64;
    probe.add(
        Lane::MAIN,
        Counter::UnresolvedLabels,
        report.unresolved_labels,
    );

    let netlist = build_netlist(nets, devices, name);
    report.total_time = t0.elapsed();
    probe.exit(Lane::MAIN, Span::Raster);
    RasterExtraction { netlist, report }
}

/// Handles one run: allocate handles, apply same-cell layer joins,
/// and connect to the run on its left.
fn process_run(
    grid: &crate::grid::RowRuns,
    row: usize,
    run: &Run,
    nets: &mut NetTable,
    devices: &mut DeviceTable,
    pitch: Coord,
    left: Option<&RunHandles>,
) -> RunHandles {
    let rect = grid.cell_rect(row, run.c0, run.c1);
    let mut h = RunHandles {
        c0: run.c0,
        c1: run.c1,
        ..RunHandles::default()
    };
    if run.mask.has(Layer::Metal) {
        let n = nets.fresh();
        nets.add_geometry(n, Layer::Metal, rect);
        h.metal = Some(n);
    }
    if run.mask.has(Layer::Poly) {
        let n = nets.fresh();
        nets.add_geometry(n, Layer::Poly, rect);
        h.poly = Some(n);
    }
    if run.mask.has_conducting_diff() {
        let n = nets.fresh();
        nets.add_geometry(n, Layer::Diffusion, rect);
        h.diff = Some(n);
    }
    if run.mask.is_channel() {
        let d = devices.fresh(rect);
        devices.set_gate(d, h.poly.expect("channel implies poly"), nets);
        if run.mask.has(Layer::Implant) {
            devices.set_depletion(d);
        }
        h.channel = Some(d);
    }
    if run.mask.is_buried_contact() {
        nets.union(
            h.diff.expect("buried contact implies diffusion"),
            h.poly.expect("buried contact implies poly"),
        );
    }
    if run.mask.has(Layer::Cut) {
        let conducting: Vec<u32> = [h.metal, h.poly, h.diff].into_iter().flatten().collect();
        for pair in conducting.windows(2) {
            nets.union(pair[0], pair[1]);
        }
        // The whole run is cut ∩ conducting; the cross-layer unions
        // above make any conducting handle reach the merged root.
        if let Some(&n) = conducting.first() {
            nets.add_cut_area(n, (run.c1 - run.c0) * pitch * pitch);
        }
    }

    // The left element of the L-shaped window.
    if let Some(l) = left {
        if l.c1 == run.c0 {
            for (a, b, layer) in [
                (l.metal, h.metal, Layer::Metal),
                (l.poly, h.poly, Layer::Poly),
                (l.diff, h.diff, Layer::Diffusion),
            ] {
                if let (Some(a), Some(b)) = (a, b) {
                    let root = nets.union(a, b);
                    nets.sub_perimeter(root, layer, pitch);
                }
            }
            if let (Some(a), Some(b)) = (l.channel, h.channel) {
                devices.union(a, b, nets);
            }
            if let (Some(k), Some(d)) = (l.channel, h.diff) {
                devices.add_terminal_contact(k, d, pitch);
            }
            if let (Some(d), Some(k)) = (l.diff, h.channel) {
                devices.add_terminal_contact(k, d, pitch);
            }
        }
    }
    h
}

/// The top element of the L-shaped window: connect each run to the
/// overlapping runs of the row above.
fn link_rows(
    prev: &[RunHandles],
    cur: &[RunHandles],
    pitch: Coord,
    nets: &mut NetTable,
    devices: &mut DeviceTable,
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < prev.len() && j < cur.len() {
        let a = prev[i];
        let b = cur[j];
        let lo = a.c0.max(b.c0);
        let hi = a.c1.min(b.c1);
        if hi > lo {
            let len = (hi - lo) * pitch;
            for (x, y, layer) in [
                (a.metal, b.metal, Layer::Metal),
                (a.poly, b.poly, Layer::Poly),
                (a.diff, b.diff, Layer::Diffusion),
            ] {
                if let (Some(x), Some(y)) = (x, y) {
                    let root = nets.union(x, y);
                    nets.sub_perimeter(root, layer, len);
                }
            }
            if let (Some(x), Some(y)) = (a.channel, b.channel) {
                devices.union(x, y, nets);
            }
            if let (Some(k), Some(d)) = (a.channel, b.diff) {
                devices.add_terminal_contact(k, d, len);
            }
            if let (Some(d), Some(k)) = (a.diff, b.channel) {
                devices.add_terminal_contact(k, d, len);
            }
        }
        if a.c1 <= b.c1 {
            i += 1;
        } else {
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_geom::LAMBDA;
    use ace_layout::Library;
    use ace_wirelist::DeviceKind;

    fn run(src: &str) -> RasterExtraction {
        let lib = Library::from_cif_text(src).expect("parse");
        extract_partlist(&FlatLayout::from_library(&lib), "test", LAMBDA)
    }

    #[test]
    fn single_transistor() {
        let r = run("L ND; B 500 2000 0 0; L NP; B 2000 500 0 0; E");
        assert_eq!(r.netlist.device_count(), 1);
        let d = &r.netlist.devices()[0];
        assert_eq!(d.kind, DeviceKind::Enhancement);
        assert_eq!((d.length, d.width), (500, 500));
        assert_ne!(d.source, d.drain);
    }

    #[test]
    fn depletion_and_buried() {
        // Depletion transistor.
        let r = run("L ND; B 500 2000 0 0; L NP; B 2000 500 0 0; L NI; B 750 750 0 0; E");
        assert_eq!(r.netlist.device_census(), (0, 1, 0));
        // Buried contact suppresses the transistor.
        let r = run("L ND; B 500 2000 0 0; L NP; B 2000 500 0 0; L NB; B 750 750 0 0; E");
        assert_eq!(r.netlist.device_count(), 0);
    }

    #[test]
    fn cut_connects_layers() {
        let r = run(
            "L NM; B 1000 1000 0 0; L NP; B 1000 1000 0 0; L NC; B 250 250 0 0;
             94 M -375 125 NM; 94 P 375 125 NP; E",
        );
        assert_eq!(r.netlist.net_by_name("M"), r.netlist.net_by_name("P"));
        assert!(r.netlist.net_by_name("M").is_some());
    }

    #[test]
    fn disjoint_nets_stay_apart() {
        let r = run("L NM; B 500 250 250 125; B 500 250 1750 125;
             94 A 250 125; 94 B 1750 125; E");
        assert_ne!(r.netlist.net_by_name("A"), r.netlist.net_by_name("B"));
    }

    #[test]
    fn report_counts_rows_and_runs() {
        let r = run("L NM; B 1000 1000 0 0; E");
        assert_eq!(r.report.rows, 4);
        assert_eq!(r.report.runs_visited, 4);
        assert_eq!(r.report.unresolved_labels, 0);
    }

    #[test]
    fn matches_scanline_extractor_on_aligned_layout() {
        let src = "
            L ND; B 500 3000 250 0;
            L NP; B 1500 500 250 -750;
            L NP; B 500 500 250 750;
            L NI; B 750 750 250 750;
            L NM; B 1000 500 250 1250;
            L NC; B 250 250 250 1250;
            E";
        let lib = Library::from_cif_text(src).unwrap();
        let flat = FlatLayout::from_library(&lib);
        let raster = extract_partlist(&flat, "x", LAMBDA);
        let scan = ace_core::extract_flat(flat, "x", ace_core::ExtractOptions::new()).unwrap();
        ace_wirelist::compare::same_circuit(&raster.netlist, &scan.netlist)
            .expect("partlist and ACE agree");
    }

    #[test]
    fn empty_layout() {
        let r = run("E");
        assert_eq!(r.netlist.device_count(), 0);
        assert_eq!(r.report.rows, 0);
    }
}
