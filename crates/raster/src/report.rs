use std::time::Duration;

use ace_wirelist::Netlist;

/// Instrumentation for one raster extraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RasterReport {
    /// Grid rows scanned.
    pub rows: u64,
    /// Runs visited (run-encoded scan) — the work unit of Partlist.
    pub runs_visited: u64,
    /// Cells visited (full-grid scan) — the work unit of Cifplot.
    pub cells_visited: u64,
    /// Labels that did not land on conducting geometry.
    pub unresolved_labels: u64,
    /// Total wall-clock time.
    pub total_time: Duration,
}

/// The result of one raster extraction.
#[derive(Debug, Clone)]
pub struct RasterExtraction {
    /// The extracted circuit.
    pub netlist: Netlist,
    /// Instrumentation.
    pub report: RasterReport,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let r = RasterReport::default();
        assert_eq!(r.rows, 0);
        assert_eq!(r.runs_visited, 0);
        assert_eq!(r.cells_visited, 0);
    }
}
