//! `aced` — the extraction service daemon.
//!
//! ```text
//! aced --socket /run/aced.sock [--tcp 127.0.0.1:7878] [--workers 2]
//!      [--queue 32] [--memory-budget-mb 64] [--timeout-ms 30000]
//!      [--bands 4]
//! ```
//!
//! Serves until SIGTERM/SIGINT, then drains queues, joins workers,
//! and unlinks its socket before exiting 0.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use ace_service::signal::install_shutdown_handler;
use ace_service::{Daemon, ServiceConfig};

struct Args {
    socket: Option<PathBuf>,
    tcp: Option<String>,
    config: ServiceConfig,
}

fn usage() -> ! {
    eprintln!(
        "usage: aced [--socket PATH] [--tcp ADDR] [--workers N] [--queue N]\n\
         \x20           [--memory-budget-mb N] [--timeout-ms N] [--bands N]\n\
         at least one of --socket/--tcp is required"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        socket: None,
        tcp: None,
        config: ServiceConfig::default(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--socket" => args.socket = Some(PathBuf::from(value())),
            "--tcp" => args.tcp = Some(value()),
            "--workers" => args.config.workers = parse_num(&value()),
            "--queue" => args.config.queue_capacity = parse_num(&value()),
            "--memory-budget-mb" => {
                args.config.memory_budget = parse_num::<u64>(&value()) * 1024 * 1024
            }
            "--timeout-ms" => {
                args.config.request_timeout = Duration::from_millis(parse_num(&value()))
            }
            "--bands" => args.config.default_bands = parse_num(&value()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.socket.is_none() && args.tcp.is_none() {
        usage();
    }
    args
}

fn parse_num<T: std::str::FromStr>(text: &str) -> T {
    text.parse().unwrap_or_else(|_| usage())
}

fn main() -> ExitCode {
    let args = parse_args();
    let stop = install_shutdown_handler();
    let daemon = Daemon::new(args.config);
    if let Some(path) = &args.socket {
        if let Err(e) = daemon.serve_unix(path) {
            eprintln!("aced: cannot bind {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("aced: listening on {}", path.display());
    }
    if let Some(addr) = &args.tcp {
        match daemon.serve_tcp(addr) {
            Ok(bound) => eprintln!("aced: listening on tcp {bound}"),
            Err(e) => {
                eprintln!("aced: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    daemon.run_until(stop);
    eprintln!("aced: clean shutdown");
    ExitCode::SUCCESS
}
