//! `aced-client` — a command-line client for `aced`.
//!
//! ```text
//! aced-client --socket /run/aced.sock open --session s --cif chip.cif
//! aced-client --socket /run/aced.sock extract --session s
//! aced-client --socket /run/aced.sock lint --session s
//! aced-client --socket /run/aced.sock query-net --session s --net VDD
//! aced-client --socket /run/aced.sock status
//! aced-client --socket /run/aced.sock close --session s
//! ```
//!
//! Connects via `--socket PATH` or `--tcp ADDR`. `extract` prints the
//! wirelist on stdout and per-request stats on stderr; exit status is
//! non-zero on any service error (and for `lint`, when any diagnostic
//! is error-severity).

use std::path::PathBuf;
use std::process::ExitCode;

use ace_core::ExtractOptions;
use ace_lint::{LintConfig, Severity};
use ace_service::{Client, ClientError, WireReport};

fn usage() -> ! {
    eprintln!(
        "usage: aced-client (--socket PATH | --tcp ADDR) COMMAND [ARGS]\n\
         commands:\n\
         \x20 open      --session NAME --cif FILE [--bands N]\n\
         \x20 extract   --session NAME\n\
         \x20 lint      --session NAME\n\
         \x20 query-net --session NAME --net NET\n\
         \x20 close     --session NAME\n\
         \x20 status"
    );
    std::process::exit(2);
}

struct Flags {
    socket: Option<PathBuf>,
    tcp: Option<String>,
    session: Option<String>,
    cif: Option<PathBuf>,
    net: Option<String>,
    bands: usize,
    command: String,
}

fn parse_flags() -> Flags {
    let mut flags = Flags {
        socket: None,
        tcp: None,
        session: None,
        cif: None,
        net: None,
        bands: 0,
        command: String::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = || iter.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--socket" => flags.socket = Some(PathBuf::from(value())),
            "--tcp" => flags.tcp = Some(value()),
            "--session" => flags.session = Some(value()),
            "--cif" => flags.cif = Some(PathBuf::from(value())),
            "--net" => flags.net = Some(value()),
            "--bands" => flags.bands = value().parse().unwrap_or_else(|_| usage()),
            "--help" | "-h" => usage(),
            cmd if flags.command.is_empty() && !cmd.starts_with('-') => {
                flags.command = cmd.to_string()
            }
            _ => usage(),
        }
    }
    if flags.command.is_empty() {
        usage();
    }
    flags
}

fn connect(flags: &Flags) -> Result<Client, ClientError> {
    match (&flags.socket, &flags.tcp) {
        (Some(path), _) => Ok(Client::connect_unix(path)?),
        (None, Some(addr)) => Ok(Client::connect_tcp(addr)?),
        (None, None) => usage(),
    }
}

fn session(flags: &Flags) -> &str {
    flags.session.as_deref().unwrap_or_else(|| usage())
}

fn print_report(r: &WireReport) {
    eprintln!(
        "boxes {} stops {} reused {} reswept {} cache {} B in {} us",
        r.boxes,
        r.scanline_stops,
        r.bands_reused,
        r.bands_reswept,
        r.cache_bytes,
        r.total_ns / 1000
    );
}

fn run(flags: &Flags) -> Result<ExitCode, ClientError> {
    let mut client = connect(flags)?;
    match flags.command.as_str() {
        "open" => {
            let path = flags.cif.as_deref().unwrap_or_else(|| usage());
            let cif = std::fs::read_to_string(path).map_err(ClientError::Io)?;
            let bands = client.open(session(flags), &cif, flags.bands, ExtractOptions::new())?;
            eprintln!("opened '{}' with {} bands", session(flags), bands);
        }
        "extract" => {
            let result = client.extract(session(flags))?;
            print!("{}", result.wirelist);
            print_report(&result.report);
        }
        "lint" => {
            let (diagnostics, report) = client.lint(session(flags), &LintConfig::new())?;
            for d in &diagnostics {
                println!("{}", d.rendered);
            }
            print_report(&report);
            if diagnostics.iter().any(|d| d.severity == Severity::Error) {
                return Ok(ExitCode::FAILURE);
            }
        }
        "query-net" => {
            let net = flags.net.as_deref().unwrap_or_else(|| usage());
            let info = client.query_net(session(flags), net)?;
            if info.found {
                println!(
                    "net '{}': names [{}], {} gates, {} terminals",
                    info.net,
                    info.names.join(", "),
                    info.gates,
                    info.terminals
                );
            } else {
                println!("net '{}': not found", info.net);
            }
        }
        "close" => {
            let existed = client.close(session(flags))?;
            eprintln!(
                "closed '{}'{}",
                session(flags),
                if existed { "" } else { " (did not exist)" }
            );
        }
        "status" => {
            let s = client.status()?;
            println!(
                "sessions {} cache_bytes {} evictions {} executed {} stolen {} \
                 queued {} workers {}",
                s.sessions, s.cache_bytes, s.evictions, s.executed, s.stolen, s.queued, s.workers
            );
        }
        _ => usage(),
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let flags = parse_flags();
    match run(&flags) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("aced-client: {e}");
            ExitCode::FAILURE
        }
    }
}
