//! A blocking client for `aced`.
//!
//! One [`Client`] owns one connection and issues one request at a
//! time (the protocol is strictly request/response per connection;
//! open several clients for concurrency). Request ids are assigned
//! monotonically and checked against the response — a mismatch means
//! the stream lost sync and is surfaced as an error rather than a
//! silently misattributed answer.
//!
//! The typed helpers ([`extract`](Client::extract),
//! [`lint`](Client::lint), …) unwrap the one response variant their
//! request can produce; a daemon-side failure comes back as
//! [`ClientError::Service`] carrying the stable
//! [`ErrorCode`](crate::protocol::ErrorCode).

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use ace_core::ExtractOptions;
use ace_layout::LayoutDiff;
use ace_lint::LintConfig;

use crate::frame::{read_frame, write_frame};
use crate::protocol::{
    decode_response, encode_request, ExtractResult, NetInfo, ProtoError, Request, Response,
    ServiceError, ServiceStatus, WireDiagnostic, WireReport,
};

/// Why a call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, unexpected EOF).
    Io(io::Error),
    /// The daemon answered, but the answer was malformed or out of
    /// sync with the request.
    Protocol(ProtoError),
    /// The daemon refused or failed the request.
    Service(ServiceError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "{e}"),
            ClientError::Service(e) => write!(f, "service error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> ClientError {
        ClientError::Protocol(e)
    }
}

enum Transport {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Unix(s) => s.read(buf),
            Transport::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Transport {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Unix(s) => s.write(buf),
            Transport::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Transport::Unix(s) => s.flush(),
            Transport::Tcp(s) => s.flush(),
        }
    }
}

/// A blocking `aced` connection.
pub struct Client {
    transport: Transport,
    next_id: i64,
}

impl Client {
    /// Connects over a Unix socket.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_unix(path: &Path) -> io::Result<Client> {
        Ok(Client {
            transport: Transport::Unix(UnixStream::connect(path)?),
            next_id: 1,
        })
    }

    /// Connects over TCP (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect_tcp(addr: &str) -> io::Result<Client> {
        Ok(Client {
            transport: Transport::Tcp(TcpStream::connect(addr)?),
            next_id: 1,
        })
    }

    /// Sends one request and waits for its response. Failure
    /// responses are returned as `Ok(Response::Error(..))` here; the
    /// typed helpers below lift them into [`ClientError::Service`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure,
    /// [`ClientError::Protocol`] on a malformed or miscorrelated
    /// response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.transport, &encode_request(id, request))?;
        let payload = read_frame(&mut self.transport)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ))
        })?;
        let (echo, response) = decode_response(&payload)?;
        // A decode failure on the daemon side answers with id 0.
        if echo != id && echo != 0 {
            return Err(ClientError::Protocol(ProtoError {
                message: format!("response id {echo} for request {id}: stream out of sync"),
            }));
        }
        Ok(response)
    }

    fn expect<T>(
        &mut self,
        request: &Request,
        pick: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T, ClientError> {
        let response = self.call(request)?;
        if let Response::Error(e) = response {
            return Err(ClientError::Service(e));
        }
        pick(response).ok_or_else(|| {
            ClientError::Protocol(ProtoError {
                message: "response variant does not match the request".into(),
            })
        })
    }

    /// Opens a session; returns the band count the daemon chose.
    ///
    /// # Errors
    ///
    /// See [`Client::call`]; daemon refusals become
    /// [`ClientError::Service`].
    pub fn open(
        &mut self,
        session: &str,
        cif: &str,
        bands: usize,
        options: ExtractOptions,
    ) -> Result<usize, ClientError> {
        self.expect(
            &Request::Open {
                session: session.to_string(),
                cif: cif.to_string(),
                bands,
                options,
            },
            |r| match r {
                Response::Opened { bands, .. } => Some(bands),
                _ => None,
            },
        )
    }

    /// Extracts the session's current layout.
    ///
    /// # Errors
    ///
    /// See [`Client::open`].
    pub fn extract(&mut self, session: &str) -> Result<ExtractResult, ClientError> {
        self.expect(
            &Request::Extract {
                session: session.to_string(),
            },
            |r| match r {
                Response::Extracted(result) => Some(result),
                _ => None,
            },
        )
    }

    /// Applies an edit and re-extracts.
    ///
    /// # Errors
    ///
    /// See [`Client::open`].
    pub fn edit_diff(
        &mut self,
        session: &str,
        diff: &LayoutDiff,
    ) -> Result<ExtractResult, ClientError> {
        self.expect(
            &Request::EditDiff {
                session: session.to_string(),
                diff: diff.clone(),
            },
            |r| match r {
                Response::Extracted(result) => Some(result),
                _ => None,
            },
        )
    }

    /// Runs the ERC rules over the session's circuit.
    ///
    /// # Errors
    ///
    /// See [`Client::open`].
    pub fn lint(
        &mut self,
        session: &str,
        config: &LintConfig,
    ) -> Result<(Vec<WireDiagnostic>, WireReport), ClientError> {
        self.expect(
            &Request::Lint {
                session: session.to_string(),
                config: config.clone(),
            },
            |r| match r {
                Response::Linted {
                    diagnostics,
                    report,
                } => Some((diagnostics, report)),
                _ => None,
            },
        )
    }

    /// Looks a net up by name.
    ///
    /// # Errors
    ///
    /// See [`Client::open`].
    pub fn query_net(&mut self, session: &str, net: &str) -> Result<NetInfo, ClientError> {
        self.expect(
            &Request::QueryNet {
                session: session.to_string(),
                net: net.to_string(),
            },
            |r| match r {
                Response::Net(info) => Some(info),
                _ => None,
            },
        )
    }

    /// Closes a session; returns whether it existed.
    ///
    /// # Errors
    ///
    /// See [`Client::open`].
    pub fn close(&mut self, session: &str) -> Result<bool, ClientError> {
        self.expect(
            &Request::Close {
                session: session.to_string(),
            },
            |r| match r {
                Response::Closed { existed, .. } => Some(existed),
                _ => None,
            },
        )
    }

    /// Fetches daemon-wide statistics.
    ///
    /// # Errors
    ///
    /// See [`Client::open`].
    pub fn status(&mut self) -> Result<ServiceStatus, ClientError> {
        self.expect(&Request::Status, |r| match r {
            Response::Status(s) => Some(s),
            _ => None,
        })
    }
}
