//! The `aced` daemon: resident sessions served over sockets.
//!
//! One daemon owns a [`SessionStore`] and a work-stealing
//! [`WorkerPool`] from `ace_core::scheduler`. Listeners (Unix socket
//! and/or TCP) accept connections; each connection gets a thread that
//! reads frames, decodes requests, and hands session work to the pool
//! sharded by session name ([`crate::session::shard_of`]) — so one
//! session's requests queue on one shard while idle workers steal
//! across shards. The connection thread waits on a channel with the
//! configured deadline: a full shard queue answers `queue-full` with
//! a retry hint (backpressure, never unbounded buffering), a missed
//! deadline answers `timeout` and flags the job so it skips its work
//! when it finally surfaces.
//!
//! Statistics come from two layers: each request runs under a fresh
//! `CounterProbe` whose [`take_report`](ace_core::CounterProbe::take_report)
//! becomes the response's per-request [`WireReport`], and `status`
//! reads the pool's lifetime counters plus the store's gauges.
//!
//! Shutdown is cooperative: `shutdown()` (or SIGTERM via
//! [`crate::signal`]) flips one flag; accept loops notice within one
//! poll interval, connection threads answer in-flight reads with
//! `shutting-down`, and the pool drains its queues before the daemon
//! joins every thread.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ace_core::{CircuitExtractor, CounterProbe, IncrementalExtractor, SubmitError, WorkerPool};
use ace_layout::{FlatLayout, Library};
use ace_lint::lint_extraction;
use ace_wirelist::parasitics::{net_capacitance_af, net_resistance_mohm, ParasiticParams};
use ace_wirelist::{write_wirelist, WirelistOptions};

use crate::frame::write_frame;
use crate::protocol::{
    decode_request, encode_response, ErrorCode, ExtractResult, NetInfo, Request, Response,
    ServiceError, ServiceStatus, WireDiagnostic, WireReport,
};
use crate::session::{shard_of, SessionStore};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads serving session requests.
    pub workers: usize,
    /// Bounded queue capacity per worker shard; a full queue is
    /// backpressure (`queue-full` + retry hint), not buffering.
    pub queue_capacity: usize,
    /// Byte budget for all session caches together; the evictor
    /// reclaims coldest-first above this.
    pub memory_budget: u64,
    /// Per-request deadline; connection threads answer `timeout` past
    /// it.
    pub request_timeout: Duration,
    /// Band count for sessions opened with `bands: 0`.
    pub default_bands: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            queue_capacity: 32,
            memory_budget: 64 * 1024 * 1024,
            request_timeout: Duration::from_secs(30),
            default_bands: 4,
        }
    }
}

/// How often accept loops and idle connection reads poll the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// The retry hint attached to `queue-full` responses, in
/// milliseconds: long enough for a queued extraction to finish on
/// this hardware, short enough that a load generator retries inside
/// its measurement window.
const RETRY_AFTER_MS: i64 = 50;

struct Inner {
    config: ServiceConfig,
    store: SessionStore,
    pool: Mutex<Option<WorkerPool>>,
    shutdown: AtomicBool,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Unix socket paths to unlink when the daemon stops.
    socket_paths: Mutex<Vec<PathBuf>>,
}

/// A running extraction service. Create one, attach listeners with
/// [`serve_unix`](Daemon::serve_unix) / [`serve_tcp`](Daemon::serve_tcp),
/// then park in [`run_until`](Daemon::run_until) (binaries) or keep a
/// [`Daemon`] clone around and call [`shutdown`](Daemon::shutdown)
/// (tests).
#[derive(Clone)]
pub struct Daemon {
    inner: Arc<Inner>,
}

impl Daemon {
    /// Starts the worker pool; no listeners yet.
    pub fn new(config: ServiceConfig) -> Daemon {
        let pool = WorkerPool::new(config.workers, config.queue_capacity);
        let store = SessionStore::new(config.memory_budget);
        Daemon {
            inner: Arc::new(Inner {
                config,
                store,
                pool: Mutex::new(Some(pool)),
                shutdown: AtomicBool::new(false),
                threads: Mutex::new(Vec::new()),
                socket_paths: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Requests a cooperative shutdown (idempotent, returns
    /// immediately; pair with [`join`](Daemon::join)).
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// Listens on a Unix socket at `path` (a stale socket file from a
    /// previous run is replaced). The accept loop runs on its own
    /// thread until shutdown.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve_unix(&self, path: &Path) -> io::Result<()> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        self.inner
            .socket_paths
            .lock()
            .unwrap()
            .push(path.to_path_buf());
        let daemon = self.clone();
        let handle = std::thread::Builder::new()
            .name("aced-accept-unix".into())
            .spawn(move || daemon.accept_loop_unix(listener))
            .expect("spawn accept loop");
        self.inner.threads.lock().unwrap().push(handle);
        Ok(())
    }

    /// Listens on a TCP address (e.g. `127.0.0.1:0`); returns the
    /// bound address. The accept loop runs on its own thread until
    /// shutdown.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn serve_tcp(&self, addr: &str) -> io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let daemon = self.clone();
        let handle = std::thread::Builder::new()
            .name("aced-accept-tcp".into())
            .spawn(move || daemon.accept_loop_tcp(listener))
            .expect("spawn accept loop");
        self.inner.threads.lock().unwrap().push(handle);
        Ok(bound)
    }

    /// Parks until `stop` turns true (a signal handler's flag), then
    /// shuts down and joins everything.
    pub fn run_until(&self, stop: &AtomicBool) {
        while !stop.load(Ordering::SeqCst) && !self.is_shutting_down() {
            std::thread::sleep(POLL_INTERVAL);
        }
        self.shutdown();
        self.join();
    }

    /// Joins accept loops and connection threads, drains the worker
    /// pool, and unlinks Unix socket files. Implies
    /// [`shutdown`](Daemon::shutdown).
    pub fn join(&self) {
        self.shutdown();
        // Connection threads may still be parking new handles while
        // we drain, so loop until the list stays empty.
        loop {
            let handles: Vec<_> = self.inner.threads.lock().unwrap().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for handle in handles {
                let _ = handle.join();
            }
        }
        if let Some(pool) = self.inner.pool.lock().unwrap().take() {
            pool.shutdown();
        }
        for path in self.inner.socket_paths.lock().unwrap().drain(..) {
            let _ = std::fs::remove_file(&path);
        }
    }

    fn accept_loop_unix(&self, listener: UnixListener) {
        loop {
            if self.is_shutting_down() {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => self.spawn_connection(Conn::Unix(stream)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(_) => return,
            }
        }
    }

    fn accept_loop_tcp(&self, listener: TcpListener) {
        loop {
            if self.is_shutting_down() {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => self.spawn_connection(Conn::Tcp(stream)),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(_) => return,
            }
        }
    }

    fn spawn_connection(&self, conn: Conn) {
        let daemon = self.clone();
        let handle = std::thread::Builder::new()
            .name("aced-conn".into())
            .spawn(move || daemon.serve_connection(conn))
            .expect("spawn connection thread");
        self.inner.threads.lock().unwrap().push(handle);
    }

    fn serve_connection(&self, mut conn: Conn) {
        if conn.set_read_timeout(POLL_INTERVAL).is_err() {
            return;
        }
        loop {
            let payload = match self.read_frame_polling(&mut conn) {
                FrameOutcome::Frame(p) => p,
                FrameOutcome::Closed => return,
            };
            let (id, response) = match decode_request(&payload) {
                Ok((id, request)) => (id, self.dispatch(request)),
                Err(e) => (
                    0,
                    Response::Error(ServiceError::new(ErrorCode::BadRequest, e.message)),
                ),
            };
            let bytes = encode_response(id, &response);
            if write_frame(&mut conn, &bytes).is_err() {
                return;
            }
        }
    }

    /// Reads one frame, polling the shutdown flag while the
    /// connection is idle. A timeout *mid-frame* (peer stalled) or
    /// any other error closes the connection.
    fn read_frame_polling(&self, conn: &mut Conn) -> FrameOutcome {
        let mut len_bytes = [0u8; 4];
        let mut filled = 0;
        while filled < 4 {
            if filled == 0 && self.is_shutting_down() {
                return FrameOutcome::Closed;
            }
            match conn.read(&mut len_bytes[filled..]) {
                Ok(0) => return FrameOutcome::Closed,
                Ok(n) => filled += n,
                Err(e) if is_timeout(&e) && filled == 0 => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return FrameOutcome::Closed,
            }
        }
        let len = u32::from_be_bytes(len_bytes) as usize;
        if len > crate::frame::MAX_FRAME_BYTES {
            return FrameOutcome::Closed;
        }
        let mut payload = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            match conn.read(&mut payload[filled..]) {
                Ok(0) => return FrameOutcome::Closed,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Allow a few poll intervals for a slow writer, but a
                // peer that stalls mid-frame during shutdown is dead.
                Err(e) if is_timeout(&e) && !self.is_shutting_down() => continue,
                Err(_) => return FrameOutcome::Closed,
            }
        }
        FrameOutcome::Frame(payload)
    }

    /// Routes one request: `status` inline, session work through the
    /// pool with backpressure and a deadline.
    fn dispatch(&self, request: Request) -> Response {
        if self.is_shutting_down() {
            return Response::Error(ServiceError::new(
                ErrorCode::ShuttingDown,
                "daemon is draining for shutdown",
            ));
        }
        let Some(session) = request.session() else {
            return Response::Status(self.status());
        };
        let shard = shard_of(session, self.inner.config.workers);
        let (tx, rx) = mpsc::channel::<Response>();
        let cancelled = Arc::new(AtomicBool::new(false));
        let job_cancelled = Arc::clone(&cancelled);
        let daemon = self.clone();
        let submitted = {
            let pool = self.inner.pool.lock().unwrap();
            let Some(pool) = pool.as_ref() else {
                return Response::Error(ServiceError::new(
                    ErrorCode::ShuttingDown,
                    "worker pool is drained",
                ));
            };
            pool.try_submit(shard, move || {
                if job_cancelled.load(Ordering::SeqCst) {
                    return;
                }
                let response = daemon.execute(request);
                let _ = tx.send(response);
            })
        };
        match submitted {
            Ok(()) => {}
            Err(SubmitError::Full) => {
                return Response::Error(
                    ServiceError::new(ErrorCode::QueueFull, format!("shard {shard} queue is full"))
                        .with_retry_after_ms(RETRY_AFTER_MS),
                )
            }
            Err(SubmitError::ShuttingDown) => {
                return Response::Error(ServiceError::new(
                    ErrorCode::ShuttingDown,
                    "worker pool is draining",
                ))
            }
        }
        match rx.recv_timeout(self.inner.config.request_timeout) {
            Ok(response) => response,
            Err(_) => {
                cancelled.store(true, Ordering::SeqCst);
                Response::Error(ServiceError::new(
                    ErrorCode::Timeout,
                    format!(
                        "request exceeded the {:?} deadline",
                        self.inner.config.request_timeout
                    ),
                ))
            }
        }
    }

    fn status(&self) -> ServiceStatus {
        let store = self.inner.store.stats();
        let pool_stats = self
            .inner
            .pool
            .lock()
            .unwrap()
            .as_ref()
            .map(|p| p.stats())
            .unwrap_or_default();
        ServiceStatus {
            sessions: store.sessions as i64,
            cache_bytes: store.cache_bytes as i64,
            evictions: store.evictions as i64,
            executed: pool_stats.executed as i64,
            stolen: pool_stats.stolen as i64,
            queued: pool_stats.queued as i64,
            workers: pool_stats.workers as i64,
        }
    }

    /// Runs one session request on a worker thread.
    fn execute(&self, request: Request) -> Response {
        match request {
            Request::Open {
                session,
                cif,
                bands,
                options,
            } => self.execute_open(session, &cif, bands, options),
            Request::Extract { session } => self.with_session(&session, extract_response),
            Request::EditDiff { session, diff } => self.with_session(&session, |ex, probe| {
                ex.apply(&diff)
                    .map_err(|e| ServiceError::new(ErrorCode::DiffFailed, e.to_string()))?;
                extract_response(ex, probe)
            }),
            Request::Lint { session, config } => self.with_session(&session, |ex, probe| {
                let mut extraction = ex.extract_probed("aced", probe).map_err(extract_error)?;
                let diagnostics = lint_extraction(&mut extraction, ex.layout(), &config, probe);
                let report = WireReport::from_report(&probe.take_report());
                Ok(Response::Linted {
                    diagnostics: diagnostics.iter().map(WireDiagnostic::from).collect(),
                    report,
                })
            }),
            Request::QueryNet { session, net } => self.with_session(&session, |ex, probe| {
                let extraction = ex.extract_probed("aced", probe).map_err(extract_error)?;
                let netlist = &extraction.netlist;
                let info = match netlist.net_by_name(&net) {
                    None => NetInfo {
                        net: net.clone(),
                        found: false,
                        names: Vec::new(),
                        gates: 0,
                        terminals: 0,
                        cap_af: 0,
                        res_mohm: 0,
                    },
                    Some(id) => {
                        let mut gates = 0i64;
                        let mut terminals = 0i64;
                        for d in netlist.devices() {
                            if d.gate == id {
                                gates += 1;
                            }
                            terminals += i64::from(d.source == id) + i64::from(d.drain == id);
                        }
                        let params = ParasiticParams::nmos();
                        let parasitics = &netlist.net(id).parasitics;
                        NetInfo {
                            net: net.clone(),
                            found: true,
                            names: netlist.net(id).names.clone(),
                            gates,
                            terminals,
                            cap_af: net_capacitance_af(parasitics, &params),
                            res_mohm: net_resistance_mohm(parasitics, &params),
                        }
                    }
                };
                Ok(Response::Net(info))
            }),
            Request::Close { session } => Response::Closed {
                existed: self.inner.store.close(&session),
                session,
            },
            Request::Status => Response::Status(self.status()),
        }
    }

    fn execute_open(
        &self,
        session: String,
        cif: &str,
        bands: usize,
        options: ace_core::ExtractOptions,
    ) -> Response {
        if options.threads.is_some() || options.bands.is_some() || options.window.is_some() {
            return Response::Error(ServiceError::new(
                ErrorCode::BadRequest,
                "sessions manage their own banding: open with plain options \
                 (no threads/bands/window)",
            ));
        }
        let lib = match Library::from_cif_text(cif) {
            Ok(lib) => lib,
            Err(e) => {
                return Response::Error(ServiceError::new(ErrorCode::ParseError, e.to_string()))
            }
        };
        let flat = FlatLayout::from_library(&lib);
        let bands = if bands == 0 {
            self.inner.config.default_bands
        } else {
            bands
        };
        let extractor = IncrementalExtractor::new(flat, bands).with_options(options);
        match self.inner.store.open(&session, extractor) {
            Ok(()) => Response::Opened { session, bands },
            Err(e) => Response::Error(e),
        }
    }

    /// Checks a session out, runs `work` under its lock with a fresh
    /// per-request probe, then records the CacheBytes gauge and lets
    /// the evictor run.
    fn with_session(
        &self,
        session: &str,
        work: impl FnOnce(&mut IncrementalExtractor, &CounterProbe) -> Result<Response, ServiceError>,
    ) -> Response {
        let shared = match self.inner.store.checkout(session) {
            Ok(shared) => shared,
            Err(e) => return Response::Error(e),
        };
        let probe = CounterProbe::new();
        let (response, cache_bytes) = {
            let mut extractor = shared.lock().unwrap();
            let response = match work(&mut extractor, &probe) {
                Ok(response) => response,
                Err(e) => Response::Error(e),
            };
            (response, extractor.cache_bytes())
        };
        self.inner.store.note_cache_bytes(session, cache_bytes);
        response
    }
}

fn extract_error(e: ace_core::ExtractError) -> ServiceError {
    ServiceError::new(ErrorCode::ExtractFailed, e.to_string())
}

/// The shared `extract` / `edit-diff` tail: sweep, serialize the
/// netlist to wirelist text, flatten the per-request probe report.
fn extract_response(
    ex: &mut IncrementalExtractor,
    probe: &CounterProbe,
) -> Result<Response, ServiceError> {
    let extraction = ex.extract_probed("aced", probe).map_err(extract_error)?;
    let report = WireReport::from_report(&probe.take_report());
    Ok(Response::Extracted(ExtractResult {
        wirelist: write_wirelist(&extraction.netlist, WirelistOptions::new()),
        report,
    }))
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

enum FrameOutcome {
    Frame(Vec<u8>),
    Closed,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, ClientError};
    use ace_core::ExtractOptions;

    const TINY_CIF: &str = "L ND; B 400 1600 0 0; L NP; B 1600 400 0 0; E";

    fn daemon_and_client(config: ServiceConfig) -> (Daemon, Client, SocketAddr) {
        let daemon = Daemon::new(config);
        let addr = daemon.serve_tcp("127.0.0.1:0").expect("bind");
        let client = Client::connect_tcp(&addr.to_string()).expect("connect");
        (daemon, client, addr)
    }

    fn expect_service_error(err: ClientError) -> ServiceError {
        match err {
            ClientError::Service(e) => e,
            other => panic!("expected service error, got {other}"),
        }
    }

    #[test]
    fn blocked_session_times_out_and_recovers_once_released() {
        let config = ServiceConfig {
            workers: 1,
            request_timeout: Duration::from_millis(50),
            ..ServiceConfig::default()
        };
        let (daemon, mut client, _) = daemon_and_client(config);
        client
            .open("s", TINY_CIF, 2, ExtractOptions::new())
            .expect("open");

        // Hold the session lock so the worker cannot finish the job
        // before the connection thread's deadline fires.
        let shared = daemon.inner.store.checkout("s").expect("session");
        let guard = shared.lock().unwrap();
        let err = expect_service_error(client.extract("s").expect_err("must time out"));
        assert_eq!(err.code, ErrorCode::Timeout);
        drop(guard);

        // The stale job drains into a dead channel; fresh requests
        // are unaffected.
        let result = client.extract("s").expect("recovers after release");
        assert!(result.wirelist.contains("nEnh"));
        daemon.join();
    }

    #[test]
    fn full_shard_queue_answers_queue_full_with_retry_hint() {
        let config = ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            request_timeout: Duration::from_secs(10),
            ..ServiceConfig::default()
        };
        let (daemon, mut client, _) = daemon_and_client(config);
        client
            .open("s", TINY_CIF, 2, ExtractOptions::new())
            .expect("open");

        // Occupy the single worker with a gated job, then park a
        // second job in the 1-slot queue: the client's request has
        // nowhere to go.
        let gate = Arc::new(AtomicBool::new(false));
        {
            let pool = self_pool(&daemon);
            let pool = pool.as_ref().expect("pool running");
            let g = Arc::clone(&gate);
            pool.try_submit(0, move || {
                while !g.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
            .expect("first job");
        }
        wait_for_queue_depth(&daemon, 0);
        self_pool(&daemon)
            .as_ref()
            .expect("pool running")
            .try_submit(0, || {})
            .expect("queue filler");

        let err = expect_service_error(client.extract("s").expect_err("must be refused"));
        assert_eq!(err.code, ErrorCode::QueueFull);
        assert_eq!(err.retry_after_ms, Some(RETRY_AFTER_MS));

        // Releasing the gate drains the queue; the same request now
        // succeeds — backpressure, not failure.
        gate.store(true, Ordering::SeqCst);
        let result = client.extract("s").expect("works after drain");
        assert!(result.wirelist.contains("nEnh"));
        daemon.join();
    }

    fn self_pool(daemon: &Daemon) -> std::sync::MutexGuard<'_, Option<WorkerPool>> {
        daemon.inner.pool.lock().unwrap()
    }

    /// Spins until the pool reports `depth` queued jobs (bounded).
    fn wait_for_queue_depth(daemon: &Daemon, depth: usize) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let queued = self_pool(daemon).as_ref().map(|p| p.stats().queued);
            if queued == Some(depth) || std::time::Instant::now() > deadline {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn dispatch_after_shutdown_answers_shutting_down() {
        let daemon = Daemon::new(ServiceConfig::default());
        daemon.shutdown();
        match daemon.dispatch(Request::Status) {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::ShuttingDown),
            other => panic!("expected shutting-down, got {other:?}"),
        }
        daemon.join();
    }
}

/// A listener-agnostic connection.
enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn set_read_timeout(&mut self, d: Duration) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.set_read_timeout(Some(d)),
            Conn::Tcp(s) => s.set_read_timeout(Some(d)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}
