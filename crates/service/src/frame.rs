//! Length-prefixed framing for the wire protocol.
//!
//! Every message is one frame: a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8 JSON. The prefix lets both
//! sides read whole messages off a byte stream without scanning for
//! delimiters, and makes the protocol self-describing enough that a
//! confused peer fails fast (length caps at [`MAX_FRAME_BYTES`])
//! instead of deadlocking on a half-read message.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload, protecting the daemon
/// from a garbage length prefix (64 MiB comfortably fits any chip
/// library this workspace generates).
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Writes one frame: big-endian `u32` length, then the payload.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME_BYTES`]
/// with [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds cap", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed the connection between messages).
///
/// # Errors
///
/// [`io::ErrorKind::UnexpectedEof`] on EOF mid-frame,
/// [`io::ErrorKind::InvalidData`] on an over-cap length prefix, and
/// any underlying I/O error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame length",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "λ json".as_bytes()).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"first");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "λ json".as_bytes());
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"truncated").unwrap();
        buf.truncate(buf.len() - 3);
        let mut r = Cursor::new(buf);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // EOF inside the length prefix itself.
        let mut r = Cursor::new(vec![0u8, 0]);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut r = Cursor::new(0xFFFF_FFFFu32.to_be_bytes().to_vec());
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = write_frame(&mut Vec::new(), &vec![0u8; MAX_FRAME_BYTES + 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
