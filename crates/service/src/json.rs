//! A minimal JSON value with deterministic serialization.
//!
//! The service protocol needs exactly one wire syntax and the build
//! environment has no registry access, so this module hand-rolls the
//! subset of JSON the protocol uses: `null`, booleans, 64-bit signed
//! integers, strings, arrays, and objects. Objects preserve insertion
//! order, so the same [`Json`] value always serializes to the same
//! bytes — the property the golden-bytes wire-format test pins.
//!
//! Floating-point numbers are deliberately absent: every protocol
//! quantity (coordinates, counters, nanoseconds) is an integer, and
//! integers round-trip exactly.
//!
//! # Examples
//!
//! ```
//! use ace_service::json::Json;
//!
//! let v = Json::obj([("op", Json::str("ping")), ("id", Json::Int(7))]);
//! let text = v.to_text();
//! assert_eq!(text, r#"{"op":"ping","id":7}"#);
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use std::fmt;

/// A JSON value (integer-only numbers, ordered object keys).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number. The protocol never uses fractions.
    Int(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved and significant for
    /// serialization (not for [`PartialEq`] — see [`Json::get`]).
    Obj(Vec<(String, Json)>),
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks a key up in an object (first match). `None` for missing
    /// keys and for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an [`Json::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text (no whitespace, object keys in
    /// insertion order) — the canonical wire form.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text. Accepts standard JSON with two restrictions:
    /// numbers must be integers in `i64` range (no fractions or
    /// exponents) and duplicate object keys are rejected.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after value"));
        }
        Ok(value)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.integer(),
            Some(b) => Err(self.error(format!("unexpected byte 0x{b:02x}"))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn integer(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(self.error("protocol numbers are integers"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|_| self.error(format!("integer out of range: {text}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs: the protocol only emits
                            // \u for control characters, but accept
                            // well-formed pairs from other encoders.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.error("lone high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("bad low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid \\u escape"))?);
                            // hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.error("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.error("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.error(format!("duplicate key '{key}'")));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::str(""),
            Json::str("plain"),
            Json::str("quo\"te back\\slash new\nline tab\ttab"),
            Json::str("unicode λ→∞ and control \u{1}"),
        ] {
            let text = v.to_text();
            assert_eq!(Json::parse(&text).unwrap(), v, "via {text}");
        }
    }

    #[test]
    fn containers_round_trip_and_preserve_key_order() {
        let v = Json::obj([
            ("zebra", Json::Arr(vec![Json::Int(1), Json::Null])),
            ("alpha", Json::obj([("k", Json::Bool(false))])),
        ]);
        let text = v.to_text();
        assert_eq!(text, r#"{"zebra":[1,null],"alpha":{"k":false}}"#);
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn whitespace_and_escapes_parse() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"\\u0041\\n\" } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_str(), Some("A\n"));
        // Surrogate pair for 𝄞 (U+1D11E).
        let clef = Json::parse("\"\\uD834\\uDD1E\"").unwrap();
        assert_eq!(clef.as_str(), Some("\u{1D11E}"));
    }

    #[test]
    fn bad_input_is_rejected_with_offsets() {
        for (text, needle) in [
            ("", "end of input"),
            ("1.5", "integers"),
            ("1e3", "integers"),
            ("99999999999999999999", "out of range"),
            ("[1,", "end of input"),
            ("{\"a\":1,\"a\":2}", "duplicate"),
            ("\"abc", "unterminated"),
            ("nul", "expected 'null'"),
            ("[1 2]", "expected ','"),
            ("{\"a\" 1}", "expected ':'"),
            ("1 1", "trailing"),
            ("\"\\uD834\"", "surrogate"),
        ] {
            let err = Json::parse(text).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{text:?}: got {:?}",
                err.message
            );
        }
    }

    #[test]
    fn get_and_accessors() {
        let v = Json::obj([("n", Json::Int(5)), ("s", Json::str("x"))]);
        assert_eq!(v.get("n").unwrap().as_int(), Some(5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(1).get("n"), None);
        assert_eq!(Json::Null.as_int(), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
    }
}
