//! `aced`: extraction as a service.
//!
//! ACE's pitch was interactive-speed extraction; an interactive tool
//! wants the extractor *resident*, not re-exec'd per edit. This crate
//! wraps the workspace's extractors in a long-lived daemon that keeps
//! parsed CIF libraries and per-session incremental band caches warm,
//! and serves `extract` / `edit-diff` / `lint` / `query-net` requests
//! from many concurrent clients over a length-prefixed JSON protocol
//! (Unix socket or TCP).
//!
//! The layers, bottom up:
//!
//! * [`json`] — a deterministic integer-only JSON value (no external
//!   dependencies exist in this environment, so serialization is
//!   hand-rolled; ordered object keys give byte-stable encodings).
//! * [`frame`] — 4-byte big-endian length prefix around each message.
//! * [`protocol`] — the serializable request/response surface:
//!   [`protocol::Request`], [`protocol::Response`], and
//!   [`protocol::ServiceError`] with stable kebab-case error codes,
//!   plus wire forms for the in-process `ExtractOptions`,
//!   `LintConfig`, and `LayoutDiff` types.
//! * [`session`] — named resident sessions (incremental extractor +
//!   warm cache) with an LRU evictor driven by the CacheBytes gauge.
//! * [`daemon`] — listeners, per-connection threads, work-stealing
//!   dispatch over `ace_core::scheduler::WorkerPool`, bounded queues
//!   with `queue-full` backpressure, per-request deadlines, and
//!   cooperative SIGTERM shutdown.
//! * [`client`] — a blocking typed client used by `aced-client`, the
//!   `service_load` load generator, and tests.
//!
//! # Examples
//!
//! Daemon and client in one process (tests do exactly this; binaries
//! split the two ends across processes):
//!
//! ```
//! use ace_core::ExtractOptions;
//! use ace_service::{Client, Daemon, ServiceConfig};
//!
//! let daemon = Daemon::new(ServiceConfig::default());
//! let addr = daemon.serve_tcp("127.0.0.1:0")?;
//!
//! let mut client = Client::connect_tcp(&addr.to_string())?;
//! client.open(
//!     "demo",
//!     "L ND; B 400 1600 0 0; L NP; B 1600 400 0 0; E",
//!     2,
//!     ExtractOptions::new(),
//! )?;
//! let result = client.extract("demo")?;
//! assert!(result.wirelist.contains("nEnh"));
//!
//! daemon.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod frame;
pub mod json;
pub mod protocol;
pub mod session;
pub mod signal;

pub use client::{Client, ClientError};
pub use daemon::{Daemon, ServiceConfig};
pub use protocol::{
    ErrorCode, ExtractResult, NetInfo, ProtoError, Request, Response, ServiceError, ServiceStatus,
    WireDiagnostic, WireReport,
};
pub use session::SessionStore;
